/**
 * @file
 * VRPC example: a remote key-value store, fully SunRPC-compatible on
 * the wire (RFC 1057 headers, XDR-marshalled strings and opaques).
 *
 * The server (node 1) registers PUT/GET/DEL/COUNT procedures; two
 * clients on other nodes exercise them concurrently over their own
 * bindings.
 *
 * Build & run:  ./examples/rpc_kvstore
 */

#include <cstdio>
#include <map>
#include <string>

#include "rpc/server.hh"

using namespace shrimp;

namespace
{

constexpr std::uint32_t kProg = 0x20099;
constexpr std::uint32_t kVers = 1;
constexpr std::uint32_t kPut = 1, kGet = 2, kDel = 3, kCount = 4;
constexpr std::uint16_t kPort = 9000;

using Store = std::map<std::string, std::string>;

void
registerProcs(rpc::VrpcServer &server, Store &store)
{
    server.registerProc(
        kProg, kVers, kPut,
        [&store](rpc::XdrDecoder &dec)
            -> sim::Task<rpc::VrpcServer::ServiceResult> {
            std::string key = co_await dec.getString(256);
            std::string value = co_await dec.getString(65536);
            store[key] = value;
            rpc::VrpcServer::ServiceResult r;
            r.results = [](rpc::XdrEncoder &enc) -> sim::Task<> {
                co_await enc.putBool(true);
            };
            co_return r;
        });
    server.registerProc(
        kProg, kVers, kGet,
        [&store](rpc::XdrDecoder &dec)
            -> sim::Task<rpc::VrpcServer::ServiceResult> {
            std::string key = co_await dec.getString(256);
            auto it = store.find(key);
            bool found = it != store.end();
            std::string value = found ? it->second : "";
            rpc::VrpcServer::ServiceResult r;
            r.results = [found, value](rpc::XdrEncoder &enc)
                -> sim::Task<> {
                co_await enc.putBool(found);
                if (found)
                    co_await enc.putString(value);
            };
            co_return r;
        });
    server.registerProc(
        kProg, kVers, kDel,
        [&store](rpc::XdrDecoder &dec)
            -> sim::Task<rpc::VrpcServer::ServiceResult> {
            std::string key = co_await dec.getString(256);
            bool erased = store.erase(key) > 0;
            rpc::VrpcServer::ServiceResult r;
            r.results = [erased](rpc::XdrEncoder &enc) -> sim::Task<> {
                co_await enc.putBool(erased);
            };
            co_return r;
        });
    server.registerProc(
        kProg, kVers, kCount,
        [&store](rpc::XdrDecoder &)
            -> sim::Task<rpc::VrpcServer::ServiceResult> {
            std::uint32_t n = std::uint32_t(store.size());
            rpc::VrpcServer::ServiceResult r;
            r.results = [n](rpc::XdrEncoder &enc) -> sim::Task<> {
                co_await enc.putU32(n);
            };
            co_return r;
        });
}

sim::Task<>
client(vmmc::Endpoint &ep, int id, int *ops_done)
{
    rpc::VrpcClient c(ep);
    bool up = co_await c.connect(1, kPort, kProg, kVers);
    SHRIMP_ASSERT(up, "bind failed");

    int ops = 0;
    for (int i = 0; i < 8; ++i) {
        std::string key = "client" + std::to_string(id) + "/key" +
                          std::to_string(i);
        std::string value = "value-" + std::to_string(i * 37 + id);
        auto st = co_await c.call(
            kPut,
            [&](rpc::XdrEncoder &e) -> sim::Task<> {
                co_await e.putString(key);
                co_await e.putString(value);
            },
            [](rpc::XdrDecoder &d) -> sim::Task<> {
                co_await d.getBool();
            });
        SHRIMP_ASSERT(st == rpc::AcceptStat::Success, "put");
        ++ops;

        bool found = false;
        std::string got;
        st = co_await c.call(
            kGet,
            [&](rpc::XdrEncoder &e) -> sim::Task<> {
                co_await e.putString(key);
            },
            [&](rpc::XdrDecoder &d) -> sim::Task<> {
                found = co_await d.getBool();
                if (found)
                    got = co_await d.getString(65536);
            });
        SHRIMP_ASSERT(st == rpc::AcceptStat::Success && found &&
                          got == value,
                      "get roundtrip");
        ++ops;
    }
    // Delete every other key.
    for (int i = 0; i < 8; i += 2) {
        std::string key = "client" + std::to_string(id) + "/key" +
                          std::to_string(i);
        co_await c.call(
            kDel,
            [&](rpc::XdrEncoder &e) -> sim::Task<> {
                co_await e.putString(key);
            },
            [](rpc::XdrDecoder &d) -> sim::Task<> {
                co_await d.getBool();
            });
        ++ops;
    }
    co_await c.close();
    *ops_done += ops;
}

} // namespace

int
main(int argc, char **argv)
{
    shrimp::trace::parseCliFlags(argc, argv);
    vmmc::System sys;
    vmmc::Endpoint &server_ep = sys.createEndpoint(1);
    vmmc::Endpoint &client_a = sys.createEndpoint(0);
    vmmc::Endpoint &client_b = sys.createEndpoint(2);

    Store store;
    rpc::VrpcServer server(server_ep, kPort);
    registerProcs(server, store);
    server.start();

    int ops = 0;
    sys.sim().spawn(client(client_a, 1, &ops));
    sys.sim().spawn(client(client_b, 2, &ops));
    sys.sim().runAll();

    std::printf("kv store: %d client operations, %zu keys remain, "
                "%lu calls served\n",
                ops, store.size(),
                (unsigned long)server.callsServed());
    std::printf("simulated time: %.3f ms\n",
                double(sys.sim().now()) / 1e6);
    return 0;
}
