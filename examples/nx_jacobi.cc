/**
 * @file
 * NX example: a 1-D Jacobi iteration on the 4-node prototype — the
 * classic multicomputer workload the NX interface was built for.
 *
 * Each rank owns a slice of a 1-D rod and relaxes u[i] = (u[i-1] +
 * u[i+1]) / 2 toward a linear steady state, exchanging one-element
 * halos with csend/crecv each sweep and checking global convergence
 * with gdsum every few sweeps.
 *
 * Build & run:  ./examples/nx_jacobi
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "nx/nx.hh"

using namespace shrimp;

namespace
{

constexpr int kRanks = 4;
constexpr int kLocal = 16;        // points per rank
constexpr double kLeft = 0.0;     // boundary conditions
constexpr double kRight = 100.0;
constexpr long kTagLeft = 1, kTagRight = 2;

sim::Task<>
worker(nx::NxSystem &nxs, int rank, double *final_residual, int *sweeps)
{
    nx::NxProc &p = nxs.proc(rank);
    node::Process &proc = p.endpoint().proc();

    // Local slice with two ghost cells.
    std::vector<double> u(kLocal + 2, 0.0), next(kLocal + 2, 0.0);
    if (rank == 0)
        u[0] = kLeft;
    if (rank == kRanks - 1)
        u[kLocal + 1] = kRight;

    VAddr halo = proc.alloc(4096); // staging for halo values

    double residual = 1e30;
    int sweep = 0;
    while (residual > 1e-2 && sweep < 10000) {
        ++sweep;
        // Exchange halos: send my edge values, receive my ghosts.
        if (rank > 0) {
            proc.poke(halo, &u[1], sizeof(double));
            co_await p.csend(kTagLeft, halo, sizeof(double), rank - 1);
        }
        if (rank < kRanks - 1) {
            proc.poke(halo + 64, &u[kLocal], sizeof(double));
            co_await p.csend(kTagRight, halo + 64, sizeof(double),
                             rank + 1);
        }
        if (rank < kRanks - 1) {
            co_await p.crecv(kTagLeft, halo + 128, sizeof(double));
            proc.peek(halo + 128, &u[kLocal + 1], sizeof(double));
        }
        if (rank > 0) {
            co_await p.crecv(kTagRight, halo + 192, sizeof(double));
            proc.peek(halo + 192, &u[0], sizeof(double));
        }

        // Relax and accumulate the local residual.
        double local = 0.0;
        for (int i = 1; i <= kLocal; ++i) {
            next[i] = 0.5 * (u[i - 1] + u[i + 1]);
            local += std::fabs(next[i] - u[i]);
        }
        std::swap(u, next);
        if (rank == 0)
            u[0] = kLeft;
        if (rank == kRanks - 1)
            u[kLocal + 1] = kRight;
        // Nominal compute cost for the sweep.
        co_await proc.compute(kLocal * 200);

        // Global convergence test every 50 sweeps.
        if (sweep % 50 == 0)
            residual = co_await p.gdsum(local);
    }

    co_await p.gsync();
    if (rank == 0) {
        *final_residual = residual;
        *sweeps = sweep;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    shrimp::trace::parseCliFlags(argc, argv);
    vmmc::System sys;
    nx::NxSystem nxs(sys, kRanks);
    sys.sim().spawn(nxs.init());
    sys.sim().runAll();

    double residual = 0.0;
    int sweeps = 0;
    for (int r = 0; r < kRanks; ++r)
        sys.sim().spawn(worker(nxs, r, &residual, &sweeps));
    sys.sim().runAll();

    std::printf("Jacobi %s: residual %.5f after %d sweeps\n",
                sweeps < 10000 ? "converged" : "stopped",
                residual, sweeps);
    std::printf("simulated time: %.3f ms on %d ranks\n",
                double(sys.sim().now()) / 1e6, kRanks);
    return 0;
}
