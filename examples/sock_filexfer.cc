/**
 * @file
 * Sockets example: a ttcp-style file transfer service. The server
 * accepts connections on a well-known port; each client streams a
 * "file" (header with name/length, then the bytes), and the server
 * acknowledges with a checksum. Fully byte-stream semantics: the
 * sender's write sizes and the receiver's read sizes are unrelated.
 *
 * Build & run:  ./examples/sock_filexfer
 */

#include <cstdio>
#include <cstring>
#include <random>
#include <vector>

#include "sock/socket.hh"

using namespace shrimp;

namespace
{

constexpr std::uint16_t kPort = 9100;

struct FileHeader
{
    char name[24];
    std::uint32_t length;
};

std::uint64_t
checksum(const std::vector<std::uint8_t> &data)
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::uint8_t b : data) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

sim::Task<>
server(vmmc::Endpoint &ep, int nclients, int *files_received)
{
    sock::SocketLib lib(ep);
    int ls = co_await lib.socket();
    co_await lib.listen(ls, kPort);

    for (int c = 0; c < nclients; ++c) {
        int fd = co_await lib.accept(ls);
        // Header first.
        VAddr hbuf = ep.proc().alloc(4096);
        long n = co_await lib.recvAll(fd, hbuf, sizeof(FileHeader));
        SHRIMP_ASSERT(n == long(sizeof(FileHeader)), "short header");
        FileHeader hdr{};
        ep.proc().peek(hbuf, &hdr, sizeof(hdr));

        // Then the body, in whatever chunks the stream delivers.
        std::vector<std::uint8_t> body;
        VAddr dbuf = ep.proc().alloc(16384);
        while (body.size() < hdr.length) {
            long got = co_await lib.recv(fd, dbuf,
                                         std::min<std::size_t>(
                                             16384,
                                             hdr.length - body.size()));
            SHRIMP_ASSERT(got > 0, "connection broke mid-file");
            std::vector<std::uint8_t> chunk(got);
            ep.proc().peek(dbuf, chunk.data(), chunk.size());
            body.insert(body.end(), chunk.begin(), chunk.end());
        }
        std::printf("server: received \"%s\" (%u bytes)\n", hdr.name,
                    hdr.length);

        // Acknowledge with the checksum.
        std::uint64_t sum = checksum(body);
        ep.proc().poke(hbuf, &sum, sizeof(sum));
        co_await lib.send(fd, hbuf, sizeof(sum));
        co_await lib.close(fd);
        ++*files_received;
    }
}

sim::Task<>
sendFile(vmmc::Endpoint &ep, const char *name, std::size_t length,
         std::uint32_t seed)
{
    std::mt19937 rng(seed);
    std::vector<std::uint8_t> body(length);
    for (auto &b : body)
        b = std::uint8_t(rng());

    sock::SocketLib lib(ep);
    int fd = co_await lib.socket();
    int rc = co_await lib.connect(fd, 1, kPort);
    SHRIMP_ASSERT(rc == 0, "connect failed");

    FileHeader hdr{};
    std::snprintf(hdr.name, sizeof(hdr.name), "%s", name);
    hdr.length = std::uint32_t(length);
    VAddr buf = ep.proc().alloc(length + 4096);
    ep.proc().poke(buf, &hdr, sizeof(hdr));
    ep.proc().poke(buf + sizeof(hdr), body.data(), body.size());

    Tick t0 = ep.proc().sim().now();
    co_await lib.send(fd, buf, sizeof(hdr) + length);

    // Wait for the checksum acknowledgement.
    VAddr abuf = ep.proc().alloc(4096);
    long n = co_await lib.recvAll(fd, abuf, sizeof(std::uint64_t));
    SHRIMP_ASSERT(n == long(sizeof(std::uint64_t)), "short ack");
    std::uint64_t sum = 0;
    ep.proc().peek(abuf, &sum, sizeof(sum));
    SHRIMP_ASSERT(sum == checksum(body), "checksum mismatch!");

    double secs = double(ep.proc().sim().now() - t0) / 1e9;
    std::printf("client: \"%s\" verified, %.2f MB/s effective\n", name,
                double(length) / 1e6 / secs);
    co_await lib.close(fd);
}

} // namespace

int
main(int argc, char **argv)
{
    shrimp::trace::parseCliFlags(argc, argv);
    vmmc::System sys;
    vmmc::Endpoint &server_ep = sys.createEndpoint(1);
    vmmc::Endpoint &client_a = sys.createEndpoint(0);
    vmmc::Endpoint &client_b = sys.createEndpoint(3);

    int received = 0;
    sys.sim().spawn(server(server_ep, 2, &received));
    sys.sim().spawn(sendFile(client_a, "results.dat", 150 * 1000, 7));
    sys.sim().spawn(sendFile(client_b, "trace.log", 40 * 1000, 9));
    sys.sim().runAll();

    std::printf("%d files transferred; simulated time %.3f ms\n",
                received, double(sys.sim().now()) / 1e6);
    return 0;
}
