/**
 * @file
 * Quickstart: the raw VMMC API on the 4-node SHRIMP prototype.
 *
 * Demonstrates the import-export model of paper section 2: a receiver
 * exports a buffer, a sender imports it, and data then moves with
 * either an explicit deliberate-update send or by storing through an
 * automatic-update binding (no explicit send at all). There is no
 * receive operation — the receiver just polls a word of its own memory.
 *
 * Build & run:  ./examples/quickstart
 */

#include <cstdio>

#include "vmmc/vmmc.hh"

using namespace shrimp;

namespace
{

sim::Task<>
demo(vmmc::System &sys, vmmc::Endpoint &sender, vmmc::Endpoint &receiver)
{
    // 1. The receiver exports a page of its address space as a receive
    //    buffer. Protection is page-granular and checked by the daemons.
    VAddr rbuf = receiver.proc().alloc(4096);
    vmmc::Status st = co_await receiver.exportBuffer(
        /*key=*/100, rbuf, 4096, vmmc::Perm::onlyNode(sender.nodeId()));
    SHRIMP_ASSERT(st == vmmc::Status::Ok, "export failed");

    // 2. The sender imports it. The daemons negotiate over the Ethernet
    //    and install the outgoing-page-table mapping.
    vmmc::ImportResult imp = co_await sender.import(receiver.nodeId(), 100);
    SHRIMP_ASSERT(imp.status == vmmc::Status::Ok, "import failed");

    // 3. Deliberate update: an explicit, protected, user-level send.
    VAddr src = sender.proc().alloc(4096);
    const char msg[] = "hello through the backplane!";
    sender.proc().poke(src, msg, sizeof(msg));
    Tick t0 = sys.sim().now();
    st = co_await sender.send(imp.handle, 0, src, sizeof(msg));
    SHRIMP_ASSERT(st == vmmc::Status::Ok, "send failed");

    // 4. Receive = poll a word. In-order delivery guarantees the whole
    //    message is in place once the last word shows up.
    co_await receiver.proc().waitWord32Ne(
        VAddr(rbuf + sizeof(msg) - 4), 0);
    char got[sizeof(msg)] = {};
    receiver.proc().peek(rbuf, got, sizeof(msg));
    std::printf("deliberate update delivered: \"%s\" (%.2f us one-way)\n",
                got, double(sys.sim().now() - t0) / 1000.0);

    // 5. Automatic update: bind local pages to the imported buffer; all
    //    stores propagate in hardware. The store IS the send.
    VAddr au = sender.proc().alloc(4096);
    st = co_await sender.bindAu(au, 4096, imp.handle, 0);
    SHRIMP_ASSERT(st == vmmc::Status::Ok, "bindAu failed");
    t0 = sys.sim().now();
    co_await sender.proc().store32(au + 128, 0xCAFE);
    std::uint32_t v = co_await receiver.proc().waitWord32Ne(rbuf + 128, 0);
    std::printf("automatic update delivered: 0x%X (%.2f us one-way)\n", v,
                double(sys.sim().now() - t0) / 1000.0);

    // 6. Tear down: unimport/unexport wait for pending data to drain.
    st = co_await sender.unimport(imp.handle);
    SHRIMP_ASSERT(st == vmmc::Status::Ok, "unimport failed");
    st = co_await receiver.unexport(100);
    SHRIMP_ASSERT(st == vmmc::Status::Ok, "unexport failed");
    std::printf("mappings torn down cleanly\n");
}

} // namespace

int
main(int argc, char **argv)
{
    shrimp::trace::parseCliFlags(argc, argv);
    vmmc::System sys; // the 4-node (2x2 mesh) prototype
    vmmc::Endpoint &sender = sys.createEndpoint(0);
    vmmc::Endpoint &receiver = sys.createEndpoint(1);
    sys.sim().spawn(demo(sys, sender, receiver));
    sys.sim().runAll();
    std::printf("simulated time: %.3f ms\n", double(sys.sim().now()) / 1e6);
    return 0;
}
