/**
 * @file
 * Specialized SHRIMP RPC example: offloading matrix-vector multiplies
 * to a compute server. The interface definition (the stub generator's
 * input) declares y = A*x with A IN, x IN, and y OUT; the INOUT
 * accumulate variant updates y in place — the server's writes to y
 * propagate back through the bidirectional automatic-update binding
 * while it computes.
 *
 * Build & run:  ./examples/srpc_matrix
 */

#include <cstdio>
#include <vector>

#include "srpc/srpc.hh"

using namespace shrimp;

namespace
{

constexpr int kN = 16; // matrix dimension
constexpr std::size_t kMatBytes = kN * kN * sizeof(double);
constexpr std::size_t kVecBytes = kN * sizeof(double);
constexpr std::uint16_t kPort = 9200;

sim::Task<>
clientTask(vmmc::Endpoint &ep, const srpc::Interface &iface,
           std::uint32_t p_mul, std::uint32_t p_axpy, bool *ok)
{
    srpc::SrpcClient client(ep, iface);
    bool up = co_await client.bind(1, kPort);
    SHRIMP_ASSERT(up, "bind failed");

    // A = tridiagonal, x = ramp.
    std::vector<double> A(kN * kN, 0.0), x(kN), y(kN, 0.0);
    for (int i = 0; i < kN; ++i) {
        A[i * kN + i] = 2.0;
        if (i > 0)
            A[i * kN + i - 1] = -1.0;
        if (i + 1 < kN)
            A[i * kN + i + 1] = -1.0;
        x[i] = double(i);
    }

    // y = A*x on the server.
    std::vector<srpc::Param> ps{srpc::in(A.data(), kMatBytes),
                                srpc::in(x.data(), kVecBytes),
                                srpc::out(y.data(), kVecBytes)};
    co_await client.call(p_mul, ps);

    // Verify against a local computation.
    for (int i = 0; i < kN; ++i) {
        double expect = 0;
        for (int j = 0; j < kN; ++j)
            expect += A[i * kN + j] * x[j];
        SHRIMP_ASSERT(y[i] == expect, "matvec mismatch");
    }
    std::printf("matvec verified: y[1]=%.1f y[%d]=%.1f\n", y[1], kN - 1,
                y[kN - 1]);

    // Accumulate in place: y += A*x three times (INOUT round trips).
    for (int k = 0; k < 3; ++k) {
        std::vector<srpc::Param> ps2{srpc::in(A.data(), kMatBytes),
                                     srpc::in(x.data(), kVecBytes),
                                     srpc::inout(y.data(), kVecBytes)};
        co_await client.call(p_axpy, ps2);
    }
    for (int i = 0; i < kN; ++i) {
        double once = 0;
        for (int j = 0; j < kN; ++j)
            once += A[i * kN + j] * x[j];
        SHRIMP_ASSERT(y[i] == 4.0 * once, "accumulate mismatch");
    }
    std::printf("3 accumulate calls verified (y = 4*A*x)\n");
    *ok = true;
}

} // namespace

int
main(int argc, char **argv)
{
    shrimp::trace::parseCliFlags(argc, argv);
    vmmc::System sys;
    vmmc::Endpoint &server_ep = sys.createEndpoint(1);
    vmmc::Endpoint &client_ep = sys.createEndpoint(0);

    // The interface definition plays the stub generator's role: both
    // sides derive identical marshalling layouts from it.
    srpc::Interface iface;
    std::uint32_t p_mul = iface.defineProc(
        "matvec", {{srpc::Dir::In, kMatBytes},
                   {srpc::Dir::In, kVecBytes},
                   {srpc::Dir::Out, kVecBytes}});
    std::uint32_t p_axpy = iface.defineProc(
        "matvec_acc", {{srpc::Dir::In, kMatBytes},
                       {srpc::Dir::In, kVecBytes},
                       {srpc::Dir::InOut, kVecBytes}});

    srpc::SrpcServer server(server_ep, iface, kPort);
    auto matvec = [](srpc::ServerCall &c,
                     bool accumulate) -> sim::Task<> {
        std::vector<double> A(kN * kN), x(kN), y(kN, 0.0);
        co_await c.getArg(0, A.data());
        co_await c.getArg(1, x.data());
        if (accumulate)
            co_await c.getArg(2, y.data());
        for (int i = 0; i < kN; ++i) {
            double acc = accumulate ? y[i] : 0.0;
            for (int j = 0; j < kN; ++j)
                acc += A[i * kN + j] * x[j];
            y[i] = acc;
        }
        if (accumulate)
            co_await c.putArg(2, y.data());
        else
            co_await c.putOut(2, y.data());
    };
    server.registerProc(p_mul, [matvec](srpc::ServerCall &c) -> sim::Task<> {
        co_await matvec(c, false);
    });
    server.registerProc(p_axpy,
                        [matvec](srpc::ServerCall &c) -> sim::Task<> {
                            co_await matvec(c, true);
                        });
    server.start();

    bool ok = false;
    sys.sim().spawn(clientTask(client_ep, iface, p_mul, p_axpy, &ok));
    sys.sim().runAll();
    SHRIMP_ASSERT(ok, "client failed");
    std::printf("served %lu calls; simulated time %.3f ms\n",
                (unsigned long)server.callsServed(),
                double(sys.sim().now()) / 1e6);
    return 0;
}
