/**
 * @file
 * Notifications example: the control-transfer half of VMMC (paper
 * sections 2.3 and 6).
 *
 * A consumer exports a mailbox with a handler and *blocks* waiting for
 * notifications instead of polling — appropriate when work arrives
 * rarely and burning the CPU on a poll loop would be wasteful. A
 * producer pushes work items with the notify flag. The consumer then
 * switches to polling mode (disabling the per-page interrupt bits, as
 * the libraries do) and drains a burst cheaply.
 *
 * Build & run:  ./examples/vmmc_notify
 */

#include <cstdio>

#include "vmmc/vmmc.hh"

using namespace shrimp;

namespace
{

constexpr std::uint32_t kMailbox = 300;

sim::Task<>
consumer(vmmc::System &sys, vmmc::Endpoint &ep, int *handled)
{
    int handler_runs = 0;
    vmmc::NotifyHandler on_arrival =
        [&handler_runs](vmmc::Endpoint &,
                        const vmmc::Notification &n) -> sim::Task<> {
        ++handler_runs;
        std::printf("  [handler] notification for key %u at offset %zu\n",
                    n.exportKey, n.offset);
        co_return;
    };

    VAddr mbox = ep.proc().alloc(4096);
    vmmc::Status st = co_await ep.exportBuffer(kMailbox, mbox, 4096,
                                               vmmc::Perm{}, on_arrival);
    SHRIMP_ASSERT(st == vmmc::Status::Ok, "export");

    // Phase 1: blocking receive. The process sleeps; each arrival costs
    // a signal delivery but no polling.
    for (int i = 0; i < 3; ++i) {
        vmmc::Notification n = co_await ep.waitNotification();
        std::uint32_t item = ep.proc().peek32(VAddr(mbox + n.offset));
        std::printf("consumer: woke for item %u (t=%.2f ms)\n", item,
                    double(sys.sim().now()) / 1e6);
        ++*handled;
    }

    // Phase 2: a burst is coming; switch to polling (turn the per-page
    // interrupt bits off, exactly how the libraries do it).
    ep.setInterruptsEnabled(kMailbox, false);
    std::printf("consumer: switching to polling for the burst\n");
    for (std::uint32_t i = 1; i <= 5; ++i) {
        std::uint32_t item =
            co_await ep.proc().waitWord32Eq(VAddr(mbox + 512 + 4 * i),
                                            1000 + i);
        (void)item;
        ++*handled;
    }
    std::printf("consumer: burst drained by polling (t=%.2f ms), "
                "%d handler runs total\n",
                double(sys.sim().now()) / 1e6, handler_runs);
}

sim::Task<>
producer(vmmc::Endpoint &ep)
{
    auto r = co_await ep.import(1, kMailbox);
    SHRIMP_ASSERT(r.status == vmmc::Status::Ok, "import");
    VAddr src = ep.proc().alloc(4096);

    // Three rare events, spaced out: notify each time.
    for (std::uint32_t i = 1; i <= 3; ++i) {
        co_await sim::Delay{ep.proc().sim().queue(), 2 * units::ms};
        ep.proc().poke32(src, 100 + i);
        co_await ep.send(r.handle, 4 * i, src, 4, /*notify=*/true);
    }

    // Then a rapid burst: no notifications needed, the consumer polls.
    co_await sim::Delay{ep.proc().sim().queue(), units::ms};
    for (std::uint32_t i = 1; i <= 5; ++i) {
        ep.proc().poke32(src, 1000 + i);
        co_await ep.send(r.handle, 512 + 4 * i, src, 4, /*notify=*/true);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    shrimp::trace::parseCliFlags(argc, argv);
    vmmc::System sys;
    vmmc::Endpoint &prod = sys.createEndpoint(0);
    vmmc::Endpoint &cons = sys.createEndpoint(1);
    int handled = 0;
    sys.sim().spawn(consumer(sys, cons, &handled));
    sys.sim().spawn(producer(prod));
    sys.sim().runAll();
    std::printf("%d items handled; simulated time %.3f ms\n", handled,
                double(sys.sim().now()) / 1e6);
    return 0;
}
