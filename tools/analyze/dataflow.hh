/**
 * @file
 * Interprocedural dataflow for shrimp_analyze: fills
 * Project::summaries with per-function facts propagated to a fixpoint
 * over the receiver-resolved call graph (callgraph.hh).
 *
 * Per function (keyed "Class::name" / bare "name"):
 *
 *   suspends          body (or any resolved callee) reaches co_await
 *   charges           body (or any callee) reaches a charge primitive
 *   acquires          lock identities reachable from the body
 *   returnsTaint      a return statement carries a host-nondeterminism
 *                     source, directly or via a tainted callee
 *   consumesTaskParam Task/Task-container parameters the function
 *                     actually consumes (awaits, drains, forwards to a
 *                     consumer); calls the index cannot resolve are
 *                     treated as consuming, so "not consumed" is a
 *                     positive proof the Task goes nowhere
 *   paramToSink       parameters that flow into event scheduling
 *                     (schedule/scheduleIn/scheduleAt/Delay), directly
 *                     or transitively
 *
 * Lock identities name the owning scope, not the expression: a field
 * resolves to "Class::field" whichever receiver chain reaches it, a
 * function-local to "Fn/name". lockOps() is also used directly by the
 * deadlock rule for intra-body ordering.
 */

#ifndef SHRIMP_TOOLS_ANALYZE_DATAFLOW_HH
#define SHRIMP_TOOLS_ANALYZE_DATAFLOW_HH

#include "model.hh"

namespace shrimp::analyze
{

/** One `<lock>.acquire()` / `<lock>.release()` site in a body. */
struct LockOp
{
    bool isAcquire = false;
    std::string id; //!< resolved identity ("Bus::lock_", "fn/sem")
    int line = 0;
    std::size_t tokIdx = 0; //!< token index of the acquire/release ident
};

/** All lock operations in @p fn, in body order. */
std::vector<LockOp> lockOps(const Project &p, const SourceFile &f,
                            const FnDef &fn);

/** Compute Project::summaries (seeds + fixpoint). Requires parsed
 *  files, extractTypes() and buildTypeIndex() to have run. */
void buildSummaries(Project &p);

/** Is @p name a host-nondeterminism source (wall clock, PRNG)? */
bool isNondetSource(const std::string &name);

/** Is @p name an event-scheduling sink (schedule/scheduleIn/
 *  scheduleAt/Delay)? */
bool isScheduleSink(const std::string &name);

} // namespace shrimp::analyze

#endif // SHRIMP_TOOLS_ANALYZE_DATAFLOW_HH
