/**
 * @file
 * determinism-taint: host nondeterminism flowing into event
 * scheduling. The determinism rule bans wall-clock/PRNG *sources*
 * outright in src/sim and src/check; everywhere else (node models,
 * tools, benches) reading a host clock is legitimate — profilers and
 * reports do it — until the value reaches a simulation sink:
 *
 *   sinks    schedule()/scheduleIn()/scheduleAt()/Delay{...} — anything
 *            that turns a number into an event (when, seq) ordering —
 *            plus parameters the interprocedural summaries prove flow
 *            into such a call (paramToSink).
 *   sources  steady_clock/rand/random_device/... (dataflow.hh's list —
 *            the same set the determinism rule bans), and calls to
 *            functions whose summaries say the return value is tainted
 *            (returnsTaint, propagated through return statements).
 *
 * Propagation is per-function and statement-shaped, like the other
 * rules: a local assigned from a tainted expression is tainted (two
 * sweeps so declaration order does not matter); a tainted identifier
 * inside a sink call's argument list is a finding. Scope is every
 * scanned file — in sim/check the plain determinism rule fires first
 * on the source itself, and an `analyze: allow(determinism)` there
 * does NOT silence the taint rule: allowed host reads must still stay
 * away from the event queue.
 */

#include <cstddef>

#include "callgraph.hh"
#include "dataflow.hh"
#include "parse.hh"
#include "rules.hh"

namespace shrimp::analyze
{

namespace
{

/** Does the token range [lo, hi) mention a nondeterminism source, a
 *  tainted name, or a call returning taint? Returns the offending
 *  name, or "" when clean. */
std::string
taintIn(const SourceFile &f, std::size_t lo, std::size_t hi,
        const std::set<std::string> &tainted)
{
    const Tokens &toks = f.toks;
    for (std::size_t k = lo; k < hi && k < toks.size(); ++k) {
        const Token &t = toks[k];
        if (!t.ident())
            continue;
        if (isNondetSource(t.text)) {
            // `time` only counts as the wall-clock call `time(...)`.
            if (t.text == "time" &&
                (k + 1 >= toks.size() || !toks[k + 1].is("(")))
                continue;
            return t.text;
        }
        if (tainted.count(t.text) != 0 && k > 0 &&
            !toks[k - 1].is(".") && !toks[k - 1].is("->") &&
            !toks[k - 1].is("::"))
            return t.text;
    }
    return "";
}

} // namespace

void
ruleTaint(const Project &p, std::vector<Finding> &out)
{
    for (const SourceFile &f : p.files) {
        for (const FnDef &fn : f.fns) {
            const Tokens &toks = f.toks;
            const std::vector<CallSite> calls = callSites(p, f, fn);

            // Pass 1: tainted locals. `lhs = <expr with taint>` or a
            // declaration with such an initializer taints lhs; calls
            // whose summaries return taint count as sources. Two
            // sweeps make it order-independent.
            std::set<std::string> tainted;
            for (int sweep = 0; sweep < 2; ++sweep) {
                std::size_t stmt = fn.bodyBegin + 1;
                int paren = 0;
                for (std::size_t k = fn.bodyBegin + 1; k < fn.bodyEnd;
                     ++k) {
                    const Token &t = toks[k];
                    if (t.is("(") || t.is("["))
                        ++paren;
                    else if (t.is(")") || t.is("]"))
                        --paren;
                    else if ((t.is(";") && paren == 0) || t.is("{") ||
                             t.is("}")) {
                        // Statement [stmt, k): find a top-level `=`.
                        int d = 0;
                        std::size_t eq = 0;
                        for (std::size_t q = stmt; q < k; ++q) {
                            if (toks[q].is("(") || toks[q].is("[") ||
                                toks[q].is("<"))
                                ++d;
                            else if (toks[q].is(")") ||
                                     toks[q].is("]") || toks[q].is(">"))
                                --d;
                            else if (toks[q].is("=") && d <= 0) {
                                eq = q;
                                break;
                            }
                        }
                        if (eq > stmt && toks[eq - 1].ident() &&
                            (eq < 2 || (!toks[eq - 2].is(".") &&
                                        !toks[eq - 2].is("->")))) {
                            bool dirty =
                                !taintIn(f, eq + 1, k, tainted)
                                     .empty();
                            for (const CallSite &cs : calls) {
                                if (dirty)
                                    break;
                                if (cs.nameIdx <= eq || cs.nameIdx >= k ||
                                    cs.key.empty())
                                    continue;
                                auto it = p.summaries.find(cs.key);
                                if (it != p.summaries.end() &&
                                    it->second.returnsTaint)
                                    dirty = true;
                            }
                            if (dirty)
                                tainted.insert(toks[eq - 1].text);
                        }
                        stmt = k + 1;
                        paren = 0;
                    }
                }
            }

            // Pass 2: tainted values reaching sinks.
            auto report = [&](int line, const std::string &sink,
                              const std::string &what) {
                if (f.allows(line, "determinism-taint"))
                    return;
                out.push_back(
                    {"determinism-taint", f.rel, line,
                     fn.qualName + "/" + sink + "/" + what,
                     "host-nondeterministic value '" + what +
                         "' flows into '" + sink + "' in " +
                         fn.qualName +
                         ": event (when, seq) ordering now depends on "
                         "the host, so runs are not reproducible"});
            };

            for (const CallSite &cs : calls) {
                const bool namedSink = isScheduleSink(cs.callee);
                const FnSummary *s = nullptr;
                if (!cs.key.empty()) {
                    auto it = p.summaries.find(cs.key);
                    if (it != p.summaries.end())
                        s = &it->second;
                }
                if (!namedSink && !s)
                    continue;
                const auto args =
                    splitArgs(toks, cs.argsBegin, cs.argsEnd);
                for (std::size_t a = 0; a < args.size(); ++a) {
                    const bool sinkArg =
                        namedSink ||
                        (s && s->paramToSink.count(int(a)) != 0);
                    if (!sinkArg)
                        continue;
                    const std::string what = taintIn(
                        f, args[a].first, args[a].second, tainted);
                    if (!what.empty()) {
                        report(cs.line, cs.callee, what);
                        break;
                    }
                }
            }

            // Brace-constructed sinks: `Delay{expr}` has no call parens
            // and is invisible to callSites().
            for (std::size_t k = fn.bodyBegin + 1; k + 1 < fn.bodyEnd;
                 ++k) {
                if (!toks[k].ident() || !isScheduleSink(toks[k].text) ||
                    !toks[k + 1].is("{"))
                    continue;
                const std::size_t close = skipBalanced(toks, k + 1);
                const std::string what =
                    taintIn(f, k + 2, close - 1, tainted);
                if (!what.empty())
                    report(toks[k].line, toks[k].text, what);
            }
        }
    }
}

} // namespace shrimp::analyze
