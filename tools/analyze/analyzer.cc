#include "analyzer.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lexer.hh"
#include "parse.hh"
#include "rules.hh"

namespace shrimp::analyze
{

namespace fs = std::filesystem;

Project
loadProject(const std::string &includeRoot)
{
    Project p;
    std::vector<std::string> rels;
    for (const auto &ent : fs::recursive_directory_iterator(includeRoot)) {
        if (!ent.is_regular_file())
            continue;
        const std::string ext = ent.path().extension().string();
        if (ext != ".hh" && ext != ".cc" && ext != ".hpp" && ext != ".cpp")
            continue;
        rels.push_back(
            fs::relative(ent.path(), includeRoot).generic_string());
    }
    std::sort(rels.begin(), rels.end()); // host directory order varies

    for (const std::string &rel : rels) {
        std::ifstream in(fs::path(includeRoot) / rel);
        std::stringstream ss;
        ss << in.rdbuf();

        SourceFile f;
        f.rel = rel;
        const std::size_t slash = rel.find('/');
        f.dir = slash == std::string::npos ? "" : rel.substr(0, slash);
        f.isHeader = rel.size() > 3 &&
                     (rel.compare(rel.size() - 3, 3, ".hh") == 0 ||
                      rel.compare(rel.size() - 4, 4, ".hpp") == 0);
        lexFile(ss.str(), f);
        parseFile(f);
        p.files.push_back(std::move(f));
    }
    buildTaskIndex(p);
    return p;
}

std::vector<Finding>
runRules(const Project &p)
{
    std::vector<Finding> out;
    ruleDroppedTask(p, out);
    ruleSuspendUnderExclusion(p, out);
    ruleDeterminism(p, out);
    ruleLayering(p, out);
    ruleChargedTime(p, out);
    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.fingerprint < b.fingerprint;
              });
    return out;
}

std::vector<Finding>
analyzeTree(const std::string &includeRoot)
{
    const Project p = loadProject(includeRoot);
    return runRules(p);
}

std::string
formatFinding(const Finding &f)
{
    return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message;
}

} // namespace shrimp::analyze
