#include "analyzer.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "cache.hh"
#include "dataflow.hh"
#include "lexer.hh"
#include "parse.hh"
#include "rules.hh"
#include "types.hh"

namespace shrimp::analyze
{

namespace fs = std::filesystem;

namespace
{

bool
isSourceExt(const std::string &ext)
{
    return ext == ".hh" || ext == ".cc" || ext == ".hpp" ||
           ext == ".cpp";
}

/** Canonicalize include directives against the loaded file set so the
 *  cycle check and layer rule see one name per file: exact match
 *  first, then relative to the includer's directory, then prefixed
 *  with each secondary root label. Unresolvable includes (system
 *  headers, generated files) are left as written. */
void
canonicalizeIncludes(Project &p, const std::vector<std::string> &labels)
{
    std::set<std::string> known;
    for (const SourceFile &f : p.files)
        known.insert(f.rel);

    for (SourceFile &f : p.files) {
        const std::size_t slash = f.rel.rfind('/');
        const std::string sibling =
            slash == std::string::npos ? "" : f.rel.substr(0, slash + 1);
        for (auto &[line, inc] : f.includes) {
            if (known.count(inc) != 0)
                continue;
            if (!sibling.empty() && known.count(sibling + inc) != 0) {
                inc = sibling + inc;
                continue;
            }
            for (const std::string &label : labels) {
                if (known.count(label + "/" + inc) != 0) {
                    inc = label + "/" + inc;
                    break;
                }
            }
        }
    }
}

} // namespace

Project
loadProject(const std::vector<std::string> &roots,
            const std::string &cacheDir)
{
    Project p;
    if (!cacheDir.empty())
        fs::create_directories(cacheDir);

    std::vector<std::string> labels; // secondary-root path prefixes
    for (std::size_t r = 0; r < roots.size(); ++r) {
        const std::string &root = roots[r];
        const std::string label =
            r == 0 ? ""
                   : fs::path(root).filename().generic_string();
        if (r != 0)
            labels.push_back(label);

        std::vector<std::string> rels;
        for (const auto &ent : fs::recursive_directory_iterator(root)) {
            if (!ent.is_regular_file())
                continue;
            if (!isSourceExt(ent.path().extension().string()))
                continue;
            rels.push_back(
                fs::relative(ent.path(), root).generic_string());
        }
        std::sort(rels.begin(), rels.end()); // host dir order varies

        for (const std::string &rel : rels) {
            std::ifstream in(fs::path(root) / rel);
            std::stringstream ss;
            ss << in.rdbuf();
            const std::string text = ss.str();

            SourceFile f;
            f.rel = label.empty() ? rel : label + "/" + rel;
            const std::size_t slash = f.rel.find('/');
            f.dir = slash == std::string::npos ? ""
                                               : f.rel.substr(0, slash);
            f.isHeader = rel.size() > 3 &&
                         (rel.compare(rel.size() - 3, 3, ".hh") == 0 ||
                          rel.compare(rel.size() - 4, 4, ".hpp") == 0);

            const std::string hash = contentHash(text);
            std::string cachePath;
            if (!cacheDir.empty())
                cachePath = (fs::path(cacheDir) /
                             cacheEntryName(f.rel))
                                .generic_string();

            if (cachePath.empty() ||
                !loadCachedFile(cachePath, hash, f)) {
                lexFile(text, f);
                parseFile(f);
                extractTypes(f);
                if (!cachePath.empty())
                    storeCachedFile(cachePath, hash, f);
            }
            p.files.push_back(std::move(f));
        }
    }

    canonicalizeIncludes(p, labels);
    buildTaskIndex(p);
    buildTypeIndex(p);
    buildSummaries(p);
    return p;
}

Project
loadProject(const std::string &includeRoot)
{
    return loadProject(std::vector<std::string>{includeRoot}, "");
}

std::vector<Finding>
runRules(const Project &p)
{
    std::vector<Finding> out;
    ruleDroppedTask(p, out);
    ruleSuspendUnderExclusion(p, out);
    ruleDeterminism(p, out);
    ruleLayering(p, out);
    ruleChargedTime(p, out);
    ruleDeadlock(p, out);
    ruleTaint(p, out);
    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.fingerprint < b.fingerprint;
              });
    return out;
}

std::vector<Finding>
analyzeTree(const std::string &includeRoot)
{
    const Project p = loadProject(includeRoot);
    return runRules(p);
}

std::vector<Finding>
analyzeTrees(const std::vector<std::string> &roots,
             const std::string &cacheDir)
{
    const Project p = loadProject(roots, cacheDir);
    return runRules(p);
}

std::string
formatFinding(const Finding &f)
{
    return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message;
}

} // namespace shrimp::analyze
