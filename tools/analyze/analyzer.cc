#include "analyzer.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "cache.hh"
#include "dataflow.hh"
#include "lexer.hh"
#include "lookahead.hh"
#include "ownership.hh"
#include "parse.hh"
#include "rules.hh"
#include "types.hh"

namespace shrimp::analyze
{

namespace fs = std::filesystem;

namespace
{

bool
isSourceExt(const std::string &ext)
{
    return ext == ".hh" || ext == ".cc" || ext == ".hpp" ||
           ext == ".cpp";
}

/** Directories the scan never descends into: build trees (any
 *  `build*` — a stray `cmake -B build-foo` inside a scan root must
 *  not pollute the symbol index) and dot-directories (.git, .cache). */
bool
skipDirName(const std::string &name)
{
    return name.rfind("build", 0) == 0 ||
           (!name.empty() && name[0] == '.');
}

/** One file scheduled for loading. Collected up front in sorted order
 *  so the parallel workers fill pre-assigned slots and the merged
 *  Project is byte-identical for any --jobs value. */
struct WorkItem
{
    fs::path abs;
    std::string rel;   //!< label-prefixed path ("tools/report/main.cc")
    std::string plain; //!< root-relative path (cache key source)
};

/** Lex/parse/extract one file, via the facts cache when possible. */
void
loadOne(const WorkItem &w, const std::string &cacheDir, SourceFile &f)
{
    std::ifstream in(w.abs);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    f.rel = w.rel;
    const std::size_t slash = f.rel.find('/');
    f.dir = slash == std::string::npos ? "" : f.rel.substr(0, slash);
    f.isHeader =
        w.plain.size() > 3 &&
        (w.plain.compare(w.plain.size() - 3, 3, ".hh") == 0 ||
         w.plain.compare(w.plain.size() - 4, 4, ".hpp") == 0);

    const std::string hash = contentHash(text);
    std::string cachePath;
    if (!cacheDir.empty())
        cachePath =
            (fs::path(cacheDir) / cacheEntryName(f.rel)).generic_string();

    if (cachePath.empty() || !loadCachedFile(cachePath, hash, f)) {
        lexFile(text, f);
        parseFile(f);
        extractTypes(f);
        if (!cachePath.empty())
            storeCachedFile(cachePath, hash, f);
    }
}

/** Canonicalize include directives against the loaded file set so the
 *  cycle check and layer rule see one name per file: exact match
 *  first, then relative to the includer's directory, then prefixed
 *  with each secondary root label. Unresolvable includes (system
 *  headers, generated files) are left as written. */
void
canonicalizeIncludes(Project &p, const std::vector<std::string> &labels)
{
    std::set<std::string> known;
    for (const SourceFile &f : p.files)
        known.insert(f.rel);

    for (SourceFile &f : p.files) {
        const std::size_t slash = f.rel.rfind('/');
        const std::string sibling =
            slash == std::string::npos ? "" : f.rel.substr(0, slash + 1);
        for (auto &[line, inc] : f.includes) {
            if (known.count(inc) != 0)
                continue;
            if (!sibling.empty() && known.count(sibling + inc) != 0) {
                inc = sibling + inc;
                continue;
            }
            for (const std::string &label : labels) {
                if (known.count(label + "/" + inc) != 0) {
                    inc = label + "/" + inc;
                    break;
                }
            }
        }
    }
}

} // namespace

Project
loadProject(const std::vector<std::string> &roots,
            const std::string &cacheDir, int jobs)
{
    Project p;
    if (!cacheDir.empty())
        fs::create_directories(cacheDir);

    std::vector<std::string> labels; // secondary-root path prefixes
    std::vector<WorkItem> items;
    for (std::size_t r = 0; r < roots.size(); ++r) {
        const std::string &root = roots[r];
        const std::string label =
            r == 0 ? "" : fs::path(root).filename().generic_string();
        if (r != 0)
            labels.push_back(label);

        std::vector<std::string> rels;
        for (auto it = fs::recursive_directory_iterator(root);
             it != fs::recursive_directory_iterator(); ++it) {
            const auto &ent = *it;
            if (ent.is_directory()) {
                if (skipDirName(
                        ent.path().filename().generic_string()))
                    it.disable_recursion_pending();
                continue;
            }
            if (!ent.is_regular_file())
                continue;
            if (!isSourceExt(ent.path().extension().string()))
                continue;
            rels.push_back(
                fs::relative(ent.path(), root).generic_string());
        }
        std::sort(rels.begin(), rels.end()); // host dir order varies

        for (const std::string &rel : rels)
            items.push_back({fs::path(root) / rel,
                             label.empty() ? rel : label + "/" + rel,
                             rel});
    }

    p.files.resize(items.size());
    std::size_t n = jobs <= 0
                        ? std::max(1u,
                                   std::thread::hardware_concurrency())
                        : std::size_t(jobs);
    n = std::min(n, items.size() == 0 ? std::size_t(1) : items.size());

    if (n <= 1) {
        for (std::size_t i = 0; i < items.size(); ++i)
            loadOne(items[i], cacheDir, p.files[i]);
    } else {
        // Workers pull indices from a shared counter and write into
        // their item's pre-assigned slot; cache entries are per-file
        // paths, so writes never collide. The merged order is the
        // collection order above regardless of scheduling.
        std::atomic<std::size_t> next{0};
        std::exception_ptr firstError;
        std::mutex errLock;
        auto worker = [&]() {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= items.size())
                    return;
                try {
                    loadOne(items[i], cacheDir, p.files[i]);
                } catch (...) {
                    const std::lock_guard<std::mutex> g(errLock);
                    if (!firstError)
                        firstError = std::current_exception();
                }
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (std::size_t t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
        if (firstError)
            std::rethrow_exception(firstError);
    }

    canonicalizeIncludes(p, labels);
    buildTaskIndex(p);
    buildTypeIndex(p);
    buildSummaries(p);
    buildOwnership(p);
    buildLookahead(p);
    return p;
}

Project
loadProject(const std::string &includeRoot)
{
    return loadProject(std::vector<std::string>{includeRoot}, "", 1);
}

std::vector<Finding>
runRules(const Project &p)
{
    std::vector<Finding> out;
    ruleDroppedTask(p, out);
    ruleSuspendUnderExclusion(p, out);
    ruleDeterminism(p, out);
    ruleLayering(p, out);
    ruleChargedTime(p, out);
    ruleDeadlock(p, out);
    ruleTaint(p, out);
    ruleSharedMutableStatic(p, out);
    ruleCrossNodeEscape(p, out);
    ruleEventCaptureEscape(p, out);
    ruleZeroLookaheadPath(p, out);
    ruleZeroDelayCycle(p, out);
    ruleCrossNodeWakeUncharged(p, out);
    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.fingerprint < b.fingerprint;
              });
    return out;
}

std::vector<Finding>
analyzeTree(const std::string &includeRoot)
{
    const Project p = loadProject(includeRoot);
    return runRules(p);
}

std::vector<Finding>
analyzeTrees(const std::vector<std::string> &roots,
             const std::string &cacheDir, int jobs)
{
    const Project p = loadProject(roots, cacheDir, jobs);
    return runRules(p);
}

std::string
formatFinding(const Finding &f)
{
    return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message;
}

} // namespace shrimp::analyze
