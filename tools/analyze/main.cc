/**
 * @file
 * shrimp_analyze CLI.
 *
 *   shrimp_analyze [options] [scan-root...]
 *
 *     scan-root...         directories to scan (default: src). The
 *                          first root is the include-resolution root
 *                          (like -I) and its files keep root-relative
 *                          paths; later roots (tools, bench) are
 *                          prefixed with their basename and exempt
 *                          from the layer order.
 *     --baseline=FILE      accepted-findings file
 *                          (default: tools/analyze/baseline.txt next
 *                          to the first root's parent, if present)
 *     --update-baseline    rewrite the baseline to the current
 *                          findings and exit 0
 *     --report=FILE        also write the findings report to FILE
 *                          (uploaded as a CI artifact)
 *     --sarif=FILE         write all findings (baselined included —
 *                          scanning backends do their own tracking via
 *                          partialFingerprints) as SARIF 2.1.0
 *     --cache=DIR          per-file facts cache keyed by content hash;
 *                          created if missing. Cold and warm runs
 *                          produce identical findings.
 *     --jobs=N             parallel per-file lexing/parsing workers
 *                          (0 = hardware concurrency, the default).
 *                          Findings and reports are byte-identical
 *                          for every N.
 *     --ownership-report=FILE
 *                          write the shard-ownership JSON (per-class
 *                          lattice verdicts + escape edges) — the
 *                          partition plan for ROADMAP item 2.
 *     --lookahead-report=FILE
 *                          write the lookahead JSON (per-edge-class
 *                          proven minimum simulated-time charge) —
 *                          the null-message synchronizer's input.
 *     --lookahead-pin=CLASS:NS
 *                          (repeatable) fail unless edge class CLASS
 *                          is proven positive with a bound of at
 *                          least NS nanoseconds — the CI gate that
 *                          catches a refactor silently shrinking
 *                          lookahead.
 *
 * Exit status: 0 clean (all findings baselined), 1 fresh findings or
 * a failed lookahead pin, 2 usage or I/O error.
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.hh"
#include "baseline.hh"
#include "lookahead.hh"
#include "ownership.hh"
#include "sarif.hh"

namespace
{

using namespace shrimp::analyze;

int
run(int argc, char **argv)
{
    std::vector<std::string> roots;
    std::string baselinePath;
    std::string reportPath;
    std::string sarifPath;
    std::string cacheDir;
    std::string ownershipPath;
    std::string lookaheadPath;
    std::vector<std::string> lookaheadPins;
    int jobs = 0; // 0 = hardware concurrency
    bool updateBaseline = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--baseline=", 0) == 0)
            baselinePath = arg.substr(11);
        else if (arg == "--update-baseline")
            updateBaseline = true;
        else if (arg.rfind("--report=", 0) == 0)
            reportPath = arg.substr(9);
        else if (arg.rfind("--sarif=", 0) == 0)
            sarifPath = arg.substr(8);
        else if (arg.rfind("--cache=", 0) == 0)
            cacheDir = arg.substr(8);
        else if (arg.rfind("--ownership-report=", 0) == 0)
            ownershipPath = arg.substr(19);
        else if (arg.rfind("--lookahead-report=", 0) == 0)
            lookaheadPath = arg.substr(19);
        else if (arg.rfind("--lookahead-pin=", 0) == 0)
            lookaheadPins.push_back(arg.substr(16));
        else if (arg.rfind("--jobs=", 0) == 0) {
            try {
                jobs = std::stoi(arg.substr(7));
            } catch (const std::exception &) {
                std::cerr << "shrimp_analyze: bad --jobs value: " << arg
                          << "\n";
                return 2;
            }
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << "shrimp_analyze: unknown option " << arg << "\n";
            return 2;
        } else
            roots.push_back(arg);
    }
    if (roots.empty())
        roots.push_back("src");

    for (const std::string &root : roots) {
        if (!std::filesystem::is_directory(root)) {
            std::cerr << "shrimp_analyze: no such directory: " << root
                      << "\n";
            return 2;
        }
    }
    if (baselinePath.empty()) {
        const auto guess =
            std::filesystem::path(roots.front()).parent_path() /
            "tools" / "analyze" / "baseline.txt";
        if (std::filesystem::exists(guess))
            baselinePath = guess.string();
    }

    const Project proj = loadProject(roots, cacheDir, jobs);
    const std::vector<Finding> findings = runRules(proj);

    if (!ownershipPath.empty()) {
        std::ofstream out(ownershipPath);
        if (!out) {
            std::cerr << "shrimp_analyze: cannot write "
                      << ownershipPath << "\n";
            return 2;
        }
        out << ownershipJson(proj);
    }

    if (!lookaheadPath.empty()) {
        std::ofstream out(lookaheadPath);
        if (!out) {
            std::cerr << "shrimp_analyze: cannot write "
                      << lookaheadPath << "\n";
            return 2;
        }
        out << lookaheadJson(proj);
    }

    bool pinsOk = true;
    {
        std::string pinErr;
        if (!checkLookaheadPins(proj, lookaheadPins, pinErr)) {
            std::cerr << "shrimp_analyze: " << pinErr << "\n";
            pinsOk = false;
        }
    }

    if (!sarifPath.empty()) {
        std::set<std::string> labeled;
        for (std::size_t r = 1; r < roots.size(); ++r)
            labeled.insert(std::filesystem::path(roots[r])
                               .filename()
                               .generic_string());
        const std::string srcLabel =
            std::filesystem::path(roots.front())
                .filename()
                .generic_string();
        std::ofstream out(sarifPath);
        if (!out) {
            std::cerr << "shrimp_analyze: cannot write " << sarifPath
                      << "\n";
            return 2;
        }
        out << sarifReport(findings, srcLabel, labeled);
    }

    if (updateBaseline) {
        if (baselinePath.empty()) {
            std::cerr << "shrimp_analyze: --update-baseline needs "
                         "--baseline=FILE\n";
            return 2;
        }
        std::ofstream out(baselinePath);
        out << "# shrimp_analyze baseline: accepted findings, pinned.\n"
            << "# One `rule|file|fingerprint` per line. Regenerate with\n"
            << "#   shrimp_analyze --baseline=THIS --update-baseline\n"
            << "# only after deciding each new finding is intentional.\n";
        for (const Finding &f : findings)
            out << baselineEntry(f) << "\n";
        std::cout << "shrimp_analyze: baseline updated ("
                  << findings.size() << " entries)\n";
        return 0;
    }

    bool baselineExisted = false;
    const auto entries = loadBaseline(baselinePath, baselineExisted);
    if (!baselinePath.empty() && !baselineExisted) {
        std::cerr << "shrimp_analyze: baseline " << baselinePath
                  << " not readable\n";
        return 2;
    }
    const BaselineResult r = applyBaseline(findings, entries);

    std::ostringstream report;
    for (const Finding &f : r.fresh)
        report << formatFinding(f) << "\n";
    report << "shrimp_analyze: " << r.fresh.size() << " finding(s), "
           << r.suppressed.size() << " baselined, " << r.stale.size()
           << " stale baseline entr"
           << (r.stale.size() == 1 ? "y" : "ies") << "\n";

    std::cout << report.str();
    for (const std::string &s : r.stale)
        std::cerr << "shrimp_analyze: stale baseline entry (fix no "
                     "longer needed? remove it): "
                  << s << "\n";
    if (!reportPath.empty()) {
        std::ofstream out(reportPath);
        out << report.str();
    }
    return r.fresh.empty() && pinsOk ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << "shrimp_analyze: " << e.what() << "\n";
        return 2;
    }
}
