/**
 * @file
 * Declaration/definition parser for shrimp_analyze.
 *
 * A lightweight recursive scan over the token stream — not a grammar.
 * It recognizes exactly the shapes the rules need:
 *
 *  - function definitions with their body token ranges (namespace and
 *    class scope; bodies are opaque to the scanner and are re-scanned
 *    linearly by the rules),
 *  - member/free function declarations with return-type classification
 *    ("returns Task<...>" or not) and class access level,
 *  - nothing else: expressions, templates and initializers are skipped
 *    with balanced-token matching.
 *
 * After all files are parsed, buildTaskIndex() computes the cross-file
 * set of function names that always return Task (name-based; names
 * that are Task-returning in one declaration and not in another are
 * excluded as ambiguous, trading false negatives for zero
 * overload-confusion false positives).
 */

#ifndef SHRIMP_TOOLS_ANALYZE_PARSE_HH
#define SHRIMP_TOOLS_ANALYZE_PARSE_HH

#include "model.hh"

namespace shrimp::analyze
{

/** Fill @p f.fns and @p f.members from @p f.toks. */
void parseFile(SourceFile &f);

/** Compute @p p.taskFns / @p p.ambiguousTaskFns from all parsed files. */
void buildTaskIndex(Project &p);

/** Index one past the token matching the opener at @p i (`(`, `{` or
 *  `[`). Returns the end of @p toks if unbalanced. */
std::size_t skipBalanced(const Tokens &toks, std::size_t i);

/** Normalized type text for tokens [lo, hi): identifiers separated by
 *  single spaces, punctuation (`::`, `<`, `>`, `,`, `*`, `&`) packed
 *  tight — "std::vector<sim::Task<>>&". */
std::string typeText(const Tokens &toks, std::size_t lo, std::size_t hi);

} // namespace shrimp::analyze

#endif // SHRIMP_TOOLS_ANALYZE_PARSE_HH
