#include "lookahead.hh"

#include <algorithm>
#include <climits>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "callgraph.hh"
#include "dataflow.hh"
#include "ownership.hh"
#include "parse.hh"

namespace shrimp::analyze
{

namespace
{

/** A folded charge bound: @p lo is a sound lower bound (the simulator
 *  never charges negative time), @p exact means lo is the value. */
struct Bnd
{
    long long lo = 0;
    bool exact = false;
};

constexpr long long kInf = LLONG_MAX / 4;

/** One definition the pass walks. */
struct FnRef
{
    const SourceFile *f = nullptr;
    const FnDef *fn = nullptr;
};

/** One call-graph distance edge (charge accumulated in the caller
 *  before control can reach the callee along this edge). */
struct DistEdge
{
    std::string from;
    std::string to;
    long long weight = 0;
    bool schedZero = false; //!< scheduleIn with a provably-zero delay
    std::string file;
    int line = 0;
};

struct Ctx
{
    const Project &p;
    /** bare constant name -> fold of its initializer (namespace-scope
     *  constexpr variables; collisions keep the minimum — sound). */
    std::map<std::string, Bnd> consts;
    std::map<std::string, Bnd> fieldMemo; //!< "Cls::field" -> bound
    std::set<std::string> fieldBusy;      //!< cycle guard
    std::map<std::string, long long> minCharge; //!< fn key -> bound
    std::map<std::string, std::vector<FnRef>> fns;
    int depth = 0;

    explicit Ctx(const Project &proj) : p(proj) {}
};

Bnd foldRange(Ctx &cx, const SourceFile &f, const FnDef *fn,
              std::size_t b, std::size_t e);
Bnd fieldBound(Ctx &cx, const std::string &cls,
               const std::string &field);

/** Parse a numeric literal token: digit separators stripped, integer
 *  suffixes dropped. Floating literals fold inexact-zero. */
Bnd
foldNumber(const std::string &text)
{
    std::string t;
    for (const char c : text)
        if (c != '\'')
            t += c;
    if (t.find('.') != std::string::npos)
        return {0, false};
    // 0x1p4-style hex floats carry 'p'; plain hex carries none.
    if (t.find('p') != std::string::npos ||
        t.find('P') != std::string::npos)
        return {0, false};
    while (!t.empty()) {
        const char c = t.back();
        if (c == 'u' || c == 'U' || c == 'l' || c == 'L' || c == 'z' ||
            c == 'Z')
            t.pop_back();
        else
            break;
    }
    if (t.empty())
        return {0, false};
    try {
        return {std::stoll(t, nullptr, 0), true};
    } catch (const std::exception &) {
        return {0, false};
    }
}

/** Is @p name a field of exactly one indexed class? Fills @p cls. */
bool
uniqueFieldOwner(const Project &p, const std::string &name,
                 std::string &cls)
{
    cls.clear();
    for (const auto &[cname, fields] : p.types.fields) {
        if (fields.count(name) == 0)
            continue;
        if (!cls.empty())
            return false;
        cls = cname;
    }
    return !cls.empty();
}

/**
 * Fold one factor starting at @p i inside [i, e). Advances @p i one
 * past the factor. Identifier chains resolve through the typed index:
 * `cfg.hopLatency` folds the receiver class's field default,
 * `units::us` the namespace constant, a bare field of the enclosing
 * class its fieldBound(); calls and unknown names fold {0, inexact}.
 */
Bnd
foldFactor(Ctx &cx, const SourceFile &f, const FnDef *fn,
           std::size_t &i, std::size_t e)
{
    const Tokens &toks = f.toks;
    if (i >= e)
        return {0, false};
    const Token &t = toks[i];

    if (t.is("(")) {
        const std::size_t close = skipBalanced(toks, i);
        const Bnd inner = foldRange(cx, f, fn, i + 1, close - 1);
        i = close;
        return inner;
    }
    if (t.kind == Tok::Number) {
        ++i;
        return foldNumber(t.text);
    }
    if (!t.ident()) {
        ++i;
        return {0, false};
    }

    // Identifier chain: `A::B`, `x.y->z`, with call hops. Find the
    // final member name and whether the chain ends in a call.
    std::size_t k = i;
    std::size_t lastName = i;
    std::size_t lastSep = 0; //!< token index of the final `.`/`->`
    bool isCall = false;
    while (k < e) {
        if (toks[k].ident()) {
            lastName = k;
            ++k;
            continue;
        }
        if (toks[k].is("::") || toks[k].is(".") || toks[k].is("->")) {
            if (!toks[k].is("::"))
                lastSep = k;
            ++k;
            continue;
        }
        if (toks[k].is("(") || toks[k].is("{")) {
            const std::size_t close = skipBalanced(toks, k);
            if (close < e && (toks[close].is(".") || toks[close].is("->"))) {
                // call hop inside a longer chain (config().x)
                k = close;
                continue;
            }
            isCall = true;
            k = close;
            break;
        }
        break;
    }
    const std::string name = toks[lastName].text;
    i = k;

    if (isCall)
        return {0, false}; // calls fold to zero, conservatively

    if (lastSep != 0 && fn != nullptr) {
        // Member chain: resolve the receiver class of the last hop.
        const std::string cls =
            resolveReceiver(cx.p, f, *fn, lastSep);
        if (!cls.empty() && cx.p.types.fields.count(cls) != 0 &&
            cx.p.types.fields.at(cls).count(name) != 0)
            return fieldBound(cx, cls, name);
    }
    if (lastSep != 0) {
        std::string cls;
        if (uniqueFieldOwner(cx.p, name, cls))
            return fieldBound(cx, cls, name);
        return {0, false};
    }

    // Bare (possibly ::-qualified) name.
    if (fn != nullptr) {
        for (const Local &l : fn->locals)
            if (l.name == name)
                return {0, false};
        for (const Param &pa : fn->params)
            if (pa.name == name)
                return {0, false};
        if (!fn->className.empty() &&
            cx.p.types.fields.count(fn->className) != 0 &&
            cx.p.types.fields.at(fn->className).count(name) != 0)
            return fieldBound(cx, fn->className, name);
    }
    const auto cit = cx.consts.find(name);
    if (cit != cx.consts.end())
        return cit->second;
    std::string cls;
    if (uniqueFieldOwner(cx.p, name, cls))
        return fieldBound(cx, cls, name);
    return {0, false};
}

/** Fold [b, e) as `term + term + ...`, each term `factor * factor`.
 *  A top-level `-`, `/`, `?` or shift poisons the fold to {0,
 *  inexact} — still a sound lower bound for non-negative charges. */
Bnd
foldRange(Ctx &cx, const SourceFile &f, const FnDef *fn, std::size_t b,
          std::size_t e)
{
    if (cx.depth > 24)
        return {0, false};
    ++cx.depth;

    long long sum = 0;
    bool exact = true;
    long long term = -1; // -1: no factor folded yet
    bool termExact = true;

    const auto flushTerm = [&]() {
        if (term < 0)
            term = 0;
        sum += term;
        exact = exact && termExact;
        term = -1;
        termExact = true;
    };

    std::size_t i = b;
    bool poisoned = false;
    while (i < e && i < f.toks.size()) {
        const Token &t = f.toks[i];
        if (t.is("+")) {
            flushTerm();
            ++i;
            continue;
        }
        if (t.is("*") && term >= 0) {
            ++i;
            continue;
        }
        if (t.is("-") || t.is("/") || t.is("%") || t.is("?") ||
            t.is("<<") || t.is("&") || t.is("|") || t.is("^") ||
            t.is(",")) {
            poisoned = true;
            break;
        }
        const Bnd fac = foldFactor(cx, f, fn, i, e);
        if (term < 0) {
            term = fac.lo;
            termExact = fac.exact;
        } else {
            term *= fac.lo;
            termExact = termExact && fac.exact;
        }
    }
    --cx.depth;
    if (poisoned)
        return {0, false};
    flushTerm();
    if (sum < 0)
        sum = 0;
    return {sum, exact};
}

/**
 * Minimum over every initialization/assignment site of
 * @p cls::@p field: in-class initializer, constructor init-list entry,
 * and `recv.field = expr` assignments whose receiver resolves to
 * @p cls. A provably-zero in-class default is excluded while other
 * candidates exist (it is the "not yet charged" sentinel, e.g.
 * `Tick occ = 0;`, not a charge the code ever pays).
 */
Bnd
fieldBound(Ctx &cx, const std::string &cls, const std::string &field)
{
    const std::string key = cls + "::" + field;
    const auto mit = cx.fieldMemo.find(key);
    if (mit != cx.fieldMemo.end())
        return mit->second;
    if (cx.fieldBusy.count(key) != 0)
        return {0, false};
    cx.fieldBusy.insert(key);

    std::vector<Bnd> others;    // ctor-init / assignment candidates
    std::vector<Bnd> inClass;   // in-class initializer candidates

    for (const SourceFile &f : cx.p.files) {
        const Tokens &toks = f.toks;

        // In-class initializer: locate the declaration via the field
        // table (line-matched), fold `= expr ;` or `{ expr }`.
        for (const FieldDecl &fd : f.fields) {
            if (fd.className != cls || fd.name != field)
                continue;
            for (const ClassDef &cd : f.classes) {
                if (cd.name != cls)
                    continue;
                for (std::size_t k = cd.bodyBegin;
                     k + 1 < cd.bodyEnd && k + 1 < toks.size(); ++k) {
                    if (toks[k].line != fd.line || !toks[k].ident() ||
                        toks[k].text != field)
                        continue;
                    if (toks[k + 1].is("=")) {
                        std::size_t end = k + 2;
                        while (end < cd.bodyEnd && !toks[end].is(";"))
                            ++end;
                        inClass.push_back(
                            foldRange(cx, f, nullptr, k + 2, end));
                    } else if (toks[k + 1].is("{")) {
                        const std::size_t close =
                            skipBalanced(toks, k + 1);
                        inClass.push_back(foldRange(cx, f, nullptr,
                                                    k + 2, close - 1));
                    }
                    break;
                }
            }
        }

        for (const FnDef &fn : f.fns) {
            // Constructor init-list: walk back from the body `{` to
            // the `:` that opens the list (reverse paren depth 0).
            if (fn.className == cls && fn.name == cls &&
                fn.bodyBegin > 0) {
                std::size_t start = 0;
                int depth = 0;
                std::size_t q = fn.bodyBegin;
                std::size_t guard = 0;
                while (q-- > 0 && ++guard < 400) {
                    if (toks[q].is(")") || toks[q].is("}"))
                        ++depth;
                    else if (toks[q].is("(") || toks[q].is("{")) {
                        if (depth == 0)
                            break; // hit the parameter list: no list
                        --depth;
                    } else if (depth == 0 && toks[q].is(":")) {
                        start = q + 1;
                        break;
                    }
                }
                for (std::size_t k = start;
                     start != 0 && k + 1 < fn.bodyBegin; ++k) {
                    if (!toks[k].ident() || toks[k].text != field ||
                        (!toks[k + 1].is("(") && !toks[k + 1].is("{")))
                        continue;
                    const std::size_t close =
                        skipBalanced(toks, k + 1);
                    others.push_back(
                        foldRange(cx, f, &fn, k + 2, close - 1));
                    k = close;
                }
            }

            // Assignments `recv.field = expr;` / `field = expr;` in
            // any body, receiver-resolved to cls.
            for (std::size_t k = fn.bodyBegin;
                 k + 2 < fn.bodyEnd && k + 2 < toks.size(); ++k) {
                if (!toks[k].ident() || toks[k].text != field ||
                    !toks[k + 1].is("="))
                    continue;
                bool mine = false;
                if (k > 0 &&
                    (toks[k - 1].is(".") || toks[k - 1].is("->"))) {
                    const std::string rcls =
                        resolveReceiver(cx.p, f, fn, k - 1);
                    mine = rcls == cls;
                } else if (fn.className == cls) {
                    mine = k == 0 || toks[k - 1].is(";") ||
                           toks[k - 1].is("{") || toks[k - 1].is("}");
                }
                if (!mine)
                    continue;
                std::size_t end = k + 2;
                int pd = 0;
                while (end < fn.bodyEnd && end < toks.size()) {
                    if (toks[end].is("(") || toks[end].is("["))
                        ++pd;
                    else if (toks[end].is(")") || toks[end].is("]"))
                        --pd;
                    else if (pd == 0 && toks[end].is(";"))
                        break;
                    ++end;
                }
                others.push_back(foldRange(cx, f, &fn, k + 2, end));
                k = end;
            }
        }
    }

    // Zero-sentinel exclusion (DESIGN.md §12.2): a provably-zero
    // default only wins when nothing else ever sets the field.
    std::vector<Bnd> pool = others;
    for (const Bnd &b : inClass)
        if (!(b.exact && b.lo == 0) || others.empty())
            pool.push_back(b);

    Bnd out{0, false};
    if (!pool.empty()) {
        out = {kInf, true};
        for (const Bnd &b : pool) {
            out.lo = std::min(out.lo, b.lo);
            out.exact = out.exact && b.exact;
        }
    }
    cx.fieldBusy.erase(key);
    cx.fieldMemo[key] = out;
    return out;
}

/** Scan every file for namespace-scope `constexpr TYPE NAME = expr;`
 *  and fold the initializers (two rounds: constants referencing
 *  earlier-folded constants resolve on the second). */
void
scanConsts(Ctx &cx)
{
    for (int round = 0; round < 2; ++round) {
        for (const SourceFile &f : cx.p.files) {
            const Tokens &toks = f.toks;
            for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
                if (!toks[i].is("constexpr"))
                    continue;
                // NAME is the ident right before a `=` with no call
                // parens in between (skips constexpr functions).
                std::size_t eq = i + 1;
                bool fnLike = false;
                while (eq < toks.size() && !toks[eq].is("=") &&
                       !toks[eq].is(";")) {
                    if (toks[eq].is("(") || toks[eq].is("{")) {
                        fnLike = true;
                        break;
                    }
                    ++eq;
                }
                if (fnLike || eq >= toks.size() || !toks[eq].is("=") ||
                    !toks[eq - 1].ident())
                    continue;
                std::size_t end = eq + 1;
                int pd = 0;
                while (end < toks.size()) {
                    if (toks[end].is("(") || toks[end].is("{"))
                        ++pd;
                    else if (toks[end].is(")") || toks[end].is("}"))
                        --pd;
                    else if (pd == 0 && toks[end].is(";"))
                        break;
                    ++end;
                }
                const Bnd b = foldRange(cx, f, nullptr, eq + 1, end);
                const std::string &name = toks[eq - 1].text;
                const auto it = cx.consts.find(name);
                if (it == cx.consts.end() || b.lo < it->second.lo)
                    cx.consts[name] = b;
                i = end;
            }
        }
    }
}

/** Result of one body walk. */
struct Walk
{
    long long minCharge = 0;          //!< min over exits
    std::vector<long long> accBefore; //!< per callSites() index
    std::map<int, long long> accAtLine;
    std::vector<CallSite> sites;
};

bool
isCondKeyword(const std::string &t)
{
    return t == "if" || t == "for" || t == "while" || t == "switch" ||
           t == "else" || t == "case" || t == "catch" || t == "do";
}

/**
 * Walk @p fn's body accumulating the unconditional charge prefix:
 * charges inside conditional regions (nested braces, braceless
 * if/else bodies, `?:` tails) do not count, every return contributes
 * the prefix reached so far to the function's minimum. Charge sites:
 * awaited `compute(expr)` (arg 0), awaited `transfer(bytes, lat)`
 * (arg 1), awaited `Delay{q, expr}` (last arg), plus the current
 * interprocedural minCharge of any resolved callee.
 */
Walk
walkFn(Ctx &cx, const SourceFile &f, const FnDef &fn)
{
    Walk w;
    w.sites = callSites(cx.p, f, fn);
    w.accBefore.assign(w.sites.size(), 0);

    std::map<std::size_t, std::size_t> byNameIdx;
    for (std::size_t s = 0; s < w.sites.size(); ++s)
        byNameIdx[w.sites[s].nameIdx] = s;

    const Tokens &toks = f.toks;
    long long acc = 0;
    long long minSeen = kInf;
    int brace = 0;
    int paren = 0;
    bool condPending = false;
    bool awaitStmt = false;

    for (std::size_t i = fn.bodyBegin + 1;
         i + 1 < fn.bodyEnd && i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (w.accAtLine.count(t.line) == 0)
            w.accAtLine[t.line] = acc;

        if (t.is("{")) {
            ++brace;
            continue;
        }
        if (t.is("}")) {
            if (--brace <= 0) {
                brace = 0;
                condPending = false;
            }
            continue;
        }
        if (t.is("(") || t.is("[")) {
            ++paren;
        } else if (t.is(")") || t.is("]")) {
            --paren;
        } else if (t.is(";")) {
            awaitStmt = false;
            if (brace == 0 && paren <= 0)
                condPending = false;
        } else if (t.ident() && isCondKeyword(t.text)) {
            if (brace == 0)
                condPending = true;
        } else if (t.is("?") && brace == 0 && paren <= 0) {
            condPending = true;
        } else if (t.ident() &&
                   (t.is("return") || t.is("co_return"))) {
            minSeen = std::min(minSeen, acc);
        } else if (t.ident() && t.is("co_await")) {
            awaitStmt = true;
        }

        const bool suppress = brace > 0 || condPending;

        // Delay{q, expr} is brace-construction, invisible to
        // callSites(); charge its last argument when awaited.
        if (t.ident() && t.is("Delay") && i + 1 < toks.size() &&
            toks[i + 1].is("{")) {
            const std::size_t close = skipBalanced(toks, i + 1);
            if (awaitStmt && !suppress) {
                const auto args =
                    splitArgs(toks, i + 2, close - 1);
                if (!args.empty()) {
                    const Bnd b =
                        foldRange(cx, f, &fn, args.back().first,
                                  args.back().second);
                    acc += b.lo;
                }
            }
            i = close - 1;
            continue;
        }

        const auto sit = byNameIdx.find(i);
        if (sit == byNameIdx.end())
            continue;
        const CallSite &cs = w.sites[sit->second];
        w.accBefore[sit->second] = acc;
        if (suppress)
            continue;

        const auto args = splitArgs(toks, cs.argsBegin, cs.argsEnd);
        if (cs.callee == "compute" && cs.stmtConsumed &&
            !args.empty()) {
            acc += foldRange(cx, f, &fn, args[0].first,
                             args[0].second)
                       .lo;
        } else if (cs.callee == "transfer" && cs.stmtConsumed &&
                   args.size() >= 2) {
            acc += foldRange(cx, f, &fn, args[1].first,
                             args[1].second)
                       .lo;
        } else if (!cs.key.empty()) {
            const auto mit = cx.minCharge.find(cs.key);
            if (mit != cx.minCharge.end()) {
                const auto sum = cx.p.summaries.find(cs.key);
                const bool needsAwait =
                    sum != cx.p.summaries.end() &&
                    sum->second.suspends;
                if (!needsAwait || cs.stmtConsumed)
                    acc += mit->second;
            }
        }
    }

    w.minCharge = std::min(minSeen, acc);
    return w;
}

/** The FnDef whose body (or signature, within 4 lines below an
 *  annotation) owns @p line in @p f; null when none. */
const FnDef *
fnAtLine(const SourceFile &f, int line, bool allowFollowing)
{
    const FnDef *best = nullptr;
    for (const FnDef &fn : f.fns) {
        if (fn.bodyBegin >= f.toks.size() || fn.bodyEnd == 0 ||
            fn.bodyEnd > f.toks.size())
            continue;
        const int lo = fn.line;
        const int hi = f.toks[fn.bodyEnd - 1].line;
        if (line >= lo && line <= hi)
            return &fn;
        if (allowFollowing && fn.line >= line &&
            fn.line <= line + 4 &&
            (best == nullptr || fn.line < best->line))
            best = &fn;
    }
    return best;
}

/** Split "a, b" on commas, trimming spaces. */
std::vector<std::string>
splitClasses(const std::string &arg)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : arg) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else if (c != ' ') {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

/** Render a fold provenance string for reports. */
std::string
renderBound(const Bnd &b)
{
    return (b.exact ? ">= " : ">= ") + std::to_string(b.lo) +
           (b.exact ? " ns (exact)" : " ns (lower bound)");
}

/**
 * Fold the charge expression covered by a gate annotation at
 * @p aline: the first compute/transfer/scheduleIn call site, awaited
 * Delay{...}, or `= expr;` assignment on lines [aline, aline+3].
 */
Bnd
foldGate(Ctx &cx, const SourceFile &f, const FnDef &fn, int aline,
         const std::vector<CallSite> &sites, std::string &why)
{
    const Tokens &toks = f.toks;
    const auto covered = [aline](int line) {
        return line >= aline && line <= aline + 3;
    };

    for (const CallSite &cs : sites) {
        if (!covered(cs.line))
            continue;
        const auto args = splitArgs(toks, cs.argsBegin, cs.argsEnd);
        if (cs.callee == "compute" && !args.empty()) {
            const Bnd b = foldRange(cx, f, &fn, args[0].first,
                                    args[0].second);
            why = "compute(...) " + renderBound(b);
            return b;
        }
        if (cs.callee == "transfer" && args.size() >= 2) {
            const Bnd b = foldRange(cx, f, &fn, args[1].first,
                                    args[1].second);
            why = "transfer(.., latency) " + renderBound(b);
            return b;
        }
        if (cs.callee == "scheduleIn" && !args.empty()) {
            const Bnd b = foldRange(cx, f, &fn, args[0].first,
                                    args[0].second);
            why = "scheduleIn(delay, ..) " + renderBound(b);
            return b;
        }
    }
    for (std::size_t i = fn.bodyBegin + 1;
         i + 1 < fn.bodyEnd && i + 1 < toks.size(); ++i) {
        if (!covered(toks[i].line))
            continue;
        if (toks[i].ident() && toks[i].is("Delay") &&
            toks[i + 1].is("{")) {
            const std::size_t close = skipBalanced(toks, i + 1);
            const auto args = splitArgs(toks, i + 2, close - 1);
            if (!args.empty()) {
                const Bnd b = foldRange(cx, f, &fn, args.back().first,
                                        args.back().second);
                why = "Delay{..} " + renderBound(b);
                return b;
            }
        }
        if (toks[i].is("=")) {
            std::size_t end = i + 1;
            int pd = 0;
            while (end < fn.bodyEnd && end < toks.size()) {
                if (toks[end].is("(") || toks[end].is("["))
                    ++pd;
                else if (toks[end].is(")") || toks[end].is("]"))
                    --pd;
                else if (pd == 0 && toks[end].is(";"))
                    break;
                ++end;
            }
            const Bnd b = foldRange(cx, f, &fn, i + 1, end);
            why = "assignment " + renderBound(b);
            return b;
        }
    }
    why = "no foldable charge expression at the gate";
    return {0, false};
}

/** Root identifier of a simple dotted receiver chain (`peer.notify`,
 *  `a.b->notify`), or "" when the receiver is computed (a call or
 *  subscript in the chain). CallSite::recvChain only records that a
 *  receiver exists ("member"), not its name, so we re-read tokens. */
std::string
receiverRootName(const Tokens &toks, std::size_t nameIdx)
{
    std::size_t k = nameIdx;
    std::string root;
    while (k >= 2 && (toks[k - 1].is(".") || toks[k - 1].is("->"))) {
        if (!toks[k - 2].ident())
            return "";
        root = toks[k - 2].text;
        k -= 2;
    }
    return root;
}

std::string
jstr(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += "\"";
    return out;
}

} // namespace

void
buildLookahead(Project &p)
{
    LookaheadMap &m = p.lookahead;
    m.classes.clear();
    m.gates.clear();
    m.entries.clear();
    m.violations.clear();

    Ctx cx(p);
    scanConsts(cx);

    // Function index + interprocedural minCharge fixpoint (values are
    // monotone non-decreasing; three rounds cover the call depths the
    // datapaths actually have).
    for (const SourceFile &f : p.files) {
        if (!inOwnershipScope(f.dir))
            continue;
        for (const FnDef &fn : f.fns) {
            if (fn.bodyBegin == 0 || fn.bodyEnd <= fn.bodyBegin)
                continue;
            const std::string key = fnKey(fn);
            cx.fns[key].push_back({&f, &fn});
            cx.minCharge.emplace(key, 0);
        }
    }
    for (int round = 0; round < 3; ++round) {
        for (const auto &[key, defs] : cx.fns) {
            long long best = kInf;
            for (const FnRef &r : defs)
                best = std::min(
                    best, walkFn(cx, *r.f, *r.fn).minCharge);
            cx.minCharge[key] =
                std::max(cx.minCharge[key],
                         best == kInf ? 0 : best);
        }
    }

    // Final walk: capture per-site prefixes, build distance edges,
    // and collect annotation-driven entries/gates/effects.
    struct Effect
    {
        std::string kind; // deliver / wake
        std::string fnk;
        std::string file;
        int line = 0;
        long long localAcc = 0;
        bool allowed = false;
        std::string what;
    };
    std::vector<DistEdge> edges;
    std::vector<Effect> effects;
    std::map<std::string, long long> dist;
    for (const auto &[key, defs] : cx.fns) {
        (void)defs;
        dist[key] = kInf;
    }

    for (const auto &[key, defs] : cx.fns) {
        for (const FnRef &r : defs) {
            const SourceFile &f = *r.f;
            const FnDef &fn = *r.fn;
            const Walk w = walkFn(cx, f, fn);

            for (std::size_t s = 0; s < w.sites.size(); ++s) {
                const CallSite &cs = w.sites[s];

                // Implicit wake effects: notify on a receiver rooted
                // at a parameter — a waiter this function does not
                // own, i.e. potentially on another node.
                if (cs.callee == "notifyAll" ||
                    cs.callee == "notifyRange" ||
                    cs.callee == "notifyWrite") {
                    const std::string root =
                        receiverRootName(f.toks, cs.nameIdx);
                    for (const Param &pa : fn.params) {
                        if (pa.name != root || root.empty())
                            continue;
                        Effect ef;
                        ef.kind = "wake";
                        ef.fnk = key;
                        ef.file = f.rel;
                        ef.line = cs.line;
                        ef.localAcc = w.accBefore[s];
                        ef.allowed =
                            f.allows(cs.line, "lookahead") ||
                            f.allows(cs.line,
                                     "cross-node-wake-uncharged");
                        ef.what = root + "." + cs.callee;
                        effects.push_back(ef);
                        break;
                    }
                }

                if (cs.key.empty() || cx.fns.count(cs.key) == 0)
                    continue;
                if (f.allows(cs.line, "lookahead"))
                    continue; // justified exception: edge killed

                DistEdge e;
                e.from = key;
                e.to = cs.key;
                e.file = f.rel;
                e.line = cs.line;
                e.weight = w.accBefore[s];
                // A call nested in a scheduleIn(delay, ...) argument
                // fires after `delay` more ticks.
                if (cs.argIndexInParent >= 0) {
                    for (std::size_t q = 0; q < w.sites.size(); ++q) {
                        const CallSite &par = w.sites[q];
                        if (par.nameIdx != cs.parentNameIdx)
                            continue;
                        if (par.callee == "scheduleIn") {
                            const auto pargs =
                                splitArgs(f.toks, par.argsBegin,
                                          par.argsEnd);
                            if (!pargs.empty()) {
                                const Bnd d = foldRange(
                                    cx, f, &fn, pargs[0].first,
                                    pargs[0].second);
                                e.weight =
                                    w.accBefore[q] + d.lo;
                                e.schedZero =
                                    d.exact && d.lo == 0;
                                e.line = par.line;
                            }
                        }
                        break;
                    }
                }
                edges.push_back(e);
            }

            // Annotations anchored in this function.
            for (const Annotation &a : f.annotations) {
                if (a.rule == "lookahead-entry") {
                    const FnDef *tgt = fnAtLine(f, a.line, true);
                    if (tgt != &fn)
                        continue;
                    for (const std::string &cls :
                         splitClasses(a.arg)) {
                        m.classes[cls].entries.push_back(key);
                        LookaheadEntry en;
                        en.fnKey = key;
                        en.file = f.rel;
                        en.line = fn.line;
                        en.minChargeNs = cx.minCharge[key];
                        m.entries.push_back(en);
                        dist[key] = 0;
                    }
                } else if (a.rule == "lookahead-charge") {
                    const FnDef *tgt = fnAtLine(f, a.line, true);
                    if (tgt != &fn)
                        continue;
                    std::string why;
                    const Bnd b =
                        foldGate(cx, f, fn, a.line, w.sites, why);
                    for (const std::string &cls :
                         splitClasses(a.arg)) {
                        LookaheadGate g;
                        g.cls = cls;
                        g.fnKey = key;
                        g.file = f.rel;
                        g.line = a.line;
                        g.boundNs = b.lo;
                        g.why = why;
                        m.classes[cls].gates.push_back(
                            m.gates.size());
                        m.gates.push_back(g);
                    }
                } else if (a.rule == "lookahead-effect") {
                    // allowFollowing: above a one-line inline method,
                    // "the statement below" is the whole function.
                    const FnDef *tgt = fnAtLine(f, a.line, true);
                    if (tgt != &fn)
                        continue;
                    Effect ef;
                    ef.kind = a.arg.empty() ? "deliver" : a.arg;
                    ef.fnk = key;
                    ef.file = f.rel;
                    ef.line = a.line;
                    ef.localAcc = kInf;
                    for (int l = a.line; l <= a.line + 3; ++l) {
                        const auto it = w.accAtLine.find(l);
                        if (it != w.accAtLine.end())
                            ef.localAcc = std::min(ef.localAcc,
                                                   it->second);
                    }
                    if (ef.localAcc == kInf)
                        ef.localAcc = 0;
                    ef.allowed = f.allows(a.line, "lookahead");
                    ef.what = key;
                    effects.push_back(ef);
                }
            }
        }
    }

    // Forward min-distance from the entries over the charge edges.
    for (bool changed = true; changed;) {
        changed = false;
        for (const DistEdge &e : edges) {
            if (dist[e.from] >= kInf)
                continue;
            const long long cand = dist[e.from] + e.weight;
            if (cand < dist[e.to]) {
                dist[e.to] = cand;
                changed = true;
            }
        }
    }

    // Per-class proven bound: the minimum over its gate folds.
    for (auto &[cls, lc] : m.classes) {
        std::sort(lc.entries.begin(), lc.entries.end());
        lc.entries.erase(
            std::unique(lc.entries.begin(), lc.entries.end()),
            lc.entries.end());
        lc.boundNs = lc.gates.empty() ? 0 : kInf;
        lc.positive = !lc.gates.empty();
        for (const std::size_t gi : lc.gates) {
            lc.boundNs = std::min(lc.boundNs, m.gates[gi].boundNs);
            lc.positive = lc.positive && m.gates[gi].boundNs > 0;
        }
        if (lc.boundNs == kInf)
            lc.boundNs = 0;
    }

    // Rule 1: zero-lookahead-path.
    for (const auto &[cls, lc] : m.classes) {
        if (lc.gates.empty()) {
            for (const std::string &ek : lc.entries) {
                for (const LookaheadEntry &en : m.entries) {
                    if (en.fnKey != ek)
                        continue;
                    const SourceFile *f = p.file(en.file);
                    LookaheadViolation v;
                    v.rule = "zero-lookahead-path";
                    v.file = en.file;
                    v.line = en.line;
                    v.fingerprint =
                        "lookahead/no-gate/" + cls + "/" + ek;
                    v.message =
                        "edge class '" + cls + "' (entry " + ek +
                        ") has no lookahead-charge gate: no charged "
                        "delay is proven before cross-node "
                        "visibility";
                    v.allowed =
                        f != nullptr && f->allows(en.line,
                                                  "lookahead");
                    m.violations.push_back(v);
                    break;
                }
            }
        }
        for (const std::size_t gi : lc.gates) {
            const LookaheadGate &g = m.gates[gi];
            if (g.boundNs > 0)
                continue;
            const SourceFile *f = p.file(g.file);
            LookaheadViolation v;
            v.rule = "zero-lookahead-path";
            v.file = g.file;
            v.line = g.line;
            v.fingerprint =
                "lookahead/zero-gate/" + cls + "/" + g.fnKey;
            v.message = "lookahead-charge(" + cls + ") gate in " +
                        g.fnKey +
                        " folds to 0 ns: the class bound collapses "
                        "(" + g.why + ")";
            v.allowed =
                f != nullptr && f->allows(g.line, "lookahead");
            m.violations.push_back(v);
        }
    }
    for (const Effect &ef : effects) {
        const auto dit = dist.find(ef.fnk);
        const long long base =
            dit == dist.end() ? kInf : dit->second;
        if (base >= kInf)
            continue; // not reachable from any entry
        const long long total = base + ef.localAcc;
        if (total > 0)
            continue;
        LookaheadViolation v;
        v.file = ef.file;
        v.line = ef.line;
        v.allowed = ef.allowed;
        if (ef.kind == "wake") {
            v.rule = "cross-node-wake-uncharged";
            v.fingerprint = "lookahead/wake/" + ef.fnk + "/" + ef.what;
            v.message =
                "wake of a foreign waiter (" + ef.what + ") in " +
                ef.fnk +
                " is reachable from a datapath entry with 0 charged "
                "simulated time";
        } else {
            v.rule = "zero-lookahead-path";
            v.fingerprint =
                "lookahead/effect/" + ef.fnk + "/" + ef.what;
            v.message =
                "cross-node deliver effect in " + ef.fnk +
                " is reachable from a datapath entry with 0 charged "
                "simulated time";
        }
        m.violations.push_back(v);
    }

    // Rule 3: zero-delay-cycle — a provably-zero scheduleIn whose
    // target reaches the scheduling function back over zero-charge
    // edges could stall simulated time entirely.
    std::set<std::string> cycleSeen;
    for (const DistEdge &se : edges) {
        if (!se.schedZero)
            continue;
        bool cyclic = se.to == se.from;
        if (!cyclic) {
            std::set<std::string> seen{se.to};
            std::vector<std::string> work{se.to};
            while (!work.empty() && !cyclic) {
                const std::string cur = work.back();
                work.pop_back();
                for (const DistEdge &e : edges) {
                    if (e.from != cur || e.weight != 0)
                        continue;
                    if (e.to == se.from) {
                        cyclic = true;
                        break;
                    }
                    if (seen.insert(e.to).second)
                        work.push_back(e.to);
                }
            }
        }
        if (!cyclic)
            continue;
        const std::string fp =
            "lookahead/cycle/" + se.from + "/" + se.to;
        if (!cycleSeen.insert(fp).second)
            continue;
        const SourceFile *f = p.file(se.file);
        LookaheadViolation v;
        v.rule = "zero-delay-cycle";
        v.file = se.file;
        v.line = se.line;
        v.fingerprint = fp;
        v.message =
            "zero-delay event cycle: " + se.from +
            " schedules " + se.to +
            " with a provably zero delay and " + se.to +
            " reaches " + se.from +
            " again without charging simulated time";
        v.allowed = f != nullptr &&
                    (f->allows(se.line, "lookahead") ||
                     f->allows(se.line, "zero-delay-cycle"));
        m.violations.push_back(v);
    }

    std::sort(m.violations.begin(), m.violations.end(),
              [](const LookaheadViolation &a,
                 const LookaheadViolation &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.fingerprint < b.fingerprint;
              });
    std::sort(m.entries.begin(), m.entries.end(),
              [](const LookaheadEntry &a, const LookaheadEntry &b) {
                  return a.fnKey != b.fnKey ? a.fnKey < b.fnKey
                                            : a.file < b.file;
              });
    m.entries.erase(std::unique(m.entries.begin(), m.entries.end(),
                                [](const LookaheadEntry &a,
                                   const LookaheadEntry &b) {
                                    return a.fnKey == b.fnKey &&
                                           a.file == b.file &&
                                           a.line == b.line;
                                }),
                    m.entries.end());
}

std::string
lookaheadJson(const Project &p)
{
    const LookaheadMap &m = p.lookahead;
    std::ostringstream o;
    o << "{\n"
      << "  \"tool\": \"shrimp_analyze\",\n"
      << "  \"report\": \"lookahead\",\n"
      << "  \"classes\": [\n";
    bool first = true;
    for (const auto &[cls, lc] : m.classes) {
        o << (first ? "" : ",\n");
        first = false;
        o << "    { \"class\": " << jstr(cls) << ", \"boundNs\": "
          << lc.boundNs << ", \"positive\": "
          << (lc.positive ? "true" : "false") << ",\n"
          << "      \"entries\": [";
        for (std::size_t i = 0; i < lc.entries.size(); ++i)
            o << (i == 0 ? "" : ", ") << jstr(lc.entries[i]);
        o << "],\n      \"gates\": [";
        for (std::size_t i = 0; i < lc.gates.size(); ++i) {
            const LookaheadGate &g = m.gates[lc.gates[i]];
            o << (i == 0 ? "" : ", ") << "\n        { \"fn\": "
              << jstr(g.fnKey) << ", \"file\": " << jstr(g.file)
              << ", \"line\": " << g.line << ", \"boundNs\": "
              << g.boundNs << ", \"why\": " << jstr(g.why) << " }";
        }
        o << (lc.gates.empty() ? "" : "\n      ") << "] }";
    }
    o << "\n  ],\n  \"entries\": [\n";
    for (std::size_t i = 0; i < m.entries.size(); ++i) {
        const LookaheadEntry &e = m.entries[i];
        o << (i == 0 ? "" : ",\n") << "    { \"fn\": " << jstr(e.fnKey)
          << ", \"file\": " << jstr(e.file) << ", \"line\": " << e.line
          << ", \"minChargeNs\": " << e.minChargeNs << " }";
    }
    o << "\n  ],\n  \"violations\": [\n";
    for (std::size_t i = 0; i < m.violations.size(); ++i) {
        const LookaheadViolation &v = m.violations[i];
        o << (i == 0 ? "" : ",\n") << "    { \"rule\": " << jstr(v.rule)
          << ", \"file\": " << jstr(v.file) << ", \"line\": " << v.line
          << ", \"allowed\": " << (v.allowed ? "true" : "false")
          << ", \"fingerprint\": " << jstr(v.fingerprint)
          << ", \"message\": " << jstr(v.message) << " }";
    }
    o << "\n  ]\n}\n";
    return o.str();
}

bool
checkLookaheadPins(const Project &p,
                   const std::vector<std::string> &pins,
                   std::string &err)
{
    for (const std::string &pin : pins) {
        const std::size_t colon = pin.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= pin.size()) {
            err = "bad --lookahead-pin (want CLASS:NS): " + pin;
            return false;
        }
        const std::string cls = pin.substr(0, colon);
        long long want = 0;
        try {
            want = std::stoll(pin.substr(colon + 1));
        } catch (const std::exception &) {
            err = "bad --lookahead-pin value: " + pin;
            return false;
        }
        const auto it = p.lookahead.classes.find(cls);
        if (it == p.lookahead.classes.end()) {
            err = "lookahead pin failed: edge class '" + cls +
                  "' is not annotated in the tree";
            return false;
        }
        if (!it->second.positive || it->second.boundNs < want) {
            err = "lookahead pin failed: class '" + cls +
                  "' proves " + std::to_string(it->second.boundNs) +
                  " ns (positive=" +
                  (it->second.positive ? "true" : "false") +
                  "), pinned minimum is " + std::to_string(want) +
                  " ns";
            return false;
        }
    }
    err.clear();
    return true;
}

} // namespace shrimp::analyze
