/**
 * @file
 * Min-delay lookahead analysis for shrimp_analyze.
 *
 * buildLookahead() proves, per cross-node communication edge class, a
 * conservative lower bound of *charged simulated time* any message of
 * that class pays before it becomes visible on another node. The bound
 * is the artifact a conservative (null-message) sharded engine needs:
 * it may advance a shard's clock by the smallest proven bound without
 * waiting for its peers (ROADMAP item 2, DESIGN.md §12.2).
 *
 * Annotation vocabulary (mined by the lexer, argument preserved):
 *
 *   analyze: lookahead-entry(CLASS)   the function below (or enclosing
 *                                     the comment) is the public entry
 *                                     of edge class CLASS
 *   analyze: lookahead-charge(CLASS)  the charge expression on this /
 *                                     the next lines gates CLASS; its
 *                                     folded minimum is the class bound
 *                                     candidate (several classes may be
 *                                     listed, comma-separated)
 *   analyze: lookahead-effect(deliver|wake)
 *                                     the statement below makes state
 *                                     visible off-node (deliver) or
 *                                     wakes a foreign waiter (wake)
 *   analyze: lookahead(reason)        justified exception: call edges
 *                                     leaving annotated lines propagate
 *                                     no distance, and violations on
 *                                     them are reported allowed=true
 *
 * Bound algebra (fold): a fold result is {lo, exact} where lo is a
 * sound lower bound under the simulator's invariant that every charge
 * is non-negative, and exact means lo is the actual value. Literals
 * fold to themselves; `+`/`*` compose; `-`, `/`, calls and unknown
 * names fold to {0, inexact}; MachineConfig fields fold to their
 * in-class defaults; other fields fold to the minimum over their
 * in-class initializer, constructor-init-list and assignment sites
 * (a provably-zero in-class default is excluded while any other
 * candidate exists — it is a sentinel, not a charge); namespace-scope
 * `constexpr` constants (units::us, nxSendOverhead) fold to their
 * initializers.
 *
 * Three rules consume the result (rule_lookahead.cc):
 *
 *   zero-lookahead-path       an edge class with an entry but no gate,
 *                             a gate whose charge folds to 0, or a
 *                             deliver-effect reachable from an entry
 *                             with 0 charged time
 *   zero-delay-cycle          a provably-zero scheduleIn whose target
 *                             reaches the scheduler back through
 *                             zero-charge edges — an event chain that
 *                             could livelock a time window
 *   cross-node-wake-uncharged a wake-effect (or a notifyAll/
 *                             notifyRange/notifyWrite on a
 *                             parameter-rooted receiver) reachable
 *                             from an entry with 0 charged time
 */

#ifndef SHRIMP_TOOLS_ANALYZE_LOOKAHEAD_HH
#define SHRIMP_TOOLS_ANALYZE_LOOKAHEAD_HH

#include "model.hh"

namespace shrimp::analyze
{

/** Compute Project::lookahead. Requires parsed files, extractTypes(),
 *  buildTypeIndex() and buildSummaries() to have run. */
void buildLookahead(Project &p);

/** Machine-readable report for --lookahead-report=FILE. */
std::string lookaheadJson(const Project &p);

/** Enforce `--lookahead-pin=CLASS:NS` pins: every named class must be
 *  proven positive with boundNs >= NS. Returns false and fills @p err
 *  on the first violated pin (the CI lookahead gate). */
bool checkLookaheadPins(const Project &p,
                        const std::vector<std::string> &pins,
                        std::string &err);

} // namespace shrimp::analyze

#endif // SHRIMP_TOOLS_ANALYZE_LOOKAHEAD_HH
