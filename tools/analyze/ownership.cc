/**
 * @file
 * Ownership & escape analysis (see ownership.hh for the model).
 *
 * Determinism: classes live in a std::map (name order), escape edges
 * are appended in (file, function, token) order, and nothing here
 * consults the host — cold/warm cache runs and 1-job/N-job runs
 * produce byte-identical reports.
 */

#include "ownership.hh"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <deque>
#include <sstream>

#include "callgraph.hh"
#include "dataflow.hh"
#include "parse.hh"
#include "types.hh"

namespace shrimp::analyze
{

namespace
{

/** Template wrappers that do NOT own their pointee: reaching a class
 *  only through one of these is reference reachability, not value
 *  containment. Everything else (vector, unique_ptr, optional, map,
 *  project templates like Channel<T>) owns its arguments. */
const std::set<std::string> nonOwningWrappers = {
    "shared_ptr", "weak_ptr", "reference_wrapper", "span",
    "initializer_list", "function", "basic_string_view",
    "string_view",
};

/** Message types that cross node boundaries *by value*. Storing a
 *  pointer into one smuggles an address across the boundary. */
const std::set<std::string> carrierClasses = {
    "Packet", "EtherFrame",
};

/** The outermost template name of @p type ("std::vector<X>" ->
 *  "vector"), or the last `::` component when not a template. */
std::string
outerName(const std::string &type)
{
    const std::size_t lt = type.find('<');
    std::string head = lt == std::string::npos ? type
                                               : type.substr(0, lt);
    const std::size_t colons = head.rfind("::");
    if (colons != std::string::npos)
        head = head.substr(colons + 2);
    while (!head.empty() && head.back() == ' ')
        head.pop_back();
    return head;
}

/** Top-level template arguments of @p type, split on depth-1 commas. */
std::vector<std::string>
templateArgs(const std::string &type)
{
    std::vector<std::string> out;
    const std::size_t lt = type.find('<');
    if (lt == std::string::npos)
        return out;
    int depth = 0;
    std::size_t start = lt + 1;
    for (std::size_t i = lt; i < type.size(); ++i) {
        const char c = type[i];
        if (c == '<') {
            ++depth;
        } else if (c == '>') {
            if (--depth == 0) {
                if (i > start)
                    out.push_back(type.substr(start, i - start));
                break;
            }
        } else if (c == ',' && depth == 1) {
            out.push_back(type.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string
trimmed(const std::string &s)
{
    std::string t = s;
    while (!t.empty() && t.back() == ' ')
        t.pop_back();
    std::size_t b = 0;
    while (b < t.size() && t[b] == ' ')
        ++b;
    return t.substr(b);
}

bool
isRefOrPtr(const std::string &rawType)
{
    const std::string t = trimmed(rawType);
    return !t.empty() && (t.back() == '&' || t.back() == '*');
}

bool
isConstQualified(const std::string &rawType)
{
    return trimmed(rawType).compare(0, 6, "const ") == 0;
}

/** Every in-scope class @p rawType holds *by value*: alias layers are
 *  walked with the ref/pointer check applied per layer (an alias to a
 *  pointer does not own), then wrappers/templates are unwrapped
 *  recursively. */
void
ownedClassesOf(const TypeIndex &ix, const std::set<std::string> &known,
               const std::string &rawType, std::vector<std::string> &out,
               int depth = 0)
{
    if (depth > 4)
        return;
    std::string t = trimmed(rawType);
    for (int guard = 0; guard < 8; ++guard) {
        if (isRefOrPtr(t))
            return;
        const std::string s = stripCv(t);
        auto it = ix.aliases.find(s);
        if (it == ix.aliases.end()) {
            t = s;
            break;
        }
        t = trimmed(it->second);
    }
    const std::string outer = outerName(t);
    if (nonOwningWrappers.count(outer) != 0)
        return;
    if (known.count(outer) != 0)
        out.push_back(outer);
    for (const std::string &arg : templateArgs(t))
        ownedClassesOf(ix, known, arg, out, depth + 1);
}

bool
isCarrier(const std::string &cls)
{
    return carrierClasses.count(cls) != 0;
}

const std::set<std::string> constishKeywords = {
    "const", "constexpr", "consteval", "constinit", "thread_local",
};

/** Keywords that disqualify the token after `static` from starting a
 *  data declaration we want to report. */
const std::set<std::string> staticDeclStoppers = {
    "struct", "class", "union", "enum", "using", "typedef", "void",
    "friend", "operator", "template", "inline", "assert",
};

/** Resolver for names inside one function: locals, then parameters,
 *  then fields of the enclosing class. Returns the raw declared type
 *  ("" if unknown) and whether the name is a field. */
struct NameEnv
{
    const Project &p;
    const FnDef &fn;
    const std::map<std::string, std::string> *fields = nullptr;

    explicit NameEnv(const Project &proj, const FnDef &f) : p(proj), fn(f)
    {
        if (!f.className.empty()) {
            auto it = proj.types.fields.find(f.className);
            if (it != proj.types.fields.end())
                fields = &it->second;
        }
    }

    std::string typeOf(const std::string &name, bool &isField) const
    {
        isField = false;
        for (const Local &l : fn.locals)
            if (l.name == name)
                return l.type;
        for (const Param &pr : fn.params)
            if (pr.name == name)
                return pr.type;
        if (fields != nullptr) {
            auto it = fields->find(name);
            if (it != fields->end()) {
                isField = true;
                return it->second;
            }
        }
        return "";
    }
};

} // namespace

const char *
ownName(Own o)
{
    switch (o) {
    case Own::NodeOwned:
        return "node-owned";
    case Own::SharedRO:
        return "shared-ro";
    case Own::SharedMutable:
        return "shared-mutable";
    case Own::Escapes:
        return "escapes";
    case Own::Unknown:
        break;
    }
    return "unknown";
}

bool
OwnershipMap::nodeOwned(const std::string &cls) const
{
    auto it = classes.find(cls);
    return it != classes.end() && (it->second.verdict == Own::NodeOwned ||
                                   it->second.verdict == Own::Escapes);
}

bool
inOwnershipScope(const std::string &dir)
{
    static const std::set<std::string> dirs = {
        "base", "check", "sim", "mem", "net", "nic",
        "node", "vmmc",  "nx",  "rpc", "sock", "srpc",
    };
    return dirs.count(dir) != 0;
}

namespace
{

/** Stage 1: collect in-scope classes and their body annotations.
 *  Nested class bodies are excluded from the enclosing class's scan so
 *  an inner marker is not attributed to the outer class. */
void
collectClasses(const Project &p, OwnershipMap &m)
{
    for (const SourceFile &f : p.files) {
        if (!inOwnershipScope(f.dir))
            continue;
        for (const ClassDef &cd : f.classes) {
            if (cd.name.empty() || cd.name == "?")
                continue;
            ClassVerdict &cv = m.classes[cd.name];
            if (cv.file.empty()) {
                cv.file = f.rel;
                cv.line = cd.line;
            }
            cv.carrier = cv.carrier || isCarrier(cd.name);
            for (std::size_t k = cd.bodyBegin + 1;
                 k + 1 < cd.bodyEnd && k < f.toks.size(); ++k) {
                bool nested = false;
                for (const ClassDef &o : f.classes)
                    if (o.bodyBegin > cd.bodyBegin &&
                        o.bodyEnd < cd.bodyEnd && k > o.bodyBegin &&
                        k < o.bodyEnd) {
                        nested = true;
                        break;
                    }
                if (nested || !f.toks[k].ident())
                    continue;
                if (f.toks[k].text == "SHRIMP_SHARD_OWNED")
                    cv.annotatedOwned = true;
                else if (f.toks[k].text == "SHRIMP_SHARD_SHARED")
                    cv.annotatedShared = true;
            }
        }
    }
}

/** Stage 2+3: value-containment BFS from the seeds, then the
 *  reference closure to a fixpoint. */
void
classifyClasses(const Project &p, OwnershipMap &m)
{
    std::set<std::string> known;
    for (const auto &[name, cv] : m.classes)
        known.insert(name);

    std::deque<std::string> work;
    for (auto &[name, cv] : m.classes) {
        if (cv.annotatedShared) {
            cv.verdict = Own::SharedMutable;
            cv.why = "SHRIMP_SHARD_SHARED annotation";
            continue;
        }
        if (name == "Node" || cv.annotatedOwned) {
            cv.verdict = Own::NodeOwned;
            cv.why = name == "Node" ? "ownership root"
                                    : "SHRIMP_SHARD_OWNED annotation";
            work.push_back(name);
        }
    }

    // Value containment: owning fields of NodeOwned classes are
    // NodeOwned. Value containment outranks reference reachability, so
    // this whole wave runs before any Shared verdict is assigned.
    while (!work.empty()) {
        const std::string cls = work.front();
        work.pop_front();
        auto fit = p.types.fields.find(cls);
        if (fit == p.types.fields.end())
            continue;
        for (const auto &[fname, ftype] : fit->second) {
            std::vector<std::string> owned;
            ownedClassesOf(p.types, known, ftype, owned);
            for (const std::string &t : owned) {
                ClassVerdict &tv = m.classes[t];
                if (tv.verdict != Own::Unknown)
                    continue;
                tv.verdict = Own::NodeOwned;
                tv.why = "value field " + cls + "::" + fname;
                work.push_back(t);
            }
        }
    }

    // Reference closure: const refs/pointers propagate SharedRO,
    // mutable ones SharedMutable; value fields of a Shared class share
    // its verdict. Already-classified classes are never demoted.
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto &[cls, cv] : m.classes) {
            if (cv.verdict == Own::Unknown)
                continue;
            auto fit = p.types.fields.find(cls);
            if (fit == p.types.fields.end())
                continue;
            for (const auto &[fname, ftype] : fit->second) {
                if (isRefOrPtr(ftype)) {
                    const std::string target =
                        typeClassName(p.types, ftype);
                    if (target.empty() ||
                        m.classes.count(target) == 0)
                        continue;
                    ClassVerdict &tv = m.classes[target];
                    if (tv.verdict != Own::Unknown)
                        continue;
                    const bool ro = isConstQualified(ftype);
                    tv.verdict = ro ? Own::SharedRO
                                    : Own::SharedMutable;
                    tv.why = std::string(ro ? "const" : "mutable") +
                             " reference " + cls + "::" + fname;
                    changed = true;
                } else if (cv.verdict == Own::SharedRO ||
                           cv.verdict == Own::SharedMutable) {
                    std::vector<std::string> owned;
                    ownedClassesOf(p.types, known, ftype, owned);
                    for (const std::string &t : owned) {
                        ClassVerdict &tv = m.classes[t];
                        if (tv.verdict != Own::Unknown)
                            continue;
                        tv.verdict = cv.verdict;
                        tv.why = "value field of shared " + cls +
                                 "::" + fname;
                        changed = true;
                    }
                }
            }
        }
    }
}

/** Detector: namespace/class/function-scope mutable `static` data. */
void
detectStatics(const SourceFile &f, OwnershipMap &m)
{
    const Tokens &toks = f.toks;
    for (std::size_t k = 0; k < toks.size(); ++k) {
        if (!toks[k].ident() || toks[k].text != "static")
            continue;
        if (k + 1 < toks.size() && toks[k + 1].ident() &&
            staticDeclStoppers.count(toks[k + 1].text) != 0)
            continue;

        // Scan the declaration head. `(` before the terminator means a
        // function (or a paren-initialized static — a documented false
        // negative); any const-ish keyword means immutable storage.
        bool skip = false;
        std::size_t declEnd = 0;
        int angle = 0;
        for (std::size_t q = k + 1;
             q < toks.size() && q < k + 80 && declEnd == 0; ++q) {
            const Token &t = toks[q];
            if (t.ident() && constishKeywords.count(t.text) != 0) {
                skip = true;
                break;
            }
            if (t.is("<")) {
                ++angle;
            } else if (t.is(">")) {
                --angle;
            } else if (angle <= 0) {
                if (t.is("(")) {
                    skip = true;
                    break;
                }
                if (t.is(";") || t.is("=") || t.is("{"))
                    declEnd = q;
            }
        }
        if (skip || declEnd < k + 3)
            continue;
        const Token &nameTok = toks[declEnd - 1];
        if (!nameTok.ident() ||
            staticDeclStoppers.count(nameTok.text) != 0)
            continue;

        std::string scope;
        for (const FnDef &fn : f.fns)
            if (k > fn.bodyBegin && k < fn.bodyEnd) {
                scope = fnKey(fn);
                break;
            }
        if (scope.empty()) {
            std::size_t best = 0;
            for (const ClassDef &cd : f.classes)
                if (k > cd.bodyBegin && k < cd.bodyEnd &&
                    cd.bodyBegin >= best) {
                    best = cd.bodyBegin;
                    scope = cd.name;
                }
        }

        const int line = toks[k].line;
        EscapeEdge e;
        e.rule = "shared-mutable-static";
        e.scope = scope;
        e.what = nameTok.text;
        e.dest = "static storage";
        e.file = f.rel;
        e.line = line;
        e.fingerprint =
            "static/" + (scope.empty() ? std::string("ns") : scope) +
            "/" + nameTok.text;
        e.message =
            "mutable static '" + nameTok.text + "'" +
            (scope.empty() ? std::string()
                           : " in " + scope) +
            ": every shard shares this storage; annotate "
            "`analyze: shared(reason)` if it is a deliberate "
            "machine-wide singleton, or move it into per-node state";
        e.allowed = f.allows(line, "shared-mutable-static") ||
                    f.allows(line, "shared");
        m.edges.push_back(std::move(e));
    }
}

/** Does [lo, hi) produce an address of node-owned state? Returns the
 *  escaping state's name ("" when clean) and its owning class. */
std::string
escapingExpr(const Project &p, const SourceFile &f, const NameEnv &env,
             bool selfOwned, const std::string &selfClass,
             std::size_t lo, std::size_t hi, std::string &ownerClass)
{
    const Tokens &toks = f.toks;
    const OwnershipMap &m = p.ownership;
    for (std::size_t q = lo; q < hi && q < toks.size(); ++q) {
        const Token &t = toks[q];
        if (t.is("&") && q + 1 < hi && toks[q + 1].ident()) {
            // Address-of position only: `a & b` has an identifier (or
            // a closing bracket) on the left, an address-of does not.
            const bool addrPos =
                q == lo || toks[q - 1].is("=") || toks[q - 1].is("(") ||
                toks[q - 1].is(",") || toks[q - 1].is("{") ||
                (toks[q - 1].ident() && toks[q - 1].text == "return");
            if (!addrPos)
                continue;
            const std::string &name = toks[q + 1].text;
            bool isField = false;
            const std::string rt = env.typeOf(name, isField);
            if (isField && selfOwned) {
                ownerClass = selfClass;
                return selfClass + "::" + name;
            }
            if (!rt.empty()) {
                const std::string cls = typeClassName(p.types, rt);
                if (!cls.empty() && !isCarrier(cls) &&
                    m.nodeOwned(cls)) {
                    ownerClass = cls;
                    return name;
                }
            }
            continue;
        }
        if (!t.ident())
            continue;
        if (t.text == "this" && selfOwned &&
            (q == lo || (!toks[q - 1].is(".") && !toks[q - 1].is("->") &&
                         !toks[q - 1].is("::")))) {
            ownerClass = selfClass;
            return "this";
        }
        // A pointer-valued name whose pointee is node-owned escapes
        // when it flows as a value.
        if (q > lo && (toks[q - 1].is(".") || toks[q - 1].is("->") ||
                       toks[q - 1].is("::")))
            continue;
        bool isField = false;
        const std::string rt = env.typeOf(t.text, isField);
        if (rt.empty() || trimmed(rt).back() != '*')
            continue;
        const std::string cls = typeClassName(p.types, rt);
        if (!cls.empty() && !isCarrier(cls) && m.nodeOwned(cls)) {
            ownerClass = cls;
            return t.text;
        }
    }
    return "";
}

/** Root identifier of the receiver chain of a member call whose
 *  callee identifier sits at `nameIdx` ("other.buf.fill(" -> "other").
 *  Walks the `.`/`->` hops backwards the same way resolveReceiver
 *  does; "" when the chain starts with a call, subscript or `this`. */
std::string
receiverRoot(const Tokens &toks, std::size_t nameIdx)
{
    if (nameIdx < 1 ||
        !(toks[nameIdx - 1].is(".") || toks[nameIdx - 1].is("->")))
        return "";
    std::string root;
    std::size_t k = nameIdx - 1; // the `.`/`->` before the callee
    while (k > 0) {
        std::size_t end = k; // one past the current segment
        if (toks[end - 1].is(")")) {
            int depth = 0;
            std::size_t q = end;
            while (q-- > 0) {
                if (toks[q].is(")"))
                    ++depth;
                else if (toks[q].is("(") && --depth == 0)
                    break;
            }
            if (q == 0 || !toks[q - 1].ident())
                return "";
            root = toks[q - 1].text;
            end = q - 1;
        } else if (toks[end - 1].ident()) {
            root = toks[end - 1].text;
            end = end - 1;
        } else {
            return "";
        }
        if (end >= 1 &&
            (toks[end - 1].is(".") || toks[end - 1].is("->"))) {
            k = end - 1;
            continue;
        }
        if (end >= 1 && (toks[end - 1].is("]") || toks[end - 1].is(")")))
            return "";
        break;
    }
    return root;
}

/** Detector: node-owned addresses stored into carriers, stored into
 *  foreign node-owned objects reached via ref/pointer parameters, or
 *  passed into such an object's methods. */
void
detectCrossNode(const Project &p, const SourceFile &f, const FnDef &fn,
                OwnershipMap &m)
{
    const Tokens &toks = f.toks;
    const NameEnv env(p, fn);
    const bool selfOwned =
        !fn.className.empty() && m.nodeOwned(fn.className);

    auto isForeignParamRoot = [&](const std::string &root) {
        for (const Param &pr : fn.params)
            if (pr.name == root)
                return isRefOrPtr(pr.type) &&
                       m.nodeOwned(typeClassName(p.types, pr.type));
        return false;
    };

    auto addEdge = [&](const std::string &what,
                       const std::string &ownerClass,
                       const std::string &dest,
                       const std::string &fingerprint, int line,
                       const std::string &message) {
        EscapeEdge e;
        e.rule = "cross-node-escape";
        e.scope = fnKey(fn);
        e.what = what;
        e.dest = dest;
        e.file = f.rel;
        e.line = line;
        e.fingerprint = fingerprint;
        e.message = message;
        const bool allowed = f.allows(line, "cross-node-escape");
        e.allowed = allowed;
        m.edges.push_back(std::move(e));
        if (!allowed && !ownerClass.empty()) {
            auto it = m.classes.find(ownerClass);
            if (it != m.classes.end() &&
                it->second.verdict == Own::NodeOwned) {
                it->second.verdict = Own::Escapes;
                it->second.why = "escape at " + f.rel + ":" +
                                 std::to_string(line) + " (" +
                                 fingerprint + ")";
            }
        }
    };

    // Member stores: `recv.field = <expr taking a node-owned address>`.
    std::size_t stmt = fn.bodyBegin + 1;
    int paren = 0;
    for (std::size_t k = fn.bodyBegin + 1; k < fn.bodyEnd; ++k) {
        const Token &t = toks[k];
        if (t.is("(") || t.is("["))
            ++paren;
        else if (t.is(")") || t.is("]"))
            --paren;
        else if ((t.is(";") && paren == 0) || t.is("{") || t.is("}")) {
            int d = 0;
            std::size_t eq = 0;
            for (std::size_t q = stmt; q < k; ++q) {
                if (toks[q].is("(") || toks[q].is("[") ||
                    toks[q].is("<"))
                    ++d;
                else if (toks[q].is(")") || toks[q].is("]") ||
                         toks[q].is(">"))
                    --d;
                else if (toks[q].is("=") && d <= 0) {
                    eq = q;
                    break;
                }
            }
            if (eq > stmt + 2 && toks[eq - 1].ident() &&
                (toks[eq - 2].is(".") || toks[eq - 2].is("->")) &&
                toks[stmt].ident()) {
                const std::string field = toks[eq - 1].text;
                const std::string recvClass =
                    resolveReceiver(p, f, fn, eq - 2);
                const std::string root = toks[stmt].text;
                std::string ownerClass;
                const std::string what =
                    escapingExpr(p, f, env, selfOwned, fn.className,
                                 eq + 1, k, ownerClass);
                if (!what.empty() && isCarrier(recvClass)) {
                    addEdge(what, ownerClass,
                            recvClass + "::" + field,
                            "carrier/" + fnKey(fn) + "/" + field,
                            toks[stmt].line,
                            "address of node-owned state '" + what +
                                "' stored into carrier field " +
                                recvClass + "::" + field + " in " +
                                fnKey(fn) +
                                ": the pointer crosses the node "
                                "boundary with the message");
                } else if (!what.empty() && !recvClass.empty() &&
                           m.nodeOwned(recvClass) &&
                           isForeignParamRoot(root)) {
                    addEdge(what, ownerClass,
                            root + "." + field + " (" + recvClass + ")",
                            "store/" + fnKey(fn) + "/" + root + "." +
                                field,
                            toks[stmt].line,
                            "address of node-owned state '" + what +
                                "' stored into foreign " + recvClass +
                                " '" + root + "' in " + fnKey(fn) +
                                ": two nodes now alias one shard's "
                                "state");
                }
            }
            stmt = k + 1;
            paren = 0;
        }
    }

    // Call arguments: `other.method(&ownedState)` where `other` is a
    // foreign node-owned object (or a carrier being populated).
    for (const CallSite &cs : callSites(p, f, fn)) {
        if (cs.recvChain.empty() || cs.resolvedClass.empty())
            continue;
        const std::string root = receiverRoot(toks, cs.nameIdx);
        const bool foreign = isCarrier(cs.resolvedClass) ||
                             (m.nodeOwned(cs.resolvedClass) &&
                              !root.empty() && isForeignParamRoot(root));
        if (!foreign)
            continue;
        for (const auto &[alo, ahi] :
             splitArgs(toks, cs.argsBegin, cs.argsEnd)) {
            std::string ownerClass;
            const std::string what =
                escapingExpr(p, f, env, selfOwned, fn.className, alo,
                             ahi, ownerClass);
            if (what.empty())
                continue;
            addEdge(what, ownerClass,
                    cs.resolvedClass + "::" + cs.callee,
                    "arg/" + fnKey(fn) + "/" + cs.callee, cs.line,
                    "address of node-owned state '" + what +
                        "' passed to " + cs.resolvedClass +
                        "::" + cs.callee + " on foreign receiver '" +
                        (root.empty() ? cs.recvChain : root) + "' in " +
                        fnKey(fn));
            break;
        }
    }
}

/** Detector: node-owned state captured by reference (or `this`) into
 *  a lambda that reaches an event-scheduling sink. */
void
detectCaptures(const Project &p, const SourceFile &f, const FnDef &fn,
               OwnershipMap &m)
{
    const Tokens &toks = f.toks;
    const NameEnv env(p, fn);
    const bool selfOwned =
        !fn.className.empty() && m.nodeOwned(fn.className);

    for (const CallSite &cs : callSites(p, f, fn)) {
        const bool namedSink = isScheduleSink(cs.callee);
        const FnSummary *s = nullptr;
        if (!cs.key.empty()) {
            auto it = p.summaries.find(cs.key);
            if (it != p.summaries.end())
                s = &it->second;
        }
        if (!namedSink && s == nullptr)
            continue;
        const auto args = splitArgs(toks, cs.argsBegin, cs.argsEnd);
        for (std::size_t a = 0; a < args.size(); ++a) {
            if (!namedSink &&
                !(s != nullptr && s->paramToSink.count(int(a)) != 0))
                continue;
            for (std::size_t q = args[a].first;
                 q < args[a].second && q < toks.size(); ++q) {
                if (!toks[q].is("["))
                    continue;
                const std::size_t close = skipBalanced(toks, q);
                if (close >= toks.size() ||
                    (!toks[close].is("(") && !toks[close].is("{")))
                    continue; // subscript, not a lambda introducer

                bool capThis = false;
                bool refDefault = false;
                std::vector<std::string> refNames;
                for (std::size_t c = q + 1; c + 1 < close; ++c) {
                    if (toks[c].is("&")) {
                        if (toks[c + 1].ident())
                            refNames.push_back(toks[c + 1].text);
                        else
                            refDefault = true;
                    } else if (toks[c].ident() &&
                               toks[c].text == "this") {
                        capThis = true;
                    }
                }

                std::string what;
                std::string ownerClass;
                if (capThis && selfOwned) {
                    what = "this";
                    ownerClass = fn.className;
                } else if (refDefault && selfOwned) {
                    what = "[&] default capture";
                    ownerClass = fn.className;
                } else {
                    for (const std::string &name : refNames) {
                        bool isField = false;
                        const std::string rt = env.typeOf(name, isField);
                        if (isField && selfOwned) {
                            what = fn.className + "::" + name;
                            ownerClass = fn.className;
                            break;
                        }
                        const std::string cls =
                            rt.empty() ? ""
                                       : typeClassName(p.types, rt);
                        if (!cls.empty() && m.nodeOwned(cls)) {
                            what = name;
                            ownerClass = cls;
                            break;
                        }
                    }
                }
                if (what.empty())
                    continue;

                EscapeEdge e;
                e.rule = "event-capture-escape";
                e.scope = fnKey(fn);
                e.what = what;
                e.dest = cs.callee;
                e.file = f.rel;
                e.line = cs.line;
                e.fingerprint =
                    "capture/" + fnKey(fn) + "/" + cs.callee;
                e.message =
                    "node-owned state '" + what +
                    "' captured by reference into a callable "
                    "scheduled via '" +
                    cs.callee + "' in " + fnKey(fn) +
                    ": another shard could run the event against "
                    "this node's state";
                e.allowed = f.allows(cs.line, "event-capture-escape");
                m.edges.push_back(e);
                if (!e.allowed && !ownerClass.empty()) {
                    auto it = m.classes.find(ownerClass);
                    if (it != m.classes.end() &&
                        it->second.verdict == Own::NodeOwned) {
                        it->second.verdict = Own::Escapes;
                        it->second.why =
                            "escape at " + f.rel + ":" +
                            std::to_string(cs.line) + " (" +
                            e.fingerprint + ")";
                    }
                }
            }
        }
    }
}

std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += "\"";
    return out;
}

} // namespace

void
buildOwnership(Project &p)
{
    OwnershipMap &m = p.ownership;
    m.classes.clear();
    m.edges.clear();

    collectClasses(p, m);
    classifyClasses(p, m);

    for (const SourceFile &f : p.files) {
        if (!inOwnershipScope(f.dir))
            continue;
        detectStatics(f, m);
        for (const FnDef &fn : f.fns) {
            detectCrossNode(p, f, fn, m);
            detectCaptures(p, f, fn, m);
        }
    }
}

std::string
ownershipJson(const Project &p)
{
    const OwnershipMap &m = p.ownership;
    std::map<std::string, int> counts;
    for (const auto &[name, cv] : m.classes)
        ++counts[ownName(cv.verdict)];

    std::ostringstream o;
    o << "{\n"
      << "  \"tool\": \"shrimp_analyze\",\n"
      << "  \"report\": \"shard-ownership\",\n"
      << "  \"root\": \"Node\",\n"
      << "  \"summary\": {";
    bool first = true;
    for (const auto &[verdict, n] : counts) {
        o << (first ? " " : ", ") << jsonStr(verdict) << ": " << n;
        first = false;
    }
    o << " },\n"
      << "  \"classes\": [\n";
    std::size_t i = 0;
    for (const auto &[name, cv] : m.classes) {
        o << "    { \"name\": " << jsonStr(name) << ", \"verdict\": "
          << jsonStr(ownName(cv.verdict)) << ", \"why\": "
          << jsonStr(cv.why) << ", \"file\": " << jsonStr(cv.file)
          << ", \"line\": " << cv.line
          << ", \"carrier\": " << (cv.carrier ? "true" : "false")
          << ", \"annotated\": "
          << jsonStr(cv.annotatedOwned
                         ? "owned"
                         : (cv.annotatedShared ? "shared" : ""))
          << " }" << (++i < m.classes.size() ? "," : "") << "\n";
    }
    o << "  ],\n"
      << "  \"escapes\": [\n";
    for (std::size_t e = 0; e < m.edges.size(); ++e) {
        const EscapeEdge &ed = m.edges[e];
        o << "    { \"rule\": " << jsonStr(ed.rule) << ", \"scope\": "
          << jsonStr(ed.scope) << ", \"what\": " << jsonStr(ed.what)
          << ", \"dest\": " << jsonStr(ed.dest) << ", \"file\": "
          << jsonStr(ed.file) << ", \"line\": " << ed.line
          << ", \"allowed\": " << (ed.allowed ? "true" : "false")
          << ", \"fingerprint\": " << jsonStr(ed.fingerprint) << " }"
          << (e + 1 < m.edges.size() ? "," : "") << "\n";
    }
    o << "  ]\n"
      << "}\n";
    return o.str();
}

} // namespace shrimp::analyze
