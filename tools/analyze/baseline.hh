/**
 * @file
 * Baseline for shrimp_analyze: a checked-in list of accepted findings
 * (pre-existing architectural debt, pinned so it cannot grow).
 *
 * Format: one entry per line, `rule|file|fingerprint`; `#` comments
 * and blank lines ignored. Fingerprints are line-number-free (function
 * and include-edge identities), so ordinary edits don't churn the
 * file. Matching consumes entries multiset-style: two identical
 * findings need two identical entries. Entries that match nothing are
 * reported as stale (stderr warning) so the file shrinks when debt is
 * paid off.
 */

#ifndef SHRIMP_TOOLS_ANALYZE_BASELINE_HH
#define SHRIMP_TOOLS_ANALYZE_BASELINE_HH

#include <string>
#include <vector>

#include "model.hh"

namespace shrimp::analyze
{

struct BaselineResult
{
    std::vector<Finding> fresh;      //!< findings not in the baseline
    std::vector<Finding> suppressed; //!< findings matched by an entry
    std::vector<std::string> stale;  //!< entries that matched nothing
};

/** Load @p path (empty result if the file does not exist). */
std::vector<std::string> loadBaseline(const std::string &path,
                                      bool &existed);

/** Split @p findings against baseline @p entries. */
BaselineResult applyBaseline(const std::vector<Finding> &findings,
                             const std::vector<std::string> &entries);

/** One finding rendered as a baseline entry line. */
std::string baselineEntry(const Finding &f);

} // namespace shrimp::analyze

#endif // SHRIMP_TOOLS_ANALYZE_BASELINE_HH
