/**
 * @file
 * The thirteen shrimp_analyze rules. Each pass receives the fully parsed
 * and summarized Project and appends Findings; suppression
 * (annotations aside) is the baseline's job, not the rules'.
 *
 * Rule names (used in reports, baselines and `analyze: allow(...)`
 * annotations):
 *
 *   dropped-task             a call to a Task-returning function whose
 *                            result is neither co_awaited, spawned,
 *                            returned, nor (if stored) ever consumed —
 *                            a simulated activity that silently never
 *                            runs. Catches the `auto t = f();` hole
 *                            [[nodiscard]] cannot see.
 *   suspend-under-exclusion  a co_await between a lock/bus `acquire()`
 *                            and its `release()` in the same body —
 *                            an interleaving point inside a region the
 *                            code treats as exclusively held.
 *   determinism              wall-clock/PRNG calls or iteration over
 *                            pointer-keyed containers in src/sim and
 *                            src/check — host-address-dependent order
 *                            feeding simulated state or traces.
 *   layering                 include-graph cycles anywhere, and
 *                            includes that climb the layer order
 *                            base < check/sim < mem < net/nic < node
 *                            < vmmc < libraries.
 *   charged-time             a public Task-returning entry point in
 *                            nic/ or mem/ that never charges CPU/bus
 *                            time (directly or through its callees)
 *                            and is not annotated `analyze: free`.
 *   deadlock                 whole-program lock analysis on resolved
 *                            lock identities: lock-order cycles,
 *                            non-reentrant re-acquisition, and
 *                            co_await while a lock acquired by an
 *                            earlier callee is still held.
 *   determinism-taint        a wall-clock/PRNG value (or a call whose
 *                            summarized return carries one) flowing
 *                            into event scheduling — schedule(),
 *                            scheduleIn/At(), Delay{...} or a
 *                            parameter that provably reaches one.
 *   shared-mutable-static    namespace/class/function-scope mutable
 *                            `static` data in the layered src dirs:
 *                            storage every future shard would share.
 *                            Deliberate singletons are allowlisted
 *                            with `analyze: shared(reason)`.
 *   cross-node-escape        the address of node-owned state stored
 *                            into a carrier (net::Packet) field,
 *                            into a foreign node-owned object reached
 *                            through a ref/pointer parameter, or
 *                            passed to such an object's methods.
 *   event-capture-escape     node-owned state captured by reference
 *                            (or `this`) into a lambda handed to an
 *                            event-scheduling sink — an event another
 *                            shard could run.
 *   zero-lookahead-path      a cross-node-visible effect reachable
 *                            from a datapath entry with 0 charged
 *                            simulated time, a lookahead-charge gate
 *                            whose expression folds to 0, or an edge
 *                            class with no gate at all (lookahead.hh).
 *   zero-delay-cycle         a provably-zero scheduleIn whose target
 *                            reaches the scheduler back through
 *                            zero-charge call edges — an event chain
 *                            that could livelock a time window.
 *   cross-node-wake-uncharged
 *                            waking a foreign node's Condition/
 *                            AddrCondition (wake-effect annotation, or
 *                            notifyAll/notifyRange/notifyWrite on a
 *                            parameter-rooted receiver) without
 *                            passing through a charged path.
 */

#ifndef SHRIMP_TOOLS_ANALYZE_RULES_HH
#define SHRIMP_TOOLS_ANALYZE_RULES_HH

#include "model.hh"

namespace shrimp::analyze
{

void ruleDroppedTask(const Project &p, std::vector<Finding> &out);
void ruleSuspendUnderExclusion(const Project &p, std::vector<Finding> &out);
void ruleDeterminism(const Project &p, std::vector<Finding> &out);
void ruleLayering(const Project &p, std::vector<Finding> &out);
void ruleChargedTime(const Project &p, std::vector<Finding> &out);
void ruleDeadlock(const Project &p, std::vector<Finding> &out);
void ruleTaint(const Project &p, std::vector<Finding> &out);
void ruleSharedMutableStatic(const Project &p, std::vector<Finding> &out);
void ruleCrossNodeEscape(const Project &p, std::vector<Finding> &out);
void ruleEventCaptureEscape(const Project &p, std::vector<Finding> &out);
void ruleZeroLookaheadPath(const Project &p, std::vector<Finding> &out);
void ruleZeroDelayCycle(const Project &p, std::vector<Finding> &out);
void ruleCrossNodeWakeUncharged(const Project &p,
                                std::vector<Finding> &out);

} // namespace shrimp::analyze

#endif // SHRIMP_TOOLS_ANALYZE_RULES_HH
