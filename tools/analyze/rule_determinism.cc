/**
 * @file
 * determinism: the simulator core (src/sim) and the checkers
 * (src/check) must behave identically run-to-run — the figure benches
 * pin trace hashes, and the race detector's reports are diffed in
 * tests. Two things break that silently:
 *
 *   - wall-clock / PRNG sources (also banned tree-wide by the Python
 *     lint; re-checked here so the analyzer is self-contained), and
 *   - *iterating* a pointer-keyed container: iteration order follows
 *     host addresses (ASLR), so anything derived from it — report
 *     order, destruction order, map-to-vector copies — differs across
 *     runs. Lookups and erases are fine; range-for / .begin() are not.
 *
 * Pointer-keyed names are collected from declarations in the same
 * file (members and locals alike) and propagated through
 * `auto copy = name;`.
 */

#include <cstddef>
#include <set>

#include "rules.hh"

namespace shrimp::analyze
{

namespace
{

const std::set<std::string> bannedIdents = {
    "rand",         "srand",        "drand48",
    "random",       "random_device", "mt19937",
    "system_clock", "steady_clock", "high_resolution_clock",
    "gettimeofday", "clock_gettime", "localtime",
    "gmtime",
};

const std::set<std::string> assocContainers = {
    "unordered_map", "unordered_set", "map", "set", "multimap",
    "multiset", "unordered_multimap", "unordered_multiset",
};

/** Is the first template argument of the list opening at @p lt (the
 *  `<`) a pointer type? @p close receives one past the matching `>`. */
bool
firstArgIsPointer(const Tokens &toks, std::size_t lt, std::size_t &close)
{
    int depth = 0;
    bool ptr = false;
    bool inFirst = true;
    for (std::size_t k = lt; k < toks.size() && k < lt + 200; ++k) {
        const Token &t = toks[k];
        if (t.is("<"))
            ++depth;
        else if (t.is(">")) {
            if (--depth == 0) {
                close = k + 1;
                return ptr;
            }
        } else if (t.is(",") && depth == 1)
            inFirst = false;
        else if (t.is("*") && depth == 1 && inFirst)
            ptr = true;
        else if (t.is(";") || t.is("{"))
            break; // stray comparison, not a template list
    }
    close = lt + 1;
    return false;
}

} // namespace

void
ruleDeterminism(const Project &p, std::vector<Finding> &out)
{
    // Pass 1: names declared as pointer-keyed associative containers,
    // collected across *all* in-scope files — a member declared in
    // simulator.hh is iterated from event_queue.cc — plus per-file
    // `auto copy = name;` propagation (two sweeps so order of
    // appearance doesn't matter).
    std::set<std::string> ptrKeyed;
    for (const SourceFile &f : p.files) {
        if (f.dir != "sim" && f.dir != "check")
            continue;
        const Tokens &toks = f.toks;
        for (std::size_t k = 0; k + 1 < toks.size(); ++k) {
            if (!toks[k].ident() || !toks[k + 1].is("<") ||
                assocContainers.count(toks[k].text) == 0)
                continue;
            std::size_t close = 0;
            if (!firstArgIsPointer(toks, k + 1, close))
                continue;
            std::size_t v = close;
            while (v < toks.size() &&
                   (toks[v].is("&") || toks[v].is("*") ||
                    toks[v].is("const")))
                ++v;
            if (v < toks.size() && toks[v].ident())
                ptrKeyed.insert(toks[v].text);
        }
    }
    for (const SourceFile &f : p.files) {
        if (f.dir != "sim" && f.dir != "check")
            continue;
        const Tokens &toks = f.toks;
        for (int sweep = 0; sweep < 2; ++sweep) {
            for (std::size_t k = 0; k + 3 < toks.size(); ++k) {
                if (toks[k].is("auto")) {
                    std::size_t v = k + 1;
                    while (v < toks.size() &&
                           (toks[v].is("&") || toks[v].is("const")))
                        ++v;
                    if (toks[v].ident() && toks[v + 1].is("=") &&
                        toks[v + 2].ident() && toks[v + 3].is(";") &&
                        ptrKeyed.count(toks[v + 2].text) != 0)
                        ptrKeyed.insert(toks[v].text);
                }
            }
        }
    }

    // Pass 2: findings.
    for (const SourceFile &f : p.files) {
        if (f.dir != "sim" && f.dir != "check")
            continue;
        const Tokens &toks = f.toks;
        for (std::size_t k = 0; k < toks.size(); ++k) {
            const Token &t = toks[k];
            if (!t.ident())
                continue;

            if (bannedIdents.count(t.text) != 0 &&
                !f.allows(t.line, "determinism")) {
                out.push_back(
                    {"determinism", f.rel, t.line, "banned/" + t.text,
                     "'" + t.text + "' in " + f.dir +
                         "/: simulations must be driven by Tick time "
                         "and seeded state only"});
                continue;
            }
            if (t.text == "time" && k + 2 < toks.size() &&
                toks[k + 1].is("(") &&
                (toks[k + 2].is("NULL") || toks[k + 2].is("nullptr") ||
                 toks[k + 2].text == "0") &&
                !f.allows(t.line, "determinism")) {
                out.push_back(
                    {"determinism", f.rel, t.line, "banned/time",
                     "'time()' in " + f.dir +
                         "/: wall clock reads are banned in the "
                         "simulator core"});
                continue;
            }

            // Range-for over a pointer-keyed container.
            if (t.is("for") && k + 1 < toks.size() && toks[k + 1].is("(")) {
                int depth = 0;
                std::size_t colon = 0;
                std::size_t end = k + 1;
                for (std::size_t q = k + 1; q < toks.size(); ++q) {
                    if (toks[q].is("("))
                        ++depth;
                    else if (toks[q].is(")") && --depth == 0) {
                        end = q;
                        break;
                    } else if (toks[q].is(":") && depth == 1 && !colon)
                        colon = q;
                }
                if (colon) {
                    for (std::size_t q = colon + 1; q < end; ++q) {
                        if (toks[q].ident() &&
                            ptrKeyed.count(toks[q].text) != 0 &&
                            !f.allows(toks[q].line, "determinism")) {
                            out.push_back(
                                {"determinism", f.rel, toks[q].line,
                                 "ptr-iter/" + toks[q].text,
                                 "iterating pointer-keyed container '" +
                                     toks[q].text +
                                     "': order follows host addresses "
                                     "and differs across runs"});
                            break;
                        }
                    }
                }
                continue;
            }

            // name.begin() / name.cbegin() on a pointer-keyed container.
            if (ptrKeyed.count(t.text) != 0 && k + 3 < toks.size() &&
                (toks[k + 1].is(".") || toks[k + 1].is("->")) &&
                (toks[k + 2].text == "begin" ||
                 toks[k + 2].text == "cbegin") &&
                toks[k + 3].is("(") &&
                !f.allows(t.line, "determinism")) {
                out.push_back(
                    {"determinism", f.rel, t.line,
                     "ptr-iter/" + t.text,
                     "iterator over pointer-keyed container '" + t.text +
                         "': order follows host addresses and differs "
                         "across runs"});
            }
        }
    }
}

} // namespace shrimp::analyze
