#include "baseline.hh"

#include <fstream>
#include <map>

namespace shrimp::analyze
{

std::string
baselineEntry(const Finding &f)
{
    return f.rule + "|" + f.file + "|" + f.fingerprint;
}

std::vector<std::string>
loadBaseline(const std::string &path, bool &existed)
{
    std::vector<std::string> entries;
    std::ifstream in(path);
    existed = in.good();
    std::string line;
    while (std::getline(in, line)) {
        while (!line.empty() &&
               (line.back() == '\r' || line.back() == ' '))
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        entries.push_back(line);
    }
    return entries;
}

BaselineResult
applyBaseline(const std::vector<Finding> &findings,
              const std::vector<std::string> &entries)
{
    std::map<std::string, int> pool;
    for (const std::string &e : entries)
        ++pool[e];

    BaselineResult r;
    for (const Finding &f : findings) {
        auto it = pool.find(baselineEntry(f));
        if (it != pool.end() && it->second > 0) {
            --it->second;
            r.suppressed.push_back(f);
        } else {
            r.fresh.push_back(f);
        }
    }
    for (const auto &[entry, left] : pool)
        for (int i = 0; i < left; ++i)
            r.stale.push_back(entry);
    return r;
}

} // namespace shrimp::analyze
