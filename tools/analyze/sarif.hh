/**
 * @file
 * SARIF 2.1.0 output for shrimp_analyze, so CI can upload findings to
 * code-scanning UIs. One run, one tool ("shrimp_analyze"), one rule
 * entry per analyzer rule; each finding becomes a result with its
 * file/line location and the baseline fingerprint under
 * partialFingerprints (key "shrimpAnalyze/v1") so scanning backends
 * track findings across line drift the same way the local baseline
 * does.
 */

#ifndef SHRIMP_TOOLS_ANALYZE_SARIF_HH
#define SHRIMP_TOOLS_ANALYZE_SARIF_HH

#include <set>
#include <string>
#include <vector>

#include "model.hh"

namespace shrimp::analyze
{

/** Render @p findings as a SARIF 2.1.0 JSON document. @p srcRootLabel
 *  is prefixed to finding paths that are relative to the primary scan
 *  root (e.g. "src"); paths whose first component is in
 *  @p labeledRoots (secondary roots keep their label in the path,
 *  "tools/...") are emitted as-is. */
std::string sarifReport(const std::vector<Finding> &findings,
                        const std::string &srcRootLabel,
                        const std::set<std::string> &labeledRoots);

} // namespace shrimp::analyze

#endif // SHRIMP_TOOLS_ANALYZE_SARIF_HH
