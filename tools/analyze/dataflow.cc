#include "dataflow.hh"

#include <cstddef>

#include "callgraph.hh"
#include "parse.hh"
#include "types.hh"

namespace shrimp::analyze
{

namespace
{

/** Primitives that charge simulated time when called/awaited (kept in
 *  sync with rule_charged.cc). */
const std::set<std::string> chargePrims = {
    "Delay", "use", "transfer", "chargeOp", "compute", "copy",
};

const std::set<std::string> nondetSources = {
    "rand",         "srand",         "drand48",
    "random",       "random_device", "mt19937",
    "system_clock", "steady_clock",  "high_resolution_clock",
    "gettimeofday", "clock_gettime", "localtime",
    "gmtime",       "time",
};

const std::set<std::string> scheduleSinks = {
    "schedule", "scheduleIn", "scheduleAt", "Delay",
};

/** The raw identifier chain (a, a.b, a->b) ending just before @p i,
 *  used as a last-resort lock identity when types cannot resolve it. */
std::string
rawChain(const Tokens &toks, std::size_t i)
{
    std::string s;
    std::size_t k = i;
    while (k > 0) {
        const Token &t = toks[k - 1];
        if (t.is("co_await") || t.is("return") || t.is("co_return"))
            break;
        if (t.ident() || t.is(".") || t.is("->") || t.is("::")) {
            s = t.text + s;
            --k;
            continue;
        }
        break;
    }
    return s;
}

/** Everything buildSummaries() needs from one function body, gathered
 *  once so the fixpoint iterations are pure bit-flipping. */
struct Facts
{
    std::string key;
    bool coAwait = false;
    bool charge = false;
    bool directTaint = false;              //!< return stmt touches a source
    std::vector<std::string> retCallees;   //!< keys called in return stmts
    std::vector<std::string> callKeys;     //!< all resolved callee keys
    std::set<std::string> ownAcquires;
    std::set<std::string> ownReleases;
    std::set<int> taskParams;              //!< Task/Task-container params
    std::set<int> directConsumed;
    std::set<int> directSink;
    /** param index -> (callee key or "" when unresolved, arg index). */
    std::vector<std::tuple<int, std::string, int>> flows;
};

} // namespace

bool
isNondetSource(const std::string &name)
{
    return nondetSources.count(name) != 0;
}

bool
isScheduleSink(const std::string &name)
{
    return scheduleSinks.count(name) != 0;
}

std::vector<LockOp>
lockOps(const Project &p, const SourceFile &f, const FnDef &fn)
{
    const Tokens &toks = f.toks;
    std::vector<LockOp> out;
    for (std::size_t k = fn.bodyBegin + 2; k + 1 < fn.bodyEnd; ++k) {
        const Token &t = toks[k];
        if (!t.ident() || (t.text != "acquire" && t.text != "release"))
            continue;
        if (!toks[k + 1].is("(") ||
            (!toks[k - 1].is(".") && !toks[k - 1].is("->")))
            continue;

        LockOp op;
        op.isAcquire = t.text == "acquire";
        op.line = t.line;
        op.tokIdx = k;

        // The lock object is the last chain segment before the dot.
        if (toks[k - 2].ident()) {
            const std::string &name = toks[k - 2].text;
            if (k >= 4 &&
                (toks[k - 3].is(".") || toks[k - 3].is("->"))) {
                // `obj.field.acquire()`: the field belongs to obj's class.
                const std::string cls = resolveReceiver(p, f, fn, k - 3);
                op.id = cls.empty() ? rawChain(toks, k - 1)
                                    : cls + "::" + name;
            } else if (k >= 3 && toks[k - 3].is("::")) {
                op.id = rawChain(toks, k - 1);
            } else {
                bool isLocal = false;
                for (const Local &l : fn.locals)
                    if (l.name == name)
                        isLocal = true;
                for (const Param &pa : fn.params)
                    if (pa.name == name)
                        isLocal = true;
                if (isLocal)
                    op.id = fnKey(fn) + "/" + name;
                else if (!fn.className.empty())
                    op.id = fn.className + "::" + name;
                else
                    op.id = name;
            }
        } else {
            op.id = rawChain(toks, k - 1);
        }
        if (op.id.empty())
            continue;
        out.push_back(op);
    }
    return out;
}

void
buildSummaries(Project &p)
{
    // Seed: every definition gets a summary entry up front so
    // callSites() can resolve unqualified calls to defined free
    // functions through p.summaries.
    p.summaries.clear();
    for (const SourceFile &f : p.files)
        for (const FnDef &fn : f.fns)
            p.summaries[fnKey(fn)].defined = true;

    // Gather per-function facts (one linear pass per body).
    std::vector<Facts> all;
    for (const SourceFile &f : p.files) {
        for (const FnDef &fn : f.fns) {
            Facts fa;
            fa.key = fnKey(fn);

            const Tokens &toks = f.toks;
            for (std::size_t k = fn.bodyBegin + 1; k < fn.bodyEnd; ++k) {
                const Token &t = toks[k];
                if (t.is("co_await"))
                    fa.coAwait = true;
                else if (t.ident() && chargePrims.count(t.text) != 0 &&
                         k + 1 < fn.bodyEnd &&
                         (toks[k + 1].is("(") || toks[k + 1].is("{")))
                    fa.charge = true;
            }

            for (const LockOp &op : lockOps(p, f, fn)) {
                if (op.isAcquire)
                    fa.ownAcquires.insert(op.id);
                else
                    fa.ownReleases.insert(op.id);
            }

            const std::vector<CallSite> calls = callSites(p, f, fn);
            for (const CallSite &cs : calls) {
                if (!cs.key.empty()) {
                    fa.callKeys.push_back(cs.key);
                    if (cs.stmtReturns)
                        fa.retCallees.push_back(cs.key);
                }
            }

            // Direct taint: a return statement mentioning a source.
            {
                std::size_t stmt = fn.bodyBegin + 1;
                int paren = 0;
                bool hasRet = false, hasSrc = false;
                for (std::size_t k = fn.bodyBegin + 1; k < fn.bodyEnd;
                     ++k) {
                    const Token &t = toks[k];
                    if (t.is("(") || t.is("["))
                        ++paren;
                    else if (t.is(")") || t.is("]"))
                        --paren;
                    else if ((t.is(";") && paren == 0) || t.is("{") ||
                             t.is("}")) {
                        if (hasRet && hasSrc)
                            fa.directTaint = true;
                        stmt = k + 1;
                        paren = 0;
                        hasRet = hasSrc = false;
                    } else if (t.is("return") || t.is("co_return"))
                        hasRet = true;
                    else if (t.ident() &&
                             nondetSources.count(t.text) != 0)
                        hasSrc = true;
                }
                (void)stmt;
            }

            // Parameter flows. Task-typed params get consumption
            // analysis; every named param gets sink-flow tracking.
            for (std::size_t i = 0; i < fn.params.size(); ++i) {
                const Param &pa = fn.params[i];
                if (pa.name.empty())
                    continue;
                const bool isTaskParam =
                    typeIsTask(p.types, pa.type) ||
                    typeIsTaskContainer(p.types, pa.type);
                if (isTaskParam)
                    fa.taskParams.insert(int(i));

                // Scan every mention of the name in the body.
                for (std::size_t k = fn.bodyBegin + 1; k < fn.bodyEnd;
                     ++k) {
                    if (!toks[k].ident() || toks[k].text != pa.name)
                        continue;
                    const Token &prev = toks[k - 1];
                    const Token *next =
                        k + 1 < fn.bodyEnd ? &toks[k + 1] : nullptr;
                    if (prev.is(".") || prev.is("->") || prev.is("::"))
                        continue; // member of something else, same name
                    if (isTaskParam) {
                        if (next && (next->is(".") || next->is("->")))
                            fa.directConsumed.insert(int(i));
                        else if (prev.is(":")) // range-for
                            fa.directConsumed.insert(int(i));
                        else if (prev.is("=")) // stored somewhere
                            fa.directConsumed.insert(int(i));
                        else if (prev.is("co_await") ||
                                 prev.is("return") ||
                                 prev.is("co_return"))
                            fa.directConsumed.insert(int(i));
                    }
                }

                // Flows into call arguments.
                for (const CallSite &cs : calls) {
                    const auto args =
                        splitArgs(toks, cs.argsBegin, cs.argsEnd);
                    for (std::size_t a = 0; a < args.size(); ++a) {
                        bool mentions = false;
                        for (std::size_t q = args[a].first;
                             q < args[a].second; ++q)
                            if (toks[q].ident() &&
                                toks[q].text == pa.name)
                                mentions = true;
                        if (!mentions)
                            continue;
                        // Nested calls own their argument tokens; only
                        // credit the innermost call. A mention inside a
                        // nested call's parens is attributed when that
                        // nested call is visited.
                        bool inNested = false;
                        for (const CallSite &inner : calls) {
                            if (inner.nameIdx == cs.nameIdx)
                                continue;
                            if (inner.argsBegin > args[a].first &&
                                inner.argsEnd <= args[a].second) {
                                for (std::size_t q = inner.argsBegin;
                                     q < inner.argsEnd; ++q)
                                    if (toks[q].ident() &&
                                        toks[q].text == pa.name)
                                        inNested = true;
                            }
                        }
                        if (inNested)
                            continue;
                        fa.flows.emplace_back(int(i), cs.key, int(a));
                        if (scheduleSinks.count(cs.callee) != 0)
                            fa.directSink.insert(int(i));
                    }
                }
            }

            all.push_back(std::move(fa));
        }
    }

    // Fixpoint: propagate caller-ward until stable. Multiple
    // definitions under one key (overloads, same-named methods) join
    // conservatively via |=.
    for (bool changed = true; changed;) {
        changed = false;
        for (const Facts &fa : all) {
            FnSummary &s = p.summaries[fa.key];

            auto callee = [&](const std::string &key) -> const FnSummary * {
                auto it = p.summaries.find(key);
                return it == p.summaries.end() ? nullptr : &it->second;
            };

            if (!s.suspends) {
                bool v = fa.coAwait;
                for (const std::string &k : fa.callKeys)
                    if (const FnSummary *cs = callee(k);
                        cs && cs->suspends)
                        v = true;
                if (v) {
                    s.suspends = true;
                    changed = true;
                }
            }
            if (!s.charges) {
                bool v = fa.charge;
                for (const std::string &k : fa.callKeys)
                    if (const FnSummary *cs = callee(k); cs && cs->charges)
                        v = true;
                if (v) {
                    s.charges = true;
                    changed = true;
                }
            }
            if (!s.returnsTaint) {
                bool v = fa.directTaint;
                for (const std::string &k : fa.retCallees)
                    if (const FnSummary *cs = callee(k);
                        cs && cs->returnsTaint)
                        v = true;
                if (v) {
                    s.returnsTaint = true;
                    changed = true;
                }
            }
            {
                std::set<std::string> acq = fa.ownAcquires;
                std::set<std::string> rel = fa.ownReleases;
                for (const std::string &k : fa.callKeys)
                    if (const FnSummary *cs = callee(k)) {
                        acq.insert(cs->acquires.begin(),
                                   cs->acquires.end());
                        rel.insert(cs->releases.begin(),
                                   cs->releases.end());
                    }
                for (const std::string &a : acq)
                    if (s.acquires.insert(a).second)
                        changed = true;
                for (const std::string &r : rel)
                    if (s.releases.insert(r).second)
                        changed = true;
            }
            for (int i : fa.taskParams) {
                if (s.taskParams.insert(i).second)
                    changed = true;
                if (s.consumesTaskParam.count(i) != 0)
                    continue;
                bool consumed = fa.directConsumed.count(i) != 0;
                for (const auto &[pi, key, arg] : fa.flows) {
                    if (pi != i || consumed)
                        continue;
                    if (key.empty()) {
                        consumed = true; // unresolved callee: assume yes
                    } else if (const FnSummary *cs = callee(key)) {
                        if (!cs->defined ||
                            cs->consumesTaskParam.count(arg) != 0)
                            consumed = true;
                    } else {
                        consumed = true; // declared-only: extern-ish
                    }
                }
                if (consumed) {
                    s.consumesTaskParam.insert(i);
                    changed = true;
                }
            }
            for (const auto &[pi, key, arg] : fa.flows) {
                if (s.paramToSink.count(pi) != 0)
                    continue;
                bool sink = fa.directSink.count(pi) != 0;
                if (!sink && !key.empty())
                    if (const FnSummary *cs = callee(key))
                        if (cs->paramToSink.count(arg) != 0)
                            sink = true;
                if (sink) {
                    s.paramToSink.insert(pi);
                    changed = true;
                }
            }
            for (int i : fa.directSink)
                if (s.paramToSink.insert(i).second)
                    changed = true;
        }
    }
}

const FnSummary *
Project::summary(const std::string &cls, const std::string &name) const
{
    if (!cls.empty()) {
        auto it = summaries.find(cls + "::" + name);
        if (it != summaries.end())
            return &it->second;
    }
    auto it = summaries.find(name);
    return it == summaries.end() ? nullptr : &it->second;
}

} // namespace shrimp::analyze
