#include "types.hh"

#include <cstddef>

#include "parse.hh"

namespace shrimp::analyze
{

namespace
{

/** Statement-leading keywords that can never start a declaration we
 *  care about. */
bool
neverStartsDecl(const std::string &s)
{
    static const std::set<std::string> kw = {
        "return", "co_return", "co_await", "co_yield", "delete",
        "throw", "goto", "break", "continue", "if", "else", "for",
        "while", "do", "switch", "case", "default", "using", "typedef",
        "static_assert", "friend", "public", "private", "protected",
        "template", "new", "operator", "namespace", "enum", "extern",
        "asm", "try", "catch", "sizeof", "struct", "class", "union",
    };
    return kw.count(s) != 0;
}

/**
 * Classify the statement tokens [lo, hi) as a variable declaration
 * `TYPE name ;` / `TYPE name = init` / `TYPE name { init }` (with
 * @p hi pointing at the terminator/initializer). Returns true and
 * fills @p name/@p type on success.
 */
bool
classifyDecl(const Tokens &toks, std::size_t lo, std::size_t hi,
             std::string &name, std::string &type)
{
    if (hi <= lo + 1 || hi > toks.size())
        return false;
    if (!toks[lo].ident() || neverStartsDecl(toks[lo].text))
        return false;

    // Find where the declared name ends: at a top-level `=` or at the
    // statement end. Reject call/array/multi-declarator shapes.
    std::size_t declEnd = hi;
    int angle = 0;
    for (std::size_t k = lo; k < hi; ++k) {
        const Token &t = toks[k];
        if (t.is("<"))
            ++angle;
        else if (t.is(">"))
            --angle;
        else if (angle > 0)
            continue;
        else if (t.is("=")) {
            declEnd = k;
            break;
        } else if (t.is("(") || t.is("[") || t.is(",") || t.is(".") ||
                   t.is("->") || t.is("{"))
            return false;
    }
    if (declEnd < lo + 2)
        return false;
    const Token &last = toks[declEnd - 1];
    if (!last.ident() || neverStartsDecl(last.text))
        return false;
    const Token &prev = toks[declEnd - 2];
    if (prev.is("::"))
        return false; // qualified name: an expression, not a decl
    name = last.text;
    type = typeText(toks, lo, declEnd - 1);
    if (type.empty())
        return false;
    return true;
}

/** Scan [lo, hi) statement-by-statement (skipping nested braces and
 *  parens) and report each variable declaration found. */
template <typename Fn>
void
scanDecls(const Tokens &toks, std::size_t lo, std::size_t hi,
          bool skipBraces, Fn &&emit)
{
    std::size_t stmt = lo;
    for (std::size_t k = lo; k < hi && k < toks.size(); ++k) {
        const Token &t = toks[k];
        if (t.is("(") || t.is("[")) {
            k = skipBalanced(toks, k) - 1;
            continue;
        }
        if (t.is("{")) {
            // `TYPE name { init };` declares too; classify up to here.
            std::string name, type;
            if (classifyDecl(toks, stmt, k, name, type))
                emit(name, type, toks[stmt].line);
            if (skipBraces) {
                k = skipBalanced(toks, k) - 1;
                stmt = k + 1;
            } else {
                stmt = k + 1;
            }
            continue;
        }
        if (t.is("}") || t.is(";") || t.is(":")) {
            if (t.is(";")) {
                std::string name, type;
                if (classifyDecl(toks, stmt, k, name, type))
                    emit(name, type, toks[stmt].line);
            }
            stmt = k + 1;
            continue;
        }
    }
}

} // namespace

void
extractTypes(SourceFile &f)
{
    // Class data members: scan each class body, skipping everything
    // brace-nested (method bodies, nested classes register their own
    // ClassDef and are scanned separately).
    for (const ClassDef &cd : f.classes) {
        scanDecls(f.toks, cd.bodyBegin + 1,
                  cd.bodyEnd > 0 ? cd.bodyEnd - 1 : cd.bodyBegin + 1,
                  /*skipBraces=*/true,
                  [&](const std::string &name, const std::string &type,
                      int line) {
                      f.fields.push_back({cd.name, name, type, line});
                  });
    }
    // Function-body locals: nested blocks are statements too, so
    // braces are not skipped (lambda bodies included — their locals
    // just join the enclosing function's scope, which is the right
    // granularity for the statement-level rules).
    for (FnDef &fn : f.fns) {
        scanDecls(f.toks, fn.bodyBegin + 1,
                  fn.bodyEnd > 0 ? fn.bodyEnd - 1 : fn.bodyBegin + 1,
                  /*skipBraces=*/false,
                  [&](const std::string &name, const std::string &type,
                      int line) {
                      fn.locals.push_back({name, type, line});
                  });
    }
}

std::string
TypeIndex::resolve(const std::string &type) const
{
    std::string t = stripCv(type);
    for (int guard = 0; guard < 8; ++guard) {
        auto it = aliases.find(t);
        if (it == aliases.end())
            return t;
        t = stripCv(it->second);
    }
    return t;
}

void
buildTypeIndex(Project &p)
{
    TypeIndex &ix = p.types;
    for (const SourceFile &f : p.files)
        for (const auto &[name, type] : f.aliases)
            ix.aliases.emplace(name, type); // first definition wins

    for (const SourceFile &f : p.files) {
        for (const FieldDecl &fd : f.fields)
            if (!fd.className.empty() && fd.className != "?")
                ix.fields[fd.className].emplace(fd.name, fd.type);
        for (const MemberDecl &d : f.members)
            if (!d.className.empty() && d.className != "?" &&
                !d.retType.empty())
                ix.methods[d.className].emplace(d.name, d.retType);
    }

    // Free functions: only names every declaration agrees on.
    std::map<std::string, std::pair<std::string, bool>> free; // type, ok
    for (const SourceFile &f : p.files) {
        for (const FnDef &d : f.fns) {
            if (!d.className.empty() || d.retType.empty())
                continue;
            auto [it, fresh] = free.emplace(d.name,
                                            std::make_pair(d.retType,
                                                           true));
            if (!fresh && it->second.first != d.retType)
                it->second.second = false;
        }
    }
    for (const auto &[name, tv] : free)
        if (tv.second)
            ix.freeFns.emplace(name, tv.first);
}

std::string
stripCv(const std::string &type)
{
    std::string t = type;
    auto stripPrefix = [&](const char *p) {
        const std::size_t n = std::string(p).size();
        if (t.compare(0, n, p) == 0)
            t = t.substr(n);
    };
    for (int i = 0; i < 3; ++i) {
        stripPrefix("const ");
        stripPrefix("volatile ");
        stripPrefix("static ");
    }
    while (!t.empty() &&
           (t.back() == '&' || t.back() == '*' || t.back() == ' '))
        t.pop_back();
    // "const" glued to a trailing ref has already gone with the '&'.
    if (t.size() > 5 && t.compare(t.size() - 5, 5, "const") == 0 &&
        t[t.size() - 6] == ' ')
        t = t.substr(0, t.size() - 6);
    return t;
}

namespace
{

/** The outermost template name of @p type ("std::vector<X>" ->
 *  "vector"), or the last `::` component when not a template. */
std::string
outerName(const std::string &type)
{
    const std::size_t lt = type.find('<');
    std::string head = lt == std::string::npos ? type
                                               : type.substr(0, lt);
    const std::size_t colons = head.rfind("::");
    if (colons != std::string::npos)
        head = head.substr(colons + 2);
    while (!head.empty() && head.back() == ' ')
        head.pop_back();
    return head;
}

/** Top-level template arguments of @p type, split on depth-1 commas. */
std::vector<std::string>
templateArgs(const std::string &type)
{
    std::vector<std::string> out;
    const std::size_t lt = type.find('<');
    if (lt == std::string::npos)
        return out;
    int depth = 0;
    std::size_t start = lt + 1;
    for (std::size_t i = lt; i < type.size(); ++i) {
        const char c = type[i];
        if (c == '<') {
            ++depth;
        } else if (c == '>') {
            if (--depth == 0) {
                if (i > start)
                    out.push_back(type.substr(start, i - start));
                break;
            }
        } else if (c == ',' && depth == 1) {
            out.push_back(type.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

const std::set<std::string> taskContainers = {
    "vector", "deque", "list", "array", "queue", "stack",
    "optional", "map", "unordered_map", "multimap", "set",
    "initializer_list", "span", "pair", "tuple",
};

const std::set<std::string> ptrWrappers = {
    "unique_ptr", "shared_ptr", "reference_wrapper", "optional",
};

} // namespace

bool
typeIsTask(const TypeIndex &ix, const std::string &type)
{
    const std::string t = ix.resolve(type);
    return outerName(t) == "Task" && t.find('<') != std::string::npos;
}

bool
typeIsTaskContainer(const TypeIndex &ix, const std::string &type)
{
    const std::string t = ix.resolve(type);
    if (taskContainers.count(outerName(t)) == 0)
        return false;
    for (const std::string &arg : templateArgs(t))
        if (typeIsTask(ix, arg) || typeIsTaskContainer(ix, arg))
            return true;
    return false;
}

std::string
typeClassName(const TypeIndex &ix, const std::string &type)
{
    std::string t = ix.resolve(type);
    for (int guard = 0; guard < 4; ++guard) {
        if (ptrWrappers.count(outerName(t)) != 0) {
            const auto args = templateArgs(t);
            if (args.empty())
                return "";
            t = ix.resolve(args[0]);
            continue;
        }
        break;
    }
    if (t.find('<') != std::string::npos)
        return ""; // other templates: not a project class
    return outerName(t);
}

} // namespace shrimp::analyze
