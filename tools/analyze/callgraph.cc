#include "callgraph.hh"

#include <cstddef>

#include "parse.hh"
#include "types.hh"

namespace shrimp::analyze
{

namespace
{

bool
isCallableName(const Token &t)
{
    static const std::set<std::string> kw = {
        "if", "for", "while", "switch", "catch", "return", "sizeof",
        "alignof", "new", "delete", "static_assert", "decltype",
        "co_await", "co_return", "co_yield", "throw",
        "void", "int", "char", "bool", "float", "double", "long",
        "short", "unsigned", "signed", "auto", "requires", "alignas",
        "defined", "assert", "noexcept",
    };
    return t.ident() && kw.count(t.text) == 0;
}

/** The declared type of plain name @p name in the scope of @p fn:
 *  locals first, then parameters, then fields of the enclosing class
 *  (and, as a last resort, any class the file declares — single-file
 *  fixtures have no enclosing qualName). "" when unknown. */
std::string
nameType(const Project &p, const SourceFile &f, const FnDef &fn,
         const std::string &name)
{
    for (const Local &l : fn.locals)
        if (l.name == name)
            return l.type;
    for (const Param &pa : fn.params)
        if (pa.name == name)
            return pa.type;
    if (!fn.className.empty()) {
        auto cit = p.types.fields.find(fn.className);
        if (cit != p.types.fields.end()) {
            auto fit = cit->second.find(name);
            if (fit != cit->second.end())
                return fit->second;
        }
    }
    (void)f;
    return "";
}

} // namespace

std::string
fnKey(const FnDef &fn)
{
    return fn.className.empty() ? fn.name
                                : fn.className + "::" + fn.name;
}

std::vector<std::pair<std::size_t, std::size_t>>
splitArgs(const Tokens &toks, std::size_t argsBegin, std::size_t argsEnd)
{
    std::vector<std::pair<std::size_t, std::size_t>> out;
    if (argsBegin >= argsEnd)
        return out;
    int depth = 0;
    std::size_t start = argsBegin;
    for (std::size_t k = argsBegin; k < argsEnd; ++k) {
        const Token &t = toks[k];
        if (t.is("(") || t.is("[") || t.is("{"))
            ++depth;
        else if (t.is(")") || t.is("]") || t.is("}"))
            --depth;
        else if (t.is(",") && depth == 0) {
            out.emplace_back(start, k);
            start = k + 1;
        }
    }
    out.emplace_back(start, argsEnd);
    return out;
}

std::string
resolveReceiver(const Project &p, const SourceFile &f, const FnDef &fn,
                std::size_t dotIdx)
{
    const Tokens &toks = f.toks;

    // Collect the chain segments right-to-left: ident or ident() hops
    // separated by `.`/`->`. A `)` that closes a call hop is walked
    // through; anything else ends the chain.
    struct Seg
    {
        std::string name;
        bool isCall = false;
    };
    std::vector<Seg> segs;
    std::size_t k = dotIdx; // token index of the `.`/`->`
    while (k > 0) {
        std::size_t end = k; // one past segment
        bool isCall = false;
        if (toks[end - 1].is(")")) {
            // Walk back over the balanced parens of a call hop.
            int depth = 0;
            std::size_t q = end;
            while (q-- > 0) {
                if (toks[q].is(")"))
                    ++depth;
                else if (toks[q].is("(") && --depth == 0)
                    break;
            }
            if (q == 0 || !toks[q - 1].ident())
                break;
            segs.push_back({toks[q - 1].text, true});
            end = q - 1;
            isCall = true;
        } else if (toks[end - 1].ident()) {
            segs.push_back({toks[end - 1].text, false});
            end = end - 1;
        } else {
            break;
        }
        (void)isCall;
        if (end >= 1 && (toks[end - 1].is(".") || toks[end - 1].is("->"))) {
            k = end - 1;
            continue;
        }
        // Chain starts here; make sure it is not `foo().bar` glued to
        // a longer expression we cannot resolve anyway.
        if (end >= 1 && (toks[end - 1].is("]") || toks[end - 1].is(")")))
            segs.clear();
        break;
    }
    if (segs.empty())
        return "";

    // Resolve left-to-right.
    std::string cls;
    for (std::size_t i = segs.size(); i-- > 0;) {
        const Seg &s = segs[i];
        if (cls.empty()) {
            if (s.name == "this") {
                cls = fn.className;
                continue;
            }
            std::string type = nameType(p, f, fn, s.name);
            if (type.empty() && s.isCall && !fn.className.empty()) {
                // `method().x`: the first hop is a call on *this.
                auto cit = p.types.methods.find(fn.className);
                if (cit != p.types.methods.end()) {
                    auto mit = cit->second.find(s.name);
                    if (mit != cit->second.end())
                        type = mit->second;
                }
            }
            if (type.empty())
                return "";
            cls = typeClassName(p.types, type);
            if (cls.empty())
                return "";
            continue;
        }
        std::string type;
        if (s.isCall) {
            auto cit = p.types.methods.find(cls);
            if (cit == p.types.methods.end())
                return "";
            auto mit = cit->second.find(s.name);
            if (mit == cit->second.end())
                return "";
            type = mit->second;
        } else {
            auto cit = p.types.fields.find(cls);
            if (cit == p.types.fields.end())
                return "";
            auto fit = cit->second.find(s.name);
            if (fit == cit->second.end())
                return "";
            type = fit->second;
        }
        cls = typeClassName(p.types, type);
        if (cls.empty())
            return "";
    }
    return cls;
}

std::vector<CallSite>
callSites(const Project &p, const SourceFile &f, const FnDef &fn)
{
    const Tokens &toks = f.toks;
    std::vector<CallSite> out;

    // Statement boundaries, as in the statement-level rules: `;` at
    // paren depth 0, `{`, `}`.
    std::size_t stmt = fn.bodyBegin + 1;
    int paren = 0;
    std::vector<std::size_t> openCalls; // nameIdx of calls whose parens
                                        // are currently open

    std::size_t stmtEnd = stmt;
    bool stmtFlag = false;
    bool stmtRet = false;
    auto refreshStmt = [&](std::size_t k) {
        if (k < stmtEnd)
            return;
        std::size_t e = k;
        int depth = 0;
        for (; e < fn.bodyEnd; ++e) {
            const Token &t = toks[e];
            if (t.is("(") || t.is("["))
                ++depth;
            else if (t.is(")") || t.is("]"))
                --depth;
            else if ((t.is(";") && depth <= 0) || t.is("{") || t.is("}"))
                break;
        }
        stmtFlag = false;
        stmtRet = false;
        for (std::size_t q = stmt; q < e; ++q) {
            const Token &tq = toks[q];
            if (tq.is("return") || tq.is("co_return"))
                stmtFlag = stmtRet = true;
            else if (tq.is("co_await") || tq.is("co_yield"))
                stmtFlag = true;
        }
        stmtEnd = e + 1;
    };

    for (std::size_t k = fn.bodyBegin + 1; k < fn.bodyEnd; ++k) {
        const Token &t = toks[k];
        if (t.is("(") || t.is("[")) {
            ++paren;
            continue;
        }
        if (t.is(")") || t.is("]")) {
            --paren;
            while (!openCalls.empty() &&
                   paren <= out[openCalls.back()].parenDepth)
                openCalls.pop_back();
            continue;
        }
        if (t.is("{") || t.is("}")) {
            // Inside an open argument list a brace opens a lambda body
            // or a braced initializer, not a new statement: the
            // enclosing call must stay open so calls inside the lambda
            // keep their parent link (scheduleIn(0, [this] { run(); })).
            if (paren > 0) {
                paren += t.is("{") ? 1 : -1;
                while (!openCalls.empty() &&
                       paren <= out[openCalls.back()].parenDepth)
                    openCalls.pop_back();
                continue;
            }
            stmt = k + 1;
            stmtEnd = stmt;
            openCalls.clear();
            paren = 0; // resync if the stream was unbalanced
            continue;
        }
        if (t.is(";") && paren == 0) {
            stmt = k + 1;
            stmtEnd = stmt;
            openCalls.clear();
            continue;
        }
        if (!isCallableName(t) || k + 1 >= fn.bodyEnd ||
            !toks[k + 1].is("("))
            continue;

        refreshStmt(k);

        CallSite cs;
        cs.callee = t.text;
        cs.line = t.line;
        cs.nameIdx = k;
        cs.argsBegin = k + 2;
        cs.argsEnd = skipBalanced(toks, k + 1) - 1;
        cs.parenDepth = paren;
        cs.stmtConsumed = stmtFlag;
        cs.stmtReturns = stmtRet;

        if (!openCalls.empty()) {
            const CallSite &parent = out[openCalls.back()];
            cs.parentNameIdx = parent.nameIdx;
            int arg = 0;
            int depth = 0;
            for (std::size_t q = parent.argsBegin;
                 q < k && q < parent.argsEnd; ++q) {
                const Token &a = toks[q];
                if (a.is("(") || a.is("[") || a.is("{"))
                    ++depth;
                else if (a.is(")") || a.is("]") || a.is("}"))
                    --depth;
                else if (a.is(",") && depth == 0)
                    ++arg;
            }
            cs.argIndexInParent = arg;
        }

        // Receiver and key.
        if (k >= 1 && (toks[k - 1].is(".") || toks[k - 1].is("->"))) {
            cs.recvChain = "member";
            cs.resolvedClass = resolveReceiver(p, f, fn, k - 1);
            if (!cs.resolvedClass.empty())
                cs.key = cs.resolvedClass + "::" + cs.callee;
        } else if (k >= 2 && toks[k - 1].is("::") && toks[k - 2].ident()) {
            cs.recvChain = toks[k - 2].text + "::";
            const std::string &cls = toks[k - 2].text;
            if (p.types.methods.count(cls) != 0 &&
                p.types.methods.at(cls).count(cs.callee) != 0) {
                cs.resolvedClass = cls;
                cs.key = cls + "::" + cs.callee;
            }
        } else {
            // Unqualified: enclosing class first, then free functions.
            if (!fn.className.empty()) {
                auto cit = p.types.methods.find(fn.className);
                if (cit != p.types.methods.end() &&
                    cit->second.count(cs.callee) != 0) {
                    cs.resolvedClass = fn.className;
                    cs.key = fn.className + "::" + cs.callee;
                }
            }
            if (cs.key.empty() &&
                (p.types.freeFns.count(cs.callee) != 0 ||
                 p.summaries.count(cs.callee) != 0))
                cs.key = cs.callee;
        }

        openCalls.push_back(out.size());
        out.push_back(cs);
        ++paren; // account for the call's own `(` which we now step over
        ++k;     // skip the `(` token itself
    }
    return out;
}

} // namespace shrimp::analyze
