#include "cache.hh"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace shrimp::analyze
{

namespace
{

/** Bump when any serialized structure changes shape.
 *  v2: `analyze: shared(...)` annotations join the mined facts.
 *  v3: annotations carry their parenthesized argument (the lookahead
 *      vocabulary needs the edge-class / reason text). */
constexpr int kFormatVersion = 3;

/** "-" stands in for an empty string in fixed (non-trailing) fields. */
std::string
fixed(const std::string &s)
{
    return s.empty() ? "-" : s;
}

std::string
unfixed(const std::string &s)
{
    return s == "-" ? "" : s;
}

/** The rest of @p in's current line (single leading space skipped). */
std::string
restOfLine(std::istringstream &in)
{
    std::string rest;
    std::getline(in, rest);
    if (!rest.empty() && rest.front() == ' ')
        rest.erase(rest.begin());
    return rest;
}

} // namespace

std::string
contentHash(const std::string &text)
{
    std::uint64_t h = 1469598103934665603ull; // FNV offset basis
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull; // FNV prime
    }
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::string
cacheEntryName(const std::string &rel)
{
    std::string out;
    out.reserve(rel.size() + 8);
    for (const char c : rel) {
        if (c == '/')
            out += "__";
        else
            out += c;
    }
    return out + ".facts";
}

void
storeCachedFile(const std::string &path, const std::string &hash,
                const SourceFile &f)
{
    std::ostringstream o;
    o << "shrimp_analyze_cache " << kFormatVersion << " " << hash << "\n";

    for (const Token &t : f.toks)
        o << "t " << int(t.kind) << " " << t.line << " " << t.text
          << "\n";
    for (const Annotation &a : f.annotations)
        o << "a " << a.line << " " << a.rule << " " << a.arg << "\n";
    for (const auto &[line, inc] : f.includes)
        o << "i " << line << " " << inc << "\n";
    for (const ClassDef &c : f.classes)
        o << "c " << c.line << " " << c.bodyBegin << " " << c.bodyEnd
          << " " << c.name << "\n";
    for (const FieldDecl &fd : f.fields)
        o << "g " << fd.line << " " << fixed(fd.className) << " "
          << fd.name << " " << fd.type << "\n";
    for (const auto &[name, type] : f.aliases)
        o << "u " << name << " " << type << "\n";
    for (const FnDef &fn : f.fns) {
        o << "f " << fn.line << " " << fn.bodyBegin << " " << fn.bodyEnd
          << " " << int(fn.returnsTask) << " " << fixed(fn.name) << " "
          << fixed(fn.qualName) << " " << fixed(fn.className) << " "
          << fn.retType << "\n";
        for (const Param &pa : fn.params)
            o << "p " << fixed(pa.name) << " " << pa.type << "\n";
        for (const Local &l : fn.locals)
            o << "l " << l.line << " " << fixed(l.name) << " " << l.type
              << "\n";
    }
    for (const MemberDecl &m : f.members) {
        o << "m " << m.line << " " << int(m.returnsTask) << " "
          << int(m.isPublic) << " " << fixed(m.className) << " "
          << fixed(m.name) << " " << m.retType << "\n";
        for (const Param &pa : m.params)
            o << "q " << fixed(pa.name) << " " << pa.type << "\n";
    }
    o << "e\n";

    std::ofstream out(path, std::ios::trunc);
    if (out)
        out << o.str();
}

bool
loadCachedFile(const std::string &path, const std::string &hash,
               SourceFile &f)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::stringstream ss;
    ss << in.rdbuf();
    std::istringstream is(ss.str());

    std::string magic, storedHash;
    int version = 0;
    is >> magic >> version >> storedHash;
    if (magic != "shrimp_analyze_cache" || version != kFormatVersion ||
        storedHash != hash)
        return false;
    restOfLine(is);

    SourceFile tmp;
    tmp.rel = f.rel;
    tmp.dir = f.dir;
    tmp.isHeader = f.isHeader;

    bool sawEnd = false;
    std::string tag;
    while (is >> tag) {
        if (tag == "t") {
            int kind = 0;
            Token t;
            if (!(is >> kind >> t.line))
                return false;
            t.kind = static_cast<Tok>(kind);
            t.text = restOfLine(is);
            tmp.toks.push_back(std::move(t));
        } else if (tag == "a") {
            Annotation a;
            if (!(is >> a.line >> a.rule))
                return false;
            a.arg = restOfLine(is);
            tmp.annotations.push_back(std::move(a));
        } else if (tag == "i") {
            int line = 0;
            std::string inc;
            if (!(is >> line >> inc))
                return false;
            restOfLine(is);
            tmp.includes.emplace_back(line, std::move(inc));
        } else if (tag == "c") {
            ClassDef c;
            if (!(is >> c.line >> c.bodyBegin >> c.bodyEnd >> c.name))
                return false;
            restOfLine(is);
            tmp.classes.push_back(std::move(c));
        } else if (tag == "g") {
            FieldDecl fd;
            if (!(is >> fd.line >> fd.className >> fd.name))
                return false;
            fd.className = unfixed(fd.className);
            fd.type = restOfLine(is);
            tmp.fields.push_back(std::move(fd));
        } else if (tag == "u") {
            std::string name;
            if (!(is >> name))
                return false;
            tmp.aliases.emplace_back(std::move(name), restOfLine(is));
        } else if (tag == "f") {
            FnDef fn;
            int rt = 0;
            if (!(is >> fn.line >> fn.bodyBegin >> fn.bodyEnd >> rt >>
                  fn.name >> fn.qualName >> fn.className))
                return false;
            fn.returnsTask = rt != 0;
            fn.name = unfixed(fn.name);
            fn.qualName = unfixed(fn.qualName);
            fn.className = unfixed(fn.className);
            fn.retType = restOfLine(is);
            tmp.fns.push_back(std::move(fn));
        } else if (tag == "p") {
            if (tmp.fns.empty())
                return false;
            Param pa;
            if (!(is >> pa.name))
                return false;
            pa.name = unfixed(pa.name);
            pa.type = restOfLine(is);
            tmp.fns.back().params.push_back(std::move(pa));
        } else if (tag == "l") {
            if (tmp.fns.empty())
                return false;
            Local l;
            if (!(is >> l.line >> l.name))
                return false;
            l.name = unfixed(l.name);
            l.type = restOfLine(is);
            tmp.fns.back().locals.push_back(std::move(l));
        } else if (tag == "m") {
            MemberDecl m;
            int rt = 0, pub = 0;
            if (!(is >> m.line >> rt >> pub >> m.className >> m.name))
                return false;
            m.returnsTask = rt != 0;
            m.isPublic = pub != 0;
            m.className = unfixed(m.className);
            m.name = unfixed(m.name);
            m.retType = restOfLine(is);
            tmp.members.push_back(std::move(m));
        } else if (tag == "q") {
            if (tmp.members.empty())
                return false;
            Param pa;
            if (!(is >> pa.name))
                return false;
            pa.name = unfixed(pa.name);
            pa.type = restOfLine(is);
            tmp.members.back().params.push_back(std::move(pa));
        } else if (tag == "e") {
            sawEnd = true;
            break;
        } else {
            return false;
        }
    }
    if (!sawEnd)
        return false;
    f = std::move(tmp);
    return true;
}

} // namespace shrimp::analyze
