/**
 * @file
 * shared-mutable-static / cross-node-escape / event-capture-escape:
 * thin rule emitters over the escape edges buildOwnership() computed.
 * Detection lives in ownership.cc so the --ownership-report JSON and
 * the findings are one artifact viewed two ways; annotation-suppressed
 * (allowed) edges stay in the report but never become findings.
 */

#include "ownership.hh"
#include "rules.hh"

namespace shrimp::analyze
{

namespace
{

void
emitEdges(const Project &p, const std::string &rule,
          std::vector<Finding> &out)
{
    for (const EscapeEdge &e : p.ownership.edges) {
        if (e.rule != rule || e.allowed)
            continue;
        out.push_back({e.rule, e.file, e.line, e.fingerprint,
                       e.message});
    }
}

} // namespace

void
ruleSharedMutableStatic(const Project &p, std::vector<Finding> &out)
{
    emitEdges(p, "shared-mutable-static", out);
}

void
ruleCrossNodeEscape(const Project &p, std::vector<Finding> &out)
{
    emitEdges(p, "cross-node-escape", out);
}

void
ruleEventCaptureEscape(const Project &p, std::vector<Finding> &out)
{
    emitEdges(p, "event-capture-escape", out);
}

} // namespace shrimp::analyze
