/**
 * @file
 * Top-level driver for shrimp_analyze: walk an include root, lex and
 * parse every .hh/.cc under it, build the cross-file index, run all
 * five rules and return deterministically ordered findings. Linked by
 * both the CLI (main.cc) and tests/test_analyze.cc.
 */

#ifndef SHRIMP_TOOLS_ANALYZE_ANALYZER_HH
#define SHRIMP_TOOLS_ANALYZE_ANALYZER_HH

#include <string>
#include <vector>

#include "model.hh"

namespace shrimp::analyze
{

/** Lex + parse + index every C++ file under @p includeRoot. File
 *  paths in the result are relative to @p includeRoot (which is also
 *  the path includes resolve against, mirroring the build's -I). */
Project loadProject(const std::string &includeRoot);

/** Run all rules; findings sorted by (file, line, rule, fingerprint). */
std::vector<Finding> runRules(const Project &p);

/** loadProject + runRules. */
std::vector<Finding> analyzeTree(const std::string &includeRoot);

/** `file:line: [rule] message` */
std::string formatFinding(const Finding &f);

} // namespace shrimp::analyze

#endif // SHRIMP_TOOLS_ANALYZE_ANALYZER_HH
