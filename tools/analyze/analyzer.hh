/**
 * @file
 * Top-level driver for shrimp_analyze: walk one or more scan roots,
 * lex/parse/type-extract every .hh/.cc under them (per-file facts come
 * from the cache when the content hash matches), build the cross-file
 * indexes (Task index, typed symbol index, interprocedural summaries)
 * and run all rules, returning deterministically ordered findings.
 * Linked by both the CLI (main.cc) and tests/test_analyze.cc.
 *
 * Path scheme: files under the first root keep root-relative paths
 * ("sim/bus.cc" — also the include-resolution scheme, mirroring the
 * build's -I src). Files under additional roots are prefixed with the
 * root's basename ("tools/report/main.cc"), whose first component is
 * exempt from the layer order. Include directives are canonicalized
 * against the loaded file set (exact, then includer-sibling, then each
 * secondary root) so the cycle check sees one name per file.
 */

#ifndef SHRIMP_TOOLS_ANALYZE_ANALYZER_HH
#define SHRIMP_TOOLS_ANALYZE_ANALYZER_HH

#include <string>
#include <vector>

#include "model.hh"

namespace shrimp::analyze
{

/** Lex + parse + index every C++ file under @p roots (first root
 *  unprefixed, later roots label-prefixed). @p cacheDir, when
 *  non-empty, holds per-file facts keyed by content hash; it is
 *  created if missing. @p jobs parallelizes the per-file
 *  lex/parse/extract stage (<=0 means hardware concurrency); the file
 *  list is collected and sorted before any worker starts, and each
 *  worker fills its file's pre-assigned slot, so results are
 *  byte-identical for every jobs value. Directories named `build*` or
 *  starting with `.` are never scanned. */
Project loadProject(const std::vector<std::string> &roots,
                    const std::string &cacheDir = "", int jobs = 1);

/** Single-root convenience overload. */
Project loadProject(const std::string &includeRoot);

/** Run all rules; findings sorted by (file, line, rule, fingerprint). */
std::vector<Finding> runRules(const Project &p);

/** loadProject + runRules. */
std::vector<Finding> analyzeTree(const std::string &includeRoot);

/** Multi-root + cache + jobs variant of analyzeTree. */
std::vector<Finding> analyzeTrees(const std::vector<std::string> &roots,
                                  const std::string &cacheDir = "",
                                  int jobs = 1);

/** `file:line: [rule] message` */
std::string formatFinding(const Finding &f);

} // namespace shrimp::analyze

#endif // SHRIMP_TOOLS_ANALYZE_ANALYZER_HH
