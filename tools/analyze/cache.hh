/**
 * @file
 * Incremental per-file facts cache for shrimp_analyze. Everything the
 * per-file pipeline produces (tokens, annotations, includes, parsed
 * functions/members/classes/fields/aliases, extracted locals) is
 * written to one cache file per source, keyed by an FNV-1a hash of the
 * source bytes plus a format version. On a warm run an unchanged file
 * skips lexing, parsing and type extraction entirely; the cross-file
 * stages (task index, type index, summaries, rules) always recompute,
 * so cold and warm runs produce byte-identical findings by
 * construction — only per-file work is memoized.
 *
 * The format is line-oriented text: single-token fields first,
 * free-text (type strings contain spaces) last on each line. A version
 * or hash mismatch, short file, or any malformed record is a miss —
 * the analyzer silently re-derives and rewrites.
 */

#ifndef SHRIMP_TOOLS_ANALYZE_CACHE_HH
#define SHRIMP_TOOLS_ANALYZE_CACHE_HH

#include <string>

#include "model.hh"

namespace shrimp::analyze
{

/** 64-bit FNV-1a of @p text, as fixed-width hex. */
std::string contentHash(const std::string &text);

/** Cache file name for a (root-labeled) relative source path:
 *  slashes become "__", ".facts" appended. */
std::string cacheEntryName(const std::string &rel);

/** Load cached facts for @p f from @p path if the stored hash matches
 *  @p hash. On success fills toks/annotations/includes/fns/members/
 *  classes/fields/aliases and returns true; any mismatch or parse
 *  problem returns false with @p f untouched. @p f.rel/dir/isHeader
 *  must already be set (they derive from the path, not the content). */
bool loadCachedFile(const std::string &path, const std::string &hash,
                    SourceFile &f);

/** Write @p f's facts to @p path, keyed by @p hash. Best-effort: I/O
 *  failure is ignored (the cache is an optimization, not state). */
void storeCachedFile(const std::string &path, const std::string &hash,
                     const SourceFile &f);

} // namespace shrimp::analyze

#endif // SHRIMP_TOOLS_ANALYZE_CACHE_HH
