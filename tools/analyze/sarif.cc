#include "sarif.hh"

#include <cstddef>
#include <cstdio>
#include <map>
#include <sstream>

namespace shrimp::analyze
{

namespace
{

/** JSON string escaping (control chars, quotes, backslashes). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** One-line rule descriptions for the tool.driver.rules table. */
const std::map<std::string, std::string> ruleDescs = {
    {"dropped-task",
     "Task-returning call whose lazy coroutine is never awaited, "
     "spawned, returned or drained"},
    {"suspend-under-exclusion",
     "co_await between acquire() and release() in the same body"},
    {"determinism",
     "wall-clock/PRNG source or pointer-keyed iteration in the "
     "simulator core"},
    {"layering", "include-graph cycle or layer-order violation"},
    {"charged-time",
     "public datapath entry that never charges simulated time"},
    {"deadlock",
     "lock-order cycle, non-reentrant re-acquire, or co_await while a "
     "callee-held lock is outstanding"},
    {"determinism-taint",
     "host-nondeterministic value flowing into event scheduling"},
    {"shared-mutable-static",
     "namespace/class-scope mutable static without an `analyze: "
     "shared(reason)` allowlist — storage every shard would share"},
    {"cross-node-escape",
     "address of node-owned state stored into a carrier field or a "
     "foreign node's object"},
    {"event-capture-escape",
     "node-owned state captured by reference into a scheduled "
     "callable another shard could run"},
    {"zero-lookahead-path",
     "cross-node-visible effect reachable with 0 charged simulated "
     "time, a lookahead-charge gate folding to 0, or an edge class "
     "with no gate"},
    {"zero-delay-cycle",
     "provably-zero scheduleIn whose target reaches the scheduler "
     "back through zero-charge edges — a time-window livelock"},
    {"cross-node-wake-uncharged",
     "foreign Condition/AddrCondition woken without passing through "
     "a charged path"},
};

} // namespace

std::string
sarifReport(const std::vector<Finding> &findings,
            const std::string &srcRootLabel,
            const std::set<std::string> &labeledRoots)
{
    // Rules actually referenced, in stable order, indexed for results.
    std::map<std::string, int> ruleIx;
    for (const auto &[name, desc] : ruleDescs)
        ruleIx.emplace(name, int(ruleIx.size()));
    for (const Finding &f : findings)
        ruleIx.emplace(f.rule, int(ruleIx.size())); // future-proofing

    std::ostringstream o;
    o << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"shrimp_analyze\",\n"
      << "          \"rules\": [\n";
    {
        std::vector<const std::string *> ordered(ruleIx.size());
        for (const auto &[name, ix] : ruleIx)
            ordered[std::size_t(ix)] = &name;
        for (std::size_t i = 0; i < ordered.size(); ++i) {
            const std::string &name = *ordered[i];
            auto dit = ruleDescs.find(name);
            const std::string desc =
                dit == ruleDescs.end() ? name : dit->second;
            o << "            {\n"
              << "              \"id\": \"" << jsonEscape(name) << "\",\n"
              << "              \"shortDescription\": { \"text\": \""
              << jsonEscape(desc) << "\" }\n"
              << "            }" << (i + 1 < ordered.size() ? "," : "")
              << "\n";
        }
    }
    o << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";

    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        std::string uri = f.file;
        const std::size_t slash = uri.find('/');
        const std::string first =
            slash == std::string::npos ? uri : uri.substr(0, slash);
        if (labeledRoots.count(first) == 0 && !srcRootLabel.empty())
            uri = srcRootLabel + "/" + uri;
        o << "        {\n"
          << "          \"ruleId\": \"" << jsonEscape(f.rule) << "\",\n"
          << "          \"ruleIndex\": " << ruleIx.at(f.rule) << ",\n"
          << "          \"level\": \"warning\",\n"
          << "          \"message\": { \"text\": \""
          << jsonEscape(f.message) << "\" },\n"
          << "          \"locations\": [\n"
          << "            {\n"
          << "              \"physicalLocation\": {\n"
          << "                \"artifactLocation\": { \"uri\": \""
          << jsonEscape(uri) << "\" },\n"
          << "                \"region\": { \"startLine\": "
          << (f.line > 0 ? f.line : 1) << " }\n"
          << "              }\n"
          << "            }\n"
          << "          ],\n"
          << "          \"partialFingerprints\": {\n"
          << "            \"shrimpAnalyze/v1\": \""
          << jsonEscape(f.rule + "|" + f.file + "|" + f.fingerprint)
          << "\"\n"
          << "          }\n"
          << "        }" << (i + 1 < findings.size() ? "," : "") << "\n";
    }

    o << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
    return o.str();
}

} // namespace shrimp::analyze
