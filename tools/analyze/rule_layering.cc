/**
 * @file
 * layering: two checks over the project include graph.
 *
 *  - Cycles: any include cycle among headers (include guards hide the
 *    compile error but the architectural knot stays).
 *  - Layer order: an include may only reach its own layer or below.
 *    The enforced order (see DESIGN.md §12) is
 *
 *        base(0) < check,sim(1) < mem(2) < net,nic(3) < node(4)
 *               < vmmc(5) < nx,rpc,sock,srpc(6)
 *
 *    node sits above net/nic because a Node is the composition point
 *    that owns a ShrimpNic and a Mesh by value; nothing below node/
 *    includes node headers, so the order is acyclic by construction
 *    and the baseline is empty. Directories outside this map (tools,
 *    bench, tests fixtures with other names) are exempt from the
 *    order but still cycle-checked.
 */

#include <algorithm>
#include <map>
#include <set>

#include "rules.hh"

namespace shrimp::analyze
{

namespace
{

int
layerOf(const std::string &dir)
{
    static const std::map<std::string, int> layers = {
        {"base", 0}, {"check", 1}, {"sim", 1},  {"mem", 2},
        {"net", 3},  {"nic", 3},   {"node", 4}, {"vmmc", 5},
        {"nx", 6},   {"rpc", 6},   {"sock", 6}, {"srpc", 6},
    };
    auto it = layers.find(dir);
    return it == layers.end() ? -1 : it->second;
}

std::string
dirOf(const std::string &rel)
{
    const std::size_t slash = rel.find('/');
    return slash == std::string::npos ? "" : rel.substr(0, slash);
}

} // namespace

void
ruleLayering(const Project &p, std::vector<Finding> &out)
{
    // ---- layer order ----------------------------------------------------
    for (const SourceFile &f : p.files) {
        const int from = layerOf(f.dir);
        if (from < 0)
            continue;
        for (const auto &[line, inc] : f.includes) {
            const int to = layerOf(dirOf(inc));
            if (to < 0 || to <= from)
                continue;
            if (f.allows(line, "layering"))
                continue;
            out.push_back(
                {"layering", f.rel, line, f.rel + "->" + inc,
                 f.rel + " (layer " + std::to_string(from) +
                     ") includes " + inc + " (layer " +
                     std::to_string(to) +
                     "): includes must not climb the layer order"});
        }
    }

    // ---- include cycles (headers only; nothing includes a .cc) ---------
    std::map<std::string, std::vector<std::pair<int, std::string>>> graph;
    for (const SourceFile &f : p.files) {
        if (!f.isHeader)
            continue;
        for (const auto &[line, inc] : f.includes)
            if (p.file(inc) && p.file(inc)->isHeader)
                graph[f.rel].emplace_back(line, inc);
    }

    std::set<std::string> reportedCycles;
    std::set<std::string> done;
    std::vector<std::string> stack;

    // Iterative DFS would obscure the cycle-path extraction; recursion
    // depth is bounded by include-chain length.
    struct Dfs
    {
        const decltype(graph) &g;
        std::set<std::string> &done;
        std::vector<std::string> &stack;
        std::set<std::string> &reported;
        std::vector<Finding> &out;

        void
        visit(const std::string &n)
        {
            stack.push_back(n);
            auto it = g.find(n);
            if (it != g.end()) {
                for (const auto &[line, inc] : it->second) {
                    auto pos =
                        std::find(stack.begin(), stack.end(), inc);
                    if (pos != stack.end()) {
                        // Normalize the cycle (rotate to smallest
                        // member) so each is reported once.
                        std::vector<std::string> cyc(pos, stack.end());
                        auto small = std::min_element(cyc.begin(),
                                                      cyc.end());
                        std::rotate(cyc.begin(), small, cyc.end());
                        std::string fp;
                        for (const auto &m : cyc)
                            fp += m + "->";
                        fp += cyc.front();
                        if (reported.insert(fp).second)
                            out.push_back(
                                {"layering", n, line, "cycle/" + fp,
                                 "include cycle: " + fp});
                        continue;
                    }
                    if (done.count(inc) == 0)
                        visit(inc);
                }
            }
            stack.pop_back();
            done.insert(n);
        }
    } dfs{graph, done, stack, reportedCycles, out};

    for (const auto &[rel, edges] : graph)
        if (done.count(rel) == 0)
            dfs.visit(rel);
}

} // namespace shrimp::analyze
