/**
 * @file
 * deadlock: whole-program lock analysis over the resolved lock
 * identities (dataflow.hh) and interprocedural summaries. Three
 * shapes, all fatal at simulation time rather than merely reordering:
 *
 *   - lock-order cycle: some function acquires A then B (directly or
 *     by calling into an acquirer) while another acquires B then A —
 *     two tasks interleaving at the co_await inside acquire() can each
 *     hold one and wait forever for the other. Reported at every edge
 *     that participates in a cycle, so both halves show up.
 *     [fingerprint: order/A->B]
 *   - re-acquire: acquiring a lock the function (or a transitive
 *     caller in the same body walk) already holds — the project's
 *     Semaphore is not reentrant, so the second acquire() never
 *     completes. Includes the interprocedural form where the nested
 *     acquire happens inside an awaited callee.
 *     [fingerprint: reacquire/Fn/lock]
 *   - suspend-while-holding, interprocedural: a co_await while a lock
 *     acquired by an *earlier callee* (a lock()-style helper whose
 *     summary acquires but never releases) is still held. The
 *     same-body form is suspend-under-exclusion's job; this rule only
 *     reports locks the body itself never visibly acquired.
 *     [fingerprint: suspend/Fn/lock]
 *
 * The walk is linear and path-insensitive like the other statement
 * rules: held-set updated in token order, callee effects applied at
 * call sites that actually execute (awaited, or the callee never
 * suspends).
 */

#include <algorithm>
#include <cstddef>
#include <map>

#include "callgraph.hh"
#include "dataflow.hh"
#include "rules.hh"

namespace shrimp::analyze
{

namespace
{

/** One lock the body currently holds, with how it got there. */
struct Held
{
    std::string id;
    bool viaCallee = false; //!< acquired inside a callee, not this body
};

struct EdgeSite
{
    std::string file;
    int line = 0;
    std::string fn;
};

} // namespace

void
ruleDeadlock(const Project &p, std::vector<Finding> &out)
{
    // first-seen site per ordered edge A->B ("A holds while B acquired")
    std::map<std::pair<std::string, std::string>, EdgeSite> edges;

    for (const SourceFile &f : p.files) {
        for (const FnDef &fn : f.fns) {
            const std::vector<LockOp> ops = lockOps(p, f, fn);
            const std::vector<CallSite> calls = callSites(p, f, fn);

            // Merge lock ops and call sites into token order.
            struct Ev
            {
                std::size_t tok;
                const LockOp *op = nullptr;
                const CallSite *cs = nullptr;
            };
            std::vector<Ev> evs;
            for (const LockOp &op : ops)
                evs.push_back({op.tokIdx, &op, nullptr});
            for (const CallSite &cs : calls) {
                if (cs.callee == "acquire" || cs.callee == "release")
                    continue; // already covered as lock ops
                evs.push_back({cs.nameIdx, nullptr, &cs});
            }
            std::sort(evs.begin(), evs.end(),
                      [](const Ev &a, const Ev &b) {
                          return a.tok < b.tok;
                      });

            std::vector<Held> held;
            auto holds = [&](const std::string &id) {
                return std::any_of(held.begin(), held.end(),
                                   [&](const Held &h) {
                                       return h.id == id;
                                   });
            };
            auto addEdges = [&](const std::string &id, int line) {
                for (const Held &h : held)
                    if (h.id != id)
                        edges.emplace(std::make_pair(h.id, id),
                                      EdgeSite{f.rel, line, fn.qualName});
            };

            std::size_t ev = 0;
            for (std::size_t k = fn.bodyBegin + 1; k < fn.bodyEnd; ++k) {
                // Interprocedural suspend-while-holding: only locks a
                // callee left held (viaCallee) — the direct form is
                // suspend-under-exclusion's finding.
                if (f.toks[k].is("co_await")) {
                    for (const Held &h : held) {
                        if (!h.viaCallee)
                            continue;
                        if (f.allows(f.toks[k].line, "deadlock"))
                            break;
                        out.push_back(
                            {"deadlock", f.rel, f.toks[k].line,
                             "suspend/" + fn.qualName + "/" + h.id,
                             "co_await while '" + h.id +
                                 "' is still held by an earlier callee "
                                 "in " + fn.qualName +
                                 ": the suspension can interleave "
                                 "(and deadlock) inside the critical "
                                 "section"});
                        break;
                    }
                }

                while (ev < evs.size() && evs[ev].tok == k) {
                    const Ev &e = evs[ev++];
                    if (e.op) {
                        const LockOp &op = *e.op;
                        if (op.isAcquire) {
                            if (holds(op.id) &&
                                !f.allows(op.line, "deadlock"))
                                out.push_back(
                                    {"deadlock", f.rel, op.line,
                                     "reacquire/" + fn.qualName + "/" +
                                         op.id,
                                     "'" + op.id + "' acquired while "
                                     "already held in " + fn.qualName +
                                     ": the semaphore is not reentrant, "
                                     "so this acquire never completes"});
                            addEdges(op.id, op.line);
                            held.push_back({op.id, false});
                        } else {
                            auto it = std::find_if(
                                held.begin(), held.end(),
                                [&](const Held &h) {
                                    return h.id == op.id;
                                });
                            if (it != held.end())
                                held.erase(it);
                        }
                        continue;
                    }

                    const CallSite &cs = *e.cs;
                    if (cs.key.empty())
                        continue;
                    auto sit = p.summaries.find(cs.key);
                    if (sit == p.summaries.end())
                        continue;
                    const FnSummary &s = sit->second;
                    // The callee's lock effects only happen if the call
                    // actually runs here: awaited, or a plain (non-Task,
                    // non-suspending) function.
                    if ((s.suspends || p.taskFns.count(cs.callee) != 0) &&
                        !cs.stmtConsumed)
                        continue;
                    for (const std::string &a : s.acquires) {
                        if (holds(a) && !f.allows(cs.line, "deadlock"))
                            out.push_back(
                                {"deadlock", f.rel, cs.line,
                                 "reacquire/" + fn.qualName + "/" + a,
                                 "call to '" + cs.callee +
                                     "()' re-acquires '" + a +
                                     "' already held in " + fn.qualName +
                                     ": the semaphore is not reentrant, "
                                     "so the nested acquire never "
                                     "completes"});
                        addEdges(a, cs.line);
                    }
                    for (const std::string &a : s.acquires)
                        if (s.releases.count(a) == 0 && !holds(a))
                            held.push_back({a, true});
                    for (const std::string &r : s.releases) {
                        if (s.acquires.count(r) != 0)
                            continue; // internal acquire/release pair
                        auto it = std::find_if(
                            held.begin(), held.end(),
                            [&](const Held &h) { return h.id == r; });
                        if (it != held.end())
                            held.erase(it);
                    }
                }
            }
        }
    }

    // Lock-order cycles: report every edge A->B where B reaches A.
    auto reaches = [&](const std::string &from,
                       const std::string &to) {
        std::vector<std::string> stack = {from};
        std::set<std::string> seen = {from};
        while (!stack.empty()) {
            const std::string cur = stack.back();
            stack.pop_back();
            for (const auto &[e, site] : edges) {
                if (e.first != cur)
                    continue;
                if (e.second == to)
                    return true;
                if (seen.insert(e.second).second)
                    stack.push_back(e.second);
            }
        }
        return false;
    };
    for (const auto &[e, site] : edges) {
        if (!reaches(e.second, e.first))
            continue;
        const SourceFile *sf = p.file(site.file);
        if (sf && sf->allows(site.line, "deadlock"))
            continue;
        out.push_back(
            {"deadlock", site.file, site.line,
             "order/" + e.first + "->" + e.second,
             "lock-order cycle: " + site.fn + " acquires '" + e.second +
                 "' while holding '" + e.first +
                 "', but another path acquires them in the opposite "
                 "order — two tasks interleaving at the acquire's "
                 "co_await deadlock"});
    }
}

} // namespace shrimp::analyze
