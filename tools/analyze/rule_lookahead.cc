/**
 * @file
 * zero-lookahead-path / zero-delay-cycle / cross-node-wake-uncharged:
 * thin rule emitters over the violations buildLookahead() computed.
 * Detection lives in lookahead.cc so the --lookahead-report JSON and
 * the findings are one artifact viewed two ways; annotation-suppressed
 * (allowed) violations stay in the report but never become findings.
 */

#include "lookahead.hh"
#include "rules.hh"

namespace shrimp::analyze
{

namespace
{

void
emitViolations(const Project &p, const std::string &rule,
               std::vector<Finding> &out)
{
    for (const LookaheadViolation &v : p.lookahead.violations) {
        if (v.rule != rule || v.allowed)
            continue;
        out.push_back({v.rule, v.file, v.line, v.fingerprint,
                       v.message});
    }
}

} // namespace

void
ruleZeroLookaheadPath(const Project &p, std::vector<Finding> &out)
{
    emitViolations(p, "zero-lookahead-path", out);
}

void
ruleZeroDelayCycle(const Project &p, std::vector<Finding> &out)
{
    emitViolations(p, "zero-delay-cycle", out);
}

void
ruleCrossNodeWakeUncharged(const Project &p, std::vector<Finding> &out)
{
    emitViolations(p, "cross-node-wake-uncharged", out);
}

} // namespace shrimp::analyze
