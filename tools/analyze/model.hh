/**
 * @file
 * Data model shared by the shrimp_analyze passes: a lexed source file,
 * the parsed function/class facts extracted from it, the cross-file
 * project index, and findings.
 *
 * Pipeline: lexer (token.hh/lexer.hh) -> parse (function bodies, class
 * member declarations, Task-returner index, include edges) -> rules
 * (rules.hh) -> baseline filter (baseline.hh) -> report (main.cc).
 */

#ifndef SHRIMP_TOOLS_ANALYZE_MODEL_HH
#define SHRIMP_TOOLS_ANALYZE_MODEL_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "token.hh"

namespace shrimp::analyze
{

/** One `// analyze: allow(rule)` (or `analyze: free`) annotation.
 *  Suppresses findings of @p rule on its own line and the next line
 *  (so an annotation can sit above the declaration it excuses). */
struct Annotation
{
    int line = 0;
    std::string rule; //!< rule name; "free" is an alias for charged-time
};

/** A function definition (has a body) found in a file. */
struct FnDef
{
    std::string name;     //!< unqualified name
    std::string qualName; //!< A::B::name as written
    int line = 0;
    std::size_t bodyBegin = 0; //!< token index of the `{`
    std::size_t bodyEnd = 0;   //!< token index one past the matching `}`
    bool returnsTask = false;
};

/** A member-function declaration inside a class body (no body here). */
struct MemberDecl
{
    std::string className;
    std::string name;
    int line = 0;
    bool returnsTask = false;
    bool isPublic = false;
};

struct SourceFile
{
    std::string rel;  //!< path relative to the include root ("sim/bus.cc")
    std::string dir;  //!< first path component ("sim")
    bool isHeader = false;
    Tokens toks;
    std::vector<Annotation> annotations;
    /** Project-relative includes: (line, "dir/file.hh"). */
    std::vector<std::pair<int, std::string>> includes;

    std::vector<FnDef> fns;
    std::vector<MemberDecl> members;

    bool allows(int line, const std::string &rule) const;
};

/** Everything the rules see. */
struct Project
{
    std::vector<SourceFile> files;

    /** Names for which *every* indexed declaration/definition returns
     *  Task<...>. Name-based matching has no overload resolution, so a
     *  name that is Task-returning in one class and not in another is
     *  ambiguous and excluded (conservative: no false positives). */
    std::set<std::string> taskFns;
    std::set<std::string> ambiguousTaskFns;

    const SourceFile *file(const std::string &rel) const;
};

struct Finding
{
    std::string rule;
    std::string file; //!< relative to the include root
    int line = 0;
    /** Stable identity for baseline matching: survives line drift
     *  (function/lock/include-edge names, not line numbers). */
    std::string fingerprint;
    std::string message;
};

} // namespace shrimp::analyze

#endif // SHRIMP_TOOLS_ANALYZE_MODEL_HH
