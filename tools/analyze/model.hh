/**
 * @file
 * Data model shared by the shrimp_analyze passes: a lexed source file,
 * the parsed function/class facts extracted from it, the cross-file
 * project index (name-based Task index, typed symbol index, call
 * graph + interprocedural summaries), and findings.
 *
 * Pipeline: lexer (token.hh/lexer.hh) -> parse (function bodies, class
 * member declarations and body ranges, include edges) -> types
 * (aliases, class fields, parameter/local/return types) -> callgraph +
 * dataflow (receiver-resolved call edges, Task-lifetime / lock /
 * taint summaries) -> rules (rules.hh) -> baseline filter
 * (baseline.hh) -> report (main.cc: text and/or SARIF 2.1.0).
 *
 * Everything up to and including the per-file facts is cacheable per
 * file (cache.hh, keyed by content hash); the cross-file stages are
 * recomputed every run from the per-file facts.
 */

#ifndef SHRIMP_TOOLS_ANALYZE_MODEL_HH
#define SHRIMP_TOOLS_ANALYZE_MODEL_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "token.hh"

namespace shrimp::analyze
{

/** One `// analyze: allow(rule)` (or `analyze: free`) annotation.
 *  Suppresses findings of @p rule on its own line and the next line
 *  (so an annotation can sit above the declaration it excuses).
 *
 *  The lookahead vocabulary (lookahead.hh) reuses this record with
 *  rule = "lookahead-entry" / "lookahead-charge" / "lookahead-effect"
 *  / "lookahead" and the parenthesized argument preserved in arg. */
struct Annotation
{
    int line = 0;
    std::string rule; //!< rule name; "free" is an alias for charged-time
    std::string arg;  //!< parenthesized argument text ("" if none)
};

/** One function parameter with its declared type (normalized text). */
struct Param
{
    std::string name; //!< may be empty (unnamed parameter)
    std::string type; //!< normalized, as written ("sim::Task<>&")
};

/** One local variable declaration inside a function body. */
struct Local
{
    std::string name;
    std::string type; //!< normalized declared type ("auto" included)
    int line = 0;
};

/** A function definition (has a body) found in a file. */
struct FnDef
{
    std::string name;      //!< unqualified name
    std::string qualName;  //!< A::B::name as written
    std::string className; //!< enclosing (or qualifying) class, or ""
    int line = 0;
    std::size_t bodyBegin = 0; //!< token index of the `{`
    std::size_t bodyEnd = 0;   //!< token index one past the matching `}`
    bool returnsTask = false;
    std::string retType;       //!< normalized return type text ("" if unknown)
    std::vector<Param> params;
    std::vector<Local> locals; //!< filled by the types pass
};

/** A member-function declaration inside a class body (no body here). */
struct MemberDecl
{
    std::string className;
    std::string name;
    int line = 0;
    bool returnsTask = false;
    bool isPublic = false;
    std::string retType; //!< normalized return type text
    std::vector<Param> params;
};

/** A data member declaration inside a class body. */
struct FieldDecl
{
    std::string className;
    std::string name;
    std::string type; //!< normalized declared type
    int line = 0;
};

/** A class/struct definition with its body token range. */
struct ClassDef
{
    std::string name;
    int line = 0;
    std::size_t bodyBegin = 0; //!< token index of the `{`
    std::size_t bodyEnd = 0;   //!< one past the matching `}`
};

struct SourceFile
{
    std::string rel;  //!< path relative to the include root ("sim/bus.cc")
    std::string dir;  //!< first path component ("sim")
    bool isHeader = false;
    Tokens toks;
    std::vector<Annotation> annotations;
    /** Project-relative includes: (line, "dir/file.hh"). */
    std::vector<std::pair<int, std::string>> includes;

    std::vector<FnDef> fns;
    std::vector<MemberDecl> members;
    std::vector<ClassDef> classes;
    std::vector<FieldDecl> fields;
    /** `using NAME = TYPE;` / `typedef TYPE NAME;` in this file. */
    std::vector<std::pair<std::string, std::string>> aliases;

    bool allows(int line, const std::string &rule) const;
};

/** The project-wide typed symbol index (types.cc). All type strings
 *  stored here are alias-resolved and normalized. */
struct TypeIndex
{
    /** alias name -> underlying type, fully resolved. */
    std::map<std::string, std::string> aliases;
    /** class -> field -> type. */
    std::map<std::string, std::map<std::string, std::string>> fields;
    /** class -> method -> return type (first declaration wins). */
    std::map<std::string, std::map<std::string, std::string>> methods;
    /** free function -> return type; only names whose indexed
     *  declarations all agree (no overload resolution). */
    std::map<std::string, std::string> freeFns;

    /** Resolve leading alias layers in @p type (bounded). */
    std::string resolve(const std::string &type) const;
};

/** One interprocedural function summary (dataflow.cc). Functions are
 *  keyed by qualified name ("Engine::deliver") with an unqualified
 *  fallback; overloads collapse onto one key (conservative joins). */
struct FnSummary
{
    bool defined = false;      //!< a body was seen
    bool suspends = false;     //!< body contains co_await
    bool charges = false;      //!< body reaches a charge primitive
    bool returnsTaint = false; //!< return value carries host nondeterminism
    /** Parameter indices with a Task/Task-container declared type. A
     *  parameter is provably non-consuming only when it is in this set
     *  and not in consumesTaskParam. */
    std::set<int> taskParams;
    /** Parameter indices whose Task/Task-container argument is consumed
     *  (awaited, drained, spawned, stored, or forwarded to a consumer).
     *  Parameters of undefined functions are treated as consuming. */
    std::set<int> consumesTaskParam;
    /** Parameter indices that flow into a scheduling/trace sink. */
    std::set<int> paramToSink;
    /** Lock identities this function may acquire, transitively. */
    std::set<std::string> acquires;
    /** Lock identities this function may release, transitively. A lock
     *  in acquires but not releases is still held when the function
     *  returns (a lock()-style helper). */
    std::set<std::string> releases;
};

/** Ownership lattice verdicts (ownership.cc). Order is meaningful
 *  only for display; classification precedence is documented in
 *  DESIGN.md §12. */
enum class Own
{
    Unknown,       //!< defined in-tree but not reachable from Node
    NodeOwned,     //!< reachable from node::Node by value — shardable
    SharedRO,      //!< reached only through const refs/pointers
    SharedMutable, //!< mutable cross-node state (or annotated shared)
    Escapes,       //!< NodeOwned, but its address leaks across nodes
};

/** Lattice name as it appears in reports ("node-owned", ...). */
const char *ownName(Own o);

/** Per-class ownership verdict with provenance. */
struct ClassVerdict
{
    Own verdict = Own::Unknown;
    std::string why;  //!< "value field Node::mem_", annotation, escape
    std::string file; //!< defining file (first definition seen)
    int line = 0;
    bool carrier = false; //!< message type crossing nodes by value
    bool annotatedOwned = false;  //!< SHRIMP_SHARD_OWNED in the body
    bool annotatedShared = false; //!< SHRIMP_SHARD_SHARED(...) in body
};

/** One escape edge: node-owned (or static) state whose address leaves
 *  its ownership region. `allowed` edges are annotation-suppressed —
 *  they appear in the ownership report but produce no finding. */
struct EscapeEdge
{
    std::string rule;  //!< shared-mutable-static / cross-node-escape /
                       //!< event-capture-escape
    std::string scope; //!< enclosing function key or class, or ""
    std::string what;  //!< the escaping state ("this", "Peer::buf_")
    std::string dest;  //!< where it goes ("Packet::window", callee)
    std::string file;
    int line = 0;
    std::string fingerprint;
    std::string message;
    bool allowed = false;
};

/** Output of buildOwnership(): per-class verdicts + escape edges. */
struct OwnershipMap
{
    std::map<std::string, ClassVerdict> classes;
    std::vector<EscapeEdge> edges; //!< deterministic detection order

    bool nodeOwned(const std::string &cls) const;
};

/** One `analyze: lookahead-charge(CLASS)` gate site with its folded
 *  minimum simulated-time charge (lookahead.cc). */
struct LookaheadGate
{
    std::string cls;   //!< edge-class name the gate charges for
    std::string fnKey; //!< enclosing function summary key
    std::string file;
    int line = 0;
    long long boundNs = 0; //!< folded lower bound of the site's charge
    std::string why;       //!< rendered fold provenance
};

/** Per-edge-class proven lookahead bound: the minimum charge any
 *  message of the class pays before becoming visible off-node. */
struct LookaheadClass
{
    std::vector<std::string> entries; //!< entry function keys
    std::vector<std::size_t> gates;   //!< indices into LookaheadMap::gates
    long long boundNs = 0;            //!< min over gate bounds
    bool positive = false;            //!< every gate folded > 0
};

/** Inline minimum charge of one public datapath entry (report table). */
struct LookaheadEntry
{
    std::string fnKey;
    std::string file;
    int line = 0;
    long long minChargeNs = 0; //!< unconditional charge lower bound
};

/** One lookahead violation; `allowed` edges stay in the report but
 *  produce no finding (mirrors EscapeEdge). */
struct LookaheadViolation
{
    std::string rule; //!< zero-lookahead-path / zero-delay-cycle /
                      //!< cross-node-wake-uncharged
    std::string file;
    int line = 0;
    std::string fingerprint;
    std::string message;
    bool allowed = false;
};

/** Output of buildLookahead(): per-class bounds, charge gates, entry
 *  charges and violations. */
struct LookaheadMap
{
    std::map<std::string, LookaheadClass> classes;
    std::vector<LookaheadGate> gates;
    std::vector<LookaheadEntry> entries;
    std::vector<LookaheadViolation> violations;
};

/** Everything the rules see. */
struct Project
{
    std::vector<SourceFile> files;

    /** Names for which *every* indexed declaration/definition returns
     *  Task<...>. Name-based matching has no overload resolution, so a
     *  name that is Task-returning in one class and not in another is
     *  ambiguous and excluded (conservative: no false positives). */
    std::set<std::string> taskFns;
    std::set<std::string> ambiguousTaskFns;

    TypeIndex types;
    /** Function key -> summary (see FnSummary). */
    std::map<std::string, FnSummary> summaries;
    /** Ownership & escape analysis results (ownership.cc). */
    OwnershipMap ownership;
    /** Min-delay lookahead analysis results (lookahead.cc). */
    LookaheadMap lookahead;

    const SourceFile *file(const std::string &rel) const;
    /** Summary lookup: "Class::name" first, then bare "name"; null if
     *  neither is known. */
    const FnSummary *summary(const std::string &cls,
                             const std::string &name) const;
};

struct Finding
{
    std::string rule;
    std::string file; //!< relative to the include root
    int line = 0;
    /** Stable identity for baseline matching: survives line drift
     *  (function/lock/include-edge names, not line numbers). */
    std::string fingerprint;
    std::string message;
};

} // namespace shrimp::analyze

#endif // SHRIMP_TOOLS_ANALYZE_MODEL_HH
