/**
 * @file
 * Typed symbol index for shrimp_analyze.
 *
 * Two layers:
 *
 *  - Per-file extraction (extractTypes): class data members (FieldDecl)
 *    and function-body local declarations (FnDef::locals), recognized
 *    by statement shape from the token stream. Runs right after
 *    parseFile() and is cached with the file's other facts.
 *  - Project-wide index (buildTypeIndex): merges aliases (`using X =
 *    Y;`, resolved transitively), class field types, method return
 *    types and unambiguous free-function return types into
 *    Project::types.
 *
 * Classification helpers answer the questions the rules ask of a
 * normalized type string: is it (an alias of) `sim::Task<...>`? a
 * template container holding Tasks? which class does a receiver of
 * this type dispatch to (smart pointers and references unwrapped)?
 */

#ifndef SHRIMP_TOOLS_ANALYZE_TYPES_HH
#define SHRIMP_TOOLS_ANALYZE_TYPES_HH

#include "model.hh"

namespace shrimp::analyze
{

/** Fill @p f.fields and per-function locals from the parsed facts. */
void extractTypes(SourceFile &f);

/** Merge every file's aliases/fields/members into @p p.types. */
void buildTypeIndex(Project &p);

/** Strip const/volatile qualifiers and reference/pointer decoration
 *  from the edges of a normalized type string. */
std::string stripCv(const std::string &type);

/** Is @p type (after alias resolution) `Task<...>` / `sim::Task<...>`? */
bool typeIsTask(const TypeIndex &ix, const std::string &type);

/** Is @p type a known container/wrapper template with a Task type
 *  argument (vector/deque/list/array/optional/map/... of Task)? */
bool typeIsTaskContainer(const TypeIndex &ix, const std::string &type);

/** The class a member access on a value of @p type resolves against:
 *  namespaces stripped, unique_ptr/shared_ptr/pointer/reference
 *  unwrapped. Empty when @p type is not class-shaped. */
std::string typeClassName(const TypeIndex &ix, const std::string &type);

} // namespace shrimp::analyze

#endif // SHRIMP_TOOLS_ANALYZE_TYPES_HH
