/**
 * @file
 * charged-time: every figure in the paper is a latency/bandwidth
 * number, so a datapath entry point that moves simulated work without
 * charging simulated time silently deflates results. The rule: a
 * *public* Task-returning member declared in a nic/ or mem/ header
 * must charge CPU or bus time — directly (co_await Delay{...},
 * Cpu::use, Bus::transfer, Xdr chargeOp) or through any callee,
 * computed as a fixpoint over the name-based call graph — or carry an
 * explicit `// analyze: free` annotation explaining why waiting (not
 * working) is all it does.
 */

#include <cstddef>
#include <map>
#include <set>

#include "rules.hh"

namespace shrimp::analyze
{

namespace
{

/** Primitives that charge simulated time when called/awaited. */
const std::set<std::string> chargePrimitives = {
    "Delay", "use", "transfer", "chargeOp", "compute", "copy",
};

} // namespace

void
ruleChargedTime(const Project &p, std::vector<Finding> &out)
{
    // Call graph: defined function name -> called names; plus the set
    // of functions whose own body charges.
    std::map<std::string, std::set<std::string>> calls;
    std::set<std::string> charges;

    for (const SourceFile &f : p.files) {
        for (const FnDef &fn : f.fns) {
            auto &callees = calls[fn.name];
            for (std::size_t k = fn.bodyBegin + 1; k < fn.bodyEnd; ++k) {
                const Token &t = f.toks[k];
                if (!t.ident())
                    continue;
                const bool called = k + 1 < fn.bodyEnd &&
                                    (f.toks[k + 1].is("(") ||
                                     f.toks[k + 1].is("{"));
                if (!called)
                    continue;
                if (chargePrimitives.count(t.text) != 0)
                    charges.insert(fn.name);
                else
                    callees.insert(t.text);
            }
        }
    }

    // Fixpoint: charging propagates caller-ward through call edges.
    for (bool changed = true; changed;) {
        changed = false;
        for (const auto &[name, callees] : calls) {
            if (charges.count(name) != 0)
                continue;
            for (const std::string &c : callees) {
                if (charges.count(c) != 0) {
                    charges.insert(name);
                    changed = true;
                    break;
                }
            }
        }
    }

    // Audit: public Task-returning members declared in nic/mem headers.
    for (const SourceFile &f : p.files) {
        if (!f.isHeader || (f.dir != "nic" && f.dir != "mem"))
            continue;
        for (const MemberDecl &d : f.members) {
            if (!d.returnsTask || !d.isPublic || d.className.empty())
                continue;
            if (charges.count(d.name) != 0)
                continue;
            if (calls.find(d.name) == calls.end())
                continue; // no definition seen: nothing to audit
            if (f.allows(d.line, "charged-time"))
                continue;
            out.push_back(
                {"charged-time", f.rel, d.line,
                 d.className + "::" + d.name,
                 "public datapath entry '" + d.className + "::" + d.name +
                     "()' returns Task but never charges CPU/bus time "
                     "(no Delay/use/transfer reachable through its "
                     "callees); charge the cost or annotate the "
                     "declaration `// analyze: free`"});
        }
    }
}

} // namespace shrimp::analyze
