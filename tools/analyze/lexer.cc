#include "lexer.hh"

#include <algorithm>
#include <cctype>

namespace shrimp::analyze
{

namespace
{

/** Multi-character operators lexed as one token. `>>` is deliberately
 *  absent: templates of templates (`vector<vector<T>>`) must close as
 *  two `>` tokens for the template-argument scanner to stay balanced,
 *  and nothing downstream cares about shift-right. */
const char *const twoCharOps[] = {
    "::", "->", "<<", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
};

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Mine a comment for `analyze: allow(rule)` / `analyze: free` /
 *  `analyze: shared(reason)` / `analyze: lookahead*(...)` annotations
 *  (several may appear in one comment). `shared` allowlists a
 *  deliberate machine-wide singleton for the shared-mutable-static
 *  rule. The lookahead family (lookahead.hh) keeps its parenthesized
 *  argument: edge-class names for lookahead-entry/-charge, the effect
 *  kind for lookahead-effect, the justification for a bare
 *  lookahead(reason). */
void
mineComment(const std::string &text, int line, SourceFile &out)
{
    const auto parenArg = [&text](std::size_t p) -> std::string {
        std::size_t open = text.find('(', p);
        std::size_t close =
            open == std::string::npos ? open : text.find(')', open);
        if (close == std::string::npos)
            return "";
        return text.substr(open + 1, close - open - 1);
    };

    std::size_t at = 0;
    while ((at = text.find("analyze:", at)) != std::string::npos) {
        // Attribute the annotation to the comment line it is written
        // on, not the comment's first line.
        const int atLine =
            line + int(std::count(text.begin(),
                                  text.begin() + long(at), '\n'));
        std::size_t p = at + 8;
        while (p < text.size() && text[p] == ' ')
            ++p;
        if (text.compare(p, 4, "free") == 0) {
            out.annotations.push_back({atLine, "charged-time", ""});
        } else if (text.compare(p, 6, "shared") == 0) {
            out.annotations.push_back({atLine, "shared", ""});
        } else if (text.compare(p, 15, "lookahead-entry") == 0) {
            out.annotations.push_back(
                {atLine, "lookahead-entry", parenArg(p)});
        } else if (text.compare(p, 16, "lookahead-charge") == 0) {
            out.annotations.push_back(
                {atLine, "lookahead-charge", parenArg(p)});
        } else if (text.compare(p, 16, "lookahead-effect") == 0) {
            out.annotations.push_back(
                {atLine, "lookahead-effect", parenArg(p)});
        } else if (text.compare(p, 9, "lookahead") == 0) {
            out.annotations.push_back({atLine, "lookahead", parenArg(p)});
        } else if (text.compare(p, 5, "allow") == 0) {
            const std::string rule = parenArg(p);
            if (!rule.empty())
                out.annotations.push_back({atLine, rule, ""});
        }
        at = p;
    }
}

} // namespace

bool
SourceFile::allows(int line, const std::string &rule) const
{
    // An annotation covers its own line and up to three lines below:
    // justifications are usually multi-line comments sitting directly
    // above the code they excuse.
    for (const Annotation &a : annotations)
        if (a.line <= line && line <= a.line + 3 &&
            (a.rule == rule || a.rule == "*"))
            return true;
    return false;
}

const SourceFile *
Project::file(const std::string &rel) const
{
    for (const SourceFile &f : files)
        if (f.rel == rel)
            return &f;
    return nullptr;
}

void
lexFile(const std::string &text, SourceFile &out)
{
    std::size_t i = 0;
    const std::size_t n = text.size();
    int line = 1;

    auto peek = [&](std::size_t k) -> char {
        return i + k < n ? text[i + k] : '\0';
    };

    while (i < n) {
        const char c = text[i];

        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Comments: dropped, but mined for annotations first.
        if (c == '/' && peek(1) == '/') {
            std::size_t end = text.find('\n', i);
            if (end == std::string::npos)
                end = n;
            mineComment(text.substr(i, end - i), line, out);
            i = end;
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            std::size_t end = text.find("*/", i + 2);
            if (end == std::string::npos)
                end = n;
            else
                end += 2;
            const std::string body = text.substr(i, end - i);
            mineComment(body, line, out);
            for (char bc : body)
                if (bc == '\n')
                    ++line;
            i = end;
            continue;
        }

        // Preprocessor lines: record project #include targets, skip the
        // rest (macro bodies would otherwise confuse the parser).
        // Continuation lines (trailing backslash) are consumed too.
        if (c == '#') {
            std::size_t end = i;
            while (end < n) {
                std::size_t nl = text.find('\n', end);
                if (nl == std::string::npos) {
                    end = n;
                    break;
                }
                std::size_t back = nl;
                while (back > end && (text[back - 1] == ' ' ||
                                      text[back - 1] == '\t' ||
                                      text[back - 1] == '\r'))
                    --back;
                if (back > end && text[back - 1] == '\\') {
                    end = nl + 1;
                    continue;
                }
                end = nl;
                break;
            }
            const std::string dline = text.substr(i, end - i);
            std::size_t p = 1;
            while (p < dline.size() &&
                   std::isspace(static_cast<unsigned char>(dline[p])))
                ++p;
            if (dline.compare(p, 7, "include") == 0) {
                std::size_t q1 = dline.find('"', p);
                if (q1 != std::string::npos) {
                    std::size_t q2 = dline.find('"', q1 + 1);
                    if (q2 != std::string::npos)
                        out.includes.emplace_back(
                            line, dline.substr(q1 + 1, q2 - q1 - 1));
                }
            }
            for (char bc : dline)
                if (bc == '\n')
                    ++line;
            i = end;
            continue;
        }

        // String / char literals (raw strings included); contents
        // dropped, one Str token kept so statements stay shaped.
        if (c == '"' || c == '\'' ||
            (c == 'R' && peek(1) == '"')) {
            if (c == 'R') {
                std::size_t open = text.find('(', i + 2);
                if (open == std::string::npos) {
                    ++i;
                    continue;
                }
                const std::string delim =
                    ")" + text.substr(i + 2, open - i - 2) + "\"";
                std::size_t end = text.find(delim, open + 1);
                end = end == std::string::npos ? n : end + delim.size();
                for (std::size_t k = i; k < end; ++k)
                    if (text[k] == '\n')
                        ++line;
                out.toks.push_back({Tok::Str, "\"\"", line});
                i = end;
                continue;
            }
            const char quote = c;
            std::size_t j = i + 1;
            while (j < n && text[j] != quote) {
                if (text[j] == '\\')
                    ++j;
                else if (text[j] == '\n')
                    ++line; // unterminated tolerated
                ++j;
            }
            out.toks.push_back(
                {Tok::Str, quote == '"' ? "\"\"" : "''", line});
            i = j < n ? j + 1 : n;
            continue;
        }

        if (identStart(c)) {
            std::size_t j = i + 1;
            while (j < n && identChar(text[j]))
                ++j;
            out.toks.push_back({Tok::Ident, text.substr(i, j - i), line});
            i = j;
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i + 1;
            // Digit separators (200'000) are part of the literal; a
            // stray `'` here must not open a char literal and swallow
            // everything up to the next apostrophe in the file.
            while (j < n &&
                   (identChar(text[j]) || text[j] == '.' ||
                    (text[j] == '\'' && j + 1 < n &&
                     identChar(text[j + 1])) ||
                    ((text[j] == '+' || text[j] == '-') &&
                     (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                      text[j - 1] == 'p' || text[j - 1] == 'P'))))
                ++j;
            out.toks.push_back({Tok::Number, text.substr(i, j - i), line});
            i = j;
            continue;
        }

        // Punctuation.
        for (const char *op : twoCharOps) {
            if (c == op[0] && peek(1) == op[1]) {
                out.toks.push_back({Tok::Punct, op, line});
                i += 2;
                goto next;
            }
        }
        out.toks.push_back({Tok::Punct, std::string(1, c), line});
        ++i;
      next:;
    }

    out.toks.push_back({Tok::End, "", line});
}

} // namespace shrimp::analyze
