#include "parse.hh"

#include <array>
#include <map>

namespace shrimp::analyze
{

namespace
{

bool
isKeywordNotAName(const std::string &s)
{
    static const std::set<std::string> kw = {
        "if", "for", "while", "switch", "catch", "return", "sizeof",
        "alignof", "new", "delete", "static_assert", "decltype",
        "co_await", "co_return", "co_yield", "throw", "operator",
        "void", "int", "char", "bool", "float", "double", "long",
        "short", "unsigned", "signed", "auto", "requires", "alignas",
        "defined", "assert",
    };
    return kw.count(s) != 0;
}

/** Declaration-specifier keywords that precede but are not part of a
 *  return type. */
bool
isDeclSpecifier(const std::string &s)
{
    static const std::set<std::string> spec = {
        "virtual", "static", "inline", "explicit", "constexpr",
        "consteval", "friend", "extern", "mutable", "typename",
        "register", "thread_local",
    };
    return spec.count(s) != 0;
}

struct Parser
{
    SourceFile &f;
    const Tokens &toks;

    explicit Parser(SourceFile &file) : f(file), toks(file.toks) {}

    std::size_t
    size() const
    {
        return toks.size();
    }

    const Token &
    at(std::size_t i) const
    {
        static const Token end{Tok::End, "", 0};
        return i < toks.size() ? toks[i] : end;
    }

    /** Skip balanced `<`...`>` starting at the `<` at @p i; bails (returns
     *  i + 1) after a cap so a stray comparison cannot eat the file. */
    std::size_t
    skipAngles(std::size_t i) const
    {
        int depth = 0;
        for (std::size_t k = i; k < size() && k < i + 400; ++k) {
            if (at(k).is("<"))
                ++depth;
            else if (at(k).is(">") && --depth == 0)
                return k + 1;
            else if (at(k).is(";") || at(k).is("{"))
                break; // not a template argument list after all
        }
        return i + 1;
    }

    /** Does the declaration prefix ending just before @p nameIdx contain
     *  `Task <`? Scans back to the previous statement boundary. */
    bool
    prefixReturnsTask(std::size_t nameIdx) const
    {
        const std::size_t lo = nameIdx > 48 ? nameIdx - 48 : 0;
        for (std::size_t k = nameIdx; k-- > lo;) {
            const Token &t = at(k);
            if (t.is(";") || t.is("{") || t.is("}") || t.is(":"))
                return false;
            if (t.ident() && t.text == "Task" && at(k + 1).is("<"))
                return true;
        }
        return false;
    }

    /** First token index of the declaration prefix for the name at
     *  @p chainBegin (start of its `A::B::` qualifier chain): one past
     *  the previous statement boundary. */
    std::size_t
    prefixBegin(std::size_t chainBegin) const
    {
        const std::size_t lo = chainBegin > 48 ? chainBegin - 48 : 0;
        for (std::size_t k = chainBegin; k-- > lo;) {
            const Token &t = at(k);
            if (t.is(";") || t.is("{") || t.is("}") || t.is(":") ||
                t.is("public") || t.is("private") || t.is("protected"))
                return k + 1;
        }
        return lo;
    }

    /** Normalized return-type text for the declaration whose name
     *  qualifier chain starts at @p chainBegin. Empty when nothing
     *  usable precedes the name (constructors, conversion ops). */
    std::string
    prefixRetType(std::size_t chainBegin) const
    {
        std::size_t k = prefixBegin(chainBegin);
        // Drop specifiers, attributes and template headers up front.
        while (k < chainBegin) {
            const Token &t = at(k);
            if (t.ident() && isDeclSpecifier(t.text)) {
                ++k;
                continue;
            }
            if (t.is("[") && at(k + 1).is("[")) { // [[nodiscard]] etc.
                k = skipBalanced(toks, k);
                continue;
            }
            if (t.is("template") && at(k + 1).is("<")) {
                k = skipAngles(k + 1);
                continue;
            }
            break;
        }
        return typeText(toks, k, chainBegin);
    }

    /** Qualified name A::B::name built by walking `::` chains left;
     *  @p chainBegin receives the index of the first chain token. */
    std::string
    qualNameAt(std::size_t nameIdx, std::size_t &chainBegin) const
    {
        std::string q = at(nameIdx).text;
        std::size_t k = nameIdx;
        while (k >= 2 && at(k - 1).is("::") && at(k - 2).ident()) {
            q = at(k - 2).text + "::" + q;
            k -= 2;
        }
        chainBegin = k;
        return q;
    }

    /** Parse the parameter list opening at the `(` at @p open. */
    std::vector<Param>
    parseParams(std::size_t open) const
    {
        std::vector<Param> out;
        const std::size_t close = skipBalanced(toks, open) - 1;
        std::size_t start = open + 1;
        std::size_t k = start;
        auto flush = [&](std::size_t end) {
            // Strip a default argument.
            std::size_t e = end;
            for (std::size_t q = start; q < end; ++q) {
                if (at(q).is("=")) {
                    e = q;
                    break;
                }
            }
            if (e <= start)
                return;
            Param pa;
            const Token &last = at(e - 1);
            if (e - start >= 2 && last.ident() &&
                !isKeywordNotAName(last.text) && !at(e - 2).is("::")) {
                pa.name = last.text;
                pa.type = typeText(toks, start, e - 1);
            } else {
                pa.type = typeText(toks, start, e);
            }
            if (pa.type != "void")
                out.push_back(pa);
        };
        while (k < close) {
            const Token &t = at(k);
            if (t.is("(") || t.is("[") || t.is("{")) {
                k = skipBalanced(toks, k);
                continue;
            }
            if (t.is("<") && k > start && at(k - 1).ident()) {
                k = skipAngles(k);
                continue;
            }
            if (t.is(",")) {
                flush(k);
                start = k + 1;
            }
            ++k;
        }
        flush(close);
        return out;
    }

    /** Walk a constructor initializer list starting at the `:` at @p i;
     *  returns the index of the body `{`, or npos when the shape does
     *  not match. */
    std::size_t
    findCtorBody(std::size_t i) const
    {
        std::size_t k = i + 1;
        while (k < size()) {
            // initializer name: idents, ::, template args
            bool any = false;
            while (at(k).ident() || at(k).is("::")) {
                ++k;
                any = true;
                if (at(k).is("<"))
                    k = skipAngles(k);
            }
            if (!any)
                return std::string::npos;
            if (at(k).is("(") || at(k).is("{"))
                k = skipBalanced(toks, k);
            else
                return std::string::npos;
            if (at(k).is(",")) {
                ++k;
                continue;
            }
            if (at(k).is("{"))
                return k;
            return std::string::npos;
        }
        return std::string::npos;
    }

    /**
     * Candidate function at @p i (ident followed by `(`), inside class
     * @p cls (empty at namespace scope) with current access
     * @p isPublic. Returns the index to continue scanning from.
     */
    std::size_t
    candidate(std::size_t i, const std::string &cls, bool isPublic)
    {
        const std::string &name = at(i).text;
        if (isKeywordNotAName(name))
            return i + 1;
        std::size_t close = skipBalanced(toks, i + 1);
        if (close >= size())
            return i + 1;

        const bool returnsTask = prefixReturnsTask(i);
        std::size_t chainBegin = i;
        const std::string qualName = qualNameAt(i, chainBegin);
        const std::string retType = prefixRetType(chainBegin);
        // Out-of-line `Engine::deliver` qualifies the class; in-class
        // definitions inherit the enclosing class name.
        std::string className = cls;
        const std::size_t colons = qualName.rfind("::");
        if (colons != std::string::npos) {
            const std::size_t prev = qualName.rfind("::", colons - 1);
            className = qualName.substr(
                prev == std::string::npos ? 0 : prev + 2,
                colons - (prev == std::string::npos ? 0 : prev + 2));
        }
        std::size_t k = close; // one past `)`

        auto declare = [&]() {
            f.members.push_back({cls.empty() ? className : cls, name,
                                 at(i).line, returnsTask, isPublic,
                                 retType, parseParams(i + 1)});
        };
        auto define = [&](std::size_t bodyBrace) {
            FnDef d;
            d.name = name;
            d.qualName = qualName;
            d.className = className;
            d.line = at(i).line;
            d.bodyBegin = bodyBrace;
            d.bodyEnd = skipBalanced(toks, bodyBrace);
            d.returnsTask = returnsTask;
            d.retType = retType;
            d.params = parseParams(i + 1);
            f.fns.push_back(d);
            declare();
            return d.bodyEnd;
        };

        for (std::size_t guard = 0; guard < 24 && k < size(); ++guard) {
            const Token &t = at(k);
            if (t.is(";")) {
                declare();
                return k + 1;
            }
            if (t.is("{"))
                return define(k);
            if (t.is(":")) {
                const std::size_t body = findCtorBody(k);
                if (body == std::string::npos)
                    return i + 1;
                return define(body);
            }
            if (t.is("=")) {
                // `= 0;` / `= default;` / `= delete;` — a declaration.
                while (k < size() && !at(k).is(";"))
                    ++k;
                declare();
                return k + 1;
            }
            if (t.is("const") || t.is("noexcept") || t.is("override") ||
                t.is("final") || t.is("mutable") || t.is("&") ||
                t.is("&&")) {
                ++k;
                if (at(k).is("(")) // noexcept(...)
                    k = skipBalanced(toks, k);
                continue;
            }
            if (t.is("->")) { // trailing return type
                std::size_t e = k + 1;
                while (e < size() && !at(e).is("{") && !at(e).is(";") &&
                       !at(e).is("}")) {
                    if (at(e).is("<")) {
                        e = skipAngles(e);
                        continue;
                    }
                    ++e;
                }
                k = e;
                continue;
            }
            return i + 1; // not a function shape
        }
        return i + 1;
    }

    /** `using NAME = TYPE;` at the current position (the `using`). */
    std::size_t
    alias(std::size_t i)
    {
        if (!at(i + 1).ident() || !at(i + 2).is("="))
            return i + 1; // using-directive / using-declaration
        std::size_t e = i + 3;
        while (e < size() && !at(e).is(";")) {
            if (at(e).is("<")) {
                e = skipAngles(e);
                continue;
            }
            if (at(e).is("{") || at(e).is("}"))
                return e; // malformed; bail without consuming
            ++e;
        }
        f.aliases.emplace_back(at(i + 1).text, typeText(toks, i + 3, e));
        return e + 1;
    }

    /** Scan tokens from @p i to the `}` closing this region (or the
     *  end). @p cls is the class name when this is a class body. */
    std::size_t
    region(std::size_t i, const std::string &cls, bool defaultPublic)
    {
        bool isPublic = defaultPublic;
        while (i < size() && at(i).kind != Tok::End) {
            const Token &t = at(i);

            if (t.is("}"))
                return i + 1;

            if (t.is("template") && at(i + 1).is("<")) {
                i = skipAngles(i + 1);
                continue;
            }

            if (!cls.empty() &&
                (t.is("public") || t.is("private") || t.is("protected")) &&
                at(i + 1).is(":")) {
                isPublic = t.is("public");
                i += 2;
                continue;
            }

            if (t.is("using") || t.is("typedef")) {
                if (t.is("using")) {
                    i = alias(i);
                    continue;
                }
                // typedef TYPE NAME; — name is the last ident before ;
                std::size_t e = i + 1;
                while (e < size() && !at(e).is(";") && !at(e).is("{"))
                    ++e;
                if (at(e).is(";") && e >= i + 3 && at(e - 1).ident())
                    f.aliases.emplace_back(at(e - 1).text,
                                           typeText(toks, i + 1, e - 1));
                i = e + 1;
                continue;
            }

            if (t.is("namespace")) {
                std::size_t k = i + 1;
                while (at(k).ident() || at(k).is("::"))
                    ++k;
                if (at(k).is("{")) {
                    i = region(k + 1, "", true);
                    continue;
                }
                i = k + 1; // alias or malformed; move on
                continue;
            }

            if (t.is("enum")) {
                std::size_t k = i + 1;
                while (k < size() && !at(k).is("{") && !at(k).is(";"))
                    ++k;
                i = at(k).is("{") ? skipBalanced(toks, k) : k + 1;
                continue;
            }

            if (t.is("class") || t.is("struct") || t.is("union")) {
                // Class head: remember the last plain identifier before
                // the base-clause `:` or the `{`.
                std::string name;
                std::size_t k = i + 1;
                bool body = false;
                while (k < size()) {
                    const Token &h = at(k);
                    if (h.is(";") || h.is("(") || h.is(")") ||
                        h.is(",") || h.is(">") || h.is("=") ||
                        h.is("&") || h.is("*"))
                        break; // fwd decl / elaborated type use
                    if (h.is("{")) {
                        body = true;
                        break;
                    }
                    if (h.is(":")) { // base clause; body follows
                        while (k < size() && !at(k).is("{") &&
                               !at(k).is(";"))
                            ++k;
                        body = at(k).is("{");
                        break;
                    }
                    if (h.is("<")) {
                        k = skipAngles(k);
                        continue;
                    }
                    if (h.ident() && !h.is("final"))
                        name = h.text;
                    ++k;
                }
                if (body) {
                    ClassDef cd;
                    cd.name = name.empty() ? "?" : name;
                    cd.line = t.line;
                    cd.bodyBegin = k;
                    i = region(k + 1, cd.name,
                               t.is("class") ? false : true);
                    cd.bodyEnd = i;
                    f.classes.push_back(cd);
                    continue;
                }
                i = k + 1;
                continue;
            }

            if (t.ident() && at(i + 1).is("(")) {
                i = candidate(i, cls, isPublic);
                continue;
            }

            if (t.is("{")) { // stray initializer braces etc.
                i = skipBalanced(toks, i);
                continue;
            }

            ++i;
        }
        return i;
    }
};

} // namespace

std::size_t
skipBalanced(const Tokens &toks, std::size_t i)
{
    if (i >= toks.size())
        return toks.size();
    const std::string open = toks[i].text;
    const std::string close =
        open == "(" ? ")" : open == "{" ? "}" : open == "[" ? "]" : "";
    if (close.empty())
        return i + 1;
    int depth = 0;
    for (std::size_t k = i; k < toks.size(); ++k) {
        if (toks[k].text == open)
            ++depth;
        else if (toks[k].text == close && --depth == 0)
            return k + 1;
    }
    return toks.size();
}

std::string
typeText(const Tokens &toks, std::size_t lo, std::size_t hi)
{
    std::string out;
    for (std::size_t k = lo; k < hi && k < toks.size(); ++k) {
        const Token &t = toks[k];
        if (t.kind == Tok::End)
            break;
        if ((t.ident() || t.kind == Tok::Number) && !out.empty()) {
            const char back = out.back();
            if (std::string("abcdefghijklmnopqrstuvwxyz"
                            "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
                            "0123456789_").find(back) != std::string::npos)
                out += ' ';
        }
        out += t.text;
    }
    return out;
}

void
parseFile(SourceFile &f)
{
    Parser p(f);
    p.region(0, "", true);
}

void
buildTaskIndex(Project &p)
{
    // name -> (seen returning Task, seen returning something else)
    std::map<std::string, std::pair<bool, bool>> seen;
    for (const SourceFile &f : p.files) {
        for (const MemberDecl &d : f.members) {
            auto &s = seen[d.name];
            (d.returnsTask ? s.first : s.second) = true;
        }
        for (const FnDef &d : f.fns) {
            auto &s = seen[d.name];
            (d.returnsTask ? s.first : s.second) = true;
        }
    }
    for (const auto &[name, s] : seen) {
        if (s.first && !s.second)
            p.taskFns.insert(name);
        else if (s.first && s.second)
            p.ambiguousTaskFns.insert(name);
    }
}

} // namespace shrimp::analyze
