/**
 * @file
 * C++ lexer for shrimp_analyze. Produces the token stream for one
 * source file, drops comments/string contents (mining comments for
 * `analyze:` annotations first), records project-relative #include
 * directives, and skips all other preprocessor lines so macro
 * definitions cannot confuse the downstream token-pattern parser.
 */

#ifndef SHRIMP_TOOLS_ANALYZE_LEXER_HH
#define SHRIMP_TOOLS_ANALYZE_LEXER_HH

#include <string>

#include "model.hh"

namespace shrimp::analyze
{

/** Lex @p text into @p out (toks/annotations/includes). @p out.rel and
 *  @p out.dir must already be set by the caller. */
void lexFile(const std::string &text, SourceFile &out);

} // namespace shrimp::analyze

#endif // SHRIMP_TOOLS_ANALYZE_LEXER_HH
