/**
 * @file
 * Token model for shrimp_analyze, the project-native static analyzer.
 *
 * The analyzer tokenizes C++ sources itself (no clang dependency — the
 * container image has none; see ROADMAP) and works on token streams
 * rather than an AST. Tokens carry their line number so findings are
 * clickable, and comments are consumed during lexing but mined for
 * `analyze:` annotations before being dropped.
 */

#ifndef SHRIMP_TOOLS_ANALYZE_TOKEN_HH
#define SHRIMP_TOOLS_ANALYZE_TOKEN_HH

#include <string>
#include <vector>

namespace shrimp::analyze
{

enum class Tok
{
    Ident,  //!< identifier or keyword (co_await, return, ... included)
    Number, //!< numeric literal
    Str,    //!< string or char literal (contents dropped)
    Punct,  //!< operator / punctuation; `>` is never fused into `>>`
    End,    //!< one-past-last sentinel
};

struct Token
{
    Tok kind = Tok::End;
    std::string text;
    int line = 0;

    bool is(const char *t) const { return text == t; }
    bool ident() const { return kind == Tok::Ident; }
};

using Tokens = std::vector<Token>;

} // namespace shrimp::analyze

#endif // SHRIMP_TOOLS_ANALYZE_TOKEN_HH
