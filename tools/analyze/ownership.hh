/**
 * @file
 * Whole-program ownership & escape analysis for shrimp_analyze.
 *
 * buildOwnership() classifies every class defined under the layered
 * src/ directories on the lattice in model.hh (Own):
 *
 *  1. Seeds: every class named "Node" plus every class carrying a
 *     SHRIMP_SHARD_OWNED marker is NodeOwned.
 *  2. Value containment BFS: a field held by value (including through
 *     owning wrappers — vector/unique_ptr/optional/map/... — and
 *     project-class templates like Channel<T>) of a NodeOwned class is
 *     NodeOwned. Value containment takes precedence over reference
 *     reachability, so an intra-node back-reference (ShrimpNic's
 *     `Memory &mem_`) does not demote the referee.
 *  3. Reference closure: classes reached from classified classes only
 *     through `const&`/`const*` fields become SharedRO; through
 *     mutable refs/pointers, SharedMutable. SHRIMP_SHARD_SHARED
 *     annotations force SharedMutable with the author's reason.
 *  4. Carriers: message types that cross nodes *by value* (net::Packet
 *     and friends) are flagged; a pointer stored into one is an escape
 *     even though the carrier itself is cheap to copy.
 *  5. Escape pass: three detectors walk every function body using the
 *     call graph + summaries —
 *       shared-mutable-static   namespace/class/function-scope mutable
 *                               `static` data in layered src dirs
 *       cross-node-escape       address of node-owned state stored
 *                               into a carrier field, into a foreign
 *                               node-owned object reached via a
 *                               ref/pointer parameter, or passed to a
 *                               method of such an object
 *       event-capture-escape    node-owned state captured by reference
 *                               (or `this`) into a lambda handed to an
 *                               event-scheduling sink
 *     Edges allowlisted by `analyze: shared(...)` / `analyze:
 *     allow(rule)` annotations are kept in the report with
 *     allowed=true but produce no finding.
 *  6. Verdict upgrade: a NodeOwned class with a non-allowed escape
 *     edge becomes Escapes.
 *
 * The JSON report (ownershipJson) is the shard-partition plan ROADMAP
 * item 2 consumes: per-class verdicts with provenance and the full
 * escape-edge table.
 */

#ifndef SHRIMP_TOOLS_ANALYZE_OWNERSHIP_HH
#define SHRIMP_TOOLS_ANALYZE_OWNERSHIP_HH

#include "model.hh"

namespace shrimp::analyze
{

/** Compute Project::ownership. Requires parsed files, extractTypes(),
 *  buildTypeIndex() and buildSummaries() to have run. */
void buildOwnership(Project &p);

/** Machine-readable report for --ownership-report=FILE. */
std::string ownershipJson(const Project &p);

/** Is @p dir one of the layered src directories the ownership pass
 *  scans (base/check/sim/mem/net/nic/node/vmmc/nx/rpc/sock/srpc)? */
bool inOwnershipScope(const std::string &dir);

} // namespace shrimp::analyze

#endif // SHRIMP_TOOLS_ANALYZE_OWNERSHIP_HH
