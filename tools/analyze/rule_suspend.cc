/**
 * @file
 * suspend-under-exclusion: a `co_await` between `<lock>.acquire()` and
 * `<lock>.release()` in the same function body. Between those two
 * calls the code owns a mutual-exclusion resource (a Semaphore guarding
 * a Bus or the CPU); suspending there lets arbitrarily much simulated
 * activity interleave while the resource is held, which reorders
 * occupancy accounting relative to the modeled hardware.
 *
 * The scan is linear over the body (path-insensitive): acquire adds
 * the awaited lock expression to the held set, release removes it, and
 * any other co_await while the set is non-empty is a finding. The two
 * intentional sites in the tree (Bus::transfer and Cpu::use, where the
 * awaited Delay IS the modeled occupancy) carry
 * `// analyze: allow(suspend-under-exclusion)` annotations.
 */

#include <algorithm>
#include <cstddef>

#include "rules.hh"

namespace shrimp::analyze
{

namespace
{

/** The identifier chain (a, a.b, a->b, A::a) ending just before @p i,
 *  rendered as a normalized string; empty if none. */
std::string
chainEndingAt(const Tokens &toks, std::size_t i)
{
    std::string s;
    std::size_t k = i;
    while (k > 0) {
        const Token &t = toks[k - 1];
        if (t.is("co_await") || t.is("return") || t.is("co_return"))
            break; // keywords are never part of the object expression
        if (t.ident() || t.is(".") || t.is("->") || t.is("::")) {
            s = t.text + s;
            --k;
            continue;
        }
        break;
    }
    return s;
}

} // namespace

void
ruleSuspendUnderExclusion(const Project &p, std::vector<Finding> &out)
{
    for (const SourceFile &f : p.files) {
        for (const FnDef &fn : f.fns) {
            std::vector<std::string> held;
            for (std::size_t k = fn.bodyBegin + 1; k < fn.bodyEnd; ++k) {
                const Token &t = f.toks[k];

                if (t.ident() && t.text == "acquire" && k >= 2 &&
                    f.toks[k + 1].is("(") &&
                    (f.toks[k - 1].is(".") || f.toks[k - 1].is("->"))) {
                    // `co_await <expr>.acquire()` — find the co_await
                    // that governs it (must be in the same statement).
                    std::string lock = chainEndingAt(f.toks, k - 1);
                    if (!lock.empty() && lock.back() == '.')
                        lock.pop_back();
                    if (lock.size() >= 2 &&
                        lock.compare(lock.size() - 2, 2, "->") == 0)
                        lock.resize(lock.size() - 2);
                    held.push_back(lock);
                    continue;
                }

                if (t.ident() && t.text == "release" && k >= 2 &&
                    f.toks[k + 1].is("(") &&
                    (f.toks[k - 1].is(".") || f.toks[k - 1].is("->"))) {
                    std::string lock = chainEndingAt(f.toks, k - 1);
                    if (!lock.empty() && lock.back() == '.')
                        lock.pop_back();
                    if (lock.size() >= 2 &&
                        lock.compare(lock.size() - 2, 2, "->") == 0)
                        lock.resize(lock.size() - 2);
                    auto it = std::find(held.begin(), held.end(), lock);
                    if (it != held.end())
                        held.erase(it);
                    continue;
                }

                if (t.is("co_await") && !held.empty()) {
                    // The acquire's own co_await precedes the acquire()
                    // token, so it can never be misflagged; anything
                    // else awaited while a lock is held is suspect.
                    bool isAcquire = false;
                    for (std::size_t q = k + 1;
                         q < fn.bodyEnd && q < k + 12; ++q) {
                        if (f.toks[q].is(";") || f.toks[q].is("{"))
                            break;
                        if (f.toks[q].ident() &&
                            f.toks[q].text == "acquire" &&
                            f.toks[q + 1].is("(")) {
                            isAcquire = true;
                            break;
                        }
                    }
                    if (isAcquire)
                        continue;
                    if (f.allows(t.line, "suspend-under-exclusion"))
                        continue;
                    out.push_back(
                        {"suspend-under-exclusion", f.rel, t.line,
                         fn.qualName + "/" + held.back(),
                         "co_await while holding '" + held.back() +
                             "' (acquired earlier in " + fn.qualName +
                             ", not yet released): the suspension lets "
                             "other tasks interleave inside the "
                             "critical section"});
                }
            }
        }
    }
}

} // namespace shrimp::analyze
