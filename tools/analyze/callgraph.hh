/**
 * @file
 * Receiver-resolved call sites for shrimp_analyze.
 *
 * callSites() re-scans one function body and returns every call
 * expression with:
 *
 *  - the receiver chain (`bus_.`, `node->nic().`, `this->`) resolved
 *    through the typed symbol index (locals -> parameters -> fields of
 *    the enclosing class, then field/method hops), giving the class
 *    the call dispatches to,
 *  - a summary key ("Class::method" or bare "name") that matches the
 *    keys dataflow.cc computes interprocedural FnSummaries under, or
 *    "" when the callee cannot be resolved (std:: members, externs),
 *  - statement context: is the statement awaited/returned, is this
 *    call nested inside another call's argument list (and which
 *    argument position), the assignment target when the statement is
 *    `lhs = call(...)`.
 *
 * The scan is linear and allocation-light; rules call it per function
 * at analysis time (call sites are not cached — they derive entirely
 * from cached facts).
 */

#ifndef SHRIMP_TOOLS_ANALYZE_CALLGRAPH_HH
#define SHRIMP_TOOLS_ANALYZE_CALLGRAPH_HH

#include "model.hh"

namespace shrimp::analyze
{

struct CallSite
{
    std::string callee;        //!< name as written
    std::string recvChain;     //!< rendered receiver ("bus_", "a.b", "")
    std::string resolvedClass; //!< class the call dispatches to, or ""
    std::string key;           //!< summary key, or "" when unresolved
    int line = 0;
    std::size_t nameIdx = 0;   //!< token index of the callee identifier
    std::size_t argsBegin = 0; //!< first token inside the parens
    std::size_t argsEnd = 0;   //!< one past the last token inside
    int parenDepth = 0;        //!< 0 = top-level expression of its stmt
    int argIndexInParent = -1; //!< argument position when nested
    std::size_t parentNameIdx = 0; //!< enclosing call's ident token
    bool stmtConsumed = false; //!< stmt has co_await/return/co_yield
    bool stmtReturns = false;  //!< stmt has return/co_return specifically
};

/** All call expressions in @p fn's body, resolved against @p p. */
std::vector<CallSite> callSites(const Project &p, const SourceFile &f,
                                const FnDef &fn);

/** Resolve the class of the receiver chain ending just before token
 *  @p dotIdx (a `.`/`->`/`::`); "" when unknown. */
std::string resolveReceiver(const Project &p, const SourceFile &f,
                            const FnDef &fn, std::size_t dotIdx);

/** The summary key for a definition: "Class::name" or bare "name". */
std::string fnKey(const FnDef &fn);

/** Split the argument token range [argsBegin, argsEnd) of a call into
 *  per-argument token ranges (top-level commas). */
std::vector<std::pair<std::size_t, std::size_t>>
splitArgs(const Tokens &toks, std::size_t argsBegin, std::size_t argsEnd);

} // namespace shrimp::analyze

#endif // SHRIMP_TOOLS_ANALYZE_CALLGRAPH_HH
