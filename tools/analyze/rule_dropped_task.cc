/**
 * @file
 * dropped-task: a Task is lazy — a call whose returned Task is never
 * co_awaited, spawned, returned or started is a simulated activity
 * that silently does not happen. `[[nodiscard]]` (enforced by the
 * lint) catches the bare-call form at compile time only when warnings
 * are errors, and can never catch `auto t = f();` followed by nothing;
 * this pass catches both.
 *
 * Per statement containing a call to an indexed Task-returning name:
 *
 *   - the statement co_awaits / returns / co_returns     -> consumed
 *   - the call is nested inside another call's parens
 *     (spawn(f()), vec.push_back(f()), if (ok(f()))...)  -> consumed
 *     (ownership escapes; tracking it further needs an AST)
 *   - assigned to a member or dereferenced target        -> consumed
 *   - assigned to a local that appears again later
 *     in the body                                        -> consumed
 *   - assigned to a local never mentioned again          -> FINDING
 *   - a bare expression statement                        -> FINDING
 */

#include <cstddef>

#include "parse.hh"
#include "rules.hh"

namespace shrimp::analyze
{

namespace
{

bool
identAppearsAfter(const Tokens &toks, std::size_t from, std::size_t end,
                  const std::string &name)
{
    for (std::size_t k = from; k < end; ++k)
        if (toks[k].ident() && toks[k].text == name)
            return true;
    return false;
}

/** Keywords that may directly precede a genuine call expression. Any
 *  *other* identifier right before `name(` means `Type name(args)` — a
 *  variable declaration whose name merely collides with a Task
 *  function (e.g. `ServerCall call(...)`). */
bool
mayPrecedeCall(const Token &t)
{
    return !t.ident() ||
           t.is("return") || t.is("co_return") || t.is("co_await") ||
           t.is("co_yield") || t.is("else") || t.is("do") ||
           t.is("case") || t.is("throw");
}

void
scanStatement(const SourceFile &f, const FnDef &fn, std::size_t s,
              std::size_t e, const Project &p,
              const std::set<std::string> &shadowed,
              std::vector<Finding> &out)
{
    const Tokens &toks = f.toks;

    bool consumedAll = false;
    for (std::size_t k = s; k < e; ++k) {
        const Token &t = toks[k];
        if (t.is("co_await") || t.is("co_return") || t.is("return") ||
            t.is("co_yield")) {
            consumedAll = true;
            break;
        }
    }
    if (consumedAll)
        return;

    int depth = 0;
    std::size_t assignAt = std::string::npos;
    for (std::size_t k = s; k < e; ++k) {
        const Token &t = toks[k];
        if (t.is("(") || t.is("["))
            ++depth;
        else if (t.is(")") || t.is("]"))
            --depth;
        else if (t.is("=") && depth == 0 && assignAt == std::string::npos)
            assignAt = k;
        else if (t.ident() && k + 1 < e && toks[k + 1].is("(") &&
                 p.taskFns.count(t.text) != 0) {
            if (depth > 0)
                continue; // wrapped in another call: ownership escapes
            if (shadowed.count(t.text) != 0)
                continue; // rebound locally (a lambda), not the Task fn
            if (k > s && !mayPrecedeCall(toks[k - 1]))
                continue; // `Type name(args)`: declaration, not a call
            if (k > fn.bodyBegin && toks[k - 1].is(">"))
                continue; // `Foo<T> name(args)`: also a declaration
            if (f.allows(t.line, "dropped-task"))
                continue;
            if (assignAt != std::string::npos && assignAt < k) {
                // `lhs = f(...)`: find the stored name and look for any
                // later mention in the body.
                const Token &lhs = toks[assignAt - 1];
                if (!lhs.ident())
                    continue; // *p = / arr[i] = : escapes the analysis
                if (assignAt >= 2 && (toks[assignAt - 2].is(".") ||
                                      toks[assignAt - 2].is("->")))
                    continue; // member target: escapes
                if (identAppearsAfter(toks, e + 1, fn.bodyEnd, lhs.text))
                    continue;
                out.push_back(
                    {"dropped-task", f.rel, t.line,
                     fn.qualName + "/" + t.text + "/stored",
                     "Task returned by '" + t.text + "()' is stored in '" +
                         lhs.text + "' but '" + lhs.text +
                         "' is never awaited, started, spawned or "
                         "returned — the coroutine never runs"});
                continue;
            }
            out.push_back(
                {"dropped-task", f.rel, t.line,
                 fn.qualName + "/" + t.text,
                 "result of Task-returning '" + t.text +
                     "()' is discarded — the coroutine is lazy and will "
                     "never run; co_await it, spawn it, or return it"});
        }
    }
}

} // namespace

void
ruleDroppedTask(const Project &p, std::vector<Finding> &out)
{
    for (const SourceFile &f : p.files) {
        for (const FnDef &fn : f.fns) {
            // Names rebound inside this body (`auto drain = [...]`)
            // shadow any same-named Task function in the index.
            std::set<std::string> shadowed;
            for (std::size_t k = fn.bodyBegin + 1;
                 k + 3 < fn.bodyEnd; ++k) {
                if (f.toks[k].is("auto") && f.toks[k + 1].ident() &&
                    f.toks[k + 2].is("=") && f.toks[k + 3].is("["))
                    shadowed.insert(f.toks[k + 1].text);
            }

            std::size_t stmt = fn.bodyBegin + 1;
            int paren = 0;
            for (std::size_t k = stmt; k < fn.bodyEnd; ++k) {
                const Token &t = f.toks[k];
                if (t.is("(") || t.is("["))
                    ++paren;
                else if (t.is(")") || t.is("]"))
                    --paren;
                else if ((t.is(";") && paren == 0) || t.is("{") ||
                         t.is("}")) {
                    if (k > stmt)
                        scanStatement(f, fn, stmt, k, p, shadowed, out);
                    stmt = k + 1;
                    paren = 0;
                }
            }
        }
    }
}

} // namespace shrimp::analyze
