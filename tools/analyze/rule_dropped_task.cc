/**
 * @file
 * dropped-task: a Task is lazy — a call whose returned Task is never
 * co_awaited, spawned, returned or started is a simulated activity
 * that silently does not happen. `[[nodiscard]]` (enforced by the
 * lint) catches the bare-call form at compile time only when warnings
 * are errors, and can never catch `auto t = f();` followed by nothing;
 * this pass catches both, plus the shapes that need type information:
 *
 *   - a call nested in another call's arguments is consumed ONLY when
 *     the receiving parameter actually consumes it — the enclosing
 *     function's interprocedural summary (dataflow.hh) is consulted,
 *     and a call the index cannot resolve is assumed to consume
 *     (conservative: `vec.push_back(f())`, `spawn(f())` stay silent),
 *   - a local `std::vector<sim::Task<>>` (or any indexed container/
 *     wrapper of Task, through aliases) that is populated but never
 *     drained — every mention is a push_back/emplace/reserve-style
 *     populate — holds coroutines that never run, even though each
 *     push "used" the Task.
 *
 * Per statement containing a call to an indexed Task-returning name:
 *
 *   - the statement co_awaits / returns / co_returns     -> consumed
 *   - nested in a consuming (or unresolved) call         -> consumed
 *   - nested in a provably non-consuming call            -> FINDING
 *   - assigned to a member or dereferenced target        -> consumed
 *   - assigned to a local that appears again later
 *     in the body                                        -> consumed
 *   - assigned to a local never mentioned again          -> FINDING
 *   - a bare expression statement                        -> FINDING
 */

#include <cstddef>

#include "callgraph.hh"
#include "parse.hh"
#include "rules.hh"
#include "types.hh"

namespace shrimp::analyze
{

namespace
{

bool
identAppearsAfter(const Tokens &toks, std::size_t from, std::size_t end,
                  const std::string &name)
{
    for (std::size_t k = from; k < end; ++k)
        if (toks[k].ident() && toks[k].text == name)
            return true;
    return false;
}

/** Keywords that may directly precede a genuine call expression. Any
 *  *other* identifier right before `name(` means `Type name(args)` — a
 *  variable declaration whose name merely collides with a Task
 *  function (e.g. `ServerCall call(...)`). */
bool
mayPrecedeCall(const Token &t)
{
    return !t.ident() ||
           t.is("return") || t.is("co_return") || t.is("co_await") ||
           t.is("co_yield") || t.is("else") || t.is("do") ||
           t.is("case") || t.is("throw");
}

/** Container methods that only put Tasks in (or size the storage) —
 *  they never run or hand off what is stored. */
bool
isPopulateMethod(const std::string &m)
{
    static const std::set<std::string> ms = {
        "push_back", "emplace_back", "emplace", "push", "insert",
        "reserve", "resize", "size", "empty", "capacity",
    };
    return ms.count(m) != 0;
}

/** The innermost call whose argument range contains token @p k, or
 *  null when @p k is not inside any call's parens. */
const CallSite *
enclosingCall(const std::vector<CallSite> &calls, std::size_t k)
{
    const CallSite *best = nullptr;
    for (const CallSite &cs : calls)
        if (cs.argsBegin <= k && k < cs.argsEnd &&
            (!best || cs.argsBegin > best->argsBegin))
            best = &cs;
    return best;
}

/** Argument index of token @p k inside @p cs (top-level commas). */
int
argIndexOf(const Tokens &toks, const CallSite &cs, std::size_t k)
{
    const auto args = splitArgs(toks, cs.argsBegin, cs.argsEnd);
    for (std::size_t a = 0; a < args.size(); ++a)
        if (args[a].first <= k && k < args[a].second)
            return int(a);
    return -1;
}

/** Does passing a value as argument @p k-at-token of call @p cs
 *  consume it? Unresolvable callees consume (conservative); a defined
 *  callee with a Task-typed, provably untouched parameter does not. */
bool
callConsumesArg(const Project &p, const Tokens &toks, const CallSite &cs,
                std::size_t k)
{
    if (cs.key.empty())
        return true;
    auto it = p.summaries.find(cs.key);
    if (it == p.summaries.end() || !it->second.defined)
        return true;
    const int arg = argIndexOf(toks, cs, k);
    if (arg < 0)
        return true;
    const FnSummary &s = it->second;
    if (s.taskParams.count(arg) == 0)
        return true; // parameter type unknown to the index
    return s.consumesTaskParam.count(arg) != 0;
}

void
scanStatement(const SourceFile &f, const FnDef &fn, std::size_t s,
              std::size_t e, const Project &p,
              const std::set<std::string> &shadowed,
              const std::vector<CallSite> &calls,
              std::vector<Finding> &out)
{
    const Tokens &toks = f.toks;

    bool consumedAll = false;
    for (std::size_t k = s; k < e; ++k) {
        const Token &t = toks[k];
        if (t.is("co_await") || t.is("co_return") || t.is("return") ||
            t.is("co_yield")) {
            consumedAll = true;
            break;
        }
    }
    if (consumedAll)
        return;

    int depth = 0;
    std::size_t assignAt = std::string::npos;
    for (std::size_t k = s; k < e; ++k) {
        const Token &t = toks[k];
        if (t.is("(") || t.is("["))
            ++depth;
        else if (t.is(")") || t.is("]"))
            --depth;
        else if (t.is("=") && depth == 0 && assignAt == std::string::npos)
            assignAt = k;
        else if (t.ident() && k + 1 < e && toks[k + 1].is("(") &&
                 p.taskFns.count(t.text) != 0) {
            if (shadowed.count(t.text) != 0)
                continue; // rebound locally (a lambda), not the Task fn
            if (k > s && !mayPrecedeCall(toks[k - 1]))
                continue; // `Type name(args)`: declaration, not a call
            if (k > fn.bodyBegin && toks[k - 1].is(">"))
                continue; // `Foo<T> name(args)`: also a declaration
            if (f.allows(t.line, "dropped-task"))
                continue;
            if (depth > 0) {
                // Wrapped in another call: consumed only if the
                // receiving parameter consumes it.
                const CallSite *host = enclosingCall(calls, k);
                if (!host || callConsumesArg(p, toks, *host, k))
                    continue;
                out.push_back(
                    {"dropped-task", f.rel, t.line,
                     fn.qualName + "/" + t.text + "/passed",
                     "Task returned by '" + t.text + "()' is passed to '" +
                         host->callee + "()', which never awaits, "
                         "spawns, stores or drains that parameter — "
                         "the coroutine never runs"});
                continue;
            }
            if (assignAt != std::string::npos && assignAt < k) {
                // `lhs = f(...)`: find the stored name and look for any
                // later mention in the body.
                const Token &lhs = toks[assignAt - 1];
                if (!lhs.ident())
                    continue; // *p = / arr[i] = : escapes the analysis
                if (assignAt >= 2 && (toks[assignAt - 2].is(".") ||
                                      toks[assignAt - 2].is("->")))
                    continue; // member target: escapes
                if (identAppearsAfter(toks, e + 1, fn.bodyEnd, lhs.text))
                    continue;
                out.push_back(
                    {"dropped-task", f.rel, t.line,
                     fn.qualName + "/" + t.text + "/stored",
                     "Task returned by '" + t.text + "()' is stored in '" +
                         lhs.text + "' but '" + lhs.text +
                         "' is never awaited, started, spawned or "
                         "returned — the coroutine never runs"});
                continue;
            }
            out.push_back(
                {"dropped-task", f.rel, t.line,
                 fn.qualName + "/" + t.text,
                 "result of Task-returning '" + t.text +
                     "()' is discarded — the coroutine is lazy and will "
                     "never run; co_await it, spawn it, or return it"});
        }
    }
}

/** Container tracking: a local container-of-Task whose every mention
 *  is a populate-style member call never runs what it holds. */
void
scanContainers(const Project &p, const SourceFile &f, const FnDef &fn,
               const std::vector<CallSite> &calls,
               std::vector<Finding> &out)
{
    const Tokens &toks = f.toks;
    for (const Local &l : fn.locals) {
        if (l.name.empty() ||
            !typeIsTaskContainer(p.types, l.type))
            continue;
        if (f.allows(l.line, "dropped-task"))
            continue;

        bool populated = false;
        bool consumed = false;
        for (std::size_t k = fn.bodyBegin + 1;
             k < fn.bodyEnd && !consumed; ++k) {
            if (!toks[k].ident() || toks[k].text != l.name)
                continue;
            const Token &prev = toks[k - 1];
            if (prev.is(".") || prev.is("->") || prev.is("::"))
                continue; // someone else's member, same name
            // Declaration mention: `std::vector<Task<>> name` — the
            // token before is part of the type.
            if (prev.ident() || prev.is(">") || prev.is("&") ||
                prev.is("*"))
                continue;

            // Member call on the container.
            if (k + 2 < fn.bodyEnd &&
                (toks[k + 1].is(".") || toks[k + 1].is("->")) &&
                toks[k + 2].ident()) {
                if (isPopulateMethod(toks[k + 2].text))
                    populated = true;
                else
                    consumed = true;
                continue;
            }
            // Range-for drains it.
            if (prev.is(":")) {
                consumed = true;
                continue;
            }
            // Awaited / returned / moved-from in the same statement.
            {
                bool stmtConsumes = false;
                for (std::size_t q = k; q > fn.bodyBegin; --q) {
                    const Token &b = toks[q - 1];
                    if (b.is(";") || b.is("{") || b.is("}"))
                        break;
                    if (b.is("co_await") || b.is("return") ||
                        b.is("co_return") || b.is("co_yield") ||
                        b.is("=")) {
                        stmtConsumes = true;
                        break;
                    }
                }
                if (stmtConsumes) {
                    consumed = true;
                    continue;
                }
            }
            // Passed into a call: consult the callee's summary.
            if (const CallSite *host = enclosingCall(calls, k)) {
                if (callConsumesArg(p, toks, *host, k))
                    consumed = true;
                continue; // non-consuming pass: keep scanning
            }
            consumed = true; // any other mention: assume it escapes
        }

        if (populated && !consumed)
            out.push_back(
                {"dropped-task", f.rel, l.line,
                 fn.qualName + "/container/" + l.name,
                 "container '" + l.name + "' (" + l.type +
                     ") is filled with Tasks but never drained — "
                     "nothing in " + fn.qualName +
                     " awaits, joins or iterates it, so the stored "
                     "coroutines never run"});
    }
}

} // namespace

void
ruleDroppedTask(const Project &p, std::vector<Finding> &out)
{
    for (const SourceFile &f : p.files) {
        for (const FnDef &fn : f.fns) {
            // Names rebound inside this body (`auto drain = [...]`)
            // shadow any same-named Task function in the index.
            std::set<std::string> shadowed;
            for (std::size_t k = fn.bodyBegin + 1;
                 k + 3 < fn.bodyEnd; ++k) {
                if (f.toks[k].is("auto") && f.toks[k + 1].ident() &&
                    f.toks[k + 2].is("=") && f.toks[k + 3].is("["))
                    shadowed.insert(f.toks[k + 1].text);
            }

            const std::vector<CallSite> calls = callSites(p, f, fn);

            std::size_t stmt = fn.bodyBegin + 1;
            int paren = 0;
            for (std::size_t k = stmt; k < fn.bodyEnd; ++k) {
                const Token &t = f.toks[k];
                if (t.is("(") || t.is("["))
                    ++paren;
                else if (t.is(")") || t.is("]"))
                    --paren;
                else if ((t.is(";") && paren == 0) || t.is("{") ||
                         t.is("}")) {
                    if (k > stmt)
                        scanStatement(f, fn, stmt, k, p, shadowed,
                                      calls, out);
                    stmt = k + 1;
                    paren = 0;
                }
            }

            scanContainers(p, f, fn, calls, out);
        }
    }
}

} // namespace shrimp::analyze
