#include "report.hh"

#include <algorithm>
#include <cstdlib>

namespace shrimp::report
{

namespace
{

/** Extract the JSON string value following @p key in @p line; returns
 *  false if the key is absent. Understands the escapes our emitters
 *  write (\" \\ \n \uXXXX). */
bool
getString(const std::string &line, const std::string &key,
          std::string &out)
{
    std::size_t p = line.find(key);
    if (p == std::string::npos)
        return false;
    p += key.size();
    while (p < line.size() && (line[p] == ' ' || line[p] == ':'))
        ++p;
    if (p >= line.size() || line[p] != '"')
        return false;
    out.clear();
    for (++p; p < line.size() && line[p] != '"'; ++p) {
        if (line[p] == '\\' && p + 1 < line.size()) {
            ++p;
            switch (line[p]) {
              case 'n':
                out += '\n';
                break;
              case 'u':
                p += 4; // \u00xx: control chars; drop them
                break;
              default:
                out += line[p]; // \" and \\ unescape to themselves
            }
        } else {
            out += line[p];
        }
    }
    return p < line.size();
}

/** Extract the unsigned value following @p key; false if absent. */
bool
getU64(const std::string &line, const std::string &key,
       std::uint64_t &out)
{
    std::size_t p = line.find(key);
    if (p == std::string::npos)
        return false;
    p += key.size();
    while (p < line.size() && (line[p] == ' ' || line[p] == ':'))
        ++p;
    if (p >= line.size() || !std::isdigit(unsigned(line[p])))
        return false;
    out = std::strtoull(line.c_str() + p, nullptr, 10);
    return true;
}

bool
getDouble(const std::string &line, const std::string &key, double &out)
{
    std::size_t p = line.find(key);
    if (p == std::string::npos)
        return false;
    p += key.size();
    while (p < line.size() && (line[p] == ' ' || line[p] == ':'))
        ++p;
    if (p >= line.size())
        return false;
    out = std::strtod(line.c_str() + p, nullptr);
    return true;
}

/** Trace "ts" fields are microseconds with exactly three decimals
 *  (writeTs in base/trace.cc); recover the integer nanosecond tick. */
bool
getTsNs(const std::string &line, std::uint64_t &out)
{
    std::size_t p = line.find("\"ts\":");
    if (p == std::string::npos)
        return false;
    p += 5;
    const char *s = line.c_str() + p;
    char *end = nullptr;
    std::uint64_t us = std::strtoull(s, &end, 10);
    if (end == s)
        return false;
    std::uint64_t frac = 0;
    if (*end == '.')
        frac = std::strtoull(end + 1, nullptr, 10);
    out = us * 1000 + frac;
    return true;
}

std::string
fmtUs(std::uint64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu.%03u",
                  (unsigned long long)(ns / 1000), unsigned(ns % 1000));
    return buf;
}

} // namespace

const std::string &
TraceData::track(int tid) const
{
    static const std::string unknown = "?";
    auto it = trackNames.find(tid);
    return it == trackNames.end() ? unknown : it->second;
}

bool
parseTrace(std::istream &in, TraceData &out, std::string &err)
{
    std::string line;
    bool sawHeader = false;
    while (std::getline(in, line)) {
        if (line.find("\"traceEvents\"") != std::string::npos)
            sawHeader = true;
        std::size_t obj = line.find("{\"ph\":\"");
        if (obj == std::string::npos)
            continue;
        char ph = line[obj + 7];
        if (ph == 'M') {
            // thread_name metadata names a track; ignore process_name.
            std::uint64_t tid = 0;
            std::string name;
            if (line.find("\"thread_name\"") != std::string::npos &&
                getU64(line, "\"tid\"", tid) &&
                getString(line, "\"args\":{\"name\"", name)) {
                out.trackNames[int(tid)] = name;
            }
            continue;
        }
        TraceEvent e;
        e.ph = ph;
        std::uint64_t tid = 0;
        if (!getString(line, "\"name\"", e.name) ||
            !getU64(line, "\"tid\"", tid) || !getTsNs(line, e.ts_ns)) {
            err = "malformed trace event: " + line;
            return false;
        }
        e.tid = int(tid);
        getU64(line, "\"id\"", e.id); // flow events only
        out.events.push_back(std::move(e));
    }
    if (!sawHeader) {
        err = "not a trace-event JSON file (no \"traceEvents\" key)";
        return false;
    }
    return true;
}

bool
parseProfile(std::istream &in, ProfileData &out, std::string &err)
{
    std::string line;
    bool sawTotal = false;
    while (std::getline(in, line)) {
        if (getU64(line, "\"events_total\"", out.eventsTotal))
            sawTotal = true;
        getU64(line, "\"host_ns_total\"", out.hostNsTotal);
        getU64(line, "\"max_pending\"", out.maxPending);
        getDouble(line, "\"avg_pending\"", out.avgPending);
        ProfileRow row;
        if (line.find("{\"name\":") != std::string::npos &&
            getString(line, "\"name\"", row.name) &&
            getU64(line, "\"events\"", row.events) &&
            getU64(line, "\"host_ns\"", row.hostNs)) {
            out.rows.push_back(std::move(row));
        }
    }
    if (!sawTotal) {
        err = "not a profile.json file (no \"events_total\" key)";
        return false;
    }
    return true;
}

bool
parseTimeseries(std::istream &in, std::vector<TsSample> &out,
                std::string &err)
{
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        TsSample s;
        if (!getU64(line, "\"tick\"", s.tick) ||
            !getU64(line, "\"pending\"", s.pending)) {
            err = "malformed timeseries line " + std::to_string(lineno);
            return false;
        }
        // The stats object is the tail of the line: "name":value pairs.
        std::size_t p = line.find("\"stats\":{");
        if (p != std::string::npos) {
            p += 9;
            while (p < line.size() && line[p] == '"') {
                std::size_t q = line.find('"', p + 1);
                if (q == std::string::npos)
                    break;
                std::string name = line.substr(p + 1, q - p - 1);
                std::uint64_t value =
                    std::strtoull(line.c_str() + q + 2, nullptr, 10);
                s.stats.emplace_back(std::move(name), value);
                p = line.find('"', q + 2);
                if (p == std::string::npos)
                    break;
            }
        }
        out.push_back(std::move(s));
    }
    return true;
}

std::vector<SpanChain>
spanChains(const TraceData &trace)
{
    std::map<std::uint64_t, SpanChain> byId;
    for (const TraceEvent &e : trace.events) {
        if (e.ph != 's' && e.ph != 't' && e.ph != 'f')
            continue;
        SpanChain &c = byId[e.id];
        c.id = e.id;
        c.stages.push_back(&e);
    }
    std::vector<SpanChain> chains;
    chains.reserve(byId.size());
    for (auto &[id, c] : byId) {
        bool s = false, t = false, f = false;
        for (const TraceEvent *e : c.stages) {
            s |= e->ph == 's';
            t |= e->ph == 't';
            f |= e->ph == 'f';
        }
        c.complete = s && t && f;
        chains.push_back(std::move(c));
    }
    return chains;
}

namespace
{

/** Per-(track,name) aggregate of matched Begin/End durations. */
struct StageStat
{
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
    std::uint64_t minNs = ~0ull;
    std::uint64_t maxNs = 0;
};

void
writeStageLatencies(std::ostream &os, const TraceData &trace, int topN)
{
    // Match B/E pairs per (tid, name) with a begin-timestamp stack;
    // events are in file order, which is emission (time) order.
    std::map<std::pair<int, std::string>, std::vector<std::uint64_t>>
        open;
    std::map<std::pair<std::string, std::string>, StageStat> stats;
    for (const TraceEvent &e : trace.events) {
        if (e.ph == 'B') {
            open[{e.tid, e.name}].push_back(e.ts_ns);
        } else if (e.ph == 'E') {
            auto &stack = open[{e.tid, e.name}];
            if (stack.empty())
                continue; // unmatched End; skip
            std::uint64_t dur = e.ts_ns - stack.back();
            stack.pop_back();
            StageStat &st = stats[{trace.track(e.tid), e.name}];
            ++st.count;
            st.totalNs += dur;
            st.minNs = std::min(st.minNs, dur);
            st.maxNs = std::max(st.maxNs, dur);
        }
    }
    if (stats.empty()) {
        os << "No Begin/End pairs in the trace.\n";
        return;
    }
    std::vector<std::pair<std::pair<std::string, std::string>,
                          StageStat>>
        rows(stats.begin(), stats.end());
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto &a, const auto &b) {
                         return a.second.totalNs > b.second.totalNs;
                     });
    if (int(rows.size()) > topN)
        rows.resize(topN);
    os << "| track | stage | count | total (us) | mean (us) | min (us) "
          "| max (us) |\n";
    os << "|---|---|---:|---:|---:|---:|---:|\n";
    for (const auto &[key, st] : rows) {
        os << "| " << key.first << " | " << key.second << " | "
           << st.count << " | " << fmtUs(st.totalNs) << " | "
           << fmtUs(st.totalNs / st.count) << " | " << fmtUs(st.minNs)
           << " | " << fmtUs(st.maxNs) << " |\n";
    }
}

void
writeSpanSection(std::ostream &os, const TraceData &trace)
{
    std::vector<SpanChain> chains = spanChains(trace);
    if (chains.empty()) {
        os << "No span flow events in the trace (run with "
              "--span-sample=N).\n";
        return;
    }
    std::size_t complete = 0;
    for (const SpanChain &c : chains)
        complete += c.complete;
    os << chains.size() << " span chain(s), " << complete
       << " fully connected (origin + waypoint(s) + terminus).\n";
    const SpanChain *pick = nullptr;
    for (const SpanChain &c : chains) {
        // Longest complete chain makes the best worked example.
        if (c.complete && (!pick || c.stages.size() > pick->stages.size()))
            pick = &c;
    }
    if (!pick)
        return;
    os << "\nLongest complete chain (id " << pick->id << "):\n\n";
    os << "| stage | track | t (us) | +delta (us) |\n";
    os << "|---|---|---:|---:|\n";
    std::uint64_t prev = pick->stages.front()->ts_ns;
    for (const TraceEvent *e : pick->stages) {
        os << "| " << e->name << " | " << trace.track(e->tid) << " | "
           << fmtUs(e->ts_ns) << " | " << fmtUs(e->ts_ns - prev)
           << " |\n";
        prev = e->ts_ns;
    }
}

void
writeProfileSection(std::ostream &os, const ProfileData &p, int topN)
{
    os << "Events dispatched: " << p.eventsTotal
       << "; host time in dispatch: " << p.hostNsTotal / 1000000
       << " ms; queue pressure max " << p.maxPending << ", avg "
       << p.avgPending << ".\n\n";
    os << "| rank | subsystem | events | host ms | ns/event | share |\n";
    os << "|---:|---|---:|---:|---:|---:|\n";
    int rank = 0;
    for (const ProfileRow &r : p.rows) {
        if (++rank > topN)
            break;
        double share =
            p.hostNsTotal ? 100.0 * double(r.hostNs) / double(p.hostNsTotal)
                          : 0.0;
        char ms[32], npe[32], pct[32];
        std::snprintf(ms, sizeof(ms), "%.2f", double(r.hostNs) / 1e6);
        std::snprintf(npe, sizeof(npe), "%.1f",
                      r.events ? double(r.hostNs) / double(r.events) : 0.0);
        std::snprintf(pct, sizeof(pct), "%.1f%%", share);
        os << "| " << rank << " | " << r.name << " | " << r.events
           << " | " << ms << " | " << npe << " | " << pct << " |\n";
    }
}

void
writeTimeseriesSection(std::ostream &os, const std::vector<TsSample> &ts)
{
    if (ts.empty()) {
        os << "Time-series file contained no samples.\n";
        return;
    }
    std::uint64_t maxPending = 0;
    for (const TsSample &s : ts)
        maxPending = std::max(maxPending, s.pending);
    os << ts.size() << " sample(s) spanning ticks " << ts.front().tick
       << ".." << ts.back().tick << "; max queue pending " << maxPending
       << ".\n\n";
    // First and last observed value per counter, in name order.
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> range;
    for (const TsSample &s : ts) {
        for (const auto &[name, value] : s.stats) {
            auto [it, fresh] = range.try_emplace(name, value, value);
            if (!fresh)
                it->second.second = value;
        }
    }
    os << "| counter | first | last | delta |\n";
    os << "|---|---:|---:|---:|\n";
    for (const auto &[name, fl] : range) {
        os << "| " << name << " | " << fl.first << " | " << fl.second
           << " | " << fl.second - fl.first << " |\n";
    }
}

} // namespace

void
writeReport(std::ostream &os, const TraceData *trace,
            const ProfileData *profile,
            const std::vector<TsSample> *timeseries, int topN)
{
    os << "# shrimp run report\n";
    if (profile) {
        os << "\n## Host-cost profile\n\n";
        writeProfileSection(os, *profile, topN);
    }
    if (trace) {
        os << "\n## Stage latencies (trace Begin/End pairs, by total "
              "time)\n\n";
        writeStageLatencies(os, *trace, topN);
        os << "\n## Span chains (sampled message flows)\n\n";
        writeSpanSection(os, *trace);
    }
    if (timeseries) {
        os << "\n## Time-series (stat counters over simulated time)\n\n";
        writeTimeseriesSection(os, *timeseries);
    }
}

} // namespace shrimp::report
