/**
 * @file
 * Core of shrimp_report: parse the three observability artifacts a
 * bench run can emit — the Chrome trace-event JSON (--trace=), the
 * host-cost profile (--profile=) and the stat time-series (--timeseries=)
 * — and merge them into one markdown report. Standard-library only (no
 * shrimp lib) so it builds anywhere the toolchain does; the core is a
 * separate library so tests/test_report.cc can drive it in-process.
 *
 * The parsers target exactly what this repo's emitters write (one trace
 * event per line, fixed key order); they are readers of our own output
 * formats, not general JSON consumers.
 */

#ifndef SHRIMP_TOOLS_REPORT_REPORT_HH
#define SHRIMP_TOOLS_REPORT_REPORT_HH

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace shrimp::report
{

/** One trace event. Phases: B/E/i plus the span flow phases s/t/f. */
struct TraceEvent
{
    char ph = 0;
    std::string name;
    int tid = -1;
    std::uint64_t ts_ns = 0; //!< trace "ts" is us; stored back in ns
    std::uint64_t id = 0;    //!< flow chain id (s/t/f only)
};

struct TraceData
{
    std::map<int, std::string> trackNames; //!< from thread_name metadata
    std::vector<TraceEvent> events;        //!< file order == time order

    const std::string &track(int tid) const;
};

/** One ranked subsystem row of profile.json. */
struct ProfileRow
{
    std::string name;
    std::uint64_t events = 0;
    std::uint64_t hostNs = 0;
};

struct ProfileData
{
    std::uint64_t eventsTotal = 0;
    std::uint64_t hostNsTotal = 0;
    std::uint64_t maxPending = 0;
    double avgPending = 0.0;
    std::vector<ProfileRow> rows; //!< already ranked by host_ns desc
};

/** One JSONL time-series sample. */
struct TsSample
{
    std::uint64_t tick = 0;
    std::uint64_t pending = 0;
    std::vector<std::pair<std::string, std::uint64_t>> stats;
};

/** Each parser returns false and sets @p err on malformed input. */
bool parseTrace(std::istream &in, TraceData &out, std::string &err);
bool parseProfile(std::istream &in, ProfileData &out, std::string &err);
bool parseTimeseries(std::istream &in, std::vector<TsSample> &out,
                     std::string &err);

/**
 * A reassembled span chain: all flow events sharing one id, in time
 * order. "Complete" means it has its origin (s), at least one waypoint
 * (t) and at least one terminus (f) — a fully connected
 * send → hop* → deliver line.
 */
struct SpanChain
{
    std::uint64_t id = 0;
    std::vector<const TraceEvent *> stages;
    bool complete = false;
};

/** Group the trace's flow events into chains, ordered by id. */
std::vector<SpanChain> spanChains(const TraceData &trace);

/**
 * Write the merged markdown report. Null section inputs are simply
 * omitted (the CLI refuses to run with zero inputs). @p topN bounds the
 * subsystem ranking and the per-stage latency table.
 */
void writeReport(std::ostream &os, const TraceData *trace,
                 const ProfileData *profile,
                 const std::vector<TsSample> *timeseries, int topN);

} // namespace shrimp::report

#endif // SHRIMP_TOOLS_REPORT_REPORT_HH
