/**
 * @file
 * shrimp_report CLI: merge a bench run's observability artifacts into
 * one markdown report.
 *
 *   shrimp_report [--trace=FILE] [--profile=FILE] [--timeseries=FILE]
 *                 [--out=FILE] [--top=N]
 *
 *     --trace=FILE       Chrome trace-event JSON (bench --trace=)
 *     --profile=FILE     host-cost profile (bench --profile=)
 *     --timeseries=FILE  stat samples JSONL (bench --timeseries=)
 *     --out=FILE         write the report here (default: stdout)
 *     --top=N            rows in the ranking tables (default: 20)
 *
 * At least one input flag is required. Exit status follows the
 * run_clang_tidy.sh convention: 0 report written, 1 an input existed
 * but could not be parsed, 2 usage error, 3 a requested input file is
 * missing — the report is SKIPPED loudly rather than emitted empty and
 * clean-looking.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "report.hh"

namespace
{

using namespace shrimp::report;

int
usage()
{
    std::cerr << "usage: shrimp_report [--trace=FILE] [--profile=FILE]"
                 " [--timeseries=FILE] [--out=FILE] [--top=N]\n"
                 "at least one of --trace/--profile/--timeseries is "
                 "required\n";
    return 2;
}

/** Open a requested input or exit 3: a missing file must never produce
 *  a clean-looking (but empty) report section. */
bool
openInput(const char *flag, const std::string &path, std::ifstream &f)
{
    f.open(path);
    if (!f) {
        std::cerr << "shrimp_report: SKIPPED: cannot open " << flag
                  << " input '" << path
                  << "' (no report written; pass an existing file or "
                     "drop the flag)\n";
        return false;
    }
    return true;
}

int
run(int argc, char **argv)
{
    std::string tracePath, profilePath, tsPath, outPath;
    int topN = 20;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--trace=", 8) == 0) {
            tracePath = arg + 8;
        } else if (std::strncmp(arg, "--profile=", 10) == 0) {
            profilePath = arg + 10;
        } else if (std::strncmp(arg, "--timeseries=", 13) == 0) {
            tsPath = arg + 13;
        } else if (std::strncmp(arg, "--out=", 6) == 0) {
            outPath = arg + 6;
        } else if (std::strncmp(arg, "--top=", 6) == 0) {
            topN = std::atoi(arg + 6);
            if (topN <= 0) {
                std::cerr << "shrimp_report: bad --top value '"
                          << arg + 6 << "'\n";
                return 2;
            }
        } else {
            std::cerr << "shrimp_report: unknown argument '" << arg
                      << "'\n";
            return usage();
        }
    }
    if (tracePath.empty() && profilePath.empty() && tsPath.empty())
        return usage();

    TraceData trace;
    ProfileData profile;
    std::vector<TsSample> timeseries;
    bool haveTrace = false, haveProfile = false, haveTs = false;
    std::string err;
    if (!tracePath.empty()) {
        std::ifstream f;
        if (!openInput("--trace", tracePath, f))
            return 3;
        if (!parseTrace(f, trace, err)) {
            std::cerr << "shrimp_report: " << tracePath << ": " << err
                      << "\n";
            return 1;
        }
        haveTrace = true;
    }
    if (!profilePath.empty()) {
        std::ifstream f;
        if (!openInput("--profile", profilePath, f))
            return 3;
        if (!parseProfile(f, profile, err)) {
            std::cerr << "shrimp_report: " << profilePath << ": " << err
                      << "\n";
            return 1;
        }
        haveProfile = true;
    }
    if (!tsPath.empty()) {
        std::ifstream f;
        if (!openInput("--timeseries", tsPath, f))
            return 3;
        if (!parseTimeseries(f, timeseries, err)) {
            std::cerr << "shrimp_report: " << tsPath << ": " << err
                      << "\n";
            return 1;
        }
        haveTs = true;
    }

    std::ofstream outFile;
    std::ostream *os = &std::cout;
    if (!outPath.empty()) {
        outFile.open(outPath);
        if (!outFile) {
            std::cerr << "shrimp_report: cannot write --out file '"
                      << outPath << "'\n";
            return 2;
        }
        os = &outFile;
    }
    writeReport(*os, haveTrace ? &trace : nullptr,
                haveProfile ? &profile : nullptr,
                haveTs ? &timeseries : nullptr, topN);
    if (!outPath.empty())
        std::cerr << "shrimp_report: wrote " << outPath << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return run(argc, argv);
}
