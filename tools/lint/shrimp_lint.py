#!/usr/bin/env python3
"""Repo-specific lint for the shrimp simulator.

Enforces simulator hygiene that generic tools miss:

  1. determinism: no wall-clock or pseudo-random sources in src/ — the
     simulation must depend only on the event queue (Tick time), or two
     runs of the same workload diverge and the figures are garbage.
  2. include guards: every header carries a guard named after its path
     (src/sim/task.hh -> SHRIMP_SIM_TASK_HH), so moved files get caught.
  3. header hygiene: no `using namespace` at file scope in headers, no
     main() in headers.
  4. Task discard safety: sim/task.hh must keep the [[nodiscard]]
     attribute on Task — a dropped Task<T> is a coroutine that never
     runs, and the attribute (with SHRIMP_WERROR) makes that a build
     error instead of silent lost work.
  5. own-header-first: src/foo/bar.cc includes "foo/bar.hh" before
     anything else, keeping headers self-contained.
  6. include order without a paired header: a src/ .cc file that has no
     own header (so rule 5 does not apply) must keep all system
     includes (<...>) before the first project include ("..."), the
     repo's canonical block order.
  7. sim-core std::function ban: no std::function members, parameters
     or locals in src/sim/ — the event core is the innermost loop of
     every simulation, and type-erased callables there mean a heap
     allocation plus an indirect call per event. Use a template
     parameter (EventQueue::schedule), a pooled inline callable, or a
     plain function pointer instead.

Usage: tools/lint/shrimp_lint.py [repo-root]
Exit status 0 when clean, 1 with findings listed on stderr.

A line can opt out of rule 1 with a trailing `// lint: allow-nondeterminism`
comment (none needed today; prefer plumbing Tick time instead), and out
of rule 7 with `// lint: allow-std-function` (for a cold path where the
erasure provably never runs per event).
"""

import os
import re
import sys

# Sources of nondeterminism banned from the simulator library. Matched
# against code with comments and string literals stripped.
BANNED = [
    (r"\brand\s*\(", "rand()"),
    (r"\bsrand\s*\(", "srand()"),
    (r"\brandom\s*\(", "random()"),
    (r"\bdrand48\s*\(", "drand48()"),
    (r"\brandom_device\b", "std::random_device"),
    (r"\bmt19937", "std::mt19937"),
    (r"\bsystem_clock\b", "std::chrono::system_clock"),
    (r"\bsteady_clock\b", "std::chrono::steady_clock"),
    (r"\bhigh_resolution_clock\b", "std::chrono::high_resolution_clock"),
    (r"\bgettimeofday\s*\(", "gettimeofday()"),
    (r"\bclock_gettime\s*\(", "clock_gettime()"),
    (r"\btime\s*\(\s*(NULL|nullptr|0)\s*\)", "time()"),
    (r"\blocaltime\s*\(", "localtime()"),
    (r"\bgmtime\s*\(", "gmtime()"),
]

ALLOW_MARKER = "lint: allow-nondeterminism"
ALLOW_STD_FUNCTION_MARKER = "lint: allow-std-function"

findings = []


def finding(path, line_no, msg):
    findings.append(f"{path}:{line_no}: {msg}")


def strip_comments_and_strings(text):
    """Replace comments and string/char literals with spaces, keeping
    line structure so reported line numbers stay accurate."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                mode = c
                out.append(" ")
                i += 1
                continue
            out.append(c)
        else:
            if c == "\n":
                out.append("\n")
                if mode == "line":
                    mode = None
                i += 1
                continue
            if mode == "block" and c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            if mode in "\"'":
                if c == "\\":
                    out.append("  ")
                    i += 2
                    continue
                if c == mode:
                    mode = None
                out.append(" ")
                i += 1
                continue
            out.append(" ")
        i += 1
    return "".join(out)


def guard_name(root_dir, path):
    # Headers under src/ are included relative to src/ (the include
    # root), so their guards omit the "SRC_" component.
    src_dir = os.path.join(root_dir, "src")
    if path.startswith(src_dir + os.sep):
        rel = os.path.relpath(path, src_dir)
    else:
        rel = os.path.relpath(path, root_dir)
    return "SHRIMP_" + re.sub(r"[/.]", "_", rel).upper()


def check_banned(path, raw_lines, code_lines):
    for no, (raw, code) in enumerate(zip(raw_lines, code_lines), 1):
        if ALLOW_MARKER in raw:
            continue
        for pat, what in BANNED:
            if re.search(pat, code):
                finding(path, no,
                        f"nondeterminism: {what} is banned in src/ "
                        "(simulations must be driven by Tick time only)")


def check_sim_core_no_std_function(path, raw_lines, code_lines):
    """Rule 7: std::function anywhere in src/sim/ code (members,
    parameters, locals) regresses the pooled event fast path."""
    for no, (raw, code) in enumerate(zip(raw_lines, code_lines), 1):
        if ALLOW_STD_FUNCTION_MARKER in raw:
            continue
        if re.search(r"\bstd\s*::\s*function\b", code):
            finding(path, no,
                    "std::function in the sim core: a type-erased "
                    "callable here costs a heap allocation and an "
                    "indirect call on the hottest loop; use a template "
                    "parameter or the pooled inline storage instead")


def check_header(path, expect_guard, raw_lines, code_lines):
    text = "".join(code_lines)
    m = re.search(r"#ifndef\s+(\w+)\s*\n\s*#define\s+(\w+)", text)
    if not m:
        finding(path, 1, "missing include guard "
                f"(#ifndef/#define {expect_guard})")
    elif m.group(1) != expect_guard or m.group(2) != expect_guard:
        finding(path, 1, f"include guard '{m.group(1)}' does not match "
                f"the path-derived name '{expect_guard}'")
    for no, code in enumerate(code_lines, 1):
        if re.match(r"\s*using\s+namespace\b", code):
            finding(path, no,
                    "`using namespace` at file scope in a header "
                    "pollutes every includer")
        if re.search(r"\bint\s+main\s*\(", code):
            finding(path, no, "main() defined in a header")


def check_include_order_no_own(path, raw_lines):
    """Rule 6: without an own header leading the file, the canonical
    block order is all <...> includes, then all "..." includes."""
    seen_project = None
    for no, raw in enumerate(raw_lines, 1):
        if re.match(r'\s*#include\s+"', raw):
            seen_project = no
        elif re.match(r"\s*#include\s+<", raw) and seen_project:
            finding(path, no,
                    "system include after a project include (line "
                    f"{seen_project}); in a .cc with no paired header, "
                    "all <...> includes come first")
            return


def check_own_header_first(path, src_dir, raw_lines):
    rel = os.path.relpath(path, src_dir)
    own = os.path.splitext(rel)[0] + ".hh"
    if not os.path.exists(os.path.join(src_dir, own)):
        check_include_order_no_own(path, raw_lines)
        return  # no paired header (nothing else to order)
    for raw in raw_lines:
        m = re.match(r'\s*#include\s+"([^"]+)"', raw)
        if m:
            if m.group(1) != own:
                finding(path, raw_lines.index(raw) + 1,
                        f'first include must be the own header "{own}" '
                        "(keeps headers self-contained)")
            return
        if re.match(r"\s*#include\s+<", raw):
            finding(path, raw_lines.index(raw) + 1,
                    f'own header "{own}" must come before system '
                    "includes")
            return


def check_task_nodiscard(src_dir):
    path = os.path.join(src_dir, "sim", "task.hh")
    try:
        text = open(path, encoding="utf-8").read()
    except OSError:
        finding(path, 1, "sim/task.hh not found")
        return
    if not re.search(r"class\s+\[\[nodiscard\]\]\s+Task", text):
        finding(path, 1,
                "Task must stay [[nodiscard]]: a discarded Task<T> is a "
                "coroutine that silently never runs")


def lint_tree(root):
    src_dir = os.path.join(root, "src")
    check_task_nodiscard(src_dir)

    guarded_roots = [("src", src_dir),
                     ("tests", os.path.join(root, "tests")),
                     ("bench", os.path.join(root, "bench"))]
    for label, base in guarded_roots:
        for dirpath, _, names in sorted(os.walk(base)):
            for name in sorted(names):
                if not name.endswith((".hh", ".cc")):
                    continue
                path = os.path.join(dirpath, name)
                raw = open(path, encoding="utf-8").read()
                raw_lines = raw.splitlines(keepends=True)
                code_lines = strip_comments_and_strings(raw).splitlines(
                    keepends=True)
                if label == "src":
                    check_banned(path, raw_lines, code_lines)
                    if name.endswith(".cc"):
                        check_own_header_first(path, src_dir, raw_lines)
                    if dirpath.startswith(
                            os.path.join(src_dir, "sim")):
                        check_sim_core_no_std_function(
                            path, raw_lines, code_lines)
                if name.endswith(".hh"):
                    check_header(path, guard_name(root, path), raw_lines,
                                 code_lines)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                     ".."))
    lint_tree(root)
    if findings:
        for f in findings:
            print(f, file=sys.stderr)
        print(f"shrimp_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("shrimp_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
