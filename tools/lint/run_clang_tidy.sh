#!/bin/sh
# Run clang-tidy over the simulator library with the repo's .clang-tidy
# config. Usage: tools/lint/run_clang_tidy.sh [build-dir]
# The build dir must have been configured with
#   cmake -B <build-dir> -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
set -eu

root="$(cd "$(dirname "$0")/../.." && pwd)"
build="${1:-$root/build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_clang_tidy: clang-tidy not installed; skipping" >&2
    exit 0
fi
if [ ! -f "$build/compile_commands.json" ]; then
    echo "run_clang_tidy: $build/compile_commands.json missing;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 1
fi

# shellcheck disable=SC2046
find "$root/src" -name '*.cc' -print0 |
    xargs -0 -P "$(nproc)" -n 4 clang-tidy -p "$build" --quiet
echo "run_clang_tidy: clean"
