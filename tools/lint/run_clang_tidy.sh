#!/bin/sh
# Run clang-tidy over the simulator library with the repo's .clang-tidy
# config. Usage: tools/lint/run_clang_tidy.sh [build-dir]
# The build dir must have been configured with
#   cmake -B <build-dir> -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
#
# Binary selection: $CLANG_TIDY when set (any path or name), else
# `clang-tidy` on PATH, else the newest versioned `clang-tidy-N` —
# distro packages often install only the suffixed name.
#
# clang-tidy is deliberately NOT a build dependency: the container image
# bakes in only the C++ toolchain, and the coroutine/determinism checks
# we care most about are enforced by the project-native analyzer
# (tools/analyze/, run by the `analyze` CI job) which builds with the
# project itself. clang-tidy is an extra layer run where it IS
# installed (the CI lint job installs it); when no binary is found this
# script says so clearly and exits with a *distinct* status (3, vs
# 0 clean / 1 findings / 2 usage error) so callers can tell "skipped"
# from "passed" instead of silently treating absence as success.
set -eu

root="$(cd "$(dirname "$0")/../.." && pwd)"
build="${1:-$root/build}"

tidy="${CLANG_TIDY:-}"
if [ -n "$tidy" ] && ! command -v "$tidy" >/dev/null 2>&1; then
    echo "run_clang_tidy: CLANG_TIDY='$tidy' is not executable" >&2
    exit 2
fi
if [ -z "$tidy" ] && command -v clang-tidy >/dev/null 2>&1; then
    tidy=clang-tidy
fi
if [ -z "$tidy" ]; then
    for v in 22 21 20 19 18 17 16 15 14 13 12 11; do
        if command -v "clang-tidy-$v" >/dev/null 2>&1; then
            tidy="clang-tidy-$v"
            break
        fi
    done
fi

if [ -z "$tidy" ]; then
    echo "run_clang_tidy: SKIPPED - no clang-tidy binary found (looked" \
         "for \$CLANG_TIDY, clang-tidy, clang-tidy-22..11 on PATH)." \
         "It is optional; the project-native shrimp_analyze covers the" \
         "critical checks. Install clang-tidy (or point CLANG_TIDY at" \
         "one) to run this layer. Exiting 3 so callers can distinguish" \
         "skipped from clean." >&2
    exit 3
fi
if [ ! -f "$build/compile_commands.json" ]; then
    echo "run_clang_tidy: $build/compile_commands.json missing;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 2
fi

echo "run_clang_tidy: using $tidy"
# shellcheck disable=SC2046
find "$root/src" -name '*.cc' -print0 |
    xargs -0 -P "$(nproc)" -n 4 "$tidy" -p "$build" --quiet
echo "run_clang_tidy: clean"
