#!/bin/sh
# Run clang-tidy over the simulator library with the repo's .clang-tidy
# config. Usage: tools/lint/run_clang_tidy.sh [build-dir]
# The build dir must have been configured with
#   cmake -B <build-dir> -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
#
# clang-tidy is deliberately NOT a build dependency: the container image
# bakes in only the C++ toolchain, and the coroutine/determinism checks
# we care most about are enforced by the project-native analyzer
# (tools/analyze/, run by the `analyze` CI job) which builds with the
# project itself. clang-tidy is an extra layer run where it IS
# installed (the CI lint job installs it); when the binary is missing
# this script says so clearly and exits with a *distinct* status (3, vs
# 0 clean / 1 findings / 2 usage error) so callers can tell "skipped"
# from "passed" instead of silently treating absence as success.
set -eu

root="$(cd "$(dirname "$0")/../.." && pwd)"
build="${1:-$root/build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_clang_tidy: SKIPPED - clang-tidy is not installed on this" \
         "machine (it is optional; the project-native shrimp_analyze" \
         "covers the critical checks). Install clang-tidy to run this" \
         "layer. Exiting 3 so callers can distinguish skipped from" \
         "clean." >&2
    exit 3
fi
if [ ! -f "$build/compile_commands.json" ]; then
    echo "run_clang_tidy: $build/compile_commands.json missing;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 2
fi

# shellcheck disable=SC2046
find "$root/src" -name '*.cc' -print0 |
    xargs -0 -P "$(nproc)" -n 4 clang-tidy -p "$build" --quiet
echo "run_clang_tidy: clean"
