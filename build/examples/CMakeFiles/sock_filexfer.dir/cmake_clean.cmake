file(REMOVE_RECURSE
  "CMakeFiles/sock_filexfer.dir/sock_filexfer.cc.o"
  "CMakeFiles/sock_filexfer.dir/sock_filexfer.cc.o.d"
  "sock_filexfer"
  "sock_filexfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sock_filexfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
