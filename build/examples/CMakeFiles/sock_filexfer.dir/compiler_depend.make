# Empty compiler generated dependencies file for sock_filexfer.
# This may be replaced when dependencies are built.
