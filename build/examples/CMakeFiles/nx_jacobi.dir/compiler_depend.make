# Empty compiler generated dependencies file for nx_jacobi.
# This may be replaced when dependencies are built.
