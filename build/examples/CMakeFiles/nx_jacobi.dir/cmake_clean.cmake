file(REMOVE_RECURSE
  "CMakeFiles/nx_jacobi.dir/nx_jacobi.cc.o"
  "CMakeFiles/nx_jacobi.dir/nx_jacobi.cc.o.d"
  "nx_jacobi"
  "nx_jacobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nx_jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
