# Empty compiler generated dependencies file for rpc_kvstore.
# This may be replaced when dependencies are built.
