file(REMOVE_RECURSE
  "CMakeFiles/rpc_kvstore.dir/rpc_kvstore.cc.o"
  "CMakeFiles/rpc_kvstore.dir/rpc_kvstore.cc.o.d"
  "rpc_kvstore"
  "rpc_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
