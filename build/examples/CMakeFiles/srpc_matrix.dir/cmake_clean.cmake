file(REMOVE_RECURSE
  "CMakeFiles/srpc_matrix.dir/srpc_matrix.cc.o"
  "CMakeFiles/srpc_matrix.dir/srpc_matrix.cc.o.d"
  "srpc_matrix"
  "srpc_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srpc_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
