# Empty compiler generated dependencies file for srpc_matrix.
# This may be replaced when dependencies are built.
