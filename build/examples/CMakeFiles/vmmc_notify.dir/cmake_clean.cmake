file(REMOVE_RECURSE
  "CMakeFiles/vmmc_notify.dir/vmmc_notify.cc.o"
  "CMakeFiles/vmmc_notify.dir/vmmc_notify.cc.o.d"
  "vmmc_notify"
  "vmmc_notify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmmc_notify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
