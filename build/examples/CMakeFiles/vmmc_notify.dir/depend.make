# Empty dependencies file for vmmc_notify.
# This may be replaced when dependencies are built.
