# Empty dependencies file for shrimp.
# This may be replaced when dependencies are built.
