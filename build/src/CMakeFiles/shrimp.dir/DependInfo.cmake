
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/config.cc" "src/CMakeFiles/shrimp.dir/base/config.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/base/config.cc.o.d"
  "/root/repo/src/base/logging.cc" "src/CMakeFiles/shrimp.dir/base/logging.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/base/logging.cc.o.d"
  "/root/repo/src/base/stats.cc" "src/CMakeFiles/shrimp.dir/base/stats.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/base/stats.cc.o.d"
  "/root/repo/src/mem/address_space.cc" "src/CMakeFiles/shrimp.dir/mem/address_space.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/mem/address_space.cc.o.d"
  "/root/repo/src/mem/memory.cc" "src/CMakeFiles/shrimp.dir/mem/memory.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/mem/memory.cc.o.d"
  "/root/repo/src/net/mesh.cc" "src/CMakeFiles/shrimp.dir/net/mesh.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/net/mesh.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/CMakeFiles/shrimp.dir/net/packet.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/net/packet.cc.o.d"
  "/root/repo/src/net/router.cc" "src/CMakeFiles/shrimp.dir/net/router.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/net/router.cc.o.d"
  "/root/repo/src/nic/deliberate_update_engine.cc" "src/CMakeFiles/shrimp.dir/nic/deliberate_update_engine.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/nic/deliberate_update_engine.cc.o.d"
  "/root/repo/src/nic/incoming_dma_engine.cc" "src/CMakeFiles/shrimp.dir/nic/incoming_dma_engine.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/nic/incoming_dma_engine.cc.o.d"
  "/root/repo/src/nic/incoming_page_table.cc" "src/CMakeFiles/shrimp.dir/nic/incoming_page_table.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/nic/incoming_page_table.cc.o.d"
  "/root/repo/src/nic/outgoing_page_table.cc" "src/CMakeFiles/shrimp.dir/nic/outgoing_page_table.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/nic/outgoing_page_table.cc.o.d"
  "/root/repo/src/nic/packetizer.cc" "src/CMakeFiles/shrimp.dir/nic/packetizer.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/nic/packetizer.cc.o.d"
  "/root/repo/src/nic/shrimp_nic.cc" "src/CMakeFiles/shrimp.dir/nic/shrimp_nic.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/nic/shrimp_nic.cc.o.d"
  "/root/repo/src/node/cpu.cc" "src/CMakeFiles/shrimp.dir/node/cpu.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/node/cpu.cc.o.d"
  "/root/repo/src/node/ether.cc" "src/CMakeFiles/shrimp.dir/node/ether.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/node/ether.cc.o.d"
  "/root/repo/src/node/machine.cc" "src/CMakeFiles/shrimp.dir/node/machine.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/node/machine.cc.o.d"
  "/root/repo/src/node/node.cc" "src/CMakeFiles/shrimp.dir/node/node.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/node/node.cc.o.d"
  "/root/repo/src/node/process.cc" "src/CMakeFiles/shrimp.dir/node/process.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/node/process.cc.o.d"
  "/root/repo/src/nx/connection.cc" "src/CMakeFiles/shrimp.dir/nx/connection.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/nx/connection.cc.o.d"
  "/root/repo/src/nx/nx.cc" "src/CMakeFiles/shrimp.dir/nx/nx.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/nx/nx.cc.o.d"
  "/root/repo/src/rpc/client.cc" "src/CMakeFiles/shrimp.dir/rpc/client.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/rpc/client.cc.o.d"
  "/root/repo/src/rpc/rpc_msg.cc" "src/CMakeFiles/shrimp.dir/rpc/rpc_msg.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/rpc/rpc_msg.cc.o.d"
  "/root/repo/src/rpc/server.cc" "src/CMakeFiles/shrimp.dir/rpc/server.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/rpc/server.cc.o.d"
  "/root/repo/src/rpc/vrpc_stream.cc" "src/CMakeFiles/shrimp.dir/rpc/vrpc_stream.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/rpc/vrpc_stream.cc.o.d"
  "/root/repo/src/rpc/xdr.cc" "src/CMakeFiles/shrimp.dir/rpc/xdr.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/rpc/xdr.cc.o.d"
  "/root/repo/src/sim/bus.cc" "src/CMakeFiles/shrimp.dir/sim/bus.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/sim/bus.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/shrimp.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/sync.cc" "src/CMakeFiles/shrimp.dir/sim/sync.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/sim/sync.cc.o.d"
  "/root/repo/src/sock/ring.cc" "src/CMakeFiles/shrimp.dir/sock/ring.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/sock/ring.cc.o.d"
  "/root/repo/src/sock/socket.cc" "src/CMakeFiles/shrimp.dir/sock/socket.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/sock/socket.cc.o.d"
  "/root/repo/src/srpc/srpc.cc" "src/CMakeFiles/shrimp.dir/srpc/srpc.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/srpc/srpc.cc.o.d"
  "/root/repo/src/vmmc/buffer_registry.cc" "src/CMakeFiles/shrimp.dir/vmmc/buffer_registry.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/vmmc/buffer_registry.cc.o.d"
  "/root/repo/src/vmmc/daemon.cc" "src/CMakeFiles/shrimp.dir/vmmc/daemon.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/vmmc/daemon.cc.o.d"
  "/root/repo/src/vmmc/notification.cc" "src/CMakeFiles/shrimp.dir/vmmc/notification.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/vmmc/notification.cc.o.d"
  "/root/repo/src/vmmc/vmmc.cc" "src/CMakeFiles/shrimp.dir/vmmc/vmmc.cc.o" "gcc" "src/CMakeFiles/shrimp.dir/vmmc/vmmc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
