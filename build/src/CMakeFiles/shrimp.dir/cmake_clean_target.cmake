file(REMOVE_RECURSE
  "libshrimp.a"
)
