file(REMOVE_RECURSE
  "CMakeFiles/test_nx.dir/test_nx.cc.o"
  "CMakeFiles/test_nx.dir/test_nx.cc.o.d"
  "test_nx"
  "test_nx.pdb"
  "test_nx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
