# Empty compiler generated dependencies file for test_nx.
# This may be replaced when dependencies are built.
