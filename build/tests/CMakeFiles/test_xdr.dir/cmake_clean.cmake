file(REMOVE_RECURSE
  "CMakeFiles/test_xdr.dir/test_xdr.cc.o"
  "CMakeFiles/test_xdr.dir/test_xdr.cc.o.d"
  "test_xdr"
  "test_xdr.pdb"
  "test_xdr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
