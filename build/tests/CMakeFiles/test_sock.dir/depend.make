# Empty dependencies file for test_sock.
# This may be replaced when dependencies are built.
