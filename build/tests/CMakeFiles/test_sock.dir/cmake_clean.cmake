file(REMOVE_RECURSE
  "CMakeFiles/test_sock.dir/test_sock.cc.o"
  "CMakeFiles/test_sock.dir/test_sock.cc.o.d"
  "test_sock"
  "test_sock.pdb"
  "test_sock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
