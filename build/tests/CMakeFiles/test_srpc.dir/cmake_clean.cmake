file(REMOVE_RECURSE
  "CMakeFiles/test_srpc.dir/test_srpc.cc.o"
  "CMakeFiles/test_srpc.dir/test_srpc.cc.o.d"
  "test_srpc"
  "test_srpc.pdb"
  "test_srpc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_srpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
