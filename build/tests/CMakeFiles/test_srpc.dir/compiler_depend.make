# Empty compiler generated dependencies file for test_srpc.
# This may be replaced when dependencies are built.
