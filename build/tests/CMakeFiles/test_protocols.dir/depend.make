# Empty dependencies file for test_protocols.
# This may be replaced when dependencies are built.
