# Empty dependencies file for test_vmmc.
# This may be replaced when dependencies are built.
