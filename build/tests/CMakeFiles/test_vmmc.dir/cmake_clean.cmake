file(REMOVE_RECURSE
  "CMakeFiles/test_vmmc.dir/test_vmmc.cc.o"
  "CMakeFiles/test_vmmc.dir/test_vmmc.cc.o.d"
  "test_vmmc"
  "test_vmmc.pdb"
  "test_vmmc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vmmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
