# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_base[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_nic[1]_include.cmake")
include("/root/repo/build/tests/test_node[1]_include.cmake")
include("/root/repo/build/tests/test_vmmc[1]_include.cmake")
include("/root/repo/build/tests/test_nx[1]_include.cmake")
include("/root/repo/build/tests/test_sock[1]_include.cmake")
include("/root/repo/build/tests/test_xdr[1]_include.cmake")
include("/root/repo/build/tests/test_rpc[1]_include.cmake")
include("/root/repo/build/tests/test_srpc[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_protocols[1]_include.cmake")
