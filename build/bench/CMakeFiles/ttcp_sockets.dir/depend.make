# Empty dependencies file for ttcp_sockets.
# This may be replaced when dependencies are built.
