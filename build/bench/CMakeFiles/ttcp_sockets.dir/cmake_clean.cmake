file(REMOVE_RECURSE
  "CMakeFiles/ttcp_sockets.dir/bench_util.cc.o"
  "CMakeFiles/ttcp_sockets.dir/bench_util.cc.o.d"
  "CMakeFiles/ttcp_sockets.dir/ttcp_sockets.cc.o"
  "CMakeFiles/ttcp_sockets.dir/ttcp_sockets.cc.o.d"
  "ttcp_sockets"
  "ttcp_sockets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttcp_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
