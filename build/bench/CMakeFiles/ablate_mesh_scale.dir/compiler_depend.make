# Empty compiler generated dependencies file for ablate_mesh_scale.
# This may be replaced when dependencies are built.
