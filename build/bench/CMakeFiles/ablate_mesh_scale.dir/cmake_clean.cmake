file(REMOVE_RECURSE
  "CMakeFiles/ablate_mesh_scale.dir/ablate_mesh_scale.cc.o"
  "CMakeFiles/ablate_mesh_scale.dir/ablate_mesh_scale.cc.o.d"
  "CMakeFiles/ablate_mesh_scale.dir/bench_util.cc.o"
  "CMakeFiles/ablate_mesh_scale.dir/bench_util.cc.o.d"
  "ablate_mesh_scale"
  "ablate_mesh_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_mesh_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
