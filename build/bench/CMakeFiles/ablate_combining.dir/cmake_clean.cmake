file(REMOVE_RECURSE
  "CMakeFiles/ablate_combining.dir/ablate_combining.cc.o"
  "CMakeFiles/ablate_combining.dir/ablate_combining.cc.o.d"
  "CMakeFiles/ablate_combining.dir/bench_util.cc.o"
  "CMakeFiles/ablate_combining.dir/bench_util.cc.o.d"
  "ablate_combining"
  "ablate_combining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_combining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
