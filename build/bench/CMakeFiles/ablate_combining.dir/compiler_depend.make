# Empty compiler generated dependencies file for ablate_combining.
# This may be replaced when dependencies are built.
