# Empty dependencies file for fig4_nx.
# This may be replaced when dependencies are built.
