file(REMOVE_RECURSE
  "CMakeFiles/fig4_nx.dir/bench_util.cc.o"
  "CMakeFiles/fig4_nx.dir/bench_util.cc.o.d"
  "CMakeFiles/fig4_nx.dir/fig4_nx.cc.o"
  "CMakeFiles/fig4_nx.dir/fig4_nx.cc.o.d"
  "fig4_nx"
  "fig4_nx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_nx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
