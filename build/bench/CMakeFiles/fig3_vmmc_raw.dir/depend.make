# Empty dependencies file for fig3_vmmc_raw.
# This may be replaced when dependencies are built.
