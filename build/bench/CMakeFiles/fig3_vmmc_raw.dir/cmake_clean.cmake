file(REMOVE_RECURSE
  "CMakeFiles/fig3_vmmc_raw.dir/bench_util.cc.o"
  "CMakeFiles/fig3_vmmc_raw.dir/bench_util.cc.o.d"
  "CMakeFiles/fig3_vmmc_raw.dir/fig3_vmmc_raw.cc.o"
  "CMakeFiles/fig3_vmmc_raw.dir/fig3_vmmc_raw.cc.o.d"
  "fig3_vmmc_raw"
  "fig3_vmmc_raw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_vmmc_raw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
