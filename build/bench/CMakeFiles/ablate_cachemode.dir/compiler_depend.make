# Empty compiler generated dependencies file for ablate_cachemode.
# This may be replaced when dependencies are built.
