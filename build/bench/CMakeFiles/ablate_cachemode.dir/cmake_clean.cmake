file(REMOVE_RECURSE
  "CMakeFiles/ablate_cachemode.dir/ablate_cachemode.cc.o"
  "CMakeFiles/ablate_cachemode.dir/ablate_cachemode.cc.o.d"
  "CMakeFiles/ablate_cachemode.dir/bench_util.cc.o"
  "CMakeFiles/ablate_cachemode.dir/bench_util.cc.o.d"
  "ablate_cachemode"
  "ablate_cachemode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_cachemode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
