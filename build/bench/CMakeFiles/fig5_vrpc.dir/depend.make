# Empty dependencies file for fig5_vrpc.
# This may be replaced when dependencies are built.
