file(REMOVE_RECURSE
  "CMakeFiles/fig5_vrpc.dir/bench_util.cc.o"
  "CMakeFiles/fig5_vrpc.dir/bench_util.cc.o.d"
  "CMakeFiles/fig5_vrpc.dir/fig5_vrpc.cc.o"
  "CMakeFiles/fig5_vrpc.dir/fig5_vrpc.cc.o.d"
  "fig5_vrpc"
  "fig5_vrpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_vrpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
