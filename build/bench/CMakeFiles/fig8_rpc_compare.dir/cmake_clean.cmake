file(REMOVE_RECURSE
  "CMakeFiles/fig8_rpc_compare.dir/bench_util.cc.o"
  "CMakeFiles/fig8_rpc_compare.dir/bench_util.cc.o.d"
  "CMakeFiles/fig8_rpc_compare.dir/fig8_rpc_compare.cc.o"
  "CMakeFiles/fig8_rpc_compare.dir/fig8_rpc_compare.cc.o.d"
  "fig8_rpc_compare"
  "fig8_rpc_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_rpc_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
