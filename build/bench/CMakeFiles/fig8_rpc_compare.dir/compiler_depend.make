# Empty compiler generated dependencies file for fig8_rpc_compare.
# This may be replaced when dependencies are built.
