file(REMOVE_RECURSE
  "CMakeFiles/fig7_sockets.dir/bench_util.cc.o"
  "CMakeFiles/fig7_sockets.dir/bench_util.cc.o.d"
  "CMakeFiles/fig7_sockets.dir/fig7_sockets.cc.o"
  "CMakeFiles/fig7_sockets.dir/fig7_sockets.cc.o.d"
  "fig7_sockets"
  "fig7_sockets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
