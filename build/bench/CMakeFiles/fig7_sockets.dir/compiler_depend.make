# Empty compiler generated dependencies file for fig7_sockets.
# This may be replaced when dependencies are built.
