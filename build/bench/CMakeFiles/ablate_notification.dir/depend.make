# Empty dependencies file for ablate_notification.
# This may be replaced when dependencies are built.
