file(REMOVE_RECURSE
  "CMakeFiles/ablate_notification.dir/ablate_notification.cc.o"
  "CMakeFiles/ablate_notification.dir/ablate_notification.cc.o.d"
  "CMakeFiles/ablate_notification.dir/bench_util.cc.o"
  "CMakeFiles/ablate_notification.dir/bench_util.cc.o.d"
  "ablate_notification"
  "ablate_notification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_notification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
