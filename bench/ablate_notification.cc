/**
 * @file
 * Ablation: polling versus notifications (paper sections 2.3 and 6).
 * The libraries poll by preference; notifications in the prototype are
 * delivered through UNIX signals, with an active-message-style
 * reimplementation planned. This bench measures the one-word receive
 * latency under all three regimes.
 *
 * Expected: polling ~5 us; signal-based notification tens of
 * microseconds slower (which is exactly why the libraries poll);
 * the fast notification path in between.
 */

#include <cstdio>

#include "bench_util.hh"
#include "vmmc/vmmc.hh"

namespace
{

using namespace shrimp;

double
latencyUs(bool use_notification, bool fast)
{
    MachineConfig cfg;
    cfg.fastNotifications = fast;
    vmmc::System sys(cfg);
    auto &a = sys.createEndpoint(0);
    auto &b = sys.createEndpoint(1);
    Tick total = 0;

    sys.sim().spawn([](vmmc::System &sys, vmmc::Endpoint &a,
                       vmmc::Endpoint &b, bool use_notification,
                       Tick &total) -> sim::Task<> {
        VAddr rbuf;
        if (use_notification) {
            vmmc::NotifyHandler noop =
                [](vmmc::Endpoint &,
                   const vmmc::Notification &) -> sim::Task<> {
                co_return;
            };
            rbuf = b.proc().alloc(4096, CacheMode::WriteThrough);
            co_await b.exportBuffer(9, rbuf, 4096, vmmc::Perm{}, noop);
        } else {
            rbuf = b.proc().alloc(4096, CacheMode::WriteThrough);
            co_await b.exportBuffer(9, rbuf, 4096);
        }
        auto r = co_await a.import(1, 9);
        VAddr src = a.proc().alloc(4096);

        Tick t0 = sys.sim().now();
        for (std::uint32_t i = 1; i <= 10; ++i) {
            a.proc().poke32(src, i);
            co_await a.send(r.handle, 0, src, 4, use_notification);
            if (use_notification)
                co_await b.waitNotification();
            else
                co_await b.proc().waitWord32Eq(rbuf, i);
        }
        total = sys.sim().now() - t0;
    }(sys, a, b, use_notification, total));
    sys.sim().runAll();
    return double(total) / 10.0 / 1000.0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace shrimp::bench;
    shrimp::bench::parseBenchFlags(argc, argv);
    (void)argc;
    (void)argv;

    printBanner("Ablation: polling vs notification",
                "one-word receive latency by control-transfer regime",
                "the libraries poll by preference (section 6); the "
                "current notification implementation uses signals");

    double poll = latencyUs(false, false);
    double signal = latencyUs(true, false);
    double fast = latencyUs(true, true);
    printTable("one-word receive latency", 
               {"polling", "notification (signal)",
                "notification (fast)"},
               {"latency (us)"}, {{poll}, {signal}, {fast}});
    std::printf("signal / polling slowdown: %.1fx\n\n", signal / poll);
    return 0;
}
