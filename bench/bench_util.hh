/**
 * @file
 * Shared helpers for the figure-reproduction benchmarks: table printing
 * in the shape of the paper's figures (one latency table for small
 * messages, one bandwidth table for large messages), ping-pong
 * bookkeeping, and google-benchmark registration glue.
 *
 * Every bench binary prints its figure's series as labelled rows and
 * then runs the registered google-benchmark entries (simulated time is
 * reported through manual timing).
 */

#ifndef SHRIMP_BENCH_BENCH_UTIL_HH
#define SHRIMP_BENCH_BENCH_UTIL_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "base/trace.hh"
#include "base/types.hh"

namespace shrimp::bench
{

/** One measured point of a ping-pong experiment. */
struct Point
{
    double latencyUs = 0.0;  //!< one-way latency (or round trip; noted)
    double bandwidthMBs = 0.0;
};

/** A named curve: size -> point. */
struct Curve
{
    std::string name;
    std::map<std::size_t, Point> points;
};

/** Print a figure banner. */
void printBanner(const std::string &figure, const std::string &title,
                 const std::string &paper_note);

/**
 * Print the two tables of a latency/bandwidth figure: latency rows for
 * @p lat_sizes and bandwidth rows for @p bw_sizes.
 */
void printFigure(const std::vector<Curve> &curves,
                 const std::vector<std::size_t> &lat_sizes,
                 const std::vector<std::size_t> &bw_sizes,
                 const std::string &lat_label = "one-way latency (us)");

/** Print a single table of values (used by the ablations). */
void printTable(const std::string &header,
                const std::vector<std::string> &row_names,
                const std::vector<std::string> &col_names,
                const std::vector<std::vector<double>> &values);

/**
 * Parse the bench-wide command-line flags, stripping recognized ones
 * from argv:
 *
 *   --check-determinism   instead of google-benchmark, run each
 *                         registered measurement twice with tracing
 *                         captured, hash the trace streams (see
 *                         trace::Tracer::hash), and fail the process
 *                         if any pair diverges
 *   --golden=FILE         also verify every point's hash against FILE
 *                         (rows "<bench> <curve>/<size> <hash16>");
 *                         a missing row or a mismatch fails the run.
 *                         Catches changes to *simulated* behaviour that
 *                         are individually deterministic. Implies
 *                         --check-determinism.
 *   --update-golden=FILE  append this binary's rows to FILE (run once
 *                         per bench to regenerate the golden set)
 *   --span-sample=N       sample every Nth message origin into a causal
 *                         flow span (base/span.hh); 0 = off (default)
 *   --mesh-engine=NAME    routing engine for every machine the bench
 *                         builds: auto (default; coalesced exactly when
 *                         tracing is off), serialized (per-packet
 *                         coroutine path) or coalesced (link-ledger
 *                         path); see net::Mesh::Engine
 *   --profile[=FILE]      accumulate per-subsystem host dispatch cost
 *                         (sim/profile.hh) and dump FILE (default
 *                         profile.json) at exit; ignored with a warning
 *                         under --check-determinism
 *   --timeseries[=FILE]   sample selected stat counters every
 *                         --timeseries-period=TICKS of simulated time
 *                         (default 10 us) into JSONL FILE (default
 *                         timeseries.jsonl)
 *
 * plus everything trace::parseCliFlags handles (--trace=, --stats).
 * Every bench main calls this before doing any work.
 */
void parseBenchFlags(int &argc, char **argv);

/** Whether --check-determinism was requested. */
bool checkDeterminismRequested();

using MeasureFn = std::function<double(const std::string &curve,
                                       std::size_t size)>;

/**
 * Determinism verifier: run every (curve, size) measurement twice with
 * the tracer capturing, and compare the simulated duration and the
 * trace-stream hash between runs. Any divergence means the simulation
 * depends on something outside the event queue's deterministic order
 * (wall clock, rand(), unordered iteration, ...).
 * @return process exit code (0 = deterministic).
 */
int runDeterminismCheck(const std::vector<Curve> &curves,
                        const std::vector<std::size_t> &sizes,
                        MeasureFn measure_seconds);

/**
 * Register one google-benchmark entry per (curve, size) that replays a
 * measurement function and reports the simulated time via manual
 * timing, then run the benchmark library. Under --check-determinism,
 * runs the determinism verifier over the same entries instead.
 */
int runGoogleBenchmarks(int argc, char **argv,
                        const std::vector<Curve> &curves,
                        const std::vector<std::size_t> &sizes,
                        MeasureFn measure_seconds);

/** Compute ping-pong results: @p one_way_ns per message of @p size. */
inline Point
pointFrom(double one_way_ns, std::size_t size)
{
    Point p;
    p.latencyUs = one_way_ns / 1000.0;
    p.bandwidthMBs =
        one_way_ns > 0.0 ? double(size) * 1000.0 / one_way_ns : 0.0;
    return p;
}

} // namespace shrimp::bench

#endif // SHRIMP_BENCH_BENCH_UTIL_HH
