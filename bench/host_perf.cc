/**
 * @file
 * Host-side (wall-clock) performance harness. Every other bench in this
 * directory reports *simulated* time; this one measures how fast the
 * simulator itself chews through events, which is what bounds how large
 * a mesh or workload the reproduction can explore (SimBricks-style:
 * host throughput is the scaling limit of full-stack simulation).
 *
 * Six representative workloads:
 *   vmmc_pingpong   fig3-style raw VMMC DU-0copy ping-pong, 4-byte
 *                   messages — flag-poll dominated (Memory watchpoints)
 *   poll_fanout     8 service tasks poll distinct flag words while a
 *                   4 KB AU stream lands on the same node — the
 *                   broadcast-vs-targeted wakeup-storm workload
 *   au_stream       fig3-style AU-1copy ping-pong, 10 KB messages — the
 *                   wakeup-storm workload: each message arrives as ~20
 *                   packet writes while the receiver polls one word
 *   nx_exchange     fig4-style 2-rank NX csend/crecv ping-pong, 1 KB —
 *                   library poll loops + packetization
 *   sock_stream     ttcp-style one-way socket pump, 7 KB records —
 *                   ring flow control, AU combining
 *   mesh_allpairs   ablate_mesh_scale's all-pairs 1 KB NX exchange on
 *                   16 ranks (4x4) — the scaling workload
 *
 * All workloads run with MachineConfig::targetedWakeups on: host_perf
 * measures the simulator's fast path. (The figure benches keep the
 * calibrated broadcast-wakeup model; see DESIGN.md §11.)
 *
 * For each workload the whole simulation is repeated until a minimum
 * wall time has elapsed; the report gives host events/sec (best rep),
 * ns/event, and peak RSS, and a JSON file (default BENCH_host_perf.json)
 * records the trajectory for CI. With --baseline=FILE the run compares
 * events/sec per workload against the baseline JSON and exits nonzero
 * on a regression beyond --max-regress (default 0.20).
 *
 * Wall-clock use is deliberate and confined to bench/ (src/ bans it:
 * simulated results must not depend on the host clock; host *speed*
 * measurements obviously must).
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "nx/nx.hh"
#include "sock/socket.hh"
#include "vmmc/vmmc.hh"

namespace
{

using namespace shrimp;

// ---- workloads ------------------------------------------------------------
// Each returns the number of events the simulator processed; simulated
// results are identical every call (the determinism the figure benches
// verify), so reps differ only in host time.

struct WorkResult
{
    std::uint64_t events = 0;
    Tick simulatedNs = 0;
};

/** Baseline 2x2 config with the wait-on-address fast path enabled.
 *  Node memory is trimmed to 2 MiB so each rep's fixed setup (zeroing
 *  memory, sizing the NIC page tables) doesn't drown the per-event cost
 *  being measured; the workloads touch well under 1 MiB per node. */
MachineConfig
fastCfg()
{
    MachineConfig cfg;
    cfg.targetedWakeups = true;
    cfg.nodeMemBytes = 2 * units::MiB;
    return cfg;
}

/** fig3 DU-0copy ping-pong, 4-byte messages: the canonical
 *  flag-poll-dominated workload (every iteration sleeps on a memory
 *  watchpoint and wakes on the delivery DMA). */
WorkResult
vmmcPingpong(int iters)
{
    vmmc::System sys(fastCfg());
    auto &a = sys.createEndpoint(0);
    auto &b = sys.createEndpoint(1);
    Tick t1 = 0;

    sys.sim().spawn([](vmmc::System &sys, vmmc::Endpoint &a,
                       vmmc::Endpoint &b, int iters,
                       Tick &t1) -> sim::Task<> {
        const std::size_t bufsz = 8192;
        node::Process &pa = a.proc();
        node::Process &pb = b.proc();
        VAddr user_a = pa.alloc(bufsz);
        VAddr recv_a = pa.alloc(bufsz, CacheMode::WriteThrough);
        VAddr user_b = pb.alloc(bufsz);
        VAddr recv_b = pb.alloc(bufsz, CacheMode::WriteThrough);
        co_await a.exportBuffer(1, recv_a, bufsz);
        co_await b.exportBuffer(2, recv_b, bufsz);
        auto ra = co_await a.import(b.nodeId(), 2);
        auto rb = co_await b.import(a.nodeId(), 1);
        for (int i = 1; i <= iters; ++i) {
            std::uint32_t tag = std::uint32_t(i);
            pa.poke32(user_a, tag);
            co_await a.send(ra.handle, 0, user_a, 4);
            co_await pb.waitWord32Eq(recv_b, tag);
            pb.poke32(user_b, tag);
            co_await b.send(rb.handle, 0, user_b, 4);
            co_await pa.waitWord32Eq(recv_a, tag);
        }
        t1 = sys.sim().now();
    }(sys, a, b, iters, t1));
    std::uint64_t n = sys.sim().runAll();
    return {n, t1};
}

/** fig3 AU-1copy ping-pong, 10 KB messages: the sender's copy into the
 *  AU-bound buffer streams out as ~20 packets, each landing as a write
 *  to the receiver's memory while the receiver polls the tag word — the
 *  workload where targeted wakeups shed the broadcast storm. */
WorkResult
auStream(int iters)
{
    vmmc::System sys(fastCfg());
    auto &a = sys.createEndpoint(0);
    auto &b = sys.createEndpoint(1);
    Tick t1 = 0;

    sys.sim().spawn([](vmmc::System &sys, vmmc::Endpoint &a,
                       vmmc::Endpoint &b, int iters,
                       Tick &t1) -> sim::Task<> {
        const std::size_t size = 10240;
        const std::size_t bufsz = 12288; // page-aligned (bindAu needs it)
        node::Process &pa = a.proc();
        node::Process &pb = b.proc();
        VAddr user_a = pa.alloc(bufsz);
        VAddr recv_a = pa.alloc(bufsz, CacheMode::WriteThrough);
        VAddr user_b = pb.alloc(bufsz);
        VAddr recv_b = pb.alloc(bufsz, CacheMode::WriteThrough);
        vmmc::Status st = co_await a.exportBuffer(1, recv_a, bufsz);
        SHRIMP_ASSERT(st == vmmc::Status::Ok, "export a");
        st = co_await b.exportBuffer(2, recv_b, bufsz);
        SHRIMP_ASSERT(st == vmmc::Status::Ok, "export b");
        auto ra = co_await a.import(b.nodeId(), 2);
        auto rb = co_await b.import(a.nodeId(), 1);
        VAddr au_a = pa.alloc(bufsz);
        VAddr au_b = pb.alloc(bufsz);
        st = co_await a.bindAu(au_a, bufsz, ra.handle, 0);
        SHRIMP_ASSERT(st == vmmc::Status::Ok, "bindAu a");
        st = co_await b.bindAu(au_b, bufsz, rb.handle, 0);
        SHRIMP_ASSERT(st == vmmc::Status::Ok, "bindAu b");
        for (int i = 1; i <= iters; ++i) {
            std::uint32_t tag = std::uint32_t(i);
            pa.poke32(VAddr(user_a + size - 4), tag);
            co_await pa.copy(au_a, user_a, size);
            co_await pb.waitWord32Eq(VAddr(recv_b + size - 4), tag);
            pb.poke32(VAddr(user_b + size - 4), tag);
            co_await pb.copy(au_b, user_b, size);
            co_await pa.waitWord32Eq(VAddr(recv_a + size - 4), tag);
        }
        t1 = sys.sim().now();
    }(sys, a, b, iters, t1));
    std::uint64_t n = sys.sim().runAll();
    return {n, t1};
}

/** Wakeup-storm fan-out: 8 service tasks on node 1 each poll their own
 *  flag word while the peer streams 4 KB of AU data (~8 packet writes)
 *  into a bulk buffer on the same node every round, then taps each
 *  flag. Models a server polling many receive buffers (NX posted
 *  receives, multi-connection sockets). Under broadcast wakeups every
 *  bulk packet write re-runs all 8 pollers; under targeted wakeups the
 *  bulk stream wakes nobody. */
WorkResult
pollFanout(int iters)
{
    constexpr int pollers = 8;
    vmmc::System sys(fastCfg());
    auto &a = sys.createEndpoint(0);
    auto &b = sys.createEndpoint(1);

    sys.sim().spawn([](vmmc::System &sys, vmmc::Endpoint &a,
                       vmmc::Endpoint &b, int iters) -> sim::Task<> {
        const std::size_t bulksz = 4096;
        node::Process &pa = a.proc();
        node::Process &pb = b.proc();
        VAddr user_bulk = pa.alloc(bulksz);
        VAddr user_flag = pa.alloc(64);
        VAddr bulk = pb.alloc(bulksz, CacheMode::WriteThrough);
        VAddr flags = pb.alloc(4096, CacheMode::WriteThrough);
        vmmc::Status st = co_await b.exportBuffer(1, bulk, bulksz);
        SHRIMP_ASSERT(st == vmmc::Status::Ok, "export bulk");
        st = co_await b.exportBuffer(2, flags, 4096);
        SHRIMP_ASSERT(st == vmmc::Status::Ok, "export flags");
        auto rbulk = co_await a.import(b.nodeId(), 1);
        auto rflags = co_await a.import(b.nodeId(), 2);
        VAddr au_bulk = pa.alloc(bulksz);
        st = co_await a.bindAu(au_bulk, bulksz, rbulk.handle, 0);
        SHRIMP_ASSERT(st == vmmc::Status::Ok, "bindAu bulk");

        // Service tasks: each polls its own flag word until the final
        // round lands. waitWord32Ne tolerates the sender running ahead.
        for (int k = 0; k < pollers; ++k) {
            sys.sim().spawn([](node::Process &pb, VAddr flag,
                               std::uint32_t last_round) -> sim::Task<> {
                std::uint32_t seen = 0;
                while (seen < last_round)
                    seen = co_await pb.waitWord32Ne(flag, seen);
            }(pb, VAddr(flags + VAddr(k) * 64),
              std::uint32_t(iters)));
        }

        for (int i = 1; i <= iters; ++i) {
            co_await pa.copy(au_bulk, user_bulk, bulksz);
            pa.poke32(user_flag, std::uint32_t(i));
            for (int k = 0; k < pollers; ++k) {
                st = co_await a.send(rflags.handle,
                                     std::size_t(k) * 64, user_flag, 4);
                SHRIMP_ASSERT(st == vmmc::Status::Ok, "flag send");
            }
        }
    }(sys, a, b, iters));
    std::uint64_t n = sys.sim().runAll();
    return {n, sys.sim().now()};
}

/** fig4-style 2-rank NX ping-pong, 1 KB messages. */
WorkResult
nxExchange(int iters)
{
    vmmc::System sys(fastCfg());
    nx::NxSystem nxs(sys, 2);
    sys.sim().spawn(nxs.init());
    std::uint64_t n = sys.sim().runAll();

    auto peer = [](nx::NxSystem &nxs, int rank, int iters) -> sim::Task<> {
        auto &p = nxs.proc(rank);
        auto &proc = p.endpoint().proc();
        VAddr buf = proc.alloc(2048);
        for (int i = 0; i < iters; ++i) {
            if (rank == 0) {
                co_await p.csend(1, buf, 1024, 1);
                co_await p.crecv(2, buf, 2048);
            } else {
                co_await p.crecv(1, buf, 2048);
                co_await p.csend(2, buf, 1024, 0);
            }
        }
    };
    sys.sim().spawn(peer(nxs, 0, iters));
    sys.sim().spawn(peer(nxs, 1, iters));
    n += sys.sim().runAll();
    return {n, sys.sim().now()};
}

/** ttcp-style one-way socket pump: @p records x 7 KB. */
WorkResult
sockStream(int records)
{
    const std::size_t record = 7168;
    const std::size_t total = std::size_t(records) * record;
    vmmc::System sys(fastCfg());
    auto &sink_ep = sys.createEndpoint(1);
    auto &src_ep = sys.createEndpoint(0);

    sys.sim().spawn([](vmmc::Endpoint &ep, std::size_t record,
                       std::size_t total) -> sim::Task<> {
        sock::SocketLib lib(ep);
        int ls = co_await lib.socket();
        co_await lib.listen(ls, 4000);
        int fd = co_await lib.accept(ls);
        VAddr buf = ep.proc().alloc(record + 64);
        std::size_t got = 0;
        while (got < total) {
            long n = co_await lib.recv(fd, buf, record);
            if (n <= 0)
                break;
            got += std::size_t(n);
        }
    }(sink_ep, record, total));
    sys.sim().spawn([](vmmc::Endpoint &ep, std::size_t record,
                       std::size_t total) -> sim::Task<> {
        sock::SocketLib lib(ep);
        int fd = co_await lib.socket();
        co_await lib.connect(fd, 1, 4000);
        VAddr buf = ep.proc().alloc(record + 64);
        std::size_t sent = 0;
        while (sent < total) {
            co_await lib.send(fd, buf, record);
            sent += record;
        }
        co_await lib.close(fd);
    }(src_ep, record, total));
    std::uint64_t n = sys.sim().runAll();
    return {n, sys.sim().now()};
}

/** ablate_mesh_scale's all-pairs 1 KB exchange + barrier, 16 ranks. */
WorkResult
meshAllpairs(int nprocs)
{
    MachineConfig cfg = fastCfg();
    cfg.meshWidth = nprocs > 4 ? 4 : 2;
    cfg.meshHeight = nprocs > 4 ? 4 : 2;
    cfg.nodeMemBytes = 2 * units::MiB;
    vmmc::System sys(cfg);
    nx::NxSystem nxs(sys, nprocs);
    sys.sim().spawn(nxs.init());
    std::uint64_t n = sys.sim().runAll();

    for (int r = 0; r < nprocs; ++r) {
        sys.sim().spawn([](nx::NxSystem &nxs, int r, int n) -> sim::Task<> {
            auto &p = nxs.proc(r);
            auto &proc = p.endpoint().proc();
            VAddr buf = proc.alloc(4096);
            for (int k = 1; k < n; ++k) {
                int to = (r + k) % n;
                co_await p.csend(long(100 + r), buf, 1024, to);
            }
            for (int k = 1; k < n; ++k) {
                int from = (r - k + n) % n;
                co_await p.crecv(long(100 + from), buf, 4096);
            }
            co_await p.gsync();
        }(nxs, r, nprocs));
    }
    n += sys.sim().runAll();
    return {n, sys.sim().now()};
}

// ---- measurement ----------------------------------------------------------

struct Measurement
{
    std::string name;
    std::uint64_t events = 0;     //!< events per rep (identical each rep)
    Tick simulatedNs = 0;
    int reps = 0;
    double bestWallNs = 0.0;      //!< fastest rep
    double eventsPerSec = 0.0;
    double nsPerEvent = 0.0;
};

double
nowNs()
{
    return double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

template <typename Fn>
Measurement
measure(const std::string &name, double min_wall_ms, Fn &&run)
{
    Measurement m;
    m.name = name;
    // One untimed warm-up rep: page in code, warm allocator pools.
    WorkResult w = run();
    m.events = w.events;
    m.simulatedNs = w.simulatedNs;

    double spent = 0.0;
    double best = 0.0;
    int reps = 0;
    while (spent < min_wall_ms * 1e6 || reps < 3) {
        double t0 = nowNs();
        w = run();
        double dt = nowNs() - t0;
        if (w.events != m.events)
            panic(name + ": event count varied between reps; "
                         "the workload is nondeterministic");
        spent += dt;
        if (best == 0.0 || dt < best)
            best = dt;
        ++reps;
    }
    m.reps = reps;
    m.bestWallNs = best;
    m.eventsPerSec = double(m.events) * 1e9 / best;
    m.nsPerEvent = best / double(m.events);
    return m;
}

long
peakRssKb()
{
    struct rusage ru;
    std::memset(&ru, 0, sizeof(ru));
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss;
}

// ---- baseline comparison --------------------------------------------------
// The JSON we emit is flat and regular; a full parser would be overkill.
// Extract "name" and "events_per_sec" pairs with string scanning.

bool
loadBaseline(const std::string &path,
             std::vector<std::pair<std::string, double>> &out)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return false;
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);

    std::size_t pos = 0;
    while ((pos = text.find("\"name\":", pos)) != std::string::npos) {
        std::size_t q1 = text.find('"', pos + 7);
        std::size_t q2 = text.find('"', q1 + 1);
        if (q1 == std::string::npos || q2 == std::string::npos)
            break;
        std::string name = text.substr(q1 + 1, q2 - q1 - 1);
        std::size_t ep = text.find("\"events_per_sec\":", q2);
        if (ep == std::string::npos)
            break;
        double v = std::atof(text.c_str() + ep + 17);
        out.emplace_back(name, v);
        pos = q2;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_host_perf.json";
    std::string baseline_path;
    double max_regress = 0.20;
    double min_wall_ms = 300.0;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--out=", 6) == 0)
            out_path = a + 6;
        else if (std::strncmp(a, "--baseline=", 11) == 0)
            baseline_path = a + 11;
        else if (std::strncmp(a, "--max-regress=", 14) == 0)
            max_regress = std::atof(a + 14);
        else if (std::strncmp(a, "--min-wall-ms=", 14) == 0)
            min_wall_ms = std::atof(a + 14);
        else {
            std::fprintf(stderr,
                         "usage: host_perf [--out=FILE] [--baseline=FILE] "
                         "[--max-regress=F] [--min-wall-ms=MS]\n");
            return 2;
        }
    }

    std::printf("host_perf: wall-clock simulator throughput "
                "(simulated results are identical every rep)\n\n");
    std::printf("%16s %12s %14s %12s %8s %14s\n", "workload", "events",
                "events/sec", "ns/event", "reps", "simulated-ms");

    std::vector<Measurement> ms;
    auto run = [&](const std::string &name, auto &&fn) {
        Measurement m = measure(name, min_wall_ms, fn);
        std::printf("%16s %12llu %14.0f %12.1f %8d %14.3f\n",
                    m.name.c_str(), (unsigned long long)m.events,
                    m.eventsPerSec, m.nsPerEvent, m.reps,
                    double(m.simulatedNs) / 1e6);
        std::fflush(stdout);
        ms.push_back(m);
    };

    // Iteration counts are sized so per-rep System construction (zeroing
    // node memory, building NIC tables) is well under 10% of a rep: the
    // harness measures the event loop, not setup.
    run("vmmc_pingpong", [] { return vmmcPingpong(1000); });
    run("poll_fanout", [] { return pollFanout(300); });
    run("au_stream", [] { return auStream(200); });
    run("nx_exchange", [] { return nxExchange(400); });
    run("sock_stream", [] { return sockStream(768); });
    run("mesh_allpairs", [] { return meshAllpairs(16); });

    long rss_kb = peakRssKb();
    std::printf("\npeak RSS: %ld KB\n", rss_kb);

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "host_perf: cannot write %s\n",
                     out_path.c_str());
        return 2;
    }
    std::fprintf(f, "{\n  \"bench\": \"host_perf\",\n"
                    "  \"peak_rss_kb\": %ld,\n  \"workloads\": [\n",
                 rss_kb);
    for (std::size_t i = 0; i < ms.size(); ++i) {
        const Measurement &m = ms[i];
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"events\": %llu, "
            "\"events_per_sec\": %.0f, \"ns_per_event\": %.2f, "
            "\"reps\": %d, \"simulated_ns\": %llu}%s\n",
            m.name.c_str(), (unsigned long long)m.events, m.eventsPerSec,
            m.nsPerEvent, m.reps, (unsigned long long)m.simulatedNs,
            i + 1 < ms.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());

    if (!baseline_path.empty()) {
        std::vector<std::pair<std::string, double>> base;
        if (!loadBaseline(baseline_path, base)) {
            std::fprintf(stderr, "host_perf: cannot read baseline %s\n",
                         baseline_path.c_str());
            return 2;
        }
        int failures = 0;
        for (const auto &[name, base_eps] : base) {
            for (const Measurement &m : ms) {
                if (m.name != name || base_eps <= 0.0)
                    continue;
                double ratio = m.eventsPerSec / base_eps;
                std::printf("vs baseline %16s: %6.2fx\n", name.c_str(),
                            ratio);
                if (ratio < 1.0 - max_regress) {
                    std::fprintf(stderr,
                                 "host_perf: %s regressed: %.0f -> %.0f "
                                 "events/sec (%.0f%% of baseline, limit "
                                 "%.0f%%)\n",
                                 name.c_str(), base_eps, m.eventsPerSec,
                                 ratio * 100.0,
                                 (1.0 - max_regress) * 100.0);
                    ++failures;
                }
            }
        }
        if (failures)
            return 1;
    }
    return 0;
}
