/**
 * @file
 * Figure 8: round-trip time for a null RPC with a single INOUT
 * argument of varying size — the SunRPC-compatible VRPC versus the
 * specialized (non-compatible) SHRIMP RPC, both in their fastest
 * (one-copy automatic-update) configuration.
 *
 * Paper reference points: 9.5 us vs 29 us for small arguments (more
 * than a factor of three); roughly a factor of two for 1000-byte
 * arguments, because the specialized system's OUT values ride the
 * automatic-update hardware in the background while the server writes
 * them.
 */

#include <cstdio>

#include "bench_util.hh"
#include "rpc/server.hh"
#include "srpc/srpc.hh"

namespace
{

using namespace shrimp;

constexpr int kWarmup = 2;
constexpr int kIters = 10;

double
measureCompatible(std::size_t size)
{
    vmmc::System sys;
    auto &server_ep = sys.createEndpoint(1);
    auto &client_ep = sys.createEndpoint(0);
    rpc::VrpcServer server(server_ep, 5000);
    server.registerProc(
        0x400, 1, 1,
        [](rpc::XdrDecoder &dec)
            -> sim::Task<rpc::VrpcServer::ServiceResult> {
            auto data = co_await dec.getBytes(1 << 20);
            rpc::VrpcServer::ServiceResult r;
            // INOUT: the argument is also the result.
            r.results = [data](rpc::XdrEncoder &enc) -> sim::Task<> {
                co_await enc.putBytes(data.data(), data.size());
            };
            co_return r;
        });
    server.start();

    Tick t0 = 0, t1 = 0;
    sys.sim().spawn([](vmmc::Endpoint &ep, std::size_t size, Tick &t0,
                       Tick &t1) -> sim::Task<> {
        rpc::VrpcClient client(ep);
        bool up = co_await client.connect(1, 5000, 0x400, 1);
        SHRIMP_ASSERT(up, "connect");
        std::vector<std::uint8_t> arg(size, 1);
        for (int i = 0; i < kWarmup + kIters; ++i) {
            if (i == kWarmup)
                t0 = ep.proc().sim().now();
            co_await client.call(
                1,
                [&arg](rpc::XdrEncoder &e) -> sim::Task<> {
                    co_await e.putBytes(arg.data(), arg.size());
                },
                [](rpc::XdrDecoder &d) -> sim::Task<> {
                    co_await d.getBytes(1 << 20);
                });
        }
        t1 = ep.proc().sim().now();
    }(client_ep, size, t0, t1));
    sys.sim().runAll();
    return double(t1 - t0) / 1e9;
}

double
measureNonCompatible(std::size_t size)
{
    vmmc::System sys;
    auto &server_ep = sys.createEndpoint(1);
    auto &client_ep = sys.createEndpoint(0);

    srpc::Interface iface;
    std::size_t param = std::max<std::size_t>(size, 4);
    std::uint32_t proc_id =
        iface.defineProc("nullinout", {{srpc::Dir::InOut, param}});
    srpc::SrpcServer server(server_ep, iface, 6000);
    // Null procedure: the INOUT values are returned untouched; whatever
    // the procedure writes propagates via automatic update.
    server.registerProc(proc_id, [](srpc::ServerCall &) -> sim::Task<> {
        co_return;
    });
    server.start();

    Tick t0 = 0, t1 = 0;
    sys.sim().spawn([](vmmc::Endpoint &ep, const srpc::Interface &iface,
                       std::uint32_t proc_id, std::size_t param, Tick &t0,
                       Tick &t1) -> sim::Task<> {
        srpc::SrpcClient client(ep, iface);
        bool up = co_await client.bind(1, 6000);
        SHRIMP_ASSERT(up, "bind");
        std::vector<std::uint8_t> arg(param, 1);
        for (int i = 0; i < kWarmup + kIters; ++i) {
            if (i == kWarmup)
                t0 = ep.proc().sim().now();
            std::vector<srpc::Param> ps{srpc::inout(arg.data(), param)};
            co_await client.call(proc_id, ps);
        }
        t1 = ep.proc().sim().now();
    }(client_ep, iface, proc_id, param, t0, t1));
    sys.sim().runAll();
    return double(t1 - t0) / 1e9;
}

double
measureSeconds(const std::string &curve, std::size_t size)
{
    return curve == "compatible" ? measureCompatible(size)
                                 : measureNonCompatible(size);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace shrimp::bench;
    shrimp::bench::parseBenchFlags(argc, argv);

    printBanner("Figure 8",
                "Null RPC round trip, single INOUT argument: "
                "SunRPC-compatible VRPC vs specialized SHRIMP RPC",
                "9.5 us vs 29 us small (>3x); ~2x at 1000 bytes");

    std::vector<std::size_t> sizes{4,   100, 200, 300, 400, 500,
                                   600, 700, 800, 900, 1000};
    std::vector<Curve> curves;
    for (const char *name : {"compatible", "non-compat"}) {
        Curve c;
        c.name = name;
        for (std::size_t s : sizes) {
            double rt_ns = measureSeconds(name, s) * 1e9 / kIters;
            Point p;
            p.latencyUs = rt_ns / 1000.0;
            p.bandwidthMBs = 2.0 * double(s) * 1000.0 / rt_ns;
            c.points[s] = p;
        }
        curves.push_back(std::move(c));
    }
    printFigure(curves, sizes, {}, "round-trip time (us)");

    std::printf("speedup (compatible / non-compatible):\n");
    for (std::size_t s : sizes) {
        std::printf("  %5zu bytes: %.2fx\n", s,
                    curves[0].points[s].latencyUs /
                        curves[1].points[s].latencyUs);
    }
    std::printf("\n");

    std::vector<std::size_t> gb_sizes{4, 1000};
    return runGoogleBenchmarks(argc, argv, curves, gb_sizes,
                               measureSeconds);
}
