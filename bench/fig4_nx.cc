/**
 * @file
 * Figure 4: NX message-passing latency and bandwidth.
 *
 * Two NX processes ping-pong typed messages. The five curves follow the
 * paper's variants:
 *   AU-1copy  sender marshals into the AU-bound area (the copy is the
 *             send); receiver consumes the data in place
 *   AU-2copy  as above, with the normal copying receive
 *   DU-0copy  the zero-copy large-message protocol (scout + reply +
 *             direct user-to-user deliberate update)
 *   DU-1copy  data sent straight from user memory, descriptor by a
 *             second deliberate update; copying receive
 *   DU-2copy  data and descriptor marshalled and sent with a single
 *             deliberate update; copying receive
 *
 * Paper reference points: ~6 us above the hardware limit for small AU
 * messages; DU-1copy above DU-2copy at small sizes (the copy is cheaper
 * than the extra send) with a crossover as size grows; a bump where the
 * protocol switches; large-message performance approaching the raw
 * hardware limit.
 */

#include <cstdio>

#include "bench_util.hh"
#include "nx/nx.hh"

namespace
{

using namespace shrimp;

struct VariantSpec
{
    nx::SendMode mode;
    bool inPlaceRecv;
};

VariantSpec
variantByName(const std::string &name)
{
    if (name == "AU-1copy")
        return {nx::SendMode::AuMarshal, true};
    if (name == "AU-2copy")
        return {nx::SendMode::AuMarshal, false};
    if (name == "DU-0copy")
        return {nx::SendMode::ZeroCopy, false};
    if (name == "DU-1copy")
        return {nx::SendMode::DuOneCopy, false};
    if (name == "DU-2copy")
        return {nx::SendMode::DuTwoCopy, false};
    return {nx::SendMode::Auto, false};
}

constexpr int kWarmup = 2;
constexpr int kIters = 10;

double
measureSeconds(const std::string &curve, std::size_t size)
{
    VariantSpec spec = variantByName(curve);
    vmmc::System sys;
    nx::NxSystem nxs(sys, 2);
    sys.sim().spawn(nxs.init());
    sys.sim().runAll();

    Tick t0 = 0, t1 = 0;
    auto peer = [](nx::NxSystem &nxs, int rank, std::size_t size,
                   VariantSpec spec, Tick &t0, Tick &t1) -> sim::Task<> {
        auto &p = nxs.proc(rank);
        p.setSendMode(spec.mode);
        auto &proc = p.endpoint().proc();
        std::size_t bufsz = std::max<std::size_t>(size, 4) + 64;
        VAddr buf = proc.alloc(bufsz);
        for (int i = 0; i < kWarmup + kIters; ++i) {
            if (rank == 0 && i == kWarmup)
                t0 = proc.sim().now();
            if (rank == 0) {
                co_await p.csend(1, buf, size, 1);
                if (spec.inPlaceRecv)
                    co_await p.crecvInPlace(2);
                else
                    co_await p.crecv(2, buf, bufsz);
            } else {
                if (spec.inPlaceRecv)
                    co_await p.crecvInPlace(1);
                else
                    co_await p.crecv(1, buf, bufsz);
                co_await p.csend(2, buf, size, 0);
            }
        }
        if (rank == 0)
            t1 = proc.sim().now();
    };
    sys.sim().spawn(peer(nxs, 0, size, spec, t0, t1));
    sys.sim().spawn(peer(nxs, 1, size, spec, t0, t1));
    sys.sim().runAll();
    return double(t1 - t0) / 1e9;
}

double
oneWayNs(const std::string &curve, std::size_t size)
{
    return measureSeconds(curve, size) * 1e9 / (2.0 * kIters);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace shrimp::bench;
    shrimp::bench::parseBenchFlags(argc, argv);

    printBanner("Figure 4",
                "NX latency and bandwidth (2-process ping-pong)",
                "small AU ~6 us over hardware; 1copy-vs-2copy send "
                "trade-off crossover; bump at the protocol switch; "
                "large messages approach the raw hardware limit");

    std::vector<std::size_t> lat_sizes{4, 8, 16, 32, 48, 64};
    std::vector<std::size_t> bw_sizes{256,  512,  1024, 2048, 3072,
                                      4096, 6144, 8192, 10240};
    std::vector<Curve> curves;
    for (const char *name : {"AU-1copy", "AU-2copy", "DU-0copy",
                             "DU-1copy", "DU-2copy"}) {
        Curve c;
        c.name = name;
        for (std::size_t s : lat_sizes)
            c.points[s] = pointFrom(oneWayNs(name, s), s);
        for (std::size_t s : bw_sizes)
            c.points[s] = pointFrom(oneWayNs(name, s), s);
        curves.push_back(std::move(c));
    }
    printFigure(curves, lat_sizes, bw_sizes);

    // The "Auto" protocol the library ships with: shows the bump where
    // the small-message protocol hands over to the zero-copy protocol.
    {
        Curve c;
        c.name = "Auto";
        std::vector<std::size_t> sweep{256, 512, 768, 1024, 1280,
                                       1536, 2048, 4096};
        for (std::size_t s : sweep)
            c.points[s] = pointFrom(oneWayNs("Auto", s), s);
        std::printf("default protocol (small -> zero-copy switch at "
                    "1 KB):\n");
        printFigure({c}, {}, sweep);
    }

    std::vector<std::size_t> gb_sizes{4, 1024, 10240};
    return runGoogleBenchmarks(argc, argv, curves, gb_sizes,
                               measureSeconds);
}
