/**
 * @file
 * Ablation: the NIC's automatic-update write combining (paper section
 * 3.2). The hardware can merge consecutive AU writes into one packet
 * and flush a pending packet on a timeout. This bench measures AU
 * streaming bandwidth and one-word latency with combining on and off,
 * and sweeps the flush timer.
 *
 * Expected: combining is what makes AU competitive for bulk data (one
 * packet per combine unit instead of one per store run); the flush
 * timer trades small-transfer latency against a wasted-packet risk.
 */

#include <cstdio>

#include "bench_util.hh"
#include "vmmc/vmmc.hh"

namespace
{

using namespace shrimp;

struct Result
{
    double latencyUs;   //!< one-way 4-byte latency
    double bandwidth;   //!< 8 KB streaming bandwidth
    double packets;     //!< packets injected for the 8 KB stream
};

Result
runOnce(bool combining, Tick timeout, std::size_t combine_limit = 0)
{
    MachineConfig cfg;
    cfg.auCombineTimeout = timeout;
    if (combine_limit) {
        cfg.auCombineLimit = combine_limit;
        cfg.maxPacketBytes = std::max(cfg.maxPacketBytes, combine_limit);
    }
    vmmc::System sys(cfg);
    auto &a = sys.createEndpoint(0);
    auto &b = sys.createEndpoint(1);
    Result res{};

    sys.sim().spawn([](vmmc::System &sys, vmmc::Endpoint &a,
                       vmmc::Endpoint &b, bool combining,
                       Result &res) -> sim::Task<> {
        const std::size_t bufsz = 16384;
        VAddr rbuf = b.proc().alloc(bufsz, CacheMode::WriteThrough);
        co_await b.exportBuffer(7, rbuf, bufsz);
        auto r = co_await a.import(1, 7);
        VAddr au = a.proc().alloc(bufsz);
        vmmc::AuOptions opts;
        opts.combinable = combining;
        co_await a.bindAu(au, bufsz, r.handle, 0, opts);
        VAddr user = a.proc().alloc(bufsz);

        // One-word latency, averaged over 10 transfers.
        Tick t0 = sys.sim().now();
        for (std::uint32_t i = 1; i <= 10; ++i) {
            co_await a.proc().store32(au, i);
            co_await b.proc().waitWord32Eq(rbuf, i);
        }
        res.latencyUs = double(sys.sim().now() - t0) / 10.0 / 1000.0;

        // 8 KB streaming bandwidth (flag after the data).
        std::uint64_t pkts0 =
            sys.machine().node(0).nic().packetsInjected();
        t0 = sys.sim().now();
        const std::size_t len = 8192;
        for (std::uint32_t i = 1; i <= 5; ++i) {
            a.proc().poke32(VAddr(user + len - 4), i + 100);
            co_await a.proc().copy(au, user, len);
            co_await b.proc().waitWord32Eq(VAddr(rbuf + len - 4),
                                           i + 100);
        }
        double secs = double(sys.sim().now() - t0) / 1e9;
        res.bandwidth = 5.0 * len / 1e6 / secs;
        res.packets =
            double(sys.machine().node(0).nic().packetsInjected() - pkts0) /
            5.0;
    }(sys, a, b, combining, res));
    sys.sim().runAll();
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace shrimp::bench;
    shrimp::bench::parseBenchFlags(argc, argv);
    (void)argc;
    (void)argv;

    printBanner("Ablation: AU write combining",
                "combining on/off and flush-timer sweep (raw VMMC AU)",
                "design-choice study; section 3.2's combining + timer");

    MachineConfig defaults;
    {
        Result on = runOnce(true, defaults.auCombineTimeout);
        Result off = runOnce(false, defaults.auCombineTimeout);
        printTable("write combining (timer at default)",
                   {"combining on", "combining off"},
                   {"lat4B (us)", "BW (MB/s)", "pkts/8KB"},
                   {{on.latencyUs, on.bandwidth, on.packets},
                    {off.latencyUs, off.bandwidth, off.packets}});
    }
    {
        std::vector<std::string> rows;
        std::vector<std::vector<double>> vals;
        for (Tick t : {Tick(250), Tick(500), Tick(1050), Tick(2000),
                       Tick(4000), Tick(8000)}) {
            Result r = runOnce(true, t);
            rows.push_back(std::to_string(t) + " ns");
            vals.push_back({r.latencyUs, r.bandwidth, r.packets});
        }
        printTable("flush-timer sweep (combining on)", rows,
                   {"lat4B (us)", "BW (MB/s)", "pkts/8KB"}, vals);
    }
    {
        // Combine-unit sweep: smaller units mean more packets and more
        // per-packet receive overhead for the same stream.
        std::vector<std::string> rows;
        std::vector<std::vector<double>> vals;
        for (std::size_t lim : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
            Result r = runOnce(true, defaults.auCombineTimeout, lim);
            rows.push_back(std::to_string(lim) + " B");
            vals.push_back({r.latencyUs, r.bandwidth, r.packets});
        }
        printTable("combine-unit (outgoing FIFO) sweep", rows,
                   {"lat4B (us)", "BW (MB/s)", "pkts/8KB"}, vals);
    }
    return 0;
}
