#include "bench_util.hh"

#include <cstdio>

#include "base/trace.hh"

namespace shrimp::bench
{

void
printBanner(const std::string &figure, const std::string &title,
            const std::string &paper_note)
{
    std::printf("==================================================="
                "===========\n");
    std::printf("%s — %s\n", figure.c_str(), title.c_str());
    std::printf("paper: %s\n", paper_note.c_str());
    std::printf("==================================================="
                "===========\n");
}

namespace
{

void
printOneTable(const char *what, const std::vector<Curve> &curves,
              const std::vector<std::size_t> &sizes, bool latency)
{
    if (sizes.empty())
        return;
    std::printf("\n%s\n", what);
    std::printf("%10s", "bytes");
    for (const Curve &c : curves)
        std::printf(" %12s", c.name.c_str());
    std::printf("\n");
    for (std::size_t size : sizes) {
        std::printf("%10zu", size);
        for (const Curve &c : curves) {
            auto it = c.points.find(size);
            if (it == c.points.end()) {
                std::printf(" %12s", "-");
            } else {
                std::printf(" %12.2f", latency ? it->second.latencyUs
                                               : it->second.bandwidthMBs);
            }
        }
        std::printf("\n");
    }
}

} // namespace

void
printFigure(const std::vector<Curve> &curves,
            const std::vector<std::size_t> &lat_sizes,
            const std::vector<std::size_t> &bw_sizes,
            const std::string &lat_label)
{
    printOneTable(lat_label.c_str(), curves, lat_sizes, true);
    printOneTable("bandwidth (MB/s)", curves, bw_sizes, false);
    std::printf("\n");
}

void
printTable(const std::string &header,
           const std::vector<std::string> &row_names,
           const std::vector<std::string> &col_names,
           const std::vector<std::vector<double>> &values)
{
    std::printf("\n%s\n", header.c_str());
    std::printf("%24s", "");
    for (const auto &c : col_names)
        std::printf(" %12s", c.c_str());
    std::printf("\n");
    for (std::size_t r = 0; r < row_names.size(); ++r) {
        std::printf("%24s", row_names[r].c_str());
        for (double v : values[r])
            std::printf(" %12.2f", v);
        std::printf("\n");
    }
    std::printf("\n");
}

int
runGoogleBenchmarks(int argc, char **argv,
                    const std::vector<Curve> &curves,
                    const std::vector<std::size_t> &sizes,
                    MeasureFn measure_seconds)
{
    for (const Curve &c : curves) {
        for (std::size_t size : sizes) {
            if (!c.points.count(size))
                continue;
            std::string name = c.name + "/" + std::to_string(size);
            benchmark::RegisterBenchmark(
                name.c_str(),
                [measure_seconds, curve = c.name,
                 size](benchmark::State &state) {
                    for (auto _ : state) {
                        double secs = measure_seconds(curve, size);
                        state.SetIterationTime(secs);
                    }
                    state.SetBytesProcessed(
                        std::int64_t(state.iterations()) *
                        std::int64_t(size));
                })
                ->UseManualTime()
                ->Iterations(1);
        }
    }
    // Strip --trace=/--stats before google-benchmark sees them.
    trace::parseCliFlags(argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace shrimp::bench
