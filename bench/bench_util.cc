#include "bench_util.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/logging.hh"
#include "base/span.hh"
#include "base/timeseries.hh"
#include "base/trace.hh"
#include "net/mesh.hh"
#include "sim/profile.hh"

namespace shrimp::bench
{

namespace
{
bool gCheckDeterminism = false;
std::string gGoldenFile;       //!< verify hashes against this file
std::string gUpdateGoldenFile; //!< append this bench's hashes here
std::string gProgName;         //!< basename(argv[0]); keys golden rows

std::string
basenameOf(const char *path)
{
    const char *slash = std::strrchr(path, '/');
    return slash ? slash + 1 : path;
}
} // namespace

void
parseBenchFlags(int &argc, char **argv)
{
    gProgName = basenameOf(argv[0]);
    bool profile_requested = false;
    std::string profile_path = "profile.json";
    bool ts_requested = false;
    std::string ts_path = "timeseries.jsonl";
    Tick ts_period = 0; // 0 = timeseries module's default period
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check-determinism") == 0) {
            gCheckDeterminism = true;
        } else if (std::strncmp(argv[i], "--golden=", 9) == 0) {
            gGoldenFile = argv[i] + 9;
            gCheckDeterminism = true;
        } else if (std::strncmp(argv[i], "--update-golden=", 16) == 0) {
            gUpdateGoldenFile = argv[i] + 16;
            gCheckDeterminism = true;
        } else if (std::strncmp(argv[i], "--span-sample=", 14) == 0) {
            span::setSampleEvery(
                std::strtoull(argv[i] + 14, nullptr, 10));
        } else if (std::strncmp(argv[i], "--mesh-engine=", 14) == 0) {
            const char *name = argv[i] + 14;
            if (std::strcmp(name, "auto") == 0) {
                net::Mesh::setDefaultEngine(net::Mesh::Engine::Auto);
            } else if (std::strcmp(name, "serialized") == 0) {
                net::Mesh::setDefaultEngine(
                    net::Mesh::Engine::Serialized);
            } else if (std::strcmp(name, "coalesced") == 0) {
                net::Mesh::setDefaultEngine(
                    net::Mesh::Engine::Coalesced);
            } else {
                fatal(std::string("--mesh-engine: unknown engine '") +
                      name + "' (want auto, serialized or coalesced)");
            }
        } else if (std::strcmp(argv[i], "--profile") == 0) {
            profile_requested = true;
        } else if (std::strncmp(argv[i], "--profile=", 10) == 0) {
            profile_requested = true;
            profile_path = argv[i] + 10;
        } else if (std::strcmp(argv[i], "--timeseries") == 0) {
            ts_requested = true;
        } else if (std::strncmp(argv[i], "--timeseries=", 13) == 0) {
            ts_requested = true;
            ts_path = argv[i] + 13;
        } else if (std::strncmp(argv[i], "--timeseries-period=", 20) ==
                   0) {
            ts_requested = true;
            ts_period = Tick(std::strtoull(argv[i] + 20, nullptr, 10));
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;
    // Host-cost profiling reads a wall clock. Readings never feed back
    // into simulated state, but the determinism lanes exist precisely to
    // certify "no wall-clock reads during simulation", so keep them pure.
    if (profile_requested && gCheckDeterminism) {
        warn("--profile is ignored under --check-determinism (the "
             "determinism lane must not read the host clock)");
        profile_requested = false;
    }
    if (profile_requested)
        sim::profile::setOutputPath(profile_path);
    if (ts_requested)
        timeseries::configure(ts_path, ts_period);
    trace::parseCliFlags(argc, argv);
}

bool
checkDeterminismRequested()
{
    return gCheckDeterminism;
}

void
printBanner(const std::string &figure, const std::string &title,
            const std::string &paper_note)
{
    std::printf("==================================================="
                "===========\n");
    std::printf("%s — %s\n", figure.c_str(), title.c_str());
    std::printf("paper: %s\n", paper_note.c_str());
    std::printf("==================================================="
                "===========\n");
}

namespace
{

void
printOneTable(const char *what, const std::vector<Curve> &curves,
              const std::vector<std::size_t> &sizes, bool latency)
{
    if (sizes.empty())
        return;
    std::printf("\n%s\n", what);
    std::printf("%10s", "bytes");
    for (const Curve &c : curves)
        std::printf(" %12s", c.name.c_str());
    std::printf("\n");
    for (std::size_t size : sizes) {
        std::printf("%10zu", size);
        for (const Curve &c : curves) {
            auto it = c.points.find(size);
            if (it == c.points.end()) {
                std::printf(" %12s", "-");
            } else {
                std::printf(" %12.2f", latency ? it->second.latencyUs
                                               : it->second.bandwidthMBs);
            }
        }
        std::printf("\n");
    }
}

} // namespace

void
printFigure(const std::vector<Curve> &curves,
            const std::vector<std::size_t> &lat_sizes,
            const std::vector<std::size_t> &bw_sizes,
            const std::string &lat_label)
{
    printOneTable(lat_label.c_str(), curves, lat_sizes, true);
    printOneTable("bandwidth (MB/s)", curves, bw_sizes, false);
    std::printf("\n");
}

void
printTable(const std::string &header,
           const std::vector<std::string> &row_names,
           const std::vector<std::string> &col_names,
           const std::vector<std::vector<double>> &values)
{
    std::printf("\n%s\n", header.c_str());
    std::printf("%24s", "");
    for (const auto &c : col_names)
        std::printf(" %12s", c.c_str());
    std::printf("\n");
    for (std::size_t r = 0; r < row_names.size(); ++r) {
        std::printf("%24s", row_names[r].c_str());
        for (double v : values[r])
            std::printf(" %12.2f", v);
        std::printf("\n");
    }
    std::printf("\n");
}

namespace
{

/** Golden rows for this binary: "curve/size" -> hash. Lines are
 *  "<bench> <curve>/<size> <hash16>"; other benches' rows are skipped. */
std::map<std::string, std::uint64_t>
loadGolden(const std::string &path)
{
    std::map<std::string, std::uint64_t> golden;
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        fatal(logging::format("cannot open golden hash file '%s'",
              path.c_str()));
    char bench[128], key[256];
    unsigned long long hash;
    while (std::fscanf(f, "%127s %255s %llx", bench, key, &hash) == 3) {
        if (gProgName == bench)
            golden[key] = hash;
    }
    std::fclose(f);
    return golden;
}

} // namespace

int
runDeterminismCheck(const std::vector<Curve> &curves,
                    const std::vector<std::size_t> &sizes,
                    MeasureFn measure_seconds)
{
    auto &tracer = trace::Tracer::instance();
    bool was_enabled = tracer.enabled();
    tracer.setEnabled(true);

    std::map<std::string, std::uint64_t> golden;
    if (!gGoldenFile.empty()) {
        golden = loadGolden(gGoldenFile);
        std::printf("verifying trace hashes against %zu golden row(s) "
                    "from %s\n", golden.size(), gGoldenFile.c_str());
    }
    std::FILE *update = nullptr;
    if (!gUpdateGoldenFile.empty()) {
        update = std::fopen(gUpdateGoldenFile.c_str(), "a");
        if (!update)
            fatal(logging::format(
                "cannot append to golden hash file '%s'",
                gUpdateGoldenFile.c_str()));
    }

    std::printf("determinism check: running each point twice and "
                "comparing trace-stream hashes\n");
    int points = 0, failures = 0;
    for (const Curve &c : curves) {
        for (std::size_t size : sizes) {
            if (!c.points.count(size))
                continue;
            ++points;
            tracer.clear();
            double s1 = measure_seconds(c.name, size);
            std::uint64_t h1 = tracer.hash();
            std::size_t n1 = tracer.events().size();
            tracer.clear();
            double s2 = measure_seconds(c.name, size);
            std::uint64_t h2 = tracer.hash();
            std::size_t n2 = tracer.events().size();
            if (h1 != h2 || s1 != s2) {
                ++failures;
                std::printf("  %s/%zu: DIVERGED (hash %016llx vs "
                            "%016llx, %zu vs %zu events, %.9f vs %.9f "
                            "simulated seconds)\n",
                            c.name.c_str(), size,
                            (unsigned long long)h1,
                            (unsigned long long)h2, n1, n2, s1, s2);
            } else {
                std::printf("  %s/%zu: ok (hash %016llx, %zu events)\n",
                            c.name.c_str(), size,
                            (unsigned long long)h1, n1);
            }
            std::string key =
                c.name + "/" + std::to_string(size);
            if (!golden.empty() || !gGoldenFile.empty()) {
                auto it = golden.find(key);
                if (it == golden.end()) {
                    ++failures;
                    std::printf("  %s: NO GOLDEN ROW (got %016llx; "
                                "regenerate with --update-golden)\n",
                                key.c_str(), (unsigned long long)h1);
                } else if (it->second != h1) {
                    ++failures;
                    std::printf("  %s: GOLDEN MISMATCH (golden %016llx "
                                "vs run %016llx) — simulated behaviour "
                                "changed\n",
                                key.c_str(),
                                (unsigned long long)it->second,
                                (unsigned long long)h1);
                }
            }
            if (update)
                std::fprintf(update, "%s %s %016llx\n", gProgName.c_str(),
                             key.c_str(), (unsigned long long)h1);
        }
    }
    if (update)
        std::fclose(update);
    tracer.clear();
    tracer.setEnabled(was_enabled);

    if (failures > 0) {
        std::printf("determinism check FAILED: %d of %d point(s) "
                    "diverged between runs\n", failures, points);
        return 1;
    }
    std::printf("determinism check passed: %d point(s), 2 runs each\n",
                points);
    return 0;
}

int
runGoogleBenchmarks(int argc, char **argv,
                    const std::vector<Curve> &curves,
                    const std::vector<std::size_t> &sizes,
                    MeasureFn measure_seconds)
{
    if (gCheckDeterminism)
        return runDeterminismCheck(curves, sizes,
                                   std::move(measure_seconds));
    for (const Curve &c : curves) {
        for (std::size_t size : sizes) {
            if (!c.points.count(size))
                continue;
            std::string name = c.name + "/" + std::to_string(size);
            benchmark::RegisterBenchmark(
                name.c_str(),
                [measure_seconds, curve = c.name,
                 size](benchmark::State &state) {
                    for (auto _ : state) {
                        double secs = measure_seconds(curve, size);
                        state.SetIterationTime(secs);
                    }
                    state.SetBytesProcessed(
                        std::int64_t(state.iterations()) *
                        std::int64_t(size));
                })
                ->UseManualTime()
                ->Iterations(1);
        }
    }
    // Strip --trace=/--stats before google-benchmark sees them.
    trace::parseCliFlags(argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace shrimp::bench
