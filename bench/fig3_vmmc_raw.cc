/**
 * @file
 * Figure 3: latency and bandwidth delivered by the SHRIMP VMMC layer.
 *
 * Two processes on two nodes ping-pong equally-sized messages using the
 * four transfer strategies of the paper:
 *   AU-1copy  sender copies into the AU-bound send buffer (the copy is
 *             the send); receiver consumes the data in place
 *   AU-2copy  as above, plus a receive-side copy into user memory
 *   DU-0copy  deliberate update straight from the sender's user buffer
 *             into the receiver's user buffer
 *   DU-1copy  deliberate update into a staging buffer; receiver copies
 *
 * Paper reference points: AU one-word latency 4.75 us (write-through),
 * DU one-word latency 7.6 us, DU-0copy peak bandwidth almost 23 MB/s.
 */

#include <cstdio>

#include "bench_util.hh"
#include "vmmc/vmmc.hh"

namespace
{

using namespace shrimp;

enum class Variant
{
    Au1copy,
    Au2copy,
    Du0copy,
    Du1copy,
};

Variant
variantByName(const std::string &name)
{
    if (name == "AU-1copy")
        return Variant::Au1copy;
    if (name == "AU-2copy")
        return Variant::Au2copy;
    if (name == "DU-0copy")
        return Variant::Du0copy;
    return Variant::Du1copy;
}

struct Side
{
    vmmc::Endpoint *ep;
    VAddr user = 0;   //!< user message buffer
    VAddr recv = 0;   //!< exported receive region
    VAddr au = 0;     //!< AU-bound send area (AU variants)
    int handle = -1;  //!< import of the peer's receive region
};

constexpr int kWarmup = 2;
constexpr int kIters = 10;

sim::Task<>
exportSide(Side &s, std::uint32_t key, std::size_t bufsz)
{
    node::Process &proc = s.ep->proc();
    s.user = proc.alloc(bufsz);
    s.recv = proc.alloc(bufsz, CacheMode::WriteThrough);
    vmmc::Status st = co_await s.ep->exportBuffer(key, s.recv, bufsz);
    SHRIMP_ASSERT(st == vmmc::Status::Ok, "export");
}

sim::Task<>
importSide(Side &s, Side &peer, std::uint32_t peer_key, std::size_t bufsz,
           Variant v)
{
    node::Process &proc = s.ep->proc();
    auto r = co_await s.ep->import(peer.ep->nodeId(), peer_key);
    SHRIMP_ASSERT(r.status == vmmc::Status::Ok, "import");
    s.handle = r.handle;
    if (v == Variant::Au1copy || v == Variant::Au2copy) {
        s.au = proc.alloc(bufsz);
        vmmc::Status st = co_await s.ep->bindAu(s.au, bufsz, s.handle, 0);
        SHRIMP_ASSERT(st == vmmc::Status::Ok, "bindAu");
    }
}

/** One direction of the ping-pong: send the message tagged @p tag. */
sim::Task<>
sendMsg(Side &s, std::size_t size, std::uint32_t tag, Variant v)
{
    node::Process &proc = s.ep->proc();
    proc.poke32(VAddr(s.user + size - 4), tag);
    switch (v) {
      case Variant::Au1copy:
      case Variant::Au2copy:
        // The copy into the bound buffer is the send.
        co_await proc.copy(s.au, s.user, size);
        break;
      case Variant::Du0copy:
      case Variant::Du1copy:
        co_await s.ep->send(s.handle, 0, s.user, size);
        break;
    }
}

/** Wait for the message tagged @p tag and consume it per the variant. */
sim::Task<>
recvMsg(Side &s, std::size_t size, std::uint32_t tag, Variant v)
{
    node::Process &proc = s.ep->proc();
    co_await proc.waitWord32Eq(VAddr(s.recv + size - 4), tag);
    if (v == Variant::Au2copy || v == Variant::Du1copy)
        co_await proc.copy(s.user, s.recv, size);
}

/** @return simulated seconds for kIters round trips (steady state). */
double
measureSeconds(const std::string &curve, std::size_t size)
{
    Variant v = variantByName(curve);
    vmmc::System sys;
    auto &a = sys.createEndpoint(0);
    auto &b = sys.createEndpoint(1);
    Side sa{&a}, sb{&b};
    Tick t0 = 0, t1 = 0;

    sys.sim().spawn([](vmmc::System &sys, Side &sa, Side &sb,
                       std::size_t size, Variant v, Tick &t0,
                       Tick &t1) -> sim::Task<> {
        std::size_t bufsz = (size + 4095) / 4096 * 4096 + 4096;
        co_await exportSide(sa, 43, bufsz);
        co_await exportSide(sb, 42, bufsz);
        co_await importSide(sa, sb, 42, bufsz, v);
        co_await importSide(sb, sa, 43, bufsz, v);
        for (int i = 0; i < kWarmup + kIters; ++i) {
            if (i == kWarmup)
                t0 = sys.sim().now();
            std::uint32_t tag = std::uint32_t(i + 1);
            co_await sendMsg(sa, size, tag, v);
            co_await recvMsg(sb, size, tag, v);
            co_await sendMsg(sb, size, tag, v);
            co_await recvMsg(sa, size, tag, v);
        }
        t1 = sys.sim().now();
    }(sys, sa, sb, size, v, t0, t1));
    sys.sim().runAll();
    return double(t1 - t0) / 1e9;
}

double
oneWayNs(const std::string &curve, std::size_t size)
{
    return measureSeconds(curve, size) * 1e9 / (2.0 * kIters);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace shrimp::bench;
    shrimp::bench::parseBenchFlags(argc, argv);

    printBanner("Figure 3",
                "Latency and bandwidth delivered by the SHRIMP VMMC "
                "layer (raw library, 2-node ping-pong)",
                "AU 1-word 4.75 us; DU 1-word 7.6 us; DU-0copy peak "
                "~23 MB/s; AU-1copy slightly below DU-0copy at 10 KB");

    std::vector<std::size_t> lat_sizes{4, 8, 16, 32, 48, 64};
    std::vector<std::size_t> bw_sizes{256,  512,  1024, 2048, 3072,
                                      4096, 6144, 8192, 10240};
    std::vector<Curve> curves;
    for (const char *name :
         {"AU-1copy", "AU-2copy", "DU-0copy", "DU-1copy"}) {
        Curve c;
        c.name = name;
        for (std::size_t s : lat_sizes)
            c.points[s] = pointFrom(oneWayNs(name, s), s);
        for (std::size_t s : bw_sizes)
            c.points[s] = pointFrom(oneWayNs(name, s), s);
        curves.push_back(std::move(c));
    }
    printFigure(curves, lat_sizes, bw_sizes);

    std::vector<std::size_t> gb_sizes{4, 1024, 10240};
    return runGoogleBenchmarks(argc, argv, curves, gb_sizes,
                               measureSeconds);
}
