/**
 * @file
 * Figure 7: stream-socket latency and bandwidth.
 *
 * Two processes ping-pong over a connected stream socket using the
 * three data protocols of the paper: AU-2copy (the sender-side copy
 * acts as the send), DU-1copy (straight from user memory, alignment
 * permitting), and DU-2copy (staging copy dodges alignment).
 *
 * Paper reference points: ~13 us of library overhead above the
 * hardware limit for small messages; large-message performance close
 * to the raw one-copy limit.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sock/socket.hh"

namespace
{

using namespace shrimp;

constexpr int kWarmup = 2;
constexpr int kIters = 10;

sock::StreamProto
protoByName(const std::string &name)
{
    if (name == "AU-2copy")
        return sock::StreamProto::AuTwoCopy;
    if (name == "DU-1copy")
        return sock::StreamProto::DuOneCopy;
    return sock::StreamProto::DuTwoCopy;
}

double
measureSeconds(const std::string &curve, std::size_t size)
{
    sock::SockOptions opt;
    opt.proto = protoByName(curve);
    // Keep the ring comfortably larger than one message.
    opt.ringBytes =
        std::max<std::size_t>(8192, (2 * size + 4095) / 4096 * 4096);

    vmmc::System sys;
    auto &server_ep = sys.createEndpoint(1);
    auto &client_ep = sys.createEndpoint(0);
    Tick t0 = 0, t1 = 0;

    sys.sim().spawn([](vmmc::Endpoint &ep, sock::SockOptions opt,
                       std::size_t size) -> sim::Task<> {
        sock::SocketLib lib(ep, opt);
        int ls = co_await lib.socket();
        co_await lib.listen(ls, 4000);
        int fd = co_await lib.accept(ls);
        VAddr buf = ep.proc().alloc(size + 64);
        for (int i = 0; i < kWarmup + kIters; ++i) {
            co_await lib.recvAll(fd, buf, size);
            co_await lib.send(fd, buf, size);
        }
    }(server_ep, opt, size));
    sys.sim().spawn([](vmmc::Endpoint &ep, sock::SockOptions opt,
                       std::size_t size, Tick &t0, Tick &t1)
                        -> sim::Task<> {
        sock::SocketLib lib(ep, opt);
        int fd = co_await lib.socket();
        int rc = co_await lib.connect(fd, 1, 4000);
        SHRIMP_ASSERT(rc == 0, "connect");
        VAddr buf = ep.proc().alloc(size + 64);
        for (int i = 0; i < kWarmup + kIters; ++i) {
            if (i == kWarmup)
                t0 = ep.proc().sim().now();
            co_await lib.send(fd, buf, size);
            co_await lib.recvAll(fd, buf, size);
        }
        t1 = ep.proc().sim().now();
    }(client_ep, opt, size, t0, t1));
    sys.sim().runAll();
    return double(t1 - t0) / 1e9;
}

double
oneWayNs(const std::string &curve, std::size_t size)
{
    return measureSeconds(curve, size) * 1e9 / (2.0 * kIters);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace shrimp::bench;
    shrimp::bench::parseBenchFlags(argc, argv);

    printBanner("Figure 7",
                "Socket latency and bandwidth (stream ping-pong)",
                "~13 us library overhead at small sizes; large "
                "messages near the raw one-copy limit");

    std::vector<std::size_t> lat_sizes{4, 8, 16, 32, 48, 64};
    std::vector<std::size_t> bw_sizes{256,  512,  1024, 2048, 3072,
                                      4096, 6144, 8192, 10240};
    std::vector<Curve> curves;
    for (const char *name : {"AU-2copy", "DU-1copy", "DU-2copy"}) {
        Curve c;
        c.name = name;
        for (std::size_t s : lat_sizes)
            c.points[s] = pointFrom(oneWayNs(name, s), s);
        for (std::size_t s : bw_sizes)
            c.points[s] = pointFrom(oneWayNs(name, s), s);
        curves.push_back(std::move(c));
    }
    printFigure(curves, lat_sizes, bw_sizes);

    std::vector<std::size_t> gb_sizes{4, 1024, 10240};
    return runGoogleBenchmarks(argc, argv, curves, gb_sizes,
                               measureSeconds);
}
