/**
 * @file
 * Ablation: page cache modes on the automatic-update path (paper
 * section 3.4): "4.75 usec with both sender's and receiver's memory
 * cached write-through, and 3.7 usec with caching disabled".
 */

#include <cstdio>

#include "bench_util.hh"
#include "vmmc/vmmc.hh"

namespace
{

using namespace shrimp;

double
latencyUs(CacheMode recv_mode)
{
    vmmc::System sys;
    auto &a = sys.createEndpoint(0);
    auto &b = sys.createEndpoint(1);
    Tick total = 0;

    sys.sim().spawn([](vmmc::System &sys, vmmc::Endpoint &a,
                       vmmc::Endpoint &b, CacheMode recv_mode,
                       Tick &total) -> sim::Task<> {
        VAddr rbuf = b.proc().alloc(4096, recv_mode);
        co_await b.exportBuffer(11, rbuf, 4096);
        auto r = co_await a.import(1, 11);
        VAddr au = a.proc().alloc(4096);
        co_await a.bindAu(au, 4096, r.handle, 0);
        if (recv_mode == CacheMode::Uncached)
            a.proc().as().setCacheMode(au, 4096, CacheMode::Uncached);

        Tick t0 = sys.sim().now();
        for (std::uint32_t i = 1; i <= 10; ++i) {
            co_await a.proc().store32(au, i);
            co_await b.proc().waitWord32Eq(rbuf, i);
        }
        total = sys.sim().now() - t0;
    }(sys, a, b, recv_mode, total));
    sys.sim().runAll();
    return double(total) / 10.0 / 1000.0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace shrimp::bench;
    shrimp::bench::parseBenchFlags(argc, argv);
    (void)argc;
    (void)argv;

    printBanner("Ablation: cache modes on the AU path",
                "one-word AU latency by receive-page cache mode",
                "4.75 us write-through vs 3.7 us uncached (sec. 3.4)");

    double wt = latencyUs(CacheMode::WriteThrough);
    double wb = latencyUs(CacheMode::WriteBack);
    double uc = latencyUs(CacheMode::Uncached);
    printTable("one-word AU latency",
               {"write-through", "write-back", "uncached"},
               {"latency (us)"}, {{wt}, {wb}, {uc}});
    return 0;
}
