/**
 * @file
 * The ttcp experiment of paper section 4.3: one-way continuous pump
 * over a stream socket (ttcp v1.12 style), sender pushing fixed-size
 * records as fast as flow control allows.
 *
 * Paper reference points: ttcp measured 8.6 MB/s with 7 KB records (the
 * authors' own microbenchmark: 9.8 MB/s); 1.3 MB/s at 70-byte records
 * (already above Ethernet's peak).
 */

#include <cstdio>

#include "bench_util.hh"
#include "sock/socket.hh"

namespace
{

using namespace shrimp;

double
pumpSeconds(std::size_t record, std::size_t total_bytes)
{
    vmmc::System sys;
    auto &sink_ep = sys.createEndpoint(1);
    auto &src_ep = sys.createEndpoint(0);
    Tick t0 = 0, t1 = 0;

    sys.sim().spawn([](vmmc::Endpoint &ep, std::size_t record,
                       std::size_t total) -> sim::Task<> {
        sock::SocketLib lib(ep);
        int ls = co_await lib.socket();
        co_await lib.listen(ls, 4000);
        int fd = co_await lib.accept(ls);
        VAddr buf = ep.proc().alloc(record + 64);
        std::size_t got = 0;
        while (got < total) {
            long n = co_await lib.recv(fd, buf, record);
            if (n <= 0)
                break;
            got += std::size_t(n);
        }
    }(sink_ep, record, total_bytes));
    sys.sim().spawn([](vmmc::Endpoint &ep, std::size_t record,
                       std::size_t total, Tick &t0, Tick &t1)
                        -> sim::Task<> {
        sock::SocketLib lib(ep);
        int fd = co_await lib.socket();
        int rc = co_await lib.connect(fd, 1, 4000);
        SHRIMP_ASSERT(rc == 0, "connect");
        VAddr buf = ep.proc().alloc(record + 64);
        t0 = ep.proc().sim().now();
        std::size_t sent = 0;
        while (sent < total) {
            std::size_t n = std::min(record, total - sent);
            co_await lib.send(fd, buf, n);
            sent += n;
        }
        t1 = ep.proc().sim().now();
        co_await lib.close(fd);
    }(src_ep, record, total_bytes, t0, t1));
    sys.sim().runAll();
    return double(t1 - t0) / 1e9;
}

double
measureSeconds(const std::string &, std::size_t record)
{
    return pumpSeconds(record, 64 * record);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace shrimp::bench;
    shrimp::bench::parseBenchFlags(argc, argv);

    printBanner("ttcp (section 4.3)",
                "one-way socket pump, ttcp v1.12 style",
                "8.6 MB/s (ttcp) / 9.8 MB/s (microbenchmark) at 7 KB "
                "records; 1.3 MB/s at 70-byte records");

    std::vector<std::size_t> records{70, 256, 1024, 4096, 7168, 8192};
    Curve c;
    c.name = "AU-2copy";
    std::printf("\n%10s %14s\n", "record", "MB/s (one-way)");
    for (std::size_t r : records) {
        std::size_t total = 64 * r;
        double secs = pumpSeconds(r, total);
        double mbs = double(total) / 1e6 / secs;
        Point p;
        p.bandwidthMBs = mbs;
        p.latencyUs = secs * 1e6 / 64.0;
        c.points[r] = p;
        std::printf("%10zu %14.2f\n", r, mbs);
    }
    std::printf("\n");

    std::vector<std::size_t> gb_sizes{70, 7168};
    return runGoogleBenchmarks(argc, argv, {c}, gb_sizes,
                               measureSeconds);
}
