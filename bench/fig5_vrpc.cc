/**
 * @file
 * Figure 5: VRPC (SunRPC-compatible) latency and bandwidth as a
 * function of a single argument/result size.
 *
 * A null procedure takes one opaque argument of N bytes and returns an
 * opaque result of N bytes. Curves: the stream's AU protocol (the
 * library default; the encode writes are the transfer) and the DU
 * protocol (marshal then deliberate update).
 *
 * Paper reference points: ~29 us round trip for the null call (4-byte
 * argument/result); bandwidth approaches the one-copy hardware limit
 * for large arguments.
 */

#include <cstdio>

#include "bench_util.hh"
#include "rpc/server.hh"

namespace
{

using namespace shrimp;

constexpr std::uint32_t kProg = 0x30000001;
constexpr std::uint32_t kVers = 1;
constexpr int kWarmup = 2;
constexpr int kIters = 10;

double
measureSeconds(const std::string &curve, std::size_t size)
{
    rpc::VrpcOptions opt;
    opt.proto = curve == "DU-1copy" ? sock::StreamProto::DuTwoCopy
                                    : sock::StreamProto::AuTwoCopy;

    vmmc::System sys;
    auto &server_ep = sys.createEndpoint(1);
    auto &client_ep = sys.createEndpoint(0);
    rpc::VrpcServer server(server_ep, 5000, opt);
    server.registerProc(
        kProg, kVers, 1,
        [](rpc::XdrDecoder &dec)
            -> sim::Task<rpc::VrpcServer::ServiceResult> {
            auto data = co_await dec.getBytes(1 << 20);
            rpc::VrpcServer::ServiceResult r;
            r.results = [data](rpc::XdrEncoder &enc) -> sim::Task<> {
                co_await enc.putBytes(data.data(), data.size());
            };
            co_return r;
        });
    server.start();

    Tick t0 = 0, t1 = 0;
    sys.sim().spawn([](vmmc::System &sys, vmmc::Endpoint &ep,
                       rpc::VrpcOptions opt, std::size_t size, Tick &t0,
                       Tick &t1) -> sim::Task<> {
        rpc::VrpcClient client(ep, opt);
        bool up = co_await client.connect(1, 5000, kProg, kVers);
        SHRIMP_ASSERT(up, "connect");
        std::vector<std::uint8_t> arg(size, 0x5A);
        for (int i = 0; i < kWarmup + kIters; ++i) {
            if (i == kWarmup)
                t0 = sys.sim().now();
            auto st = co_await client.call(
                1,
                [&arg](rpc::XdrEncoder &e) -> sim::Task<> {
                    co_await e.putBytes(arg.data(), arg.size());
                },
                [](rpc::XdrDecoder &d) -> sim::Task<> {
                    co_await d.getBytes(1 << 20);
                });
            SHRIMP_ASSERT(st == rpc::AcceptStat::Success, "call");
        }
        t1 = sys.sim().now();
    }(sys, client_ep, opt, size, t0, t1));
    sys.sim().runAll();
    return double(t1 - t0) / 1e9;
}

/** Round-trip latency per call; "bandwidth" counts the argument and
 *  the result (N bytes each way per call). */
shrimp::bench::Point
measurePoint(const std::string &curve, std::size_t size)
{
    double rt_ns = measureSeconds(curve, size) * 1e9 / kIters;
    shrimp::bench::Point p;
    p.latencyUs = rt_ns / 1000.0;
    p.bandwidthMBs = rt_ns > 0 ? 2.0 * double(size) * 1000.0 / rt_ns : 0;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace shrimp::bench;
    shrimp::bench::parseBenchFlags(argc, argv);

    printBanner("Figure 5",
                "VRPC latency and bandwidth vs argument/result size",
                "~29 us null round trip; bandwidth approaches the "
                "one-copy limit for large arguments");

    std::vector<std::size_t> lat_sizes{4, 8, 16, 32, 48, 64};
    std::vector<std::size_t> bw_sizes{256,  512,  1024, 2048, 3072,
                                      4096, 6144, 8192, 10240};
    std::vector<Curve> curves;
    for (const char *name : {"AU-1copy", "DU-1copy"}) {
        Curve c;
        c.name = name;
        for (std::size_t s : lat_sizes)
            c.points[s] = measurePoint(name, s);
        for (std::size_t s : bw_sizes)
            c.points[s] = measurePoint(name, s);
        curves.push_back(std::move(c));
    }
    printFigure(curves, lat_sizes, bw_sizes,
                "round-trip latency (us)");

    std::vector<std::size_t> gb_sizes{4, 1024, 10240};
    return runGoogleBenchmarks(argc, argv, curves, gb_sizes,
                               measureSeconds);
}
