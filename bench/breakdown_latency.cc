/**
 * @file
 * Latency breakdown: attributes the end-to-end time of a message to the
 * pipeline stages of the SHRIMP datapath, in the style of the paper's
 * discussion of where the microseconds go (sections 3-5):
 *
 *   lib      sender library overhead (call entry, marshalling copies,
 *            PIO initiation) plus the receiver-side turnaround of the
 *            previous message in the ping-pong
 *   nic-out  outgoing FIFO, arbiter, and NIC processor-port forwarding
 *            (last pkt.formed -> last pkt.injected)
 *   mesh     routing backplane traversal (-> last pkt.ejected at the
 *            destination router)
 *   dma-in   eject queue and incoming EISA DMA into memory
 *            (-> last pkt.delivered)
 *   detect   notification/poll detection and the receive-side copy
 *            (-> receive call returns)
 *
 * The boundaries are extracted from the tick-accurate trace (base/trace)
 * recorded while replaying the exact measurement loops of the fig3 (raw
 * VMMC), fig4 (NX), and fig5 (VRPC) benchmarks. Each message window is
 * [previous done-mark, done-mark] and the stage boundaries telescope
 * (each is clamped into the window and found at-or-before the next), so
 * the stage sums equal the measured end-to-end time *exactly*; the
 * printed diff%% column is the proof.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "nx/nx.hh"
#include "rpc/server.hh"
#include "vmmc/vmmc.hh"

namespace
{

using namespace shrimp;

constexpr int kWarmup = 2;
constexpr int kIters = 10;

// ---- trace extraction --------------------------------------------------

/** Per-(track, event-name) instant tick series, in time order. */
class EventIndex
{
  public:
    EventIndex()
    {
        const trace::Tracer &tr = trace::Tracer::instance();
        for (const auto &e : tr.events()) {
            if (e.phase == trace::Tracer::Phase::Instant)
                series_[{e.track, e.name}].push_back(e.tick);
        }
    }

    const std::vector<Tick> &
    series(const std::string &track_name, const char *event) const
    {
        static const std::vector<Tick> empty;
        auto it = series_.find({trace::track(track_name), event});
        return it == series_.end() ? empty : it->second;
    }

    /** Last tick at or before @p hi, clamped to at least @p lo. */
    static Tick
    lastAtOrBefore(const std::vector<Tick> &v, Tick hi, Tick lo)
    {
        auto it = std::upper_bound(v.begin(), v.end(), hi);
        if (it == v.begin())
            return lo;
        Tick t = *std::prev(it);
        return t < lo ? lo : t;
    }

  private:
    std::map<std::pair<trace::TrackId, std::string>, std::vector<Tick>>
        series_;
};

struct StageTotals
{
    double lib = 0, nicOut = 0, mesh = 0, dmaIn = 0, detect = 0;
    int msgs = 0;

    double sum() const { return lib + nicOut + mesh + dmaIn + detect; }
};

/**
 * Attribute the window [lo, hi] of one message from node @p src to node
 * @p dst to the five stages. The boundaries telescope backwards from
 * the end of the window, so they are monotone by construction and the
 * five stages sum to exactly hi - lo.
 */
void
accumulateLeg(const EventIndex &idx, NodeId src, NodeId dst, Tick lo,
              Tick hi, StageTotals &tot)
{
    std::string s = std::to_string(src), d = std::to_string(dst);
    Tick e = EventIndex::lastAtOrBefore(
        idx.series("node" + d + ".nic.in", "pkt.delivered"), hi, lo);
    Tick dd = EventIndex::lastAtOrBefore(
        idx.series("router" + d, "pkt.ejected"), e, lo);
    Tick c = EventIndex::lastAtOrBefore(
        idx.series("node" + s + ".nic", "pkt.injected"), dd, lo);
    Tick b = EventIndex::lastAtOrBefore(
        idx.series("node" + s + ".nic.out", "pkt.formed"), c, lo);
    tot.lib += double(b - lo);
    tot.nicOut += double(c - b);
    tot.mesh += double(dd - c);
    tot.dmaIn += double(e - dd);
    tot.detect += double(hi - e);
}

/** Bench-side marker track (one row in the trace viewer). */
trace::TrackId
benchTrack()
{
    return trace::track("bench");
}

void
mark(const char *name, Tick tick)
{
    trace::Tracer::instance().instant(benchTrack(), name, tick);
}

/** Collect bench done-marks named @p a2b / @p b2a inside (t0, t1]. */
std::vector<std::pair<Tick, bool>> // (tick, isA2b)
doneMarks(const char *a2b, const char *b2a, Tick t0, Tick t1)
{
    std::vector<std::pair<Tick, bool>> out;
    const trace::Tracer &tr = trace::Tracer::instance();
    for (const auto &e : tr.events()) {
        if (e.track != benchTrack() ||
            e.phase != trace::Tracer::Phase::Instant) {
            continue;
        }
        if (e.tick <= t0 || e.tick > t1)
            continue;
        if (std::strcmp(e.name, a2b) == 0)
            out.push_back({e.tick, true});
        else if (std::strcmp(e.name, b2a) == 0)
            out.push_back({e.tick, false});
    }
    return out;
}

void
beginTracedRun()
{
    trace::Tracer::instance().setEnabled(true);
    trace::Tracer::instance().clear();
}

// ---- raw VMMC (the fig3 measurement loop, with done-marks) -------------

enum class RawVariant
{
    Au1copy,
    Au2copy,
    Du0copy,
    Du1copy,
};

RawVariant
rawVariantByName(const std::string &name)
{
    if (name == "AU-1copy")
        return RawVariant::Au1copy;
    if (name == "AU-2copy")
        return RawVariant::Au2copy;
    if (name == "DU-0copy")
        return RawVariant::Du0copy;
    return RawVariant::Du1copy;
}

struct RawSide
{
    vmmc::Endpoint *ep;
    VAddr user = 0;
    VAddr recv = 0;
    VAddr au = 0;
    int handle = -1;
};

sim::Task<>
rawExportSide(RawSide &s, std::uint32_t key, std::size_t bufsz)
{
    node::Process &proc = s.ep->proc();
    s.user = proc.alloc(bufsz);
    s.recv = proc.alloc(bufsz, CacheMode::WriteThrough);
    vmmc::Status st = co_await s.ep->exportBuffer(key, s.recv, bufsz);
    SHRIMP_ASSERT(st == vmmc::Status::Ok, "export");
}

sim::Task<>
rawImportSide(RawSide &s, RawSide &peer, std::uint32_t peer_key,
              std::size_t bufsz, RawVariant v)
{
    node::Process &proc = s.ep->proc();
    auto r = co_await s.ep->import(peer.ep->nodeId(), peer_key);
    SHRIMP_ASSERT(r.status == vmmc::Status::Ok, "import");
    s.handle = r.handle;
    if (v == RawVariant::Au1copy || v == RawVariant::Au2copy) {
        s.au = proc.alloc(bufsz);
        vmmc::Status st = co_await s.ep->bindAu(s.au, bufsz, s.handle, 0);
        SHRIMP_ASSERT(st == vmmc::Status::Ok, "bindAu");
    }
}

sim::Task<>
rawSendMsg(RawSide &s, std::size_t size, std::uint32_t tag, RawVariant v)
{
    node::Process &proc = s.ep->proc();
    proc.poke32(VAddr(s.user + size - 4), tag);
    switch (v) {
      case RawVariant::Au1copy:
      case RawVariant::Au2copy:
        co_await proc.copy(s.au, s.user, size);
        break;
      case RawVariant::Du0copy:
      case RawVariant::Du1copy:
        co_await s.ep->send(s.handle, 0, s.user, size);
        break;
    }
}

sim::Task<>
rawRecvMsg(RawSide &s, std::size_t size, std::uint32_t tag, RawVariant v)
{
    node::Process &proc = s.ep->proc();
    co_await proc.waitWord32Eq(VAddr(s.recv + size - 4), tag);
    if (v == RawVariant::Au2copy || v == RawVariant::Du1copy)
        co_await proc.copy(s.user, s.recv, size);
}

/** One measured run; fills the stage totals and the end-to-end time. */
void
measureRaw(const std::string &curve, std::size_t size, StageTotals &tot,
           double &end_to_end_ns)
{
    RawVariant v = rawVariantByName(curve);
    beginTracedRun();
    vmmc::System sys;
    auto &a = sys.createEndpoint(0);
    auto &b = sys.createEndpoint(1);
    RawSide sa{&a}, sb{&b};
    Tick t0 = 0, t1 = 0;

    sys.sim().spawn([](vmmc::System &sys, RawSide &sa, RawSide &sb,
                       std::size_t size, RawVariant v, Tick &t0,
                       Tick &t1) -> sim::Task<> {
        std::size_t bufsz = (size + 4095) / 4096 * 4096 + 4096;
        co_await rawExportSide(sa, 43, bufsz);
        co_await rawExportSide(sb, 42, bufsz);
        co_await rawImportSide(sa, sb, 42, bufsz, v);
        co_await rawImportSide(sb, sa, 43, bufsz, v);
        for (int i = 0; i < kWarmup + kIters; ++i) {
            if (i == kWarmup)
                t0 = sys.sim().now();
            std::uint32_t tag = std::uint32_t(i + 1);
            co_await rawSendMsg(sa, size, tag, v);
            co_await rawRecvMsg(sb, size, tag, v);
            mark("done.a2b", sys.sim().now());
            co_await rawSendMsg(sb, size, tag, v);
            co_await rawRecvMsg(sa, size, tag, v);
            mark("done.b2a", sys.sim().now());
        }
        t1 = sys.sim().now();
    }(sys, sa, sb, size, v, t0, t1));
    sys.sim().runAll();

    EventIndex idx;
    Tick prev = t0;
    for (auto [tick, a2b] : doneMarks("done.a2b", "done.b2a", t0, t1)) {
        accumulateLeg(idx, a2b ? 0 : 1, a2b ? 1 : 0, prev, tick, tot);
        ++tot.msgs;
        prev = tick;
    }
    end_to_end_ns = double(t1 - t0);
}

// ---- NX (the fig4 measurement loop, with done-marks) -------------------

struct NxVariantSpec
{
    nx::SendMode mode;
    bool inPlaceRecv;
};

NxVariantSpec
nxVariantByName(const std::string &name)
{
    if (name == "AU-1copy")
        return {nx::SendMode::AuMarshal, true};
    if (name == "AU-2copy")
        return {nx::SendMode::AuMarshal, false};
    if (name == "DU-0copy")
        return {nx::SendMode::ZeroCopy, false};
    if (name == "DU-1copy")
        return {nx::SendMode::DuOneCopy, false};
    return {nx::SendMode::DuTwoCopy, false};
}

void
measureNx(const std::string &curve, std::size_t size, StageTotals &tot,
          double &end_to_end_ns)
{
    NxVariantSpec spec = nxVariantByName(curve);
    beginTracedRun();
    vmmc::System sys;
    nx::NxSystem nxs(sys, 2);
    sys.sim().spawn(nxs.init());
    sys.sim().runAll();

    Tick t0 = 0, t1 = 0;
    auto peer = [](nx::NxSystem &nxs, int rank, std::size_t size,
                   NxVariantSpec spec, Tick &t0, Tick &t1) -> sim::Task<> {
        auto &p = nxs.proc(rank);
        p.setSendMode(spec.mode);
        auto &proc = p.endpoint().proc();
        std::size_t bufsz = std::max<std::size_t>(size, 4) + 64;
        VAddr buf = proc.alloc(bufsz);
        for (int i = 0; i < kWarmup + kIters; ++i) {
            if (rank == 0 && i == kWarmup)
                t0 = proc.sim().now();
            if (rank == 0) {
                co_await p.csend(1, buf, size, 1);
                if (spec.inPlaceRecv)
                    co_await p.crecvInPlace(2);
                else
                    co_await p.crecv(2, buf, bufsz);
                mark("done.b2a", proc.sim().now());
            } else {
                if (spec.inPlaceRecv)
                    co_await p.crecvInPlace(1);
                else
                    co_await p.crecv(1, buf, bufsz);
                mark("done.a2b", proc.sim().now());
                co_await p.csend(2, buf, size, 0);
            }
        }
        if (rank == 0)
            t1 = proc.sim().now();
    };
    sys.sim().spawn(peer(nxs, 0, size, spec, t0, t1));
    sys.sim().spawn(peer(nxs, 1, size, spec, t0, t1));
    sys.sim().runAll();

    EventIndex idx;
    Tick prev = t0;
    for (auto [tick, a2b] : doneMarks("done.a2b", "done.b2a", t0, t1)) {
        accumulateLeg(idx, a2b ? 0 : 1, a2b ? 1 : 0, prev, tick, tot);
        ++tot.msgs;
        prev = tick;
    }
    // rank 0's final crecv completes after its done-mark bookkeeping;
    // t1 is the same tick as the last mark, so the windows tile [t0,t1].
    end_to_end_ns = double(t1 - t0);
}

// ---- VRPC (the fig5 measurement loop, with marks) ----------------------

constexpr std::uint32_t kProg = 0x30000001;
constexpr std::uint32_t kVers = 1;

void
measureVrpc(const std::string &curve, std::size_t size, StageTotals &tot,
            double &end_to_end_ns)
{
    rpc::VrpcOptions opt;
    opt.proto = curve == "DU-1copy" ? sock::StreamProto::DuTwoCopy
                                    : sock::StreamProto::AuTwoCopy;
    beginTracedRun();
    vmmc::System sys;
    auto &server_ep = sys.createEndpoint(1);
    auto &client_ep = sys.createEndpoint(0);
    rpc::VrpcServer server(server_ep, 5000, opt);
    server.registerProc(
        kProg, kVers, 1,
        [&sys](rpc::XdrDecoder &dec)
            -> sim::Task<rpc::VrpcServer::ServiceResult> {
            mark("srv.handle", sys.sim().now());
            auto data = co_await dec.getBytes(1 << 20);
            rpc::VrpcServer::ServiceResult r;
            r.results = [data](rpc::XdrEncoder &enc) -> sim::Task<> {
                co_await enc.putBytes(data.data(), data.size());
            };
            co_return r;
        });
    server.start();

    Tick t0 = 0, t1 = 0;
    sys.sim().spawn([](vmmc::System &sys, vmmc::Endpoint &ep,
                       rpc::VrpcOptions opt, std::size_t size, Tick &t0,
                       Tick &t1) -> sim::Task<> {
        rpc::VrpcClient client(ep, opt);
        bool up = co_await client.connect(1, 5000, kProg, kVers);
        SHRIMP_ASSERT(up, "connect");
        std::vector<std::uint8_t> arg(size, 0x5A);
        for (int i = 0; i < kWarmup + kIters; ++i) {
            if (i == kWarmup)
                t0 = sys.sim().now();
            auto st = co_await client.call(
                1,
                [&arg](rpc::XdrEncoder &e) -> sim::Task<> {
                    co_await e.putBytes(arg.data(), arg.size());
                },
                [](rpc::XdrDecoder &d) -> sim::Task<> {
                    co_await d.getBytes(1 << 20);
                });
            SHRIMP_ASSERT(st == rpc::AcceptStat::Success, "call");
            mark("call.done", sys.sim().now());
        }
        t1 = sys.sim().now();
    }(sys, client_ep, opt, size, t0, t1));
    sys.sim().runAll();

    // Each call is two legs: request (client node 0 -> server node 1)
    // up to the server-handler entry mark, and reply (1 -> 0) from
    // there to the call-done mark. Stage sums still tile exactly.
    EventIndex idx;
    const auto &handles = idx.series("bench", "srv.handle");
    Tick prev = t0;
    for (auto [tick, _] : doneMarks("call.done", "call.done", t0, t1)) {
        Tick m = EventIndex::lastAtOrBefore(handles, tick, prev);
        accumulateLeg(idx, 0, 1, prev, m, tot);
        accumulateLeg(idx, 1, 0, m, tick, tot);
        ++tot.msgs;
        prev = tick;
    }
    end_to_end_ns = double(t1 - t0);
}

// ---- table printing ----------------------------------------------------

using MeasureBreakdown = void (*)(const std::string &, std::size_t,
                                  StageTotals &, double &);

void
printBreakdown(const std::string &header, MeasureBreakdown measure,
               const std::vector<std::string> &curves,
               const std::vector<std::size_t> &sizes)
{
    std::vector<std::string> rows;
    std::vector<std::vector<double>> values;
    bool all_ok = true;
    for (const std::string &curve : curves) {
        for (std::size_t size : sizes) {
            StageTotals tot;
            double end_to_end = 0;
            measure(curve, size, tot, end_to_end);
            double per = tot.msgs ? 1.0 / (1000.0 * tot.msgs) : 0.0;
            double sum_us = tot.sum() * per;
            double e2e_us = end_to_end * per;
            double diff_pct =
                e2e_us > 0 ? (sum_us - e2e_us) / e2e_us * 100.0 : 0.0;
            if (diff_pct > 1.0 || diff_pct < -1.0)
                all_ok = false;
            rows.push_back(curve + "/" + std::to_string(size));
            values.push_back({tot.lib * per, tot.nicOut * per,
                              tot.mesh * per, tot.dmaIn * per,
                              tot.detect * per, sum_us, e2e_us,
                              diff_pct});
        }
    }
    shrimp::bench::printTable(
        header + " — per-message stage breakdown (us)", rows,
        {"lib", "nic-out", "mesh", "dma-in", "detect", "sum", "end2end",
         "diff%"},
        values);
    std::printf("stage sums %s end-to-end (|diff| <= 1%%)\n\n",
                all_ok ? "MATCH" : "DO NOT MATCH");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace shrimp::bench;
    shrimp::bench::parseBenchFlags(argc, argv);

    printBanner("Latency breakdown",
                "End-to-end message time attributed to datapath stages",
                "library overhead -> OPT/packetizer -> mesh link -> "
                "incoming DMA -> notification/poll (sections 3-5)");

    if (!checkDeterminismRequested()) {
        printBreakdown("raw VMMC (fig3 ping-pong, one-way)", measureRaw,
                       {"AU-1copy", "AU-2copy", "DU-0copy", "DU-1copy"},
                       {4, 1024});
        printBreakdown("NX (fig4 ping-pong, one-way)", measureNx,
                       {"AU-1copy", "AU-2copy", "DU-0copy", "DU-1copy",
                        "DU-2copy"},
                       {4, 1024});
        printBreakdown("VRPC (fig5 null call, round trip)", measureVrpc,
                       {"AU-1copy", "DU-1copy"}, {4, 1024});
    }

    // Register every measurement loop with the shared driver so
    // --check-determinism (and plain google-benchmark runs) replay the
    // exact traced loops. Curve names carry a layer prefix.
    std::vector<std::size_t> sizes{4, 1024};
    std::vector<Curve> curves;
    auto addCurves = [&](const char *layer,
                         std::initializer_list<const char *> names) {
        for (const char *name : names) {
            Curve c;
            c.name = std::string(layer) + "/" + name;
            for (std::size_t s : sizes)
                c.points[s] = Point{};
            curves.push_back(std::move(c));
        }
    };
    addCurves("raw", {"AU-1copy", "AU-2copy", "DU-0copy", "DU-1copy"});
    addCurves("nx",
              {"AU-1copy", "AU-2copy", "DU-0copy", "DU-1copy",
               "DU-2copy"});
    addCurves("vrpc", {"AU-1copy", "DU-1copy"});

    auto dispatch = [](const std::string &curve,
                       std::size_t size) -> double {
        std::size_t slash = curve.find('/');
        std::string layer = curve.substr(0, slash);
        std::string variant = curve.substr(slash + 1);
        StageTotals tot;
        double end_to_end_ns = 0;
        if (layer == "raw")
            measureRaw(variant, size, tot, end_to_end_ns);
        else if (layer == "nx")
            measureNx(variant, size, tot, end_to_end_ns);
        else
            measureVrpc(variant, size, tot, end_to_end_ns);
        return end_to_end_ns / 1e9;
    };
    return runGoogleBenchmarks(argc, argv, curves, sizes, dispatch);
}
