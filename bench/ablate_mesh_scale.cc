/**
 * @file
 * Ablation: scaling the mesh (the paper's stated plan was to expand the
 * prototype to 16 nodes). Measures one-word and 4 KB automatic-update
 * latency versus hop count on a 4x4 mesh, and an all-pairs NX exchange
 * on 4 vs 16 nodes.
 *
 * Expected: per-hop cost is tens of nanoseconds against a ~5 us
 * end-to-end path — the backplane is never the bottleneck, so the
 * expansion is cheap (the paper's premise for scaling).
 */

#include <cstdio>

#include "bench_util.hh"
#include "nx/nx.hh"
#include "vmmc/vmmc.hh"

namespace
{

using namespace shrimp;

double
auLatencyUs(NodeId dst, std::size_t size)
{
    MachineConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.nodeMemBytes = 2 * units::MiB;
    vmmc::System sys(cfg);
    auto &a = sys.createEndpoint(0);
    auto &b = sys.createEndpoint(dst);
    Tick total = 0;

    sys.sim().spawn([](vmmc::System &sys, vmmc::Endpoint &a,
                       vmmc::Endpoint &b, NodeId dst, std::size_t size,
                       Tick &total) -> sim::Task<> {
        std::size_t bufsz = (size + 8191) / 4096 * 4096;
        VAddr rbuf = b.proc().alloc(bufsz, CacheMode::WriteThrough);
        co_await b.exportBuffer(3, rbuf, bufsz);
        auto r = co_await a.import(dst, 3);
        VAddr au = a.proc().alloc(bufsz);
        co_await a.bindAu(au, bufsz, r.handle, 0);
        VAddr user = a.proc().alloc(bufsz);

        Tick t0 = sys.sim().now();
        for (std::uint32_t i = 1; i <= 10; ++i) {
            a.proc().poke32(VAddr(user + size - 4), i);
            co_await a.proc().copy(au, user, size);
            co_await b.proc().waitWord32Eq(VAddr(rbuf + size - 4), i);
        }
        total = sys.sim().now() - t0;
    }(sys, a, b, dst, size, total));
    sys.sim().runAll();
    return double(total) / 10.0 / 1000.0;
}

double
allPairsMs(int nprocs)
{
    MachineConfig cfg;
    cfg.meshWidth = nprocs > 4 ? 4 : 2;
    cfg.meshHeight = nprocs > 4 ? 4 : 2;
    cfg.nodeMemBytes = 2 * units::MiB;
    vmmc::System sys(cfg);
    nx::NxSystem nxs(sys, nprocs);
    sys.sim().spawn(nxs.init());
    sys.sim().runAll();

    Tick t0 = sys.sim().now();
    for (int r = 0; r < nprocs; ++r) {
        sys.sim().spawn([](nx::NxSystem &nxs, int r,
                           int n) -> sim::Task<> {
            auto &p = nxs.proc(r);
            auto &proc = p.endpoint().proc();
            VAddr buf = proc.alloc(4096);
            // Everyone sends 1 KB to everyone (ring-shifted schedule).
            for (int k = 1; k < n; ++k) {
                int to = (r + k) % n;
                co_await p.csend(long(100 + r), buf, 1024, to);
            }
            for (int k = 1; k < n; ++k) {
                int from = (r - k + n) % n;
                co_await p.crecv(long(100 + from), buf, 4096);
            }
            co_await p.gsync();
        }(nxs, r, nprocs));
    }
    sys.sim().runAll();
    return double(sys.sim().now() - t0) / 1e6;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace shrimp::bench;
    shrimp::bench::parseBenchFlags(argc, argv);
    (void)argc;
    (void)argv;

    printBanner("Ablation: mesh scaling",
                "AU latency vs hop count (4x4 mesh); all-pairs NX "
                "exchange at 4 vs 16 ranks",
                "the paper's 16-node expansion plan: the backplane is "
                "never the bottleneck");

    // Node 0 is at (0,0); pick destinations at increasing Manhattan
    // distance: 1 -> 1 hop, 5 -> 2, 10 -> 4, 15 -> 6.
    std::vector<std::string> rows;
    std::vector<std::vector<double>> vals;
    for (auto [dst, hops] :
         {std::pair<NodeId, int>{1, 1}, std::pair<NodeId, int>{5, 2},
          std::pair<NodeId, int>{10, 4},
          std::pair<NodeId, int>{15, 6}}) {
        rows.push_back(std::to_string(hops) + " hop(s)");
        vals.push_back({auLatencyUs(dst, 4), auLatencyUs(dst, 4096)});
    }
    printTable("AU latency by hop count", rows,
               {"4 B (us)", "4 KB (us)"}, vals);

    double four = allPairsMs(4);
    double sixteen = allPairsMs(16);
    printTable("all-pairs 1 KB exchange + barrier",
               {"4 ranks (2x2)", "16 ranks (4x4)"}, {"time (ms)"},
               {{four}, {sixteen}});
    return 0;
}
