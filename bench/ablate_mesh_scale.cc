/**
 * @file
 * Ablation: scaling the mesh (the paper's stated plan was to expand the
 * prototype to 16 nodes). Measures one-word and 4 KB automatic-update
 * latency versus hop count on a 4x4 mesh, an all-pairs NX exchange on
 * 4 vs 16 nodes, and a bare-mesh stride panel from 4x4 up to 32x32.
 *
 * The panel injects a fixed set of directed flows per node straight
 * into the backplane (no protocol stack): full all-pairs at 1024 nodes
 * would be ~1M packets, so each node instead sends one 256 B packet
 * along each of seven ring strides chosen to mix nearest-neighbour,
 * row-crossing and worst-case-diagonal routes. That keeps the point
 * bounded (7 * nodes packets) while still loading every link class.
 *
 * Expected: per-hop cost is tens of nanoseconds against a ~5 us
 * end-to-end path — the backplane is never the bottleneck, so the
 * expansion is cheap (the paper's premise for scaling).
 *
 * Under --check-determinism the registered points (au/<hops>,
 * allpairs/<ranks>, panel/<width>) each run twice with tracing on;
 * tracing forces Mesh::Engine::Auto onto the serialized routing path,
 * so this binary doubles as the CI gate that the 32x32 configuration
 * is deterministic hop-for-hop.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "net/mesh.hh"
#include "nx/nx.hh"
#include "sim/simulator.hh"
#include "vmmc/vmmc.hh"

namespace
{

using namespace shrimp;

double
auLatencyUs(NodeId dst, std::size_t size)
{
    MachineConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.nodeMemBytes = 2 * units::MiB;
    vmmc::System sys(cfg);
    auto &a = sys.createEndpoint(0);
    auto &b = sys.createEndpoint(dst);
    Tick total = 0;

    sys.sim().spawn([](vmmc::System &sys, vmmc::Endpoint &a,
                       vmmc::Endpoint &b, NodeId dst, std::size_t size,
                       Tick &total) -> sim::Task<> {
        std::size_t bufsz = (size + 8191) / 4096 * 4096;
        VAddr rbuf = b.proc().alloc(bufsz, CacheMode::WriteThrough);
        co_await b.exportBuffer(3, rbuf, bufsz);
        auto r = co_await a.import(dst, 3);
        VAddr au = a.proc().alloc(bufsz);
        co_await a.bindAu(au, bufsz, r.handle, 0);
        VAddr user = a.proc().alloc(bufsz);

        Tick t0 = sys.sim().now();
        for (std::uint32_t i = 1; i <= 10; ++i) {
            a.proc().poke32(VAddr(user + size - 4), i);
            co_await a.proc().copy(au, user, size);
            co_await b.proc().waitWord32Eq(VAddr(rbuf + size - 4), i);
        }
        total = sys.sim().now() - t0;
    }(sys, a, b, dst, size, total));
    sys.sim().runAll();
    return double(total) / 10.0 / 1000.0;
}

double
allPairsMs(int nprocs)
{
    MachineConfig cfg;
    cfg.meshWidth = nprocs > 4 ? 4 : 2;
    cfg.meshHeight = nprocs > 4 ? 4 : 2;
    cfg.nodeMemBytes = 2 * units::MiB;
    vmmc::System sys(cfg);
    nx::NxSystem nxs(sys, nprocs);
    sys.sim().spawn(nxs.init());
    sys.sim().runAll();

    Tick t0 = sys.sim().now();
    for (int r = 0; r < nprocs; ++r) {
        sys.sim().spawn([](nx::NxSystem &nxs, int r,
                           int n) -> sim::Task<> {
            auto &p = nxs.proc(r);
            auto &proc = p.endpoint().proc();
            VAddr buf = proc.alloc(4096);
            // Everyone sends 1 KB to everyone (ring-shifted schedule).
            for (int k = 1; k < n; ++k) {
                int to = (r + k) % n;
                co_await p.csend(long(100 + r), buf, 1024, to);
            }
            for (int k = 1; k < n; ++k) {
                int from = (r - k + n) % n;
                co_await p.crecv(long(100 + from), buf, 4096);
            }
            co_await p.gsync();
        }(nxs, r, nprocs));
    }
    sys.sim().runAll();
    return double(sys.sim().now() - t0) / 1e6;
}

/** Ring strides of the panel for an n-node mesh of width w: nearest
 *  neighbour, around a row corner, one row, just past a row, the
 *  near-diagonal half-mesh, the column complement, and the full wrap.
 *  All are nonzero mod n for every square mesh size used here. */
std::vector<int>
panelStrides(int w, int n)
{
    return {1, w - 1, w, w + 1, n / 2 - 1, n - w, n - 1};
}

double
meshPanelMs(int w)
{
    sim::Simulator s;
    MachineConfig cfg;
    cfg.meshWidth = w;
    cfg.meshHeight = w;
    net::Mesh mesh(s, cfg);
    const int n = mesh.numNodes();
    const std::vector<int> strides = panelStrides(w, n);

    // Each stride maps every source onto a distinct destination, so
    // every node ejects exactly one packet per stride.
    for (NodeId nd = 0; nd < NodeId(n); ++nd) {
        s.spawn([](net::Mesh &mesh, NodeId nd,
                   std::size_t expect) -> sim::Task<> {
            for (std::size_t i = 0; i < expect; ++i)
                co_await mesh.router(nd).ejectQueue().recv();
        }(mesh, nd, strides.size()));
    }
    for (NodeId src = 0; src < NodeId(n); ++src) {
        for (int stride : strides) {
            net::Packet p;
            p.src = src;
            p.dst = NodeId((src + stride) % n);
            p.destAddr = 0x1000 + PAddr(src) * 8;
            p.payload.assign(256, std::uint8_t(stride));
            mesh.inject(std::move(p));
        }
    }
    s.runAll();
    return double(s.now()) / 1e6;
}

/** 4x4-mesh destination at a given Manhattan distance from node 0. */
NodeId
auDstForHops(int hops)
{
    switch (hops) {
      case 1: return 1;
      case 2: return 5;
      case 4: return 10;
      default: return 15; // 6 hops
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace shrimp::bench;
    shrimp::bench::parseBenchFlags(argc, argv);
    (void)argc;
    (void)argv;

    // The registered measurement set; doubles as the determinism gate.
    auto measureSeconds = [](const std::string &curve,
                             std::size_t size) -> double {
        if (curve == "au")
            return auLatencyUs(auDstForHops(int(size)), 4) * 1e-6;
        if (curve == "allpairs")
            return allPairsMs(int(size)) * 1e-3;
        return meshPanelMs(int(size)) * 1e-3; // "panel", size = width
    };
    if (checkDeterminismRequested()) {
        std::vector<Curve> curves(3);
        curves[0].name = "au";
        curves[0].points[1] = {};
        curves[0].points[6] = {};
        curves[1].name = "allpairs";
        curves[1].points[4] = {};
        curves[1].points[16] = {};
        curves[2].name = "panel";
        curves[2].points[4] = {};
        curves[2].points[8] = {};
        curves[2].points[32] = {};
        return runDeterminismCheck(curves, {1, 4, 6, 8, 16, 32},
                                   measureSeconds);
    }

    printBanner("Ablation: mesh scaling",
                "AU latency vs hop count (4x4 mesh); all-pairs NX "
                "exchange at 4 vs 16 ranks",
                "the paper's 16-node expansion plan: the backplane is "
                "never the bottleneck");

    // Node 0 is at (0,0); pick destinations at increasing Manhattan
    // distance: 1 -> 1 hop, 5 -> 2, 10 -> 4, 15 -> 6.
    std::vector<std::string> rows;
    std::vector<std::vector<double>> vals;
    for (auto [dst, hops] :
         {std::pair<NodeId, int>{1, 1}, std::pair<NodeId, int>{5, 2},
          std::pair<NodeId, int>{10, 4},
          std::pair<NodeId, int>{15, 6}}) {
        rows.push_back(std::to_string(hops) + " hop(s)");
        vals.push_back({auLatencyUs(dst, 4), auLatencyUs(dst, 4096)});
    }
    printTable("AU latency by hop count", rows,
               {"4 B (us)", "4 KB (us)"}, vals);

    double four = allPairsMs(4);
    double sixteen = allPairsMs(16);
    printTable("all-pairs 1 KB exchange + barrier",
               {"4 ranks (2x2)", "16 ranks (4x4)"}, {"time (ms)"},
               {{four}, {sixteen}});

    // Bare-mesh stride panel: 7 directed 256 B flows per node, square
    // meshes from the prototype's scale up to 32x32 (1024 nodes).
    {
        std::vector<std::string> prows;
        std::vector<std::vector<double>> pvals;
        for (int w : {4, 8, 16, 32}) {
            int n = w * w;
            double ms = meshPanelMs(w);
            prows.push_back(std::to_string(w) + "x" + std::to_string(w) +
                            " (" + std::to_string(n) + " nodes)");
            pvals.push_back(
                {ms, ms * 1e6 / double(n * panelStrides(w, n).size())});
        }
        printTable("stride panel, 7 flows/node of 256 B",
                   prows, {"time (ms)", "ns/packet"}, pvals);
    }
    return 0;
}
