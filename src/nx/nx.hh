/**
 * @file
 * The NX message-passing compatibility library (paper section 4.1): the
 * Intel NX interface implemented entirely at user level on VMMC.
 *
 * Small messages use the one-copy protocol: the sender places data and a
 * descriptor in a fixed-size packet buffer on the receiver (marshalled
 * through an automatic-update binding, or sent by deliberate update);
 * the receiver scans descriptors, copies the payload out, and returns a
 * credit naming the specific buffer (consumption may be out of order).
 * Messages larger than a packet buffer are fragmented.
 *
 * Large messages use the zero-copy protocol: a "scout" descriptor goes
 * ahead; the sender starts making a safe copy; the receive call answers
 * with the export key/offset of the user receive buffer; the sender
 * transfers directly into it (stopping the safe copy the moment the
 * reply arrives) and raises a done flag.
 *
 * Typed receives (crecv/irecv with a type selector), isend/irecv with
 * msgwait, iprobe, and the NX global operations gsync()/gdsum() are
 * provided; infocount()/infotype()/infonode() report on the last
 * message received, as in NX.
 */

#ifndef SHRIMP_NX_NX_HH
#define SHRIMP_NX_NX_HH

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "base/ownership.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "nx/connection.hh"

namespace shrimp::nx
{

class NxSystem;

/** Matches any (user) message type, as in NX. */
constexpr long nxAnyType = -1;

/** Message types at and above this value are reserved for the library
 *  (global operations); typesel -1 does not match them. */
constexpr long nxReservedType = 0x40000000;

/** Descriptor frag word marking a scout message. */
constexpr std::uint32_t nxScoutFrag = 0xFFFFFFFFu;

/** What the last receive delivered. */
struct RecvInfo
{
    std::size_t count = 0; //!< full message size (pre-truncation)
    long type = 0;
    int node = -1;
};

class NxProc
{
    SHRIMP_SHARD_OWNED;

  public:
    NxProc(vmmc::Endpoint &ep, int rank, NxSystem &system);

    int mynode() const { return rank_; }
    int numnodes() const;
    vmmc::Endpoint &endpoint() { return ep_; }
    Connection &conn(int peer);

    // ---- blocking point-to-point ---------------------------------------

    /** Blocking typed send. Returns when the user buffer is reusable. */
    sim::Task<> csend(long type, VAddr buf, std::size_t len, int dest);

    /** Blocking typed receive; @return the delivered byte count
     *  (truncated to @p maxlen; infocount() has the full size). */
    sim::Task<std::size_t> crecv(long typesel, VAddr buf,
                                 std::size_t maxlen);

    /**
     * In-place receive: consume a (one-copy-protocol) message without
     * copying it out of the packet buffers — the application reads the
     * data where it lies and the buffers are credited back. Used by
     * applications that can process data in the communication buffer
     * (the AU-1copy measurement of Figure 4). Large-protocol (scout)
     * messages cannot be taken in place.
     * @return the message size.
     */
    sim::Task<std::size_t> crecvInPlace(long typesel);

    // ---- asynchronous --------------------------------------------------

    /** Asynchronous send; msgwait() on the returned id. */
    sim::Task<int> isend(long type, VAddr buf, std::size_t len, int dest);

    /** Post an asynchronous receive; msgwait() on the returned id. */
    sim::Task<int> irecv(long typesel, VAddr buf, std::size_t maxlen);

    /** Wait for an isend/irecv to complete. */
    sim::Task<> msgwait(int msg_id);

    /** True if msgwait(@p msg_id) would not block. */
    sim::Task<bool> msgdone(int msg_id);

    /** True if a message matching @p typesel has arrived. */
    sim::Task<bool> iprobe(long typesel);

    /** Block until a message matching @p typesel has arrived (cprobe);
     *  the message is not consumed. infocount()/infotype()/infonode()
     *  describe it afterwards. */
    sim::Task<> cprobe(long typesel);

    /** Combined send + receive (csendrecv): send @p type/@p buf/@p len
     *  to @p dest, then receive a message matching @p typesel.
     *  @return received byte count. */
    sim::Task<std::size_t> csendrecv(long type, VAddr buf,
                                     std::size_t len, int dest,
                                     long typesel, VAddr rbuf,
                                     std::size_t maxlen);

    // ---- info about the last completed receive --------------------------

    std::size_t infocount() const { return info_.count; }
    long infotype() const { return info_.type; }
    int infonode() const { return info_.node; }

    // ---- global operations ----------------------------------------------

    /** Barrier across all processes (dissemination algorithm). */
    sim::Task<> gsync();

    /** Global sum of doubles; every rank gets the result. */
    sim::Task<double> gdsum(double value);

    /** Global max of doubles. */
    sim::Task<double> gdhigh(double value);

    /** Per-library progress: completes pending large-message transfers
     *  and fills posted irecvs. Called from every NX entry point. */
    sim::Task<> progress();

    /** Complete pending large sends whose scout replies have arrived. */
    sim::Task<> progressSends();

    /** Attempt delivery into posted asynchronous receives. */
    sim::Task<> progressRecvs();

    /** Send-mode override for experiments (Figure 4's curves). */
    void setSendMode(SendMode m) { forcedMode_ = m; }

  private:
    friend class NxSystem;

    struct PendingLarge
    {
        int peer;
        std::uint32_t stamp;
        VAddr src;       //!< safe-copy area (data already safe)
        std::size_t len; //!< bytes to transfer
        long type;
    };

    struct PostedRecv
    {
        int id;
        long typesel;
        VAddr buf;
        std::size_t maxlen;
        bool done = false;
        // large-message continuation: waiting for the sender's done flag
        bool largeWait = false;
        int largePeer = -1;
        std::uint32_t largeStamp = 0;
        RecvInfo info;
    };

    struct Match
    {
        int peer;
        int bufIdx;
        NxDesc desc;
    };

    /** Scan all connections for the best matching descriptor. */
    std::optional<Match> scanMatch(long typesel);

    /** Resolve Auto into a concrete mode for this message. */
    SendMode resolveMode(VAddr buf, std::size_t len) const;

    /** The small/fragmented send path. */
    sim::Task<> sendFragmented(int dest, long type, VAddr buf,
                               std::size_t len, SendMode mode);

    /** The zero-copy large-message send path. */
    sim::Task<> sendLarge(int dest, long type, VAddr buf, std::size_t len);

    /** Consume a small/fragmented message found by scanMatch. With
     *  @p in_place the payload copies are skipped (buffers credited
     *  back after the application touches the data where it lies). */
    sim::Task<RecvInfo> consumeSmall(const Match &m, VAddr buf,
                                     std::size_t maxlen,
                                     bool in_place = false);

    /** Answer a scout: set up the zero-copy landing zone and reply.
     *  @return the stamp to wait a done flag for. */
    sim::Task<std::uint32_t> answerScout(const Match &m, VAddr buf,
                                         std::size_t maxlen,
                                         RecvInfo &info);

    /** Wait for a large transfer's done flag, making progress. */
    sim::Task<> waitDone(int peer, std::uint32_t stamp);

    /** Find or create an export covering the receive window. */
    sim::Task<std::uint32_t> exportWindow(VAddr base, std::size_t len,
                                          std::uint32_t &off_out);

    /**
     * Arm the background completion agent: a library task that drives
     * pending large sends to completion even if the application never
     * re-enters the library (the safe-copy lets csend return early; the
     * remaining transfer must still happen).
     */
    void armCompletion();
    sim::Task<> completionAgent();

    sim::Task<> sendReserved(long type, const void *data, std::size_t len,
                             int dest);
    sim::Task<std::size_t> recvReserved(long type, void *data,
                                        std::size_t maxlen);

    /** Take a safe-copy buffer from the pool (allocating if empty). */
    VAddr acquireSafeBuffer();
    void releaseSafeBuffer(VAddr buf);

    vmmc::Endpoint &ep_;
    int rank_;
    NxSystem &system_;
    std::vector<std::unique_ptr<Connection>> conns_; //!< index = peer rank
    std::vector<VAddr> safePool_; //!< reusable safe-copy buffers
    VAddr scratch_ = 0;    //!< staging for global ops
    std::vector<PendingLarge> pendingLarge_;
    bool completionArmed_ = false;
    std::deque<PostedRecv> posted_;
    std::vector<int> doneIds_;
    int nextMsgId_ = 1;
    RecvInfo info_;
    SendMode forcedMode_ = SendMode::Auto;

    struct ExportedWindow
    {
        VAddr base;
        std::size_t len;
        std::uint32_t key;
    };
    std::vector<ExportedWindow> windows_;
    std::uint32_t nextWindowKey_;

    stats::Group stats_;
    trace::TrackId track_;
    // Per-call path; stat lookups hoisted to construction.
    stats::Counter &statCsends_;
    stats::Counter &statSentBytes_;
    stats::Distribution &statCsendBytes_;
    stats::Counter &statCrecvs_;
    stats::Counter &statScouts_;
};

/**
 * NxSystem: the NX runtime over a VMMC System — one process per rank
 * (placed round-robin over the nodes), with a connection set up between
 * each pair of processes at initialization time.
 */
class NxSystem
{
    SHRIMP_SHARD_SHARED(
        "rank-to-process wiring for the whole machine");

  public:
    /** @param nprocs number of NX processes (<= one per node by default
     *  placement; more than one per node is allowed). */
    NxSystem(vmmc::System &sys, int nprocs,
             NxOptions opt = NxOptions{});

    /** Build all endpoints and pairwise connections. Must complete
     *  before any send/receive; run it inside the simulation. */
    sim::Task<> init();

    int numnodes() const { return nprocs_; }
    NxProc &proc(int rank) { return *procs_.at(rank); }
    const NxOptions &options() const { return opt_; }
    vmmc::System &vmmcSystem() { return sys_; }

  private:
    vmmc::System &sys_;
    int nprocs_;
    NxOptions opt_;
    std::vector<std::unique_ptr<NxProc>> procs_;
};

} // namespace shrimp::nx

#endif // SHRIMP_NX_NX_HH
