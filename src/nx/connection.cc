#include "nx/connection.hh"

#include <cstring>

#include "base/logging.hh"

namespace shrimp::nx
{

namespace
{

std::size_t
roundUp(std::size_t v, std::size_t to)
{
    return (v + to - 1) / to * to;
}

std::size_t
round4(std::size_t v)
{
    return (v + 3) & ~std::size_t(3);
}

} // namespace

Connection::Connection(vmmc::Endpoint &ep, int my_rank, int peer_rank,
                       NodeId peer_node, const NxOptions &opt)
    : ep_(ep), myRank_(my_rank), peerRank_(peer_rank), peerNode_(peer_node),
      opt_(opt)
{
    if (opt_.numBufs < 2)
        fatal("NX needs at least two packet buffers per connection");
}

std::uint32_t
Connection::regionKey(int importer_rank, int exporter_rank)
{
    // "NX" region namespace: unique per directed pair of ranks.
    return 0x4E580000u | (std::uint32_t(exporter_rank) << 8) |
           std::uint32_t(importer_rank);
}

std::size_t
Connection::dataAreaBytes() const
{
    std::size_t page = ep_.proc().config().pageBytes;
    return roundUp(std::size_t(opt_.numBufs) * bufStride(), page);
}

std::size_t
Connection::regionBytes() const
{
    return dataAreaBytes() + ep_.proc().config().pageBytes;
}

std::size_t
Connection::replyRingOff() const
{
    return creditRingOff() + creditEntries() * 8;
}

std::size_t
Connection::doneRingOff() const
{
    return replyRingOff() + nxReplyRing * sizeof(ReplyEntry);
}

std::size_t
Connection::reqFlagOff() const
{
    return doneRingOff() + nxDoneRing * 8;
}

sim::Task<>
Connection::exportSide()
{
    region_ = ep_.proc().alloc(regionBytes());
    // Export with a no-op handler so the pages' interrupt bits are set:
    // the library is prepared to take the "out of buffers" prod
    // interrupt (paper section 6, "Interrupts").
    vmmc::NotifyHandler noop =
        [](vmmc::Endpoint &, const vmmc::Notification &) -> sim::Task<> {
        co_return;
    };
    vmmc::Status s = co_await ep_.exportBuffer(
        regionKey(peerRank_, myRank_), region_, regionBytes(),
        vmmc::Perm::onlyNode(peerNode_), std::move(noop));
    if (s != vmmc::Status::Ok)
        panic(std::string("NX region export failed: ") +
              vmmc::statusName(s));
}

sim::Task<>
Connection::importSide()
{
    auto r = co_await ep_.import(peerNode_, regionKey(myRank_, peerRank_));
    if (r.status != vmmc::Status::Ok)
        panic(std::string("NX region import failed: ") +
              vmmc::statusName(r.status));
    importHandle_ = r.handle;

    const MachineConfig &cfg = ep_.proc().config();
    std::size_t data_bytes = dataAreaBytes();

    auData_ = ep_.proc().alloc(data_bytes);
    vmmc::AuOptions data_opts;
    data_opts.combinable = true;
    data_opts.timerEnabled = true;
    vmmc::Status s =
        co_await ep_.bindAu(auData_, data_bytes, importHandle_, 0,
                            data_opts);
    if (s != vmmc::Status::Ok)
        panic("NX data AU binding failed");

    auCtl_ = ep_.proc().alloc(cfg.pageBytes);
    vmmc::AuOptions ctl_opts;
    ctl_opts.combinable = false; // control info must leave immediately
    s = co_await ep_.bindAu(auCtl_, cfg.pageBytes, importHandle_,
                            data_bytes, ctl_opts);
    if (s != vmmc::Status::Ok)
        panic("NX control AU binding failed");

    stage_ = ep_.proc().alloc(bufStride() + 64);

    freeBufs_.clear();
    for (int i = opt_.numBufs - 1; i >= 0; --i)
        freeBufs_.push_back(i);
}

// ---- send side ----------------------------------------------------------

bool
Connection::creditAvailable()
{
    if (!freeBufs_.empty())
        return true;
    std::size_t slot = creditsTaken_ % creditEntries();
    std::uint32_t count =
        ep_.proc().peek32(VAddr(ctlBase() + creditRingOff() + slot * 8));
    return count == creditsTaken_ + 1;
}

sim::Task<int>
Connection::acquireBuffer()
{
    node::Process &proc = ep_.proc();
    // Opportunistically drain arrived credits.
    auto drain = [&] {
        for (;;) {
            std::size_t slot = creditsTaken_ % creditEntries();
            VAddr entry = VAddr(ctlBase() + creditRingOff() + slot * 8);
            if (proc.peek32(entry) != creditsTaken_ + 1)
                break;
            freeBufs_.push_back(int(proc.peek32(entry + 4)));
            ++creditsTaken_;
        }
    };
    drain();
    if (freeBufs_.empty()) {
        // All buffers toward the receiver are full: prod it with a
        // notification (the one case NX interrupts the receiver), then
        // wait for a credit to come back.
        ++creditStalls_;
        co_await proc.compute(proc.config().cpuOpCost);
        co_await proc.store32(stage_, 1);
        co_await ep_.send(importHandle_,
                          dataAreaBytes() + reqFlagOff(),
                          stage_, 4, /*notify=*/true);
        while (true) {
            drain();
            if (!freeBufs_.empty())
                break;
            co_await proc.pollSleep();
        }
    }
    co_await proc.compute(proc.config().cpuOpCost);
    int idx = freeBufs_.back();
    freeBufs_.pop_back();
    co_return idx;
}

sim::Task<>
Connection::sendFragment(int buf_idx, const NxDesc &desc,
                         const std::uint8_t *data, VAddr user_addr,
                         SendMode mode)
{
    node::Process &proc = ep_.proc();
    std::size_t desc_off = std::size_t(buf_idx) * bufStride() +
                           opt_.pktDataBytes;
    std::size_t rounded = round4(desc.size);
    std::size_t write_off = desc_off - rounded;

    switch (mode) {
      case SendMode::AuMarshal: {
        // Marshal payload (padded to words) + descriptor as one
        // consecutive run of stores into the AU-bound area; the NIC
        // combines them into as few packets as possible.
        std::vector<std::uint8_t> marshal(rounded + nxDescBytes, 0);
        if (desc.size > 0)
            std::memcpy(marshal.data(), data, desc.size);
        std::memcpy(marshal.data() + rounded, &desc, nxDescBytes);
        co_await proc.write(VAddr(auData_ + write_off), marshal.data(),
                            marshal.size());
        break;
      }
      case SendMode::DuTwoCopy: {
        // Copy payload + descriptor into the staging area, then a single
        // deliberate update carries both.
        std::vector<std::uint8_t> marshal(rounded + nxDescBytes, 0);
        if (desc.size > 0)
            std::memcpy(marshal.data(), data, desc.size);
        std::memcpy(marshal.data() + rounded, &desc, nxDescBytes);
        co_await proc.write(stage_, marshal.data(), marshal.size());
        vmmc::Status s = co_await ep_.send(importHandle_, write_off,
                                           stage_, marshal.size());
        if (s != vmmc::Status::Ok)
            panic(std::string("NX DU send failed: ") + vmmc::statusName(s));
        break;
      }
      case SendMode::DuOneCopy: {
        // Data straight from user memory (word aligned, checked by the
        // caller), then the descriptor with a second deliberate update.
        if (desc.size > 0) {
            vmmc::Status s = co_await ep_.send(importHandle_, write_off,
                                               user_addr, desc.size);
            if (s != vmmc::Status::Ok)
                panic(std::string("NX DU data send failed: ") +
                      vmmc::statusName(s));
        }
        co_await proc.write(stage_, &desc, nxDescBytes);
        vmmc::Status s = co_await ep_.send(importHandle_, desc_off, stage_,
                                           nxDescBytes);
        if (s != vmmc::Status::Ok)
            panic(std::string("NX DU desc send failed: ") +
                  vmmc::statusName(s));
        break;
      }
      default:
        panic("sendFragment: unresolved send mode");
    }
}

bool
Connection::findReply(std::uint32_t stamp, ReplyEntry &out)
{
    node::Process &proc = ep_.proc();
    for (int i = 0; i < nxReplyRing; ++i) {
        VAddr e = VAddr(ctlBase() + replyRingOff() + i * sizeof(ReplyEntry));
        if (proc.peek32(e) == stamp) {
            out.stamp = stamp;
            out.key = proc.peek32(e + 4);
            out.off = proc.peek32(e + 8);
            out.pad = proc.peek32(e + 12); // accepted length
            proc.poke32(e, 0); // consume the slot
            return true;
        }
    }
    return false;
}

sim::Task<>
Connection::postDone(std::uint32_t stamp)
{
    std::size_t slot = donesPosted_++ % nxDoneRing;
    co_await ep_.proc().store32(VAddr(auCtl_ + doneRingOff() + slot * 8),
                                stamp);
}

sim::Task<vmmc::Status>
Connection::sendDirect(std::uint32_t key, std::size_t off, VAddr src,
                       std::size_t len)
{
    auto it = userImports_.find(key);
    if (it == userImports_.end()) {
        auto r = co_await ep_.import(peerNode_, key);
        if (r.status != vmmc::Status::Ok)
            co_return r.status;
        it = userImports_.emplace(key, r.handle).first;
    }
    vmmc::Status st = co_await ep_.send(it->second, off, src, len);
    co_return st;
}

// ---- receive side ---------------------------------------------------------

VAddr
Connection::descAddr(int i) const
{
    return VAddr(region_ + std::size_t(i) * bufStride() +
                 opt_.pktDataBytes);
}

NxDesc
Connection::peekDesc(int i) const
{
    NxDesc d;
    ep_.proc().peek(descAddr(i), &d, sizeof(d));
    return d;
}

std::uint32_t
Connection::peekStamp(int i) const
{
    return ep_.proc().peek32(descAddr(i));
}

sim::Task<>
Connection::copyOut(int i, std::size_t size, VAddr dst,
                    std::size_t dst_len, std::size_t dst_off)
{
    std::size_t n = size;
    if (dst_off >= dst_len)
        co_return;
    if (dst_off + n > dst_len)
        n = dst_len - dst_off; // truncating receive
    VAddr src = VAddr(descAddr(i) - round4(size));
    co_await ep_.proc().copy(dst + VAddr(dst_off), src, n);
}

void
Connection::peekPayload(int i, std::size_t size, void *out) const
{
    VAddr src = VAddr(descAddr(i) - round4(size));
    ep_.proc().peek(src, out, size);
}

sim::Task<>
Connection::releaseBuffer(int i)
{
    node::Process &proc = ep_.proc();
    // Clear the descriptor stamp locally so the buffer scans as empty.
    co_await proc.store32(descAddr(i), 0);
    // Return the credit, naming the specific buffer (messages may be
    // consumed out of order).
    ++creditsReturned_;
    std::size_t slot = (creditsReturned_ - 1) % creditEntries();
    std::uint32_t entry[2] = {0, std::uint32_t(i)};
    entry[0] = creditsReturned_;
    // idx first, then the count word? Both land in one packet: the
    // 8-byte store is a single consecutive run.
    co_await proc.write(VAddr(auCtl_ + creditRingOff() + slot * 8), entry,
                        sizeof(entry));
}

sim::Task<>
Connection::postReply(std::uint32_t stamp, std::uint32_t key,
                      std::uint32_t off, std::uint32_t accept)
{
    ReplyEntry e;
    e.stamp = stamp;
    e.key = key;
    e.off = off;
    e.pad = accept;
    std::size_t slot = repliesPosted_++ % nxReplyRing;
    co_await ep_.proc().write(
        VAddr(auCtl_ + replyRingOff() + slot * sizeof(ReplyEntry)), &e,
        sizeof(e));
}

bool
Connection::findDone(std::uint32_t stamp)
{
    node::Process &proc = ep_.proc();
    for (int i = 0; i < nxDoneRing; ++i) {
        VAddr e = VAddr(ctlBase() + doneRingOff() + i * 8);
        if (proc.peek32(e) == stamp) {
            proc.poke32(e, 0);
            return true;
        }
    }
    return false;
}

bool
Connection::creditRequested() const
{
    return ep_.proc().peek32(VAddr(ctlBase() + reqFlagOff())) != 0;
}

} // namespace shrimp::nx
