/**
 * @file
 * Connection: the point-to-point building block of the NX compatibility
 * library (paper section 4.1). A connection between two processes
 * consists of a receive region exported by each side and imported by the
 * other, plus automatic-update bindings for marshalled data and control
 * information.
 *
 * Region layout (all offsets page-aligned between sections):
 *
 *   [ packet buffers ]  NBUF fixed-size buffers, each PKT_DATA bytes of
 *                       payload followed by a 16-byte descriptor. Data
 *                       is right-justified (word-rounded) against the
 *                       descriptor so a marshalled message plus its
 *                       descriptor is one consecutive write run that the
 *                       NIC combines into a single packet.
 *   [ control page ]    credit ring (receiver -> sender, identifies the
 *                       specific packet buffer freed, since messages may
 *                       be consumed out of order), reply ring (receiver
 *                       answers to large-message scouts: export key +
 *                       offset of the user receive buffer), done ring
 *                       (sender's transfer-complete flags), and a
 *                       request-credit flag.
 *
 * The descriptor stamp is a per-connection monotonically increasing
 * sequence number; stamp 0 means "buffer empty". Because SHRIMP delivers
 * packets in order and the descriptor is written after the payload, a
 * nonzero stamp guarantees the payload is in place.
 */

#ifndef SHRIMP_NX_CONNECTION_HH
#define SHRIMP_NX_CONNECTION_HH

#include <cstdint>
#include <map>
#include <vector>

#include "vmmc/vmmc.hh"

namespace shrimp::nx
{

/** Which small-message send variant to use (the curves of Figure 4). */
enum class SendMode
{
    Auto,      //!< AU marshal for tiny, DU-1copy mid, zero-copy large
    AuMarshal, //!< copy into the AU-bound area (the copy is the send)
    DuTwoCopy, //!< marshal data+descriptor, one deliberate update
    DuOneCopy, //!< data straight from user memory, separate DU for desc
    ZeroCopy,  //!< force the large-message scout protocol
};

/** Library tuning knobs (per NxSystem). */
struct NxOptions
{
    std::size_t pktDataBytes = 2048; //!< payload bytes per packet buffer
    int numBufs = 8;                 //!< packet buffers per direction
    std::size_t largeThreshold = 1024; //!< Auto: scout protocol above this
    std::size_t auThreshold = 256;     //!< Auto: AU marshal below this
    std::size_t safeCopyBytes = 64 * 1024; //!< sender-side safe buffer
    SendMode mode = SendMode::Auto;
};

/** On-wire message descriptor (one per packet buffer). */
struct NxDesc
{
    std::uint32_t stamp = 0; //!< sequence; 0 = empty
    std::uint32_t type = 0;  //!< NX message type
    std::uint32_t size = 0;  //!< payload bytes in this fragment
    std::uint32_t frag = 0;  //!< (index << 16) | total fragments
};

/** Content of a scout message (the "special message descriptor"). */
struct ScoutInfo
{
    std::uint32_t magic = 0x53434f55; // "SCOU"
    std::uint32_t totalLen = 0;
};

/** A reply-ring entry: where the sender should place the data. */
struct ReplyEntry
{
    std::uint32_t stamp = 0; //!< scout stamp being answered; 0 = empty
    std::uint32_t key = 0;   //!< export key of the receiver's user buffer
    std::uint32_t off = 0;   //!< byte offset within that export
    std::uint32_t pad = 0;
};

constexpr std::size_t nxDescBytes = sizeof(NxDesc);
constexpr int nxReplyRing = 8;
constexpr int nxDoneRing = 8;

/**
 * One process's half of a connection to one peer. Owns the local
 * receive region (imported by the peer), the import of the peer's
 * region, and AU-bound staging areas for marshalled data and control.
 */
class Connection
{
  public:
    Connection(vmmc::Endpoint &ep, int my_rank, int peer_rank,
               NodeId peer_node, const NxOptions &opt);

    /** Export the local region (key derivation is symmetric). */
    sim::Task<> exportSide();

    /** Import the peer's region and create the AU bindings; call after
     *  every rank finished exportSide(). */
    sim::Task<> importSide();

    int peerRank() const { return peerRank_; }
    NodeId peerNode() const { return peerNode_; }

    // ---- send side -------------------------------------------------------

    /** True if a packet buffer credit is available without waiting. */
    bool creditAvailable();

    /**
     * Take a free peer packet buffer, waiting for a credit if none is
     * free (after prodding the receiver with a notification, as the
     * paper describes).
     * @return buffer index
     */
    sim::Task<int> acquireBuffer();

    /**
     * Send one fragment into peer buffer @p buf_idx using @p mode.
     * @p data points at host memory with the payload (marshal modes) and
     * @p user_addr is the in-simulation source (DuOneCopy).
     */
    sim::Task<> sendFragment(int buf_idx, const NxDesc &desc,
                             const std::uint8_t *data, VAddr user_addr,
                             SendMode mode);

    /** Next stamp for a message/fragment I send. */
    std::uint32_t takeStamp() { return nextSendStamp_++; }

    /** Scan the reply ring for an answer to scout @p stamp. */
    bool findReply(std::uint32_t stamp, ReplyEntry &out);

    /** Write a done flag for scout @p stamp into the peer's done ring. */
    sim::Task<> postDone(std::uint32_t stamp);

    /** Deliberate-update data into the peer's exported user buffer. */
    sim::Task<vmmc::Status> sendDirect(std::uint32_t key, std::size_t off,
                                       VAddr src, std::size_t len);

    // ---- receive side ----------------------------------------------------

    /** Local descriptor of buffer @p i (reads local memory, untimed). */
    NxDesc peekDesc(int i) const;

    /** Just the stamp word of buffer @p i's descriptor: the empty test
     *  the receive scans run on every slot, via the word-peek fast path. */
    std::uint32_t peekStamp(int i) const;

    /** Virtual address of buffer @p i's payload end (descriptor start). */
    VAddr descAddr(int i) const;
    VAddr bufDataEnd(int i) const { return descAddr(i); }

    /** Copy a consumed fragment out of buffer @p i into @p dst. */
    sim::Task<> copyOut(int i, std::size_t size, VAddr dst,
                        std::size_t dst_len, std::size_t dst_off);

    /** Read a fragment's payload into host memory (for scout decode). */
    void peekPayload(int i, std::size_t size, void *out) const;

    /** Mark buffer @p i consumed and return its credit to the sender. */
    sim::Task<> releaseBuffer(int i);

    /** Post a scout reply: tell the sender where to put the data and
     *  how much it may send. */
    sim::Task<> postReply(std::uint32_t stamp, std::uint32_t key,
                          std::uint32_t off, std::uint32_t accept);

    /** Scan the done ring for the sender's completion of @p stamp. */
    bool findDone(std::uint32_t stamp);

    /** True if the peer has raised the request-credit flag. */
    bool creditRequested() const;

    // ---- bookkeeping -----------------------------------------------------

    vmmc::Endpoint &endpoint() { return ep_; }
    const NxOptions &options() const { return opt_; }

    std::uint64_t creditStalls() const { return creditStalls_; }

  private:
    static std::uint32_t regionKey(int importer_rank, int exporter_rank);

    std::size_t bufStride() const { return opt_.pktDataBytes + nxDescBytes; }
    std::size_t dataAreaBytes() const;
    std::size_t regionBytes() const;

    // Control-area offsets, relative to the control page. AU writes go
    // through auCtl_ + off; local reads through ctlBase() + off.
    std::size_t creditRingOff() const { return 0; }
    std::size_t creditEntries() const { return std::size_t(2 * opt_.numBufs); }
    std::size_t replyRingOff() const;
    std::size_t doneRingOff() const;
    std::size_t reqFlagOff() const;

    /** Local (receive-side) address of the control page. */
    VAddr ctlBase() const { return VAddr(region_ + dataAreaBytes()); }

    vmmc::Endpoint &ep_;
    int myRank_;
    int peerRank_;
    NodeId peerNode_;
    NxOptions opt_;

    VAddr region_ = 0;    //!< local receive region (peer writes here)
    VAddr auData_ = 0;    //!< AU-bound marshal area -> peer packet bufs
    VAddr auCtl_ = 0;     //!< AU-bound area -> peer control page
    VAddr stage_ = 0;     //!< staging area for DU marshalling
    int importHandle_ = -1;

    /** Import cache for peers' exported user receive buffers (the
     *  "if it hasn't done so already, the sender imports that buffer"
     *  of the zero-copy protocol). */
    std::map<std::uint32_t, int> userImports_;

    // send-side state
    std::vector<int> freeBufs_;
    std::uint32_t creditsTaken_ = 0; //!< credits consumed from the ring
    std::uint32_t nextSendStamp_ = 1;
    std::uint32_t repliesSeen_ = 0;

    // receive-side state
    std::uint32_t creditsReturned_ = 0;
    std::uint32_t repliesPosted_ = 0;
    std::uint32_t donesPosted_ = 0;

    std::uint64_t creditStalls_ = 0;
};

} // namespace shrimp::nx

#endif // SHRIMP_NX_CONNECTION_HH
