#include "nx/nx.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"
#include "base/span.hh"

namespace shrimp::nx
{

namespace
{

/** Measured buffer-management overhead of the send and receive paths
 *  (the paper reports just over 6 us above the hardware limit for a
 *  small automatic-update message, including the credit return). */
constexpr Tick nxSendOverhead = 1200;
constexpr Tick nxRecvOverhead = 1500;

constexpr long gsyncTypeBase = nxReservedType + 0x100;
constexpr long gopType = nxReservedType + 0x200;
constexpr long gopResultType = nxReservedType + 0x201;

bool
typeMatches(long typesel, long type)
{
    if (typesel == nxAnyType)
        return type < nxReservedType;
    return type == typesel;
}

} // namespace

// ---- NxProc ---------------------------------------------------------------

NxProc::NxProc(vmmc::Endpoint &ep, int rank, NxSystem &system)
    : ep_(ep), rank_(rank), system_(system),
      nextWindowKey_(0x4E590000u + std::uint32_t(rank) * 0x1000u),
      stats_("nx.rank" + std::to_string(rank)),
      track_(trace::track(stats_.name())),
      statCsends_(stats_.counter("csends")),
      statSentBytes_(stats_.counter("sentBytes")),
      statCsendBytes_(stats_.distribution("csendBytes")),
      statCrecvs_(stats_.counter("crecvs")),
      statScouts_(stats_.counter("scouts"))
{
    safePool_.push_back(ep_.proc().alloc(system.options().safeCopyBytes));
    scratch_ = ep_.proc().alloc(2 * system.options().pktDataBytes + 4096);
}

int
NxProc::numnodes() const
{
    return system_.numnodes();
}

Connection &
NxProc::conn(int peer)
{
    auto &c = conns_.at(peer);
    if (!c)
        panic("NX: no connection to self");
    return *c;
}

SendMode
NxProc::resolveMode(VAddr buf, std::size_t len) const
{
    const NxOptions &opt = system_.options();
    SendMode m = forcedMode_;
    if (m == SendMode::Auto) {
        if (len > opt.largeThreshold)
            m = SendMode::ZeroCopy;
        else if (len <= opt.auThreshold)
            m = SendMode::AuMarshal;
        else
            m = SendMode::DuOneCopy;
    }
    // The hardware requires word alignment for deliberate update: fall
    // back to the marshalled (two-copy) variant for unaligned buffers.
    if (m == SendMode::DuOneCopy && buf % 4 != 0)
        m = SendMode::DuTwoCopy;
    // Zero copy needs word alignment and whole words on both sides;
    // the scout/fallback handshake handles the receiver, but a hopeless
    // sender skips the scout entirely.
    if (m == SendMode::ZeroCopy && (buf % 4 != 0 || len % 4 != 0 ||
                                    len == 0)) {
        m = (buf % 4 == 0) ? SendMode::DuOneCopy : SendMode::DuTwoCopy;
    }
    return m;
}

// ---- send paths -------------------------------------------------------

// analyze: lookahead-entry(nx) — NX blocking send: library overhead
// is charged before any packet is formed.
sim::Task<>
NxProc::csend(long type, VAddr buf, std::size_t len, int dest)
{
    node::Process &proc = ep_.proc();
    trace::ScopedSpan span(proc.sim(), track_, "csend");
    // Message origin: stage the (maybe-)sampled id; the vmmc send or
    // the packetizer claims it when the data actually moves.
    span::stage(span::origin(track_, "nx.csend", proc.sim().now()));
    statCsends_ += 1;
    statSentBytes_ += len;
    statCsendBytes_.sample(double(len));
    // analyze: lookahead-charge(nx) — library call + buffer management.
    co_await proc.compute(proc.config().libCallCost + nxSendOverhead);
    co_await progress();
    if (dest == rank_)
        panic("NX: send to self is not supported");
    SendMode m = resolveMode(buf, len);
    if (m == SendMode::ZeroCopy)
        co_await sendLarge(dest, type, buf, len);
    else
        co_await sendFragmented(dest, type, buf, len, m);
}

sim::Task<>
NxProc::sendFragmented(int dest, long type, VAddr buf, std::size_t len,
                       SendMode mode)
{
    Connection &c = conn(dest);
    node::Process &proc = ep_.proc();
    std::size_t pkt = system_.options().pktDataBytes;
    std::size_t total = len == 0 ? 1 : (len + pkt - 1) / pkt;
    if (total > 0xFFFF)
        panic("NX: message needs too many fragments");

    std::vector<std::uint8_t> host;
    for (std::size_t k = 0; k < total; ++k) {
        std::size_t off = k * pkt;
        std::size_t size_k = std::min(pkt, len - off);
        int buf_idx = co_await c.acquireBuffer();
        NxDesc d;
        d.stamp = c.takeStamp();
        d.type = std::uint32_t(type);
        d.size = std::uint32_t(size_k);
        d.frag = (std::uint32_t(k) << 16) | std::uint32_t(total);
        // Header marshalling work.
        co_await proc.compute(2 * proc.config().cpuOpCost);
        const std::uint8_t *data = nullptr;
        if (mode != SendMode::DuOneCopy && size_k > 0) {
            host.resize(size_k);
            proc.peek(buf + VAddr(off), host.data(), size_k);
            data = host.data();
        }
        co_await c.sendFragment(buf_idx, d, data, buf + VAddr(off), mode);
    }
}

VAddr
NxProc::acquireSafeBuffer()
{
    if (safePool_.empty()) {
        // More concurrent large sends than buffers: grow the pool (the
        // buffers are recycled when the transfers complete).
        return ep_.proc().alloc(system_.options().safeCopyBytes);
    }
    VAddr buf = safePool_.back();
    safePool_.pop_back();
    return buf;
}

void
NxProc::releaseSafeBuffer(VAddr buf)
{
    safePool_.push_back(buf);
}

sim::Task<>
NxProc::sendLarge(int dest, long type, VAddr buf, std::size_t len)
{
    Connection &c = conn(dest);
    node::Process &proc = ep_.proc();
    const NxOptions &opt = system_.options();
    statScouts_ += 1;
    // Send the scout through the one-copy protocol.
    std::uint32_t stamp = c.takeStamp();
    {
        int buf_idx = co_await c.acquireBuffer();
        NxDesc d;
        d.stamp = stamp;
        d.type = std::uint32_t(type);
        d.size = sizeof(ScoutInfo);
        d.frag = nxScoutFrag;
        ScoutInfo si;
        si.totalLen = std::uint32_t(len);
        co_await c.sendFragment(buf_idx, d,
                                reinterpret_cast<const std::uint8_t *>(&si),
                                0, SendMode::AuMarshal);
    }

    // Start the safe copy, watching for the receiver's reply between
    // chunks; the moment the reply arrives, transfer directly from the
    // user's memory and stop copying.
    std::size_t copied = 0;
    const std::size_t chunk = 1024;
    bool can_copy = len <= opt.safeCopyBytes;
    VAddr safe = can_copy ? acquireSafeBuffer() : 0;
    for (;;) {
        ReplyEntry e;
        if (c.findReply(stamp, e)) {
            co_await proc.compute(proc.config().cpuOpCost);
            if (safe)
                releaseSafeBuffer(safe);
            if (e.key == 0) {
                // Receiver could not set up a zero-copy landing zone;
                // fall back to the fragmented one-copy protocol.
                co_await sendFragmented(dest, type, buf, len,
                                        SendMode::DuOneCopy);
            } else {
                std::size_t transfer = std::min(len, std::size_t(e.pad));
                vmmc::Status s = co_await c.sendDirect(e.key, e.off, buf,
                                                       transfer);
                if (s != vmmc::Status::Ok)
                    panic(std::string("NX zero-copy transfer failed: ") +
                          vmmc::statusName(s));
                co_await c.postDone(stamp);
            }
            co_return;
        }
        if (!can_copy) {
            co_await proc.pollSleep();
            continue;
        }
        if (copied < len) {
            std::size_t n = std::min(chunk, len - copied);
            co_await proc.copy(safe + VAddr(copied), buf + VAddr(copied),
                               n);
            copied += n;
        } else {
            // Fully copied: the user buffer is reusable; finish the
            // transfer from the safe copy when the reply arrives.
            pendingLarge_.push_back(
                PendingLarge{dest, stamp, safe, len, type});
            armCompletion();
            co_return;
        }
    }
}

// ---- receive paths ------------------------------------------------------

std::optional<NxProc::Match>
NxProc::scanMatch(long typesel)
{
    for (int peer = 0; peer < numnodes(); ++peer) {
        if (peer == rank_)
            continue;
        Connection &c = conn(peer);
        std::optional<Match> best;
        for (int i = 0; i < system_.options().numBufs; ++i) {
            // Stamp-first: most slots scan empty, so read one word
            // before paying for the full descriptor.
            if (c.peekStamp(i) == 0)
                continue;
            NxDesc d = c.peekDesc(i);
            bool is_scout = d.frag == nxScoutFrag;
            if (!is_scout && (d.frag >> 16) != 0)
                continue; // later fragment; match only message heads
            if (!typeMatches(typesel, long(d.type)))
                continue;
            if (!best || d.stamp < best->desc.stamp)
                best = Match{peer, i, d};
        }
        if (best)
            return best;
    }
    return std::nullopt;
}

sim::Task<RecvInfo>
NxProc::consumeSmall(const Match &m, VAddr buf, std::size_t maxlen,
                     bool in_place)
{
    Connection &c = conn(m.peer);
    node::Process &proc = ep_.proc();
    co_await proc.detectPenalty(c.descAddr(m.bufIdx));

    RecvInfo info;
    info.type = long(m.desc.type);
    info.node = m.peer;

    std::size_t total = m.desc.frag & 0xFFFF;
    std::size_t pkt = system_.options().pktDataBytes;

    // Fragment 0.
    co_await proc.compute(2 * proc.config().cpuOpCost);
    if (!in_place)
        co_await c.copyOut(m.bufIdx, m.desc.size, buf, maxlen, 0);
    info.count = m.desc.size;
    co_await c.releaseBuffer(m.bufIdx);

    // Remaining fragments arrive with consecutive stamps.
    for (std::size_t k = 1; k < total; ++k) {
        std::uint32_t want = m.desc.stamp + std::uint32_t(k);
        int idx = -1;
        for (;;) {
            for (int i = 0; i < system_.options().numBufs; ++i) {
                if (c.peekStamp(i) == want) {
                    idx = i;
                    break;
                }
            }
            if (idx >= 0)
                break;
            co_await proc.pollSleep();
        }
        NxDesc d = c.peekDesc(idx);
        co_await proc.compute(proc.config().cpuOpCost);
        if (!in_place)
            co_await c.copyOut(idx, d.size, buf, maxlen, k * pkt);
        info.count += d.size;
        co_await c.releaseBuffer(idx);
    }
    co_return info;
}

sim::Task<std::uint32_t>
NxProc::exportWindow(VAddr base, std::size_t len, std::uint32_t &off_out)
{
    const MachineConfig &cfg = ep_.proc().config();
    VAddr page_base = base & ~VAddr(cfg.pageBytes - 1);
    std::size_t wlen =
        (std::size_t(base) + len + cfg.pageBytes - 1) / cfg.pageBytes *
            cfg.pageBytes -
        page_base;
    for (const ExportedWindow &w : windows_) {
        if (w.base <= page_base && page_base + wlen <= w.base + w.len) {
            off_out = std::uint32_t(base - w.base);
            co_return w.key;
        }
    }
    std::uint32_t key = nextWindowKey_++;
    vmmc::Status s =
        co_await ep_.exportBuffer(key, page_base, wlen, vmmc::Perm{});
    if (s != vmmc::Status::Ok)
        co_return 0; // caller falls back to the one-copy protocol
    windows_.push_back(ExportedWindow{page_base, wlen, key});
    off_out = std::uint32_t(base - page_base);
    co_return key;
}

sim::Task<std::uint32_t>
NxProc::answerScout(const Match &m, VAddr buf, std::size_t maxlen,
                    RecvInfo &info)
{
    Connection &c = conn(m.peer);
    node::Process &proc = ep_.proc();
    co_await proc.detectPenalty(c.descAddr(m.bufIdx));

    ScoutInfo si;
    c.peekPayload(m.bufIdx, sizeof(si), &si);
    if (si.magic != ScoutInfo{}.magic)
        panic("NX: corrupt scout message");
    co_await c.releaseBuffer(m.bufIdx);

    info.type = long(m.desc.type);
    info.node = m.peer;
    info.count = si.totalLen;

    std::size_t accept = std::min(std::size_t(si.totalLen), maxlen);
    bool aligned = buf % 4 == 0 && accept % 4 == 0 && accept > 0;
    std::uint32_t key = 0;
    std::uint32_t off = 0;
    if (aligned)
        key = co_await exportWindow(buf, accept, off);

    ReplyEntry e;
    e.stamp = m.desc.stamp;
    e.key = key;
    e.off = off;
    e.pad = std::uint32_t(accept);
    // The reply rides the control ring; ReplyEntry::pad carries the
    // accepted length.
    co_await proc.compute(proc.config().cpuOpCost);
    co_await c.postReply(e.stamp, e.key, e.off, e.pad);
    if (key == 0)
        co_return 0; // fallback: the data will arrive fragmented
    co_return m.desc.stamp;
}

sim::Task<std::size_t>
NxProc::crecvInPlace(long typesel)
{
    node::Process &proc = ep_.proc();
    co_await proc.compute(proc.config().libCallCost);
    for (;;) {
        co_await progress();
        std::optional<Match> m = scanMatch(typesel);
        if (!m) {
            co_await proc.pollSleep();
            continue;
        }
        if (m->desc.frag == nxScoutFrag)
            panic("crecvInPlace cannot accept a large-protocol message");
        co_await proc.compute(2 * proc.config().cpuOpCost);
        RecvInfo info = co_await consumeSmall(*m, 0, 0, /*in_place=*/true);
        co_await proc.compute(nxRecvOverhead);
        info_ = info;
        co_return info.count;
    }
}

sim::Task<>
NxProc::waitDone(int peer, std::uint32_t stamp)
{
    Connection &c = conn(peer);
    node::Process &proc = ep_.proc();
    for (;;) {
        co_await progress();
        if (c.findDone(stamp))
            co_return;
        co_await proc.pollSleep();
    }
}

sim::Task<std::size_t>
NxProc::crecv(long typesel, VAddr buf, std::size_t maxlen)
{
    node::Process &proc = ep_.proc();
    trace::ScopedSpan span(proc.sim(), track_, "crecv");
    statCrecvs_ += 1;
    co_await proc.compute(proc.config().libCallCost);
    for (;;) {
        co_await progress();
        std::optional<Match> m = scanMatch(typesel);
        if (!m) {
            co_await proc.pollSleep();
            continue;
        }
        co_await proc.compute(2 * proc.config().cpuOpCost);
        if (m->desc.frag == nxScoutFrag) {
            RecvInfo info;
            std::uint32_t stamp = co_await answerScout(*m, buf, maxlen,
                                                       info);
            if (stamp == 0)
                continue; // fallback: wait for the fragmented resend
            co_await waitDone(m->peer, stamp);
            co_await proc.detectPenalty(buf);
            co_await proc.compute(nxRecvOverhead);
            info_ = info;
            co_return std::min(info.count, maxlen);
        }
        RecvInfo info = co_await consumeSmall(*m, buf, maxlen);
        // Buffer management on the way out, including the credit
        // bookkeeping (paper: part of the ~6 us library overhead).
        co_await proc.compute(nxRecvOverhead);
        info_ = info;
        co_return std::min(info.count, maxlen);
    }
}

// ---- progress engine -----------------------------------------------------

sim::Task<>
NxProc::progress()
{
    co_await progressSends();
    co_await progressRecvs();
}

sim::Task<>
NxProc::progressSends()
{
    // Complete pending large sends whose reply has arrived. findReply
    // consumes the ring slot and the entry is removed before any
    // suspension, so concurrent progress calls cannot double-complete.
    for (std::size_t i = 0; i < pendingLarge_.size();) {
        PendingLarge &p = pendingLarge_[i];
        Connection &c = conn(p.peer);
        ReplyEntry e;
        if (!c.findReply(p.stamp, e)) {
            ++i;
            continue;
        }
        PendingLarge done = p;
        pendingLarge_.erase(pendingLarge_.begin() + long(i));
        if (e.key == 0) {
            co_await sendFragmented(done.peer, done.type, done.src,
                                    done.len, SendMode::DuOneCopy);
        } else {
            std::size_t transfer = std::min(done.len, std::size_t(e.pad));
            vmmc::Status s = co_await c.sendDirect(e.key, e.off, done.src,
                                                   transfer);
            if (s != vmmc::Status::Ok)
                panic("NX zero-copy completion failed");
            co_await c.postDone(done.stamp);
        }
        releaseSafeBuffer(done.src);
    }
}

sim::Task<>
NxProc::progressRecvs()
{
    node::Process &proc = ep_.proc();
    // Fill posted receives.
    for (PostedRecv &p : posted_) {
        if (p.done)
            continue;
        if (p.largeWait) {
            if (conn(p.largePeer).findDone(p.largeStamp)) {
                co_await proc.detectPenalty(p.buf);
                p.done = true;
            }
            continue;
        }
        std::optional<Match> m = scanMatch(p.typesel);
        if (!m)
            continue;
        if (m->desc.frag == nxScoutFrag) {
            std::uint32_t stamp =
                co_await answerScout(*m, p.buf, p.maxlen, p.info);
            if (stamp != 0) {
                p.largeWait = true;
                p.largePeer = m->peer;
                p.largeStamp = stamp;
            }
            continue;
        }
        p.info = co_await consumeSmall(*m, p.buf, p.maxlen);
        p.done = true;
    }
}

void
NxProc::armCompletion()
{
    if (completionArmed_)
        return;
    completionArmed_ = true;
    ep_.proc().sim().spawn(completionAgent());
}

sim::Task<>
NxProc::completionAgent()
{
    node::Process &proc = ep_.proc();
    while (!pendingLarge_.empty()) {
        co_await progressSends();
        if (pendingLarge_.empty())
            break;
        co_await proc.pollSleep();
    }
    completionArmed_ = false;
}

// ---- asynchronous operations ----------------------------------------------

sim::Task<int>
NxProc::isend(long type, VAddr buf, std::size_t len, int dest)
{
    // Returns once the user buffer is safe to reuse (which is NX's
    // msgwait guarantee); any remaining transfer work continues through
    // the progress engine.
    co_await csend(type, buf, len, dest);
    int id = nextMsgId_++;
    doneIds_.push_back(id);
    co_return id;
}

sim::Task<int>
NxProc::irecv(long typesel, VAddr buf, std::size_t maxlen)
{
    node::Process &proc = ep_.proc();
    co_await proc.compute(proc.config().libCallCost);
    PostedRecv p;
    p.id = nextMsgId_++;
    p.typesel = typesel;
    p.buf = buf;
    p.maxlen = maxlen;
    posted_.push_back(p);
    co_await progress();
    co_return posted_.back().id == p.id ? p.id : p.id;
}

sim::Task<>
NxProc::msgwait(int msg_id)
{
    node::Process &proc = ep_.proc();
    co_await proc.compute(proc.config().libCallCost);
    for (;;) {
        auto dit = std::find(doneIds_.begin(), doneIds_.end(), msg_id);
        if (dit != doneIds_.end()) {
            doneIds_.erase(dit);
            co_return;
        }
        auto pit = std::find_if(posted_.begin(), posted_.end(),
                                [msg_id](const PostedRecv &p) {
                                    return p.id == msg_id;
                                });
        if (pit == posted_.end())
            panic("msgwait on unknown message id");
        if (pit->done) {
            info_ = pit->info;
            posted_.erase(pit);
            co_return;
        }
        co_await progress();
        pit = std::find_if(posted_.begin(), posted_.end(),
                           [msg_id](const PostedRecv &p) {
                               return p.id == msg_id;
                           });
        if (pit != posted_.end() && !pit->done)
            co_await proc.pollSleep();
    }
}

sim::Task<bool>
NxProc::msgdone(int msg_id)
{
    co_await progress();
    if (std::find(doneIds_.begin(), doneIds_.end(), msg_id) !=
        doneIds_.end()) {
        co_return true;
    }
    auto pit = std::find_if(posted_.begin(), posted_.end(),
                            [msg_id](const PostedRecv &p) {
                                return p.id == msg_id;
                            });
    co_return pit != posted_.end() && pit->done;
}

sim::Task<>
NxProc::cprobe(long typesel)
{
    node::Process &proc = ep_.proc();
    co_await proc.compute(proc.config().libCallCost);
    for (;;) {
        co_await progress();
        std::optional<Match> m = scanMatch(typesel);
        if (m) {
            info_.type = long(m->desc.type);
            info_.node = m->peer;
            if (m->desc.frag == nxScoutFrag) {
                ScoutInfo si;
                conn(m->peer).peekPayload(m->bufIdx, sizeof(si), &si);
                info_.count = si.totalLen;
            } else {
                // Head fragment: the full size is known only when all
                // fragments arrive; report what the descriptor shows.
                info_.count = m->desc.size;
            }
            co_return;
        }
        co_await proc.pollSleep();
    }
}

sim::Task<std::size_t>
NxProc::csendrecv(long type, VAddr buf, std::size_t len, int dest,
                  long typesel, VAddr rbuf, std::size_t maxlen)
{
    co_await csend(type, buf, len, dest);
    std::size_t n = co_await crecv(typesel, rbuf, maxlen);
    co_return n;
}

sim::Task<bool>
NxProc::iprobe(long typesel)
{
    node::Process &proc = ep_.proc();
    co_await proc.compute(proc.config().libCallCost);
    co_await progress();
    co_return scanMatch(typesel).has_value();
}

// ---- global operations ------------------------------------------------

sim::Task<>
NxProc::gsync()
{
    int n = numnodes();
    if (n == 1)
        co_return;
    std::uint32_t token = 1;
    ep_.proc().poke(scratch_, &token, sizeof(token));
    for (int r = 0; (1 << r) < n; ++r) {
        int to = (rank_ + (1 << r)) % n;
        int from = (rank_ - (1 << r) + n) % n;
        (void)from; // the type uniquely identifies the round's partner
        co_await csend(gsyncTypeBase + r, scratch_, sizeof(token), to);
        co_await crecv(gsyncTypeBase + r, scratch_ + 64, sizeof(token));
    }
}

sim::Task<double>
NxProc::gdsum(double value)
{
    int n = numnodes();
    node::Process &proc = ep_.proc();
    double result = value;
    if (n == 1)
        co_return result;
    if (rank_ == 0) {
        for (int i = 1; i < n; ++i) {
            co_await crecv(gopType, scratch_, sizeof(double));
            double v;
            proc.peek(scratch_, &v, sizeof(v));
            result += v;
        }
        proc.poke(scratch_ + 64, &result, sizeof(result));
        for (int i = 1; i < n; ++i)
            co_await csend(gopResultType, scratch_ + 64, sizeof(double), i);
    } else {
        proc.poke(scratch_, &value, sizeof(value));
        co_await csend(gopType, scratch_, sizeof(double), 0);
        co_await crecv(gopResultType, scratch_ + 64, sizeof(double));
        proc.peek(scratch_ + 64, &result, sizeof(result));
    }
    co_return result;
}

sim::Task<double>
NxProc::gdhigh(double value)
{
    int n = numnodes();
    node::Process &proc = ep_.proc();
    double result = value;
    if (n == 1)
        co_return result;
    if (rank_ == 0) {
        for (int i = 1; i < n; ++i) {
            co_await crecv(gopType, scratch_, sizeof(double));
            double v;
            proc.peek(scratch_, &v, sizeof(v));
            result = std::max(result, v);
        }
        proc.poke(scratch_ + 64, &result, sizeof(result));
        for (int i = 1; i < n; ++i)
            co_await csend(gopResultType, scratch_ + 64, sizeof(double), i);
    } else {
        proc.poke(scratch_, &value, sizeof(value));
        co_await csend(gopType, scratch_, sizeof(double), 0);
        co_await crecv(gopResultType, scratch_ + 64, sizeof(double));
        proc.peek(scratch_ + 64, &result, sizeof(result));
    }
    co_return result;
}

sim::Task<>
NxProc::sendReserved(long type, const void *data, std::size_t len, int dest)
{
    ep_.proc().poke(scratch_, data, len);
    co_await csend(type, scratch_, len, dest);
}

sim::Task<std::size_t>
NxProc::recvReserved(long type, void *data, std::size_t maxlen)
{
    std::size_t n = co_await crecv(type, scratch_ + 2048, maxlen);
    ep_.proc().peek(scratch_ + 2048, data, std::min(n, maxlen));
    co_return n;
}

// ---- NxSystem ---------------------------------------------------------

NxSystem::NxSystem(vmmc::System &sys, int nprocs, NxOptions opt)
    : sys_(sys), nprocs_(nprocs), opt_(opt)
{
    if (nprocs < 1)
        fatal("NX needs at least one process");
    // NX fixes the process group at initialization time: one endpoint
    // per rank, placed round-robin over the nodes.
    for (int r = 0; r < nprocs; ++r) {
        vmmc::Endpoint &ep =
            sys.createEndpoint(NodeId(r % sys.numNodes()));
        procs_.push_back(std::make_unique<NxProc>(ep, r, *this));
    }
    for (int r = 0; r < nprocs; ++r) {
        NxProc &p = *procs_[r];
        p.conns_.resize(nprocs);
        for (int peer = 0; peer < nprocs; ++peer) {
            if (peer == r)
                continue;
            p.conns_[peer] = std::make_unique<Connection>(
                p.ep_, r, peer, NodeId(peer % sys.numNodes()), opt_);
        }
    }
}

sim::Task<>
NxSystem::init()
{
    // NX sets up one set of buffers for each pair of processes at
    // initialization time (paper section 6).
    for (auto &p : procs_) {
        for (auto &c : p->conns_) {
            if (c)
                co_await c->exportSide();
        }
    }
    for (auto &p : procs_) {
        for (auto &c : p->conns_) {
            if (c)
                co_await c->importSide();
        }
    }
}

} // namespace shrimp::nx
