// Packet is header-only; this translation unit exists to give the header
// a home in the library and to host static checks.

#include "net/packet.hh"

namespace shrimp::net
{

static_assert(Packet::headerBytes >= sizeof(PAddr) + sizeof(NodeId) * 2,
              "header must at least carry route and destination address");

} // namespace shrimp::net
