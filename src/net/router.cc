#include "net/router.hh"

#include "base/logging.hh"
#include "check/check.hh"

namespace shrimp::net
{

Router::Router(sim::EventQueue &queue, NodeId id, const MachineConfig &cfg)
    : queue_(queue), id_(id), hopLatency_(cfg.hopLatency),
      linkBw_(cfg.linkBw), ejectQueue_(queue)
{
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onRouterCreated(this));
}

Router::~Router()
{
    SHRIMP_CHECK_HOOK(
        check::SimChecker::instance().onRouterDestroyed(this));
}

void
Router::connect(Dir d)
{
    auto &link = links_[int(d)];
    if (!link) {
        link = std::make_unique<sim::Bus>(
            queue_, linkBw_,
            "router" + std::to_string(id_) + ".link" +
                std::to_string(int(d)));
        link->setProfileSubsys(sim::profile::Subsys::Router);
    }
}

bool
Router::connected(Dir d) const
{
    return links_[int(d)] != nullptr;
}

sim::Task<>
Router::forward(const Packet &pkt, Dir d)
{
    auto &link = links_[int(d)];
    if (!link)
        panic("forward on unconnected mesh link");
    co_await link->transfer(pkt.wireBytes(), hopLatency_);
    // After the transfer: the link bus serializes packets, so completion
    // order is the order the link actually carried them.
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onLinkTraverse(
        this, id_, int(d), pkt.src, pkt.seq));
    ++forwarded_;
}

} // namespace shrimp::net
