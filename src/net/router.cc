#include "net/router.hh"

#include "base/logging.hh"

namespace shrimp::net
{

Router::Router(sim::EventQueue &queue, NodeId id, const MachineConfig &cfg)
    : queue_(queue), id_(id), hopLatency_(cfg.hopLatency),
      linkBw_(cfg.linkBw), ejectQueue_(queue)
{
}

void
Router::connect(Dir d)
{
    auto &link = links_[int(d)];
    if (!link) {
        link = std::make_unique<sim::Bus>(
            queue_, linkBw_,
            "router" + std::to_string(id_) + ".link" +
                std::to_string(int(d)));
    }
}

bool
Router::connected(Dir d) const
{
    return links_[int(d)] != nullptr;
}

sim::Task<>
Router::forward(const Packet &pkt, Dir d)
{
    auto &link = links_[int(d)];
    if (!link)
        panic("forward on unconnected mesh link");
    co_await link->transfer(pkt.wireBytes(), hopLatency_);
    ++forwarded_;
}

} // namespace shrimp::net
