#include "net/router.hh"

#include <cstdio>

#include "base/logging.hh"
#include "check/check.hh"

namespace shrimp::net
{

Router::Router(sim::EventQueue &queue, NodeId id, const MachineConfig &cfg)
    : queue_(queue), id_(id), hopLatency_(cfg.hopLatency),
      linkBw_(cfg.linkBw), ejectQueue_(queue)
{
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onRouterCreated(this));
}

Router::~Router()
{
    SHRIMP_CHECK_HOOK(
        check::SimChecker::instance().onRouterDestroyed(this));
}

void
Router::connect(Dir d)
{
    auto &link = links_[int(d)];
    if (!link) {
        // Fixed-size buffer: the "router%u.link%d" strings this ctor
        // path used to build with operator+ churned four temporary
        // heap strings per link, once per link per simulated machine.
        char name[32];
        std::snprintf(name, sizeof(name), "router%u.link%d",
                      unsigned(id_), int(d));
        link = std::make_unique<sim::Bus>(queue_, linkBw_, name);
        link->setProfileSubsys(sim::profile::Subsys::Router);
    }
}

bool
Router::connected(Dir d) const
{
    return links_[int(d)] != nullptr;
}

sim::Task<>
Router::forward(const Packet &pkt, Dir d)
{
    auto &link = links_[int(d)];
    if (!link)
        panic("forward on unconnected mesh link");
    // analyze: lookahead-charge(mesh) — every hop pays link occupancy
    // of at least hopLatency before the packet advances.
    co_await link->transfer(pkt.wireBytes(), hopLatency_);
    // After the transfer: the link bus serializes packets, so completion
    // order is the order the link actually carried them.
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onLinkTraverse(
        this, id_, int(d), pkt.src, pkt.seq));
    ++forwarded_;
}

} // namespace shrimp::net
