/**
 * @file
 * The packet format carried by the routing backplane. A SHRIMP packet
 * holds the destination node, the destination *physical* base address
 * (the OPT produced it on the sending side), the payload bytes, and the
 * sender-specified interrupt flag used by the notification mechanism
 * (paper sections 2.3 and 3.2).
 */

#ifndef SHRIMP_NET_PACKET_HH
#define SHRIMP_NET_PACKET_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/types.hh"

namespace shrimp::check
{
struct RaceClock;
} // namespace shrimp::check

namespace shrimp::net
{

struct Packet
{
    NodeId src = invalidNode;
    NodeId dst = invalidNode;

    /** Destination physical base address, from the sender's OPT. */
    PAddr destAddr = 0;

    /** Payload data (real bytes). */
    std::vector<std::uint8_t> payload;

    /** Sender-specified interrupt flag: request a notification at the
     *  destination (ANDed with the receiver's IPT flag). */
    bool senderInterrupt = false;

    /** Injection sequence number, for debugging and order checks. */
    std::uint64_t seq = 0;

    /** Causal span id (base/span.hh) when this packet's message was
     *  sampled for flow tracing; 0 otherwise. Rides next to the race
     *  clock: observability metadata, never simulated behavior. */
    std::uint64_t spanId = 0;

#ifdef SHRIMP_CHECK
    /** Sender's vector clock at packet formation; the incoming engine
     *  joins it before the delivery DMA (race-detector edge). */
    std::shared_ptr<const check::RaceClock> raceClock;
#endif

    /** Header bytes on the wire: route info + destination address +
     *  length + flags. */
    static constexpr std::size_t headerBytes = 16;

    std::size_t wireBytes() const { return payload.size() + headerBytes; }

    /** True if the payload ends exactly where @p other's begins at the
     *  destination (used by combining logic tests). */
    bool
    contiguousWith(const Packet &other) const
    {
        return dst == other.dst &&
               destAddr + PAddr(payload.size()) == other.destAddr;
    }
};

} // namespace shrimp::net

#endif // SHRIMP_NET_PACKET_HH
