/**
 * @file
 * Router: one iMRC of the routing backplane. Each router has four
 * outgoing mesh links (modelled as bandwidth resources) and an ejection
 * port delivering packets to the attached network interface. Forwarding
 * a packet charges the per-hop routing latency plus link serialization;
 * link FIFOs preserve per-sender order, matching the iMRC's in-order
 * guarantee (paper section 3.1).
 */

#ifndef SHRIMP_NET_ROUTER_HH
#define SHRIMP_NET_ROUTER_HH

#include <array>
#include <memory>

#include "base/config.hh"
#include "base/ownership.hh"
#include "net/packet.hh"
#include "sim/bus.hh"
#include "sim/sync.hh"

namespace shrimp::net
{

/** Mesh output directions. */
enum class Dir : int
{
    East = 0,
    West = 1,
    North = 2,
    South = 3,
};

constexpr int numDirs = 4;

class Router
{
    SHRIMP_SHARD_SHARED(
        "per-hop fabric state owned by the mesh, not by any node");

  public:
    Router(sim::EventQueue &queue, NodeId id, const MachineConfig &cfg);
    ~Router();

    NodeId id() const { return id_; }

    /** Mark direction @p d as connected (edge routers have fewer links). */
    void connect(Dir d);
    bool connected(Dir d) const;

    /**
     * Send @p pkt out of link @p d: per-hop latency plus serialization
     * on that link; completes when the packet has left this router.
     */
    sim::Task<> forward(const Packet &pkt, Dir d);

    /**
     * The Bus modelling the outgoing link @p d, or nullptr when
     * unconnected. The mesh's coalesced engine charges occupancy on it
     * directly (Bus::recordExternalTransfer) instead of running
     * forward(); stats and checker identity stay per-link either way.
     */
    sim::Bus *linkBus(Dir d) { return links_[int(d)].get(); }

    /** Count one forwarded packet (the coalesced engine's counterpart
     *  of the increment inside forward()). */
    void noteForwarded() { ++forwarded_; }

    /** Deliver @p pkt to the node attached to this router. */
    // analyze: lookahead-effect(deliver) — the packet becomes visible
    // to the destination node's NIC here.
    void eject(Packet pkt) { ejectQueue_.send(std::move(pkt)); }

    /** The attached NIC drains this queue. */
    sim::Channel<Packet> &ejectQueue() { return ejectQueue_; }

    std::uint64_t forwarded() const { return forwarded_; }

  private:
    sim::EventQueue &queue_;
    NodeId id_;
    Tick hopLatency_;
    std::array<std::unique_ptr<sim::Bus>, numDirs> links_;
    double linkBw_;
    sim::Channel<Packet> ejectQueue_;
    std::uint64_t forwarded_ = 0;
};

} // namespace shrimp::net

#endif // SHRIMP_NET_ROUTER_HH
