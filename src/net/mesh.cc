#include "net/mesh.hh"

#include "base/logging.hh"
#include "base/span.hh"
#include "check/check.hh"
#include "sim/profile.hh"

namespace shrimp::net
{

Mesh::Mesh(sim::Simulator &sim, const MachineConfig &cfg)
    : sim_(sim), width_(cfg.meshWidth), height_(cfg.meshHeight),
      stats_("mesh"),
      statPacketsInjected_(stats_.counter("packetsInjected")),
      statBytesInjected_(stats_.counter("bytesInjected")),
      statPacketsDelivered_(stats_.counter("packetsDelivered")),
      statHops_(stats_.distribution("hops"))
{
    int n = numNodes();
    routers_.reserve(n);
    routerTracks_.reserve(n);
    for (int i = 0; i < n; ++i) {
        routers_.push_back(
            std::make_unique<Router>(sim.queue(), NodeId(i), cfg));
        routerTracks_.push_back(
            trace::track("router" + std::to_string(i)));
    }
    // Wire up the grid: every interior edge gets a link in each direction.
    for (NodeId i = 0; i < NodeId(n); ++i) {
        if (xOf(i) + 1 < width_)
            routers_[i]->connect(Dir::East);
        if (xOf(i) > 0)
            routers_[i]->connect(Dir::West);
        if (yOf(i) + 1 < height_)
            routers_[i]->connect(Dir::South);
        if (yOf(i) > 0)
            routers_[i]->connect(Dir::North);
    }
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onMeshCreated(this));
}

Mesh::~Mesh()
{
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onMeshDestroyed(this));
}

NodeId
Mesh::neighbor(NodeId n, Dir d) const
{
    int x = xOf(n), y = yOf(n);
    switch (d) {
      case Dir::East:
        ++x;
        break;
      case Dir::West:
        --x;
        break;
      case Dir::South:
        ++y;
        break;
      case Dir::North:
        --y;
        break;
    }
    if (x < 0 || x >= width_ || y < 0 || y >= height_)
        panic("mesh neighbor out of range");
    return NodeId(y * width_ + x);
}

Dir
Mesh::nextDir(NodeId at, NodeId dst) const
{
    // Dimension-ordered (XY) routing: move along X first, then Y.
    if (xOf(dst) > xOf(at))
        return Dir::East;
    if (xOf(dst) < xOf(at))
        return Dir::West;
    if (yOf(dst) > yOf(at))
        return Dir::South;
    if (yOf(dst) < yOf(at))
        return Dir::North;
    panic("nextDir called with at == dst");
}

int
Mesh::hops(NodeId a, NodeId b) const
{
    return std::abs(xOf(a) - xOf(b)) + std::abs(yOf(a) - yOf(b));
}

void
Mesh::inject(Packet pkt)
{
    if (pkt.src >= numNodes() || pkt.dst >= numNodes())
        panic("packet injected with out-of-range node id");
    // 1-based so seq 0 keeps meaning "unsequenced" everywhere.
    pkt.seq = ++nextSeq_;
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onMeshInject(
        this, pkt.src, pkt.dst, hops(pkt.src, pkt.dst), pkt.seq));
    statPacketsInjected_ += 1;
    statBytesInjected_ += pkt.payload.size();
    statHops_.sample(double(hops(pkt.src, pkt.dst)));
    sim::profile::Scope prof(sim::profile::Subsys::Mesh);
    sim_.spawn(routeTask(std::move(pkt)));
}

sim::Task<>
Mesh::routeTask(Packet pkt)
{
    NodeId cur = pkt.src;
    while (cur != pkt.dst) {
        Dir d = nextDir(cur, pkt.dst);
        NodeId next = neighbor(cur, d);
        co_await routers_[cur]->forward(pkt, d);
        SHRIMP_CHECK_HOOK(
            check::SimChecker::instance().onMeshHop(this, pkt.seq));
        // One flow waypoint per hop, on the router whose link just
        // carried the packet: the viewer draws the XY route.
        span::step(pkt.spanId, routerTracks_[cur], "hop",
                   sim_.queue().now());
        cur = next;
    }
    ++delivered_;
    statPacketsDelivered_ += 1;
    trace::instant(routerTracks_[cur], "pkt.ejected", sim_.queue().now());
    span::step(pkt.spanId, routerTracks_[cur], "pkt.eject",
               sim_.queue().now());
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onMeshEject(
        this, cur, pkt.src, pkt.dst, pkt.seq));
    routers_[cur]->eject(std::move(pkt));
}

} // namespace shrimp::net
