#include "net/mesh.hh"

#include <cstdio>

#include "base/logging.hh"
#include "base/span.hh"
#include "check/check.hh"
#include "sim/profile.hh"

namespace shrimp::net
{

namespace
{
Mesh::Engine gDefaultEngine = Mesh::Engine::Auto;
} // namespace

void
Mesh::setDefaultEngine(Engine e)
{
    gDefaultEngine = e;
}

Mesh::Engine
Mesh::defaultEngine()
{
    return gDefaultEngine;
}

Mesh::Mesh(sim::Simulator &sim, const MachineConfig &cfg)
    : sim_(sim), width_(cfg.meshWidth), height_(cfg.meshHeight),
      hopLatency_(cfg.hopLatency),
      linkBps_(units::bytesPerSec(cfg.linkBw)),
      stats_("mesh"),
      statPacketsInjected_(stats_.counter("packetsInjected")),
      statBytesInjected_(stats_.counter("bytesInjected")),
      statPacketsDelivered_(stats_.counter("packetsDelivered")),
      statHops_(stats_.distribution("hops"))
{
    int n = numNodes();
    routers_.reserve(n);
    routerTracks_.reserve(n);
    for (int i = 0; i < n; ++i) {
        routers_.push_back(
            std::make_unique<Router>(sim.queue(), NodeId(i), cfg));
        // snprintf into a fixed buffer: the operator+ chain this loop
        // used to run churned two heap strings per router per machine.
        char name[24];
        std::snprintf(name, sizeof(name), "router%d", i);
        routerTracks_.push_back(trace::track(name));
    }
    // Precomputed XY route tables: one pass over (at, dst) replaces the
    // per-hop coordinate arithmetic of nextDir()/neighbor()/hops() with
    // table lookups. 0xFF marks at == dst, -1 marks a mesh edge.
    nextDirTbl_.assign(std::size_t(n) * std::size_t(n), 0xFF);
    hopsTbl_.assign(std::size_t(n) * std::size_t(n), 0);
    neighborTbl_.assign(std::size_t(n) * numDirs, -1);
    for (int at = 0; at < n; ++at) {
        int xa = at % width_, ya = at / width_;
        if (xa + 1 < width_)
            neighborTbl_[linkIndex(NodeId(at), Dir::East)] = at + 1;
        if (xa > 0)
            neighborTbl_[linkIndex(NodeId(at), Dir::West)] = at - 1;
        if (ya + 1 < height_)
            neighborTbl_[linkIndex(NodeId(at), Dir::South)] = at + width_;
        if (ya > 0)
            neighborTbl_[linkIndex(NodeId(at), Dir::North)] = at - width_;
        std::size_t row = std::size_t(at) * std::size_t(n);
        for (int dst = 0; dst < n; ++dst) {
            if (dst == at)
                continue;
            int dx = dst % width_ - xa, dy = dst / width_ - ya;
            hopsTbl_[row + dst] =
                std::uint16_t(std::abs(dx) + std::abs(dy));
            // Dimension-ordered (XY) routing: move along X first.
            Dir d = dx > 0   ? Dir::East
                    : dx < 0 ? Dir::West
                    : dy > 0 ? Dir::South
                             : Dir::North;
            nextDirTbl_[row + dst] = std::uint8_t(d);
        }
    }
    ledgers_.assign(std::size_t(n) * numDirs, LinkLedger{});
    // Wire up the grid: every interior edge gets a link in each direction.
    for (NodeId i = 0; i < NodeId(n); ++i) {
        for (int d = 0; d < numDirs; ++d) {
            if (neighborTbl_[linkIndex(i, Dir(d))] >= 0)
                routers_[i]->connect(Dir(d));
        }
    }
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onMeshCreated(this));
}

Mesh::~Mesh()
{
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onMeshDestroyed(this));
}

NodeId
Mesh::neighbor(NodeId n, Dir d) const
{
    if (n >= NodeId(numNodes()))
        panic("mesh neighbor out of range");
    std::int32_t v = neighborTbl_[linkIndex(n, d)];
    if (v < 0)
        panic("mesh neighbor out of range");
    return NodeId(v);
}

Dir
Mesh::nextDir(NodeId at, NodeId dst) const
{
    if (at >= NodeId(numNodes()) || dst >= NodeId(numNodes()))
        panic("nextDir node out of range");
    std::uint8_t d = nextDirTbl_[std::size_t(at) * numNodes() + dst];
    if (d == 0xFF)
        panic("nextDir called with at == dst");
    return Dir(d);
}

int
Mesh::hops(NodeId a, NodeId b) const
{
    if (a >= NodeId(numNodes()) || b >= NodeId(numNodes()))
        panic("hops node out of range");
    return hopsTbl_[std::size_t(a) * numNodes() + b];
}

// analyze: lookahead-entry(mesh, mesh-grant) — the single fabric
// ingress; both engines charge a full hop before off-node visibility.
void
Mesh::inject(Packet pkt)
{
    if (pkt.src >= numNodes() || pkt.dst >= numNodes())
        panic("packet injected with out-of-range node id");
    // 1-based so seq 0 keeps meaning "unsequenced" everywhere.
    pkt.seq = ++nextSeq_;
    int h = hops(pkt.src, pkt.dst);
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onMeshInject(
        this, pkt.src, pkt.dst, h, pkt.seq));
    statPacketsInjected_ += 1;
    statBytesInjected_ += pkt.payload.size();
    statHops_.sample(double(h));
    sim::profile::Scope prof(sim::profile::Subsys::Mesh);
    // Pick the engine only between bursts: in-flight packets hold link
    // state (semaphore queues vs ledgers) that the other engine cannot
    // see, so a switch waits until the fabric drains.
    if (inflight_ == 0)
        coalescedActive_ = engine_ == Engine::Coalesced ||
                           (engine_ == Engine::Auto && !trace::on());
    ++inflight_;
    if (!coalescedActive_) {
        sim_.spawn(routeTask(std::move(pkt)));
        return;
    }
    Flight *f = allocFlight();
    f->pkt = std::move(pkt);
    f->cur = f->pkt.src;
    // analyze: lookahead-charge(mesh-grant) — per-hop occupancy: the
    // grant event fires no earlier than hopLatency + wire time.
    f->occ = hopLatency_ + units::transferTime(f->pkt.wireBytes(), linkBps_);
    // analyze: lookahead(self-delivery stays on-node: src == dst)
    if (f->cur == f->pkt.dst)
        ejectFlight(f);
    else
        startHop(f);
}

sim::Task<>
Mesh::routeTask(Packet pkt)
{
    NodeId cur = pkt.src;
    while (cur != pkt.dst) {
        Dir d = nextDir(cur, pkt.dst);
        NodeId next = neighbor(cur, d);
        co_await routers_[cur]->forward(pkt, d);
        SHRIMP_CHECK_HOOK(
            check::SimChecker::instance().onMeshHop(this, pkt.seq));
        // One flow waypoint per hop, on the router whose link just
        // carried the packet: the viewer draws the XY route.
        span::step(pkt.spanId, routerTracks_[cur], "hop",
                   sim_.queue().now());
        cur = next;
    }
    ++delivered_;
    statPacketsDelivered_ += 1;
    trace::instant(routerTracks_[cur], "pkt.ejected", sim_.queue().now());
    span::step(pkt.spanId, routerTracks_[cur], "pkt.eject",
               sim_.queue().now());
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onMeshEject(
        this, cur, pkt.src, pkt.dst, pkt.seq));
    // analyze: lookahead(zero-hop eject only when src == dst — a
    // self-delivery that never leaves the node; every other path
    // paid forward() above)
    routers_[cur]->eject(std::move(pkt));
    --inflight_;
}

// ---- coalesced engine -----------------------------------------------------
// One pooled event per hop, scheduled at the tick the serialized path
// would schedule its bus-occupancy Delay, with contended grants handed
// off through a zero-delay event exactly where Semaphore::release defers
// its resume. Event ticks AND same-tick insertion order therefore match
// the serialized path, which makes every simulated outcome — delivery
// ticks, eject order, stats — bit-identical (DESIGN.md §14).

void
Mesh::startHop(Flight *f)
{
    int li = linkIndex(
        f->cur, Dir(nextDirTbl_[std::size_t(f->cur) * numNodes() +
                                f->pkt.dst]));
    f->link = li;
    LinkLedger &led = ledgers_[li];
    if (led.busy) {
        // The serialized path would park in the bus semaphore's FIFO;
        // park in the ledger's. No event is scheduled until the grant.
        f->qnext = nullptr;
        if (led.tail)
            led.tail->qnext = f;
        else
            led.head = f;
        led.tail = f;
        return;
    }
    led.busy = true;
    grantLink(f);
}

void
Mesh::grantLink(Flight *f)
{
    sim::Bus *bus = routers_[f->cur]->linkBus(Dir(f->link % numDirs));
    if (!bus)
        panic("forward on unconnected mesh link");
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onBusTransferStart(
        bus, f->pkt.wireBytes()));
    // Router attribution, like Bus::transfer's retag: the hop-done
    // event below (and anything it schedules) bills to the fabric.
    sim::profile::Scope prof(sim::profile::Subsys::Router);
    Mesh *m = this;
    sim_.queue().scheduleIn(f->occ, [m, f] { m->hopDone(f); });
}

void
Mesh::hopDone(Flight *f)
{
    sim::profile::retag(sim::profile::Subsys::Router);
    LinkLedger &led = ledgers_[f->link];
    NodeId cur = f->cur;
    Dir d = Dir(f->link % numDirs);
    Router &rtr = *routers_[cur];
    sim::Bus *bus = rtr.linkBus(d);
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onBusTransferEnd(
        bus, f->pkt.wireBytes()));
    bus->recordExternalTransfer(f->pkt.wireBytes(), f->occ);
    // Release the link. A waiter gets the grant through a zero-delay
    // event — the same deferred handoff (same tick, same insertion
    // point) as Semaphore::release resuming the oldest waiter.
    if (Flight *w = led.head) {
        led.head = w->qnext;
        if (!led.head)
            led.tail = nullptr;
        w->qnext = nullptr;
        Mesh *m = this;
        sim_.queue().scheduleIn(0, [m, w] { m->grantLink(w); });
    } else {
        led.busy = false;
    }
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onLinkTraverse(
        &rtr, cur, int(d), f->pkt.src, f->pkt.seq));
    rtr.noteForwarded();
    SHRIMP_CHECK_HOOK(
        check::SimChecker::instance().onMeshHop(this, f->pkt.seq));
    span::step(f->pkt.spanId, routerTracks_[cur], "hop",
               sim_.queue().now());
    f->cur = NodeId(neighborTbl_[f->link]);
    if (f->cur == f->pkt.dst)
        ejectFlight(f);
    else
        startHop(f);
}

void
Mesh::ejectFlight(Flight *f)
{
    NodeId cur = f->cur;
    ++delivered_;
    statPacketsDelivered_ += 1;
    trace::instant(routerTracks_[cur], "pkt.ejected", sim_.queue().now());
    span::step(f->pkt.spanId, routerTracks_[cur], "pkt.eject",
               sim_.queue().now());
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onMeshEject(
        this, cur, f->pkt.src, f->pkt.dst, f->pkt.seq));
    routers_[cur]->eject(std::move(f->pkt));
    --inflight_;
    freeFlight(f);
}

Mesh::Flight *
Mesh::allocFlight()
{
    if (Flight *f = freeFlights_) {
        freeFlights_ = f->qnext;
        f->qnext = nullptr;
        return f;
    }
    flights_.push_back(std::make_unique<Flight>());
    return flights_.back().get();
}

void
Mesh::freeFlight(Flight *f)
{
    f->link = -1;
    f->qnext = freeFlights_;
    freeFlights_ = f;
}

} // namespace shrimp::net
