/**
 * @file
 * The two SimChecker hooks that inspect net::Packet payloads. They
 * live in net/ (not check/) so check/check.hh can forward-declare
 * Packet instead of including net/packet.hh — the checker layer sits
 * below the network layer, and this file is the one place allowed to
 * see both sides: net/ includes downward into check/.
 */

#include <cstring>

#include "check/check.hh"
#include "net/packet.hh"

namespace shrimp::check
{

void
SimChecker::onShadowFlush(const void *packetizer, const net::Packet &pkt)
{
    numChecks_ += 1;
    auto it = shadows_.find(packetizer);
    if (it == shadows_.end() || !it->second.active)
        return; // checking enabled mid-run; nothing recorded to compare
    Shadow &sh = it->second;
    if (pkt.dst != sh.dst || pkt.destAddr != sh.base) {
        violation(logging::format(
            "combined packet header diverged from uncombined shadow: "
            "dst %u@0x%x vs shadow %u@0x%x",
            unsigned(pkt.dst), unsigned(pkt.destAddr), unsigned(sh.dst),
            unsigned(sh.base)));
    } else if (pkt.payload.size() != sh.bytes.size() ||
               (!sh.bytes.empty() &&
                std::memcmp(pkt.payload.data(), sh.bytes.data(),
                            sh.bytes.size()) != 0)) {
        violation(logging::format(
            "combined packet payload (%zu bytes) is not byte-identical "
            "to the uncombined shadow stream (%zu bytes)",
            pkt.payload.size(), sh.bytes.size()));
    }
    sh.active = false;
    sh.bytes.clear();
}

void
SimChecker::onDuPacket(const void *packetizer, const net::Packet &pkt,
                       const void *expected, std::size_t len)
{
    (void)packetizer;
    numChecks_ += 1;
    if (pkt.payload.size() % 4 != 0) {
        violation(logging::format(
            "deliberate-update packet payload is %zu bytes, not a whole "
            "number of words (the DU engine transfers 4-byte words)",
            pkt.payload.size()));
        return;
    }
    if (pkt.payload.size() != len ||
        (len != 0 &&
         std::memcmp(pkt.payload.data(), expected, len) != 0)) {
        violation(logging::format(
            "deliberate-update packet payload (%zu bytes) is not "
            "byte-identical to the %zu source bytes read from memory "
            "(DU shadow check)",
            pkt.payload.size(), len));
    }
}

} // namespace shrimp::check
