/**
 * @file
 * Mesh: the Intel routing backplane — a 2-D mesh of iMRC routers with
 * deadlock-free, oblivious wormhole routing (dimension-ordered XY) that
 * preserves the order of packets from each sender to each receiver.
 * Node i sits at (i % width, i / width).
 */

#ifndef SHRIMP_NET_MESH_HH
#define SHRIMP_NET_MESH_HH

#include <memory>
#include <vector>

#include "base/config.hh"
#include "base/ownership.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "net/packet.hh"
#include "net/router.hh"
#include "sim/simulator.hh"

namespace shrimp::net
{

class Mesh
{
    SHRIMP_SHARD_SHARED(
        "the interconnect fabric every node injects into; shards "
        "synchronize at its link boundaries");

  public:
    Mesh(sim::Simulator &sim, const MachineConfig &cfg);
    ~Mesh();

    int width() const { return width_; }
    int height() const { return height_; }
    int numNodes() const { return width_ * height_; }

    /** Grid coordinates of a node. */
    int xOf(NodeId n) const { return n % width_; }
    int yOf(NodeId n) const { return n / width_; }

    /** Neighbour of @p n in direction @p d; panics at a mesh edge. */
    NodeId neighbor(NodeId n, Dir d) const;

    /** Next output direction under XY routing from @p at toward @p dst. */
    Dir nextDir(NodeId at, NodeId dst) const;

    /** Number of router-to-router hops between two nodes. */
    int hops(NodeId a, NodeId b) const;

    /**
     * Inject a packet at its source router. Returns immediately; the
     * packet traverses the mesh asynchronously and is eventually placed
     * on the destination router's eject queue. Packets injected at the
     * same source toward the same destination stay in order.
     */
    void inject(Packet pkt);

    Router &router(NodeId n) { return *routers_.at(n); }

    std::uint64_t packetsDelivered() const { return delivered_; }

  private:
    sim::Task<> routeTask(Packet pkt);

    sim::Simulator &sim_;
    int width_;
    int height_;
    std::vector<std::unique_ptr<Router>> routers_;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t delivered_ = 0;
    stats::Group stats_;
    std::vector<trace::TrackId> routerTracks_;
    // Per-packet path; stat lookups hoisted to construction.
    stats::Counter &statPacketsInjected_;
    stats::Counter &statBytesInjected_;
    stats::Counter &statPacketsDelivered_;
    stats::Distribution &statHops_;
};

} // namespace shrimp::net

#endif // SHRIMP_NET_MESH_HH
