/**
 * @file
 * Mesh: the Intel routing backplane — a 2-D mesh of iMRC routers with
 * deadlock-free, oblivious wormhole routing (dimension-ordered XY) that
 * preserves the order of packets from each sender to each receiver.
 * Node i sits at (i % width, i / width).
 *
 * Two interchangeable routing engines drive packets (DESIGN.md §14):
 *
 *  - Serialized: one coroutine per packet co_awaits a full Bus
 *    acquire/transfer/release handshake at every hop. This is the
 *    original, obviously-correct path; it still carries every traced
 *    run, so the golden trace hashes pin its behavior.
 *  - Coalesced: a per-link occupancy ledger grants link windows with
 *    plain arithmetic and one pooled event per hop — no coroutine
 *    frames, no semaphore queues, no per-packet spawn bookkeeping. Its
 *    event schedule mirrors the serialized path event-for-event
 *    (identical ticks, identical same-tick ordering), so simulated
 *    results are bit-identical; tests/test_net.cc asserts equality on
 *    all-pairs and contention patterns.
 *
 * Engine::Auto (the default) picks Coalesced exactly when tracing is
 * off: traced runs keep the serialized path whose per-hop bus spans the
 * golden hashes cover. The engine is sticky while packets are in
 * flight so both never drive one link at once.
 */

#ifndef SHRIMP_NET_MESH_HH
#define SHRIMP_NET_MESH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "base/config.hh"
#include "base/ownership.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "net/packet.hh"
#include "net/router.hh"
#include "sim/simulator.hh"

namespace shrimp::net
{

class Mesh
{
    SHRIMP_SHARD_SHARED(
        "the interconnect fabric every node injects into; shards "
        "synchronize at its link boundaries");

  public:
    /** Routing-engine selection; see the file comment. */
    enum class Engine
    {
        Auto,       //!< Coalesced when tracing is off, else Serialized
        Serialized, //!< always the per-packet coroutine path
        Coalesced,  //!< always the link-ledger path (tests, benches)
    };

    Mesh(sim::Simulator &sim, const MachineConfig &cfg);
    ~Mesh();

    int width() const { return width_; }
    int height() const { return height_; }
    int numNodes() const { return width_ * height_; }

    /** Grid coordinates of a node. */
    int xOf(NodeId n) const { return n % width_; }
    int yOf(NodeId n) const { return n / width_; }

    /** Neighbour of @p n in direction @p d; panics at a mesh edge. */
    NodeId neighbor(NodeId n, Dir d) const;

    /** Next output direction under XY routing from @p at toward @p dst. */
    Dir nextDir(NodeId at, NodeId dst) const;

    /** Number of router-to-router hops between two nodes. */
    int hops(NodeId a, NodeId b) const;

    /**
     * Inject a packet at its source router. Returns immediately; the
     * packet traverses the mesh asynchronously and is eventually placed
     * on the destination router's eject queue. Packets injected at the
     * same source toward the same destination stay in order.
     */
    void inject(Packet pkt);

    /** Select the routing engine. Takes effect at the next inject with
     *  no packets in flight (both engines never share a link). */
    void setEngine(Engine e) { engine_ = e; }
    Engine engine() const { return engine_; }

    /** Process-wide engine default picked up by every subsequently
     *  constructed Mesh (the bench harness's --mesh-engine flag sets
     *  this before any Machine exists). Auto on process start. */
    static void setDefaultEngine(Engine e);
    static Engine defaultEngine();

    Router &router(NodeId n) { return *routers_.at(n); }

    std::uint64_t packetsDelivered() const { return delivered_; }

    /** Packets injected but not yet ejected (tests). */
    std::uint64_t packetsInFlight() const { return inflight_; }

  private:
    /**
     * Per-packet state of the coalesced engine, free-listed so steady
     * traffic allocates nothing. Scheduled hop events capture one
     * Flight pointer; the Flight owns the packet until ejection.
     */
    struct Flight
    {
        Packet pkt;
        NodeId cur = 0;     //!< router the packet is at / leaving
        Tick occ = 0;       //!< per-hop link occupancy (uniform links)
        int link = -1;      //!< directed-link index while on a link
        Flight *qnext = nullptr; //!< link waiter FIFO / free list
    };

    /**
     * One directed link's occupancy ledger: a busy bit plus a FIFO of
     * waiting flights — the coalesced engine's stand-in for the Bus
     * semaphore, granted in the same order at the same ticks.
     */
    struct LinkLedger
    {
        Flight *head = nullptr;
        Flight *tail = nullptr;
        bool busy = false;
    };

    sim::Task<> routeTask(Packet pkt);

    // Coalesced engine (mesh.cc): start/finish one hop, hand the link
    // to the next waiter, eject at the destination.
    void startHop(Flight *f);
    void hopDone(Flight *f);
    void grantLink(Flight *f);
    void ejectFlight(Flight *f);

    Flight *allocFlight();
    void freeFlight(Flight *f);

    int linkIndex(NodeId at, Dir d) const { return int(at) * numDirs + int(d); }

    sim::Simulator &sim_;
    int width_;
    int height_;
    Tick hopLatency_;
    std::uint64_t linkBps_;
    std::vector<std::unique_ptr<Router>> routers_;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t inflight_ = 0;
    Engine engine_ = defaultEngine();
    bool coalescedActive_ = false;

    // Precomputed XY route tables (built once in the ctor): next
    // direction and hop count per (at, dst) pair, neighbor per
    // (node, dir). 0xFF / -1 mark "at == dst" / mesh edges.
    std::vector<std::uint8_t> nextDirTbl_;
    std::vector<std::uint16_t> hopsTbl_;
    std::vector<std::int32_t> neighborTbl_;

    // Link ledgers and the flight pool (coalesced engine).
    std::vector<LinkLedger> ledgers_;
    std::vector<std::unique_ptr<Flight>> flights_;
    Flight *freeFlights_ = nullptr;

    stats::Group stats_;
    std::vector<trace::TrackId> routerTracks_;
    // Per-packet path; stat lookups hoisted to construction.
    stats::Counter &statPacketsInjected_;
    stats::Counter &statBytesInjected_;
    stats::Counter &statPacketsDelivered_;
    stats::Distribution &statHops_;
};

} // namespace shrimp::net

#endif // SHRIMP_NET_MESH_HH
