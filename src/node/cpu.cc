#include "node/cpu.hh"

#include "sim/profile.hh"

namespace shrimp::node
{

Cpu::Cpu(sim::EventQueue &queue, const MachineConfig &cfg, std::string name)
    : queue_(queue), cfg_(cfg), lock_(queue, 1), stats_(std::move(name)),
      track_(trace::track(stats_.name())),
      statUses_(stats_.counter("uses")),
      statBusyNs_(stats_.counter("busyNs"))
{
}

sim::Task<>
Cpu::use(Tick t)
{
    co_await lock_.acquire();
    sim::profile::retag(sim::profile::Subsys::Cpu);
    trace::ScopedSpan span(queue_, track_, "compute");
    // analyze: allow(suspend-under-exclusion) — this Delay IS the
    // occupancy being modeled; the lock is held exactly for its span.
    co_await sim::Delay{queue_, t};
    busyTime_ += t;
    statUses_ += 1;
    statBusyNs_ += t;
    lock_.release();
}

Tick
Cpu::copyTime(std::size_t bytes, CacheMode mode) const
{
    return units::transferTime(bytes, cfg_.copyBw(mode));
}

} // namespace shrimp::node
