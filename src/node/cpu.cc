#include "node/cpu.hh"

namespace shrimp::node
{

Cpu::Cpu(sim::EventQueue &queue, const MachineConfig &cfg)
    : queue_(queue), cfg_(cfg), lock_(queue, 1)
{
}

sim::Task<>
Cpu::use(Tick t)
{
    co_await lock_.acquire();
    co_await sim::Delay{queue_, t};
    busyTime_ += t;
    lock_.release();
}

Tick
Cpu::copyTime(std::size_t bytes, CacheMode mode) const
{
    return units::transferTime(bytes, cfg_.copyBw(mode));
}

} // namespace shrimp::node
