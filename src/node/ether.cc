#include "node/ether.hh"

#include "base/logging.hh"

namespace shrimp::node
{

EtherNet::EtherNet(sim::Simulator &sim, const MachineConfig &cfg,
                   int num_nodes)
    : sim_(sim), cfg_(cfg), numNodes_(num_nodes),
      segment_(sim.queue(), cfg.etherBw, "ether"),
      nextPort_(num_nodes, 1024)
{
}

// analyze: lookahead-entry(ether) — the daemon side channel; every
// frame pays the shared-segment transfer before delivery.
void
EtherNet::send(NodeId from, std::uint16_t from_port, NodeId to,
               std::uint16_t port, std::vector<std::uint8_t> data)
{
    if (int(from) >= numNodes_ || int(to) >= numNodes_)
        panic("ether frame with out-of-range node id");
    EtherFrame frame{from, from_port, std::move(data)};
    sim_.spawn(deliver(to, port, std::move(frame)));
}

sim::Task<>
EtherNet::deliver(NodeId to, std::uint16_t port, EtherFrame frame)
{
    // One shared 10 Mb/s segment: serialization plus protocol-stack
    // latency per frame.
    // analyze: lookahead-charge(ether) — stack latency lower-bounds
    // every frame's charge.
    co_await segment_.transfer(frame.data.size() + 64, cfg_.etherLatency);
    ++delivered_;
    // analyze: lookahead-effect(deliver) — the frame lands in the
    // target node's receive queue.
    rxQueue(to, port).send(std::move(frame));
}

sim::Channel<EtherFrame> &
EtherNet::rxQueue(NodeId node, std::uint16_t port)
{
    std::uint64_t key = (std::uint64_t(node) << 16) | port;
    auto &q = rx_[key];
    if (!q)
        q = std::make_unique<sim::Channel<EtherFrame>>(sim_.queue());
    return *q;
}

std::uint16_t
EtherNet::allocPort(NodeId node)
{
    return nextPort_.at(node)++;
}

} // namespace shrimp::node
