#include "node/node.hh"

#include "base/logging.hh"
#include "node/ether.hh"
#include "node/process.hh"

namespace shrimp::node
{

Node::Node(sim::Simulator &sim, const MachineConfig &cfg, NodeId id,
           sim::Channel<net::Packet> &router_eject)
    : sim_(sim), cfg_(cfg), id_(id),
      mem_(sim.queue(), cfg.nodeMemBytes, cfg.pageBytes,
           "node" + std::to_string(id) + ".mem"),
      eisa_(sim.queue(), cfg.eisaDmaBw,
            "node" + std::to_string(id) + ".eisa"),
      cpu_(sim.queue(), cfg, "node" + std::to_string(id) + ".cpu"),
      nic_(sim, cfg, id, mem_, eisa_, router_eject)
{
}

Node::~Node() = default;

EtherNet &
Node::ether()
{
    if (!ether_)
        panic("node has no Ethernet attached");
    return *ether_;
}

void
Node::start()
{
    nic_.start();
}

Process &
Node::spawnProcess()
{
    procs_.push_back(std::make_unique<Process>(*this, int(procs_.size())));
    return *procs_.back();
}

} // namespace shrimp::node
