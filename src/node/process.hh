/**
 * @file
 * Process: a user process on a node. Owns an address space and provides
 * the *timed* memory operations that all user-level code in the
 * communication libraries is written against:
 *
 *  - write()/copy() model CPU stores, charge copy time according to the
 *    destination page's cache mode, and pass each chunk to the NIC snoop
 *    logic (so stores to automatic-update-bound pages become packets,
 *    "eliminating the need for an explicit send operation");
 *  - waitWord32() is the polling receive primitive: it charges a poll
 *    cost per check and sleeps on memory write watchpoints in between,
 *    plus the cache-invalidation penalty when the polled page is cached;
 *  - peek()/poke() are untimed accessors for test setup and inspection.
 */

#ifndef SHRIMP_NODE_PROCESS_HH
#define SHRIMP_NODE_PROCESS_HH

#include <cstdint>
#include <functional>

#include "base/config.hh"
#include "mem/address_space.hh"
#include "node/node.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace shrimp::node
{

class Process
{
  public:
    Process(Node &node, int pid);

    Node &node() { return node_; }
    NodeId nodeId() const { return node_.id(); }
    int pid() const { return pid_; }
    mem::AddressSpace &as() { return as_; }
    const MachineConfig &config() const { return node_.config(); }
    sim::Simulator &sim() { return node_.sim(); }

    /** Race-detector actor id of this process's CPU accesses (only
     *  meaningful in SHRIMP_CHECK builds; noActor otherwise). */
    std::uint32_t raceActor() const { return raceActor_; }

    /** Allocate fresh page-aligned memory. */
    VAddr alloc(std::size_t bytes, CacheMode mode = CacheMode::WriteBack);

    // ---- untimed accessors (test setup / inspection; no snooping) -----
    void poke(VAddr addr, const void *src, std::size_t n);
    void peek(VAddr addr, void *dst, std::size_t n) const;
    std::uint32_t peek32(VAddr addr) const;
    void poke32(VAddr addr, std::uint32_t v);
    /** Like peek, but a pure harness backdoor: never attributed to this
     *  process by the race detector. Use for omniscient verification
     *  reads that model no CPU access of the simulated program. */
    void debugPeek(VAddr addr, void *dst, std::size_t n) const;

    // ---- timed operations ---------------------------------------------
    /** Occupy the CPU for @p t ticks. */
    sim::Task<> compute(Tick t);

    /** Store @p n bytes at @p dst: charges copy time by the destination
     *  cache mode and feeds the NIC snoop logic chunk by chunk, so
     *  stores into AU-bound pages stream out as packets. */
    sim::Task<> write(VAddr dst, const void *src, std::size_t n);

    /** Load @p n bytes from @p src into host memory. */
    sim::Task<> read(VAddr src, void *dst, std::size_t n);

    /** Local memcpy between two mapped regions (timed, snooped). */
    sim::Task<> copy(VAddr dst, VAddr src, std::size_t n);

    sim::Task<> store32(VAddr addr, std::uint32_t v);
    sim::Task<std::uint32_t> load32(VAddr addr);

    /**
     * Poll the word at @p addr until @p pred(value) holds; returns the
     * satisfying value. This is the canonical receive-side wait.
     */
    sim::Task<std::uint32_t> waitWord32(
        VAddr addr, std::function<bool(std::uint32_t)> pred);

    /** Poll until the word differs from @p not_value. */
    sim::Task<std::uint32_t> waitWord32Ne(VAddr addr,
                                          std::uint32_t not_value);

    /** Poll until the word equals @p value. */
    sim::Task<std::uint32_t> waitWord32Eq(VAddr addr, std::uint32_t value);

    /**
     * One iteration of a multi-location poll loop: charge one poll
     * check's cost, then sleep until the next write to node memory.
     * Callers rescan their predicate afterwards.
     */
    sim::Task<> pollSleep();

    /**
     * Targeted pollSleep: sleep until a write overlaps [addr, addr+n).
     * Only correct when the caller's rescan reads nothing outside that
     * range; scans over several buffers keep the untargeted form.
     */
    sim::Task<> pollSleep(VAddr addr, std::size_t n);

    /** Charge the cache-invalidation detection penalty for data that
     *  just arrived at @p addr (no charge for uncached pages). */
    sim::Task<> detectPenalty(VAddr addr);

  private:
    /** Shared loop behind waitWord32Eq/Ne: the equality/inequality
     *  predicate is two scalars, not a std::function, because these run
     *  once per poll check on the hottest receive path. */
    sim::Task<std::uint32_t> pollWord32(VAddr addr, std::uint32_t ref,
                                        bool want_equal);

    /** Watchpoint awaiter for a poller that rescans [addr, addr+n):
     *  range-keyed when config().targetedWakeups, any-write otherwise. */
    sim::AddrCondition::WaitAwaiter sleepUntilWrite(VAddr addr,
                                                    std::size_t n);

    Node &node_;
    int pid_;
    mem::AddressSpace as_;
    std::uint32_t raceActor_ = 0xffffffffu; // check::noActor
};

} // namespace shrimp::node

#endif // SHRIMP_NODE_PROCESS_HH
