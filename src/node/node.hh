/**
 * @file
 * Node: one DEC 560ST PC of the prototype — Pentium CPU (cost model),
 * main memory, the EISA expansion bus, and the SHRIMP network interface
 * plugged into both the memory bus (snooping) and the EISA bus (DMA).
 */

#ifndef SHRIMP_NODE_NODE_HH
#define SHRIMP_NODE_NODE_HH

#include <memory>
#include <vector>

#include "base/config.hh"
#include "mem/memory.hh"
#include "net/packet.hh"
#include "nic/shrimp_nic.hh"
#include "node/cpu.hh"
#include "sim/bus.hh"
#include "sim/simulator.hh"

namespace shrimp::node
{

class EtherNet;
class Process;

class Node
{
  public:
    Node(sim::Simulator &sim, const MachineConfig &cfg, NodeId id,
         sim::Channel<net::Packet> &router_eject);
    ~Node();

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;

    /** Start the NIC service loops. */
    void start();

    /** Attach the machine's Ethernet (wired by Machine). */
    void setEther(EtherNet *ether) { ether_ = ether; }

    /** The commodity Ethernet side channel. */
    EtherNet &ether();

    /** Create a new user process on this node. */
    Process &spawnProcess();

    NodeId id() const { return id_; }
    sim::Simulator &sim() { return sim_; }
    const MachineConfig &config() const { return cfg_; }
    mem::Memory &memory() { return mem_; }
    sim::Bus &eisa() { return eisa_; }
    Cpu &cpu() { return cpu_; }
    nic::ShrimpNic &nic() { return nic_; }

    std::size_t numProcesses() const { return procs_.size(); }
    Process &process(std::size_t i) { return *procs_.at(i); }

  private:
    sim::Simulator &sim_;
    const MachineConfig &cfg_;
    NodeId id_;
    mem::Memory mem_;
    sim::Bus eisa_;
    Cpu cpu_;
    nic::ShrimpNic nic_;
    EtherNet *ether_ = nullptr;
    std::vector<std::unique_ptr<Process>> procs_;
};

} // namespace shrimp::node

#endif // SHRIMP_NODE_NODE_HH
