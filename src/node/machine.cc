#include "node/machine.hh"

#include <ostream>

#include "base/config.hh"
#include "check/check.hh"
#include "check/race.hh"
#include "mem/zero_region.hh"

namespace shrimp::node
{

Machine::Machine(MachineConfig cfg)
    : cfg_((applyEnvOverrides(), cfg.validate(), std::move(cfg))),
      mesh_(sim_, cfg_), ether_(sim_, cfg_, cfg_.numNodes())
{
    // The detector is process-global; the most recent machine's
    // configuration governs (benchmarks build one machine at a time).
    SHRIMP_CHECK_HOOK(check::RaceDetector::instance().setReadRecCap(
        cfg_.raceReadRecCap));
    int n = cfg_.numNodes();
    nodes_.reserve(n);
    for (NodeId i = 0; i < NodeId(n); ++i) {
        nodes_.push_back(std::make_unique<Node>(
            sim_, cfg_, i, mesh_.router(i).ejectQueue()));
    }
    for (auto &nd : nodes_) {
        // Injection hook: register the packet as in flight at the
        // destination NIC (for unexport drains), then hand it to the
        // mesh.
        nd->nic().setInjector([this](net::Packet pkt) {
            nodes_.at(pkt.dst)->nic().incoming().noteInflight(pkt.destAddr);
            mesh_.inject(std::move(pkt));
        });
        nd->setEther(&ether_);
        nd->start();
    }
}

void
Machine::dumpStats(std::ostream &os)
{
    os << "mesh.packetsDelivered " << mesh_.packetsDelivered() << "\n";
    os << "ether.framesDelivered " << ether_.framesDelivered() << "\n";
    // Mapping-pool effectiveness (process-wide): back-to-back machine
    // lifetimes should reuse parked regions, not fault fresh pages.
    os << "mem.zeropool.reuse " << mem::ZeroRegion::poolReuseCount()
       << "\n";
    os << "mem.zeropool.fresh " << mem::ZeroRegion::poolFreshCount()
       << "\n";
    os << "mem.zeropool.bytesRezeroed "
       << mem::ZeroRegion::poolBytesRezeroed() << "\n";
    // Surface read-record drops in every stats dump: a nonzero value
    // means the race detector has a blind spot (raise raceReadRecCap).
    SHRIMP_CHECK_HOOK(os << "racecheck.readRecsDropped "
                         << check::RaceDetector::instance()
                                .readRecsDropped()
                         << "\n");
    for (auto &nd : nodes_) {
        std::string p = "node" + std::to_string(nd->id()) + ".";
        auto &nic = nd->nic();
        os << p << "nic.packetsInjected " << nic.packetsInjected()
           << "\n";
        os << p << "nic.packetsFormed "
           << nic.packetizer().packetsFormed() << "\n";
        os << p << "nic.writesCombined "
           << nic.packetizer().writesCombined() << "\n";
        os << p << "nic.timerFlushes "
           << nic.packetizer().timerFlushes() << "\n";
        os << p << "nic.duTransfers " << nic.duEngine().transfers()
           << "\n";
        os << p << "nic.duBytes " << nic.duEngine().bytesSent() << "\n";
        os << p << "nic.packetsDelivered "
           << nic.incoming().packetsDelivered() << "\n";
        os << p << "nic.bytesDelivered "
           << nic.incoming().bytesDelivered() << "\n";
        os << p << "nic.packetsDropped "
           << nic.incoming().packetsDropped() << "\n";
        os << p << "nic.notifications "
           << nic.incoming().notifications() << "\n";
        os << p << "nic.freezes " << nic.incoming().freezes() << "\n";
        os << p << "eisa.bytes " << nd->eisa().bytesMoved() << "\n";
        os << p << "eisa.transactions " << nd->eisa().transactions()
           << "\n";
        os << p << "eisa.busyNs " << nd->eisa().busyTime() << "\n";
        os << p << "cpu.busyNs " << nd->cpu().busyTime() << "\n";
        os << p << "mem.writes " << nd->memory().writeCount() << "\n";
    }
}

} // namespace shrimp::node
