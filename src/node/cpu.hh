/**
 * @file
 * Cpu: the node processor as a serially-shared timing resource. All
 * compute performed by the (possibly several) processes of a node flows
 * through use(), which serializes them and charges simulated time. The
 * per-operation costs of the 60 MHz Pentium are in MachineConfig.
 */

#ifndef SHRIMP_NODE_CPU_HH
#define SHRIMP_NODE_CPU_HH

#include <string>

#include "base/config.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "base/types.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace shrimp::node
{

class Cpu
{
  public:
    Cpu(sim::EventQueue &queue, const MachineConfig &cfg,
        std::string name = "cpu");

    /** Occupy the CPU for @p t ticks of computation. */
    sim::Task<> use(Tick t);

    /** Time to memcpy @p bytes to a destination with cache mode
     *  @p mode (excluding the per-call overhead). */
    Tick copyTime(std::size_t bytes, CacheMode mode) const;

    const MachineConfig &config() const { return cfg_; }
    Tick busyTime() const { return busyTime_; }
    stats::Group &stats() { return stats_; }

  private:
    sim::EventQueue &queue_;
    const MachineConfig &cfg_;
    sim::Semaphore lock_;
    Tick busyTime_ = 0;
    stats::Group stats_;
    trace::TrackId track_;
    // use() is the hottest call in the simulator (every poll iteration
    // lands here); stat lookups are hoisted to construction.
    stats::Counter &statUses_;
    stats::Counter &statBusyNs_;
};

} // namespace shrimp::node

#endif // SHRIMP_NODE_CPU_HH
