/**
 * @file
 * Machine: the whole SHRIMP prototype — the simulator clock, the mesh
 * routing backplane, the Ethernet side channel, and the PC nodes with
 * their network interfaces, all wired together. The default
 * configuration is the paper's 4-node (2x2) system.
 */

#ifndef SHRIMP_NODE_MACHINE_HH
#define SHRIMP_NODE_MACHINE_HH

#include <memory>
#include <ostream>
#include <vector>

#include "base/config.hh"
#include "base/ownership.hh"
#include "net/mesh.hh"
#include "node/ether.hh"
#include "node/node.hh"
#include "node/process.hh"
#include "sim/simulator.hh"

namespace shrimp::node
{

class Machine
{
    SHRIMP_SHARD_SHARED(
        "composition root: owns the mesh, the EtherNet and every node");

  public:
    explicit Machine(MachineConfig cfg = MachineConfig{});

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    sim::Simulator &sim() { return sim_; }
    const MachineConfig &config() const { return cfg_; }
    net::Mesh &mesh() { return mesh_; }
    EtherNet &ether() { return ether_; }

    int numNodes() const { return int(nodes_.size()); }
    Node &node(NodeId id) { return *nodes_.at(id); }

    /** Convenience: spawn a user process on node @p id. */
    Process &spawnProcess(NodeId id) { return node(id).spawnProcess(); }

    /**
     * Dump machine-wide statistics (per-node NIC and bus counters,
     * mesh totals) in gem5-style "component.stat value" lines.
     */
    void dumpStats(std::ostream &os);

  private:
    MachineConfig cfg_;
    sim::Simulator sim_;
    net::Mesh mesh_;
    EtherNet ether_;
    std::vector<std::unique_ptr<Node>> nodes_;
};

} // namespace shrimp::node

#endif // SHRIMP_NODE_MACHINE_HH
