/**
 * @file
 * EtherNet: the commodity Ethernet that connects the PC nodes besides
 * the fast backplane (paper section 3.1). It carries diagnostics and
 * low-priority control traffic: the SHRIMP daemons' import/export
 * negotiation and the socket library's connection establishment. It is
 * slow (milliseconds) and never on the data critical path.
 *
 * Frames are addressed to a (node, port) pair; each pair has a FIFO
 * receive queue created on demand.
 */

#ifndef SHRIMP_NODE_ETHER_HH
#define SHRIMP_NODE_ETHER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "base/config.hh"
#include "base/ownership.hh"
#include "sim/bus.hh"
#include "sim/simulator.hh"
#include "sim/sync.hh"

namespace shrimp::node
{

struct EtherFrame
{
    NodeId src = invalidNode;
    std::uint16_t srcPort = 0;
    std::vector<std::uint8_t> data;
};

class EtherNet
{
    SHRIMP_SHARD_SHARED(
        "one shared segment; its ~1 ms latency is the natural "
        "cross-shard synchronization point");

  public:
    /** Port reserved for the SHRIMP daemons. */
    static constexpr std::uint16_t daemonPort = 1;

    EtherNet(sim::Simulator &sim, const MachineConfig &cfg, int num_nodes);

    /** Transmit @p data to (@p to, @p port); delivery is asynchronous
     *  but ordered (one shared segment). */
    void send(NodeId from, std::uint16_t from_port, NodeId to,
              std::uint16_t port, std::vector<std::uint8_t> data);

    /** The receive queue for (node, port); created on demand. */
    sim::Channel<EtherFrame> &rxQueue(NodeId node, std::uint16_t port);

    /** Allocate a fresh ephemeral port number for @p node. */
    std::uint16_t allocPort(NodeId node);

    std::uint64_t framesDelivered() const { return delivered_; }

  private:
    sim::Task<> deliver(NodeId to, std::uint16_t port, EtherFrame frame);

    sim::Simulator &sim_;
    const MachineConfig &cfg_;
    int numNodes_;
    sim::Bus segment_;
    std::map<std::uint64_t, std::unique_ptr<sim::Channel<EtherFrame>>> rx_;
    std::vector<std::uint16_t> nextPort_;
    std::uint64_t delivered_ = 0;
};

} // namespace shrimp::node

#endif // SHRIMP_NODE_ETHER_HH
