#include "node/process.hh"

#include <algorithm>
#include <vector>

#include "base/logging.hh"
#include "check/check.hh"
#include "check/race.hh"

namespace shrimp::node
{

Process::Process(Node &node, int pid)
    : node_(node), pid_(pid), as_(node.memory())
{
    SHRIMP_CHECK_HOOK(
        raceActor_ = check::RaceDetector::instance().registerActor(
            logging::format("node%u.p%d", unsigned(node.id()), pid),
            check::ActorKind::Cpu));
}

VAddr
Process::alloc(std::size_t bytes, CacheMode mode)
{
    return as_.alloc(bytes, mode);
}

void
Process::poke(VAddr addr, const void *src, std::size_t n)
{
    node_.memory().write(as_.translateRange(addr, n), src, n);
}

void
Process::peek(VAddr addr, void *dst, std::size_t n) const
{
    // Attributed (unlike poke): protocol layers model their CPU loads
    // with peek, and a peek that observes a receive flag is exactly the
    // poll the race detector turns into an ordering edge.
    SHRIMP_RACE_SCOPE(raceActor_);
    node_.memory().read(as_.translateRange(addr, n), dst, n);
}

void
Process::debugPeek(VAddr addr, void *dst, std::size_t n) const
{
    // Backdoor like poke: an omniscient harness verification read,
    // invisible to the race detector (no actor attribution).
    node_.memory().read(as_.translateRange(addr, n), dst, n);
}

std::uint32_t
Process::peek32(VAddr addr) const
{
#ifndef SHRIMP_CHECK
    // Word fast path: flag and ring polls are the hottest reads in the
    // system (NX descriptor scans, credit drains), and an aligned word
    // never crosses a page, so one page translation plus the inline
    // word read replaces the generic range-translate + memcpy dispatch.
    // Checked builds keep the generic path below so the race detector
    // sees every access.
    if (addr % sizeof(std::uint32_t) == 0)
        return node_.memory().read32(as_.translate(addr));
#endif
    std::uint32_t v;
    peek(addr, &v, sizeof(v));
    return v;
}

void
Process::poke32(VAddr addr, std::uint32_t v)
{
    poke(addr, &v, sizeof(v));
}

sim::Task<>
Process::compute(Tick t)
{
    // Forward the task directly (like waitWord32Eq/Ne): no wrapper
    // coroutine frame for the single hottest cost-charge call.
    return node_.cpu().use(t);
}

sim::Task<>
Process::write(VAddr dst, const void *src, std::size_t n)
{
    const MachineConfig &cfg = config();
    const auto *p = static_cast<const std::uint8_t *>(src);

    co_await node_.cpu().use(cfg.copyCallOverhead);
    std::size_t done = 0;
    while (done < n) {
        VAddr va = dst + VAddr(done);
        PAddr pa = as_.translate(va);
        std::size_t to_page = cfg.pageBytes - (pa % cfg.pageBytes);
        std::size_t chunk =
            std::min({n - done, to_page, cfg.auCombineLimit});
        CacheMode mode = as_.cacheMode(va);
        co_await node_.cpu().use(node_.cpu().copyTime(chunk, mode));
        {
            // Scope covers store + snoop but no co_await.
            SHRIMP_RACE_SCOPE(raceActor_);
            node_.memory().write(pa, p + done, chunk);
            node_.nic().snoopWrite(pa, p + done, chunk);
        }
        done += chunk;
    }
}

sim::Task<>
Process::read(VAddr src, void *dst, std::size_t n)
{
    const MachineConfig &cfg = config();
    co_await node_.cpu().use(cfg.copyCallOverhead +
                             node_.cpu().copyTime(n, CacheMode::WriteBack));
    peek(src, dst, n);
}

sim::Task<>
Process::copy(VAddr dst, VAddr src, std::size_t n)
{
    // Read the (local) source and push it through the store path; the
    // copy cost is charged by write() according to the destination
    // page's cache mode, modelling an overlapped load/store memcpy.
    std::vector<std::uint8_t> tmp(n);
    peek(src, tmp.data(), n);
    co_await write(dst, tmp.data(), n);
}

sim::Task<>
Process::store32(VAddr addr, std::uint32_t v)
{
    co_await write(addr, &v, sizeof(v));
}

sim::Task<std::uint32_t>
Process::load32(VAddr addr)
{
    co_await node_.cpu().use(config().cpuOpCost);
    co_return peek32(addr);
}

sim::Task<std::uint32_t>
Process::waitWord32(VAddr addr, std::function<bool(std::uint32_t)> pred)
{
    const MachineConfig &cfg = config();
    for (;;) {
        co_await node_.cpu().use(cfg.pollCheckCost);
        std::uint32_t v = peek32(addr);
        if (pred(v)) {
            // The DMA that delivered the data invalidated the polled
            // cache line; cached pages pay a miss on the detecting read.
            if (as_.cacheMode(addr) != CacheMode::Uncached)
                co_await sim::Delay{sim().queue(), cfg.wtReceivePenalty};
            co_return v;
        }
        co_await sleepUntilWrite(addr, sizeof(std::uint32_t));
    }
}

sim::Task<>
Process::pollSleep()
{
    // Register the watchpoint *before* any suspension: the caller
    // checked its predicate synchronously just before awaiting us, so
    // no write can slip through unobserved. The poll-check cost is
    // charged on wakeup (it models the re-check that follows).
    co_await node_.memory().waitWrite();
    co_await node_.cpu().use(config().pollCheckCost);
}

sim::Task<>
Process::pollSleep(VAddr addr, std::size_t n)
{
    // Targeted variant for callers whose rescan only reads
    // [addr, addr+n): unrelated writes leave the task asleep.
    co_await sleepUntilWrite(addr, n);
    co_await node_.cpu().use(config().pollCheckCost);
}

sim::AddrCondition::WaitAwaiter
Process::sleepUntilWrite(VAddr addr, std::size_t n)
{
    // The knob picks the wakeup model: targeted waiters sleep on the
    // polled bytes; the calibrated default re-checks after every write
    // to node memory (see MachineConfig::targetedWakeups).
    mem::Memory &m = node_.memory();
    if (config().targetedWakeups)
        return m.waitWrite(as_.translateRange(addr, n), n);
    return m.waitWrite();
}

sim::Task<>
Process::detectPenalty(VAddr addr)
{
    if (as_.cacheMode(addr) != CacheMode::Uncached)
        co_await sim::Delay{sim().queue(), config().wtReceivePenalty};
}

sim::Task<std::uint32_t>
Process::pollWord32(VAddr addr, std::uint32_t ref, bool want_equal)
{
    // Same loop as waitWord32 (kept in sync), minus the type-erased
    // predicate — Eq/Ne cover every poll in the libraries.
    const MachineConfig &cfg = config();
    for (;;) {
        co_await node_.cpu().use(cfg.pollCheckCost);
        std::uint32_t v = peek32(addr);
        if ((v == ref) == want_equal) {
            if (as_.cacheMode(addr) != CacheMode::Uncached)
                co_await sim::Delay{sim().queue(), cfg.wtReceivePenalty};
            co_return v;
        }
        co_await sleepUntilWrite(addr, sizeof(std::uint32_t));
    }
}

sim::Task<std::uint32_t>
Process::waitWord32Ne(VAddr addr, std::uint32_t not_value)
{
    // Forward the task directly: no wrapper coroutine frame per call.
    return pollWord32(addr, not_value, false);
}

sim::Task<std::uint32_t>
Process::waitWord32Eq(VAddr addr, std::uint32_t value)
{
    return pollWord32(addr, value, true);
}

} // namespace shrimp::node
