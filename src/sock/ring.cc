#include "sock/ring.hh"

#include <algorithm>
#include <vector>

#include "base/logging.hh"

namespace shrimp::sock
{

namespace
{

/** Receive-side rescans read the tail (+0) and fin (+16) control words;
 *  this span covers both (and the acked word between them, whose writes
 *  harmlessly re-run the scan). */
constexpr std::size_t ctlSpanBytes = 20;

} // namespace

ByteStream::ByteStream(vmmc::Endpoint &ep, std::size_t ring_bytes)
    : ep_(ep), ringBytes_(ring_bytes)
{
    const MachineConfig &cfg = ep.proc().config();
    if (ring_bytes == 0 || ring_bytes % cfg.pageBytes != 0)
        fatal("stream ring size must be a whole number of pages");
    if (ring_bytes % 4 != 0)
        fatal("stream ring size must be word aligned");
}

sim::Task<vmmc::Status>
ByteStream::exportLocal(std::uint32_t key, vmmc::Perm perm)
{
    const MachineConfig &cfg = ep_.proc().config();
    region_ = ep_.proc().alloc(ringBytes_ + cfg.pageBytes);
    co_return co_await ep_.exportBuffer(key, region_,
                                        ringBytes_ + cfg.pageBytes, perm);
}

sim::Task<vmmc::Status>
ByteStream::attachRemote(NodeId peer, std::uint32_t key)
{
    const MachineConfig &cfg = ep_.proc().config();
    auto r = co_await ep_.import(peer, key);
    if (r.status != vmmc::Status::Ok)
        co_return r.status;
    importHandle_ = r.handle;

    auData_ = ep_.proc().alloc(ringBytes_);
    vmmc::AuOptions data_opts; // combining on: streams like big packets
    vmmc::Status s = co_await ep_.bindAu(auData_, ringBytes_,
                                         importHandle_, 0, data_opts);
    if (s != vmmc::Status::Ok)
        co_return s;

    auCtl_ = ep_.proc().alloc(cfg.pageBytes);
    vmmc::AuOptions ctl_opts;
    ctl_opts.combinable = false; // control words leave immediately
    s = co_await ep_.bindAu(auCtl_, cfg.pageBytes, importHandle_,
                            ringBytes_, ctl_opts);
    if (s != vmmc::Status::Ok)
        co_return s;

    stage_ = ep_.proc().alloc(std::min<std::size_t>(ringBytes_, 8192));
    co_return vmmc::Status::Ok;
}

sim::Task<>
ByteStream::detachRemote()
{
    if (importHandle_ >= 0) {
        int h = importHandle_;
        importHandle_ = -1;
        co_await ep_.unimport(h);
    }
}

// ---- sending --------------------------------------------------------------

std::size_t
ByteStream::freeSpace() const
{
    std::uint32_t acked = ep_.proc().peek32(VAddr(region_ + ctlOff() + 8));
    return ringBytes_ - std::size_t(written_ - acked);
}

sim::Task<std::size_t>
ByteStream::waitSpace(std::size_t min_bytes)
{
    node::Process &proc = ep_.proc();
    for (;;) {
        std::size_t free = freeSpace();
        if (free >= min_bytes)
            co_return free;
        // Space opens up only when the peer advances the acked word.
        co_await proc.pollSleep(VAddr(region_ + ctlOff() + 8),
                                sizeof(std::uint32_t));
    }
}

sim::Task<>
ByteStream::publishTail()
{
    publishedTail_ = written_;
    co_await ep_.proc().write(VAddr(auCtl_ + 0), &written_,
                              sizeof(written_));
}

sim::Task<>
ByteStream::publishAck()
{
    publishedAck_ = readCount_;
    co_await ep_.proc().write(VAddr(auCtl_ + 8), &readCount_,
                              sizeof(readCount_));
}

sim::Task<>
ByteStream::flushTail()
{
    if (publishedTail_ != written_)
        co_await publishTail();
}

sim::Task<>
ByteStream::flushAck()
{
    if (publishedAck_ != readCount_)
        co_await publishAck();
}

sim::Task<>
ByteStream::putChunk(const void *host, VAddr src, std::size_t len,
                     StreamProto proto)
{
    node::Process &proc = ep_.proc();
    std::size_t off = written_ % ringBytes_;
    SHRIMP_ASSERT(off + len <= ringBytes_, "chunk crosses ring edge");

    switch (proto) {
      case StreamProto::AuTwoCopy: {
        // Copy into the AU-bound send buffer; the copy acts as the send.
        std::vector<std::uint8_t> tmp;
        const void *data = host;
        if (!data) {
            tmp.resize(len);
            proc.peek(src, tmp.data(), len);
            data = tmp.data();
        }
        co_await proc.write(VAddr(auData_ + off), data, len);
        break;
      }
      case StreamProto::DuOneCopy: {
        SHRIMP_ASSERT(host == nullptr, "DU-1copy needs a simulated source");
        vmmc::Status s = co_await ep_.send(importHandle_, off, src, len);
        if (s != vmmc::Status::Ok)
            panic(std::string("stream DU send failed: ") +
                  vmmc::statusName(s));
        break;
      }
      case StreamProto::DuTwoCopy: {
        std::vector<std::uint8_t> tmp;
        const void *data = host;
        if (!data) {
            tmp.resize(len);
            proc.peek(src, tmp.data(), len);
            data = tmp.data();
        }
        std::size_t done = 0;
        while (done < len) {
            std::size_t n = std::min(len - done, std::size_t(8192));
            co_await proc.write(stage_,
                                static_cast<const std::uint8_t *>(data) +
                                    done, n);
            vmmc::Status s = co_await ep_.send(importHandle_,
                                               off + done, stage_, n);
            if (s != vmmc::Status::Ok)
                panic(std::string("stream DU send failed: ") +
                      vmmc::statusName(s));
            done += n;
        }
        break;
      }
    }
    written_ += std::uint32_t(len);
}

sim::Task<>
ByteStream::send(VAddr src, std::size_t len, StreamProto proto)
{
    std::size_t sent = 0;
    while (sent < len) {
        // Reserve space; a deliberate update rounds to whole words, so
        // only hand it word-multiple chunks that fit the reservation.
        std::size_t free = co_await waitSpace(4);
        std::size_t to_edge = ringBytes_ - (written_ % ringBytes_);
        std::size_t chunk = std::min({len - sent, free, to_edge});

        StreamProto p = proto;
        if (p == StreamProto::DuOneCopy) {
            // Alignment dictates the protocol per chunk (paper 4.3): a
            // misaligned source or ring position falls back to two-copy.
            if ((src + sent) % 4 != 0 || (written_ % ringBytes_) % 4 != 0)
                p = StreamProto::DuTwoCopy;
        }
        if (p != StreamProto::AuTwoCopy && chunk % 4 != 0) {
            // The wire rounds DU lengths up to words; keep the rounding
            // inside our reservation, or fall back for short tails.
            if (chunk == len - sent && chunk + 4 <= std::min(free, to_edge))
                ; // rounding pad fits after the chunk
            else if (chunk >= 4)
                chunk &= ~std::size_t(3);
            else
                p = StreamProto::AuTwoCopy; // tiny misfit tail: AU copy
        }
        co_await putChunk(nullptr, src + VAddr(sent), chunk, p);
        sent += chunk;
        // The control word goes out once per transfer (send call), not
        // per chunk — matching the paper's protocols. A half-full ring
        // of unpublished data forces an intermediate publish so flow
        // control cannot wedge on messages larger than the ring.
        if (written_ - publishedTail_ >= ringBytes_ / 2)
            co_await publishTail();
    }
    co_await flushTail();
}

sim::Task<>
ByteStream::sendHost(const void *data, std::size_t len, StreamProto proto,
                     bool publish)
{
    if (proto == StreamProto::DuOneCopy)
        proto = StreamProto::DuTwoCopy; // host bytes always need staging
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::size_t sent = 0;
    while (sent < len) {
        std::size_t min_need = proto == StreamProto::AuTwoCopy ? 1 : 4;
        std::size_t free = co_await waitSpace(min_need);
        std::size_t to_edge = ringBytes_ - (written_ % ringBytes_);
        std::size_t chunk = std::min({len - sent, free, to_edge});
        if (proto != StreamProto::AuTwoCopy && chunk % 4 != 0) {
            // Keep deliberate-update word rounding inside the space we
            // reserved.
            if (!(chunk == len - sent &&
                  chunk + 4 <= std::min(free, to_edge))) {
                if (chunk >= 4)
                    chunk &= ~std::size_t(3);
                else
                    proto = StreamProto::AuTwoCopy;
            }
        }
        co_await putChunk(p + sent, 0, chunk, proto);
        sent += chunk;
        if (publish || written_ - publishedTail_ >= ringBytes_ / 2)
            co_await publishTail();
    }
}

sim::Task<>
ByteStream::sendFin()
{
    std::uint32_t one = 1;
    co_await ep_.proc().write(VAddr(auCtl_ + 16), &one, sizeof(one));
}

// ---- receiving --------------------------------------------------------

std::size_t
ByteStream::available() const
{
    std::uint32_t tail = ep_.proc().peek32(VAddr(region_ + ctlOff() + 0));
    return std::size_t(tail - readCount_);
}

bool
ByteStream::finReceived() const
{
    return ep_.proc().peek32(VAddr(region_ + ctlOff() + 16)) != 0;
}

sim::Task<std::size_t>
ByteStream::recv(VAddr dst, std::size_t maxlen)
{
    node::Process &proc = ep_.proc();
    for (;;) {
        std::size_t avail = available();
        if (avail > 0) {
            co_await proc.detectPenalty(region_);
            std::size_t n = std::min(avail, maxlen);
            std::size_t done = 0;
            while (done < n) {
                std::size_t off = readCount_ % ringBytes_;
                std::size_t chunk = std::min(n - done, ringBytes_ - off);
                co_await proc.copy(dst + VAddr(done),
                                   VAddr(region_ + off), chunk);
                readCount_ += std::uint32_t(chunk);
                done += chunk;
            }
            co_await publishAck();
            co_return n;
        }
        if (finReceived())
            co_return 0;
        // The rescan reads the tail (+0) and fin (+16) words; one span
        // over the control block covers both.
        co_await proc.pollSleep(VAddr(region_ + ctlOff()),
                                ctlSpanBytes);
    }
}

sim::Task<>
ByteStream::recvHost(void *out, std::size_t len)
{
    node::Process &proc = ep_.proc();
    auto *p = static_cast<std::uint8_t *>(out);
    std::size_t done = 0;
    while (done < len) {
        while (available() == 0) {
            if (finReceived())
                panic("stream closed mid-record");
            co_await proc.pollSleep(VAddr(region_ + ctlOff()),
                                    ctlSpanBytes);
        }
        std::size_t avail = available();
        std::size_t off = readCount_ % ringBytes_;
        std::size_t chunk = std::min({len - done, avail, ringBytes_ - off});
        // Reading out of the ring into the decoder's fields is the
        // receive-side copy.
        co_await proc.compute(
            proc.config().copyCallOverhead +
            proc.node().cpu().copyTime(chunk, CacheMode::WriteBack));
        proc.peek(VAddr(region_ + off), p + done, chunk);
        readCount_ += std::uint32_t(chunk);
        done += chunk;
        // Batch acknowledgements: publish when a quarter ring has been
        // consumed; callers flushAck() at message boundaries.
        if (readCount_ - publishedAck_ >= ringBytes_ / 4)
            co_await publishAck();
    }
}

} // namespace shrimp::sock
