/**
 * @file
 * ByteStream: one endpoint of a full-duplex, flow-controlled byte stream
 * over VMMC — the circular-buffer building block of the sockets library
 * (paper section 4.3) and of the VRPC stream layer (section 4.2).
 *
 * Each side owns a local receive region: a circular data buffer followed
 * by a control page. Only the *peer* writes a side's region:
 *
 *   ctl[0]  bytes the peer has written into my ring   (cumulative)
 *   ctl[8]  bytes the peer has consumed from its ring (acks my sends)
 *   ctl[16] peer's FIN flag
 *
 * Control words always travel by automatic update (non-combinable, so
 * they leave immediately); data travels by the protocol chosen per
 * send: AU through a bound staging area (the copy is the send), DU
 * straight from user memory (word alignment permitting), or DU from a
 * staging copy. In-order delivery guarantees the control word arrives
 * after its data.
 */

#ifndef SHRIMP_SOCK_RING_HH
#define SHRIMP_SOCK_RING_HH

#include <cstdint>

#include "vmmc/vmmc.hh"

namespace shrimp::sock
{

/** Data-transfer protocol for one send (the curves of Figure 7). */
enum class StreamProto
{
    AuTwoCopy, //!< copy into the AU-bound send area (sender copy = send)
    DuOneCopy, //!< deliberate update straight from user memory
    DuTwoCopy, //!< copy to staging, then one deliberate update
};

class ByteStream
{
  public:
    ByteStream(vmmc::Endpoint &ep, std::size_t ring_bytes);

    std::size_t ringBytes() const { return ringBytes_; }

    /** Allocate and export the local receive region under @p key. */
    sim::Task<vmmc::Status> exportLocal(std::uint32_t key, vmmc::Perm perm);

    /** Import the peer's region (exported under @p key on @p peer) and
     *  set up the AU bindings for data staging and control. */
    sim::Task<vmmc::Status> attachRemote(NodeId peer, std::uint32_t key);

    /** Tear down the import (close path). */
    sim::Task<> detachRemote();

    bool attached() const { return importHandle_ >= 0; }

    // ---- sending --------------------------------------------------------

    /** Space the peer's ring can accept right now. */
    std::size_t freeSpace() const;

    /**
     * Send @p len bytes from simulated memory @p src, blocking for ring
     * space as needed. Updates the peer's control word after the data.
     */
    sim::Task<> send(VAddr src, std::size_t len, StreamProto proto);

    /** Send from host memory (RPC marshalling writes straight into the
     *  AU-bound area: the encode is the transfer). The DU protocols
     *  stage the bytes in simulated memory first. With @p publish false
     *  the control word is deferred (VRPC publishes once per transfer,
     *  "the total length written from the last and previous transfers");
     *  a half-full ring still forces an intermediate publish so flow
     *  control cannot wedge. */
    sim::Task<> sendHost(const void *data, std::size_t len,
                         StreamProto proto = StreamProto::AuTwoCopy,
                         bool publish = true);

    /** Publish any deferred control-word update. */
    sim::Task<> flushTail();

    /** Publish any deferred consumption acknowledgement. */
    sim::Task<> flushAck();

    /** Receive exactly @p len bytes into host memory (RPC decode).
     *  Acknowledgements are batched; call flushAck() at message end. */
    sim::Task<> recvHost(void *out, std::size_t len);

    /** Raise our FIN flag at the peer. */
    sim::Task<> sendFin();

    // ---- receiving ------------------------------------------------------

    /** Bytes ready in the local ring. */
    std::size_t available() const;

    /** True once the peer raised FIN. */
    bool finReceived() const;

    /**
     * Receive up to @p maxlen bytes into simulated memory; blocks until
     * at least one byte (or FIN) is available.
     * @return bytes received; 0 means the peer closed and the ring
     *         drained.
     */
    sim::Task<std::size_t> recv(VAddr dst, std::size_t maxlen);

    std::uint64_t bytesSent() const { return written_; }
    std::uint64_t bytesReceived() const { return readCount_; }

    vmmc::Endpoint &endpoint() { return ep_; }

  private:
    std::size_t ctlOff() const { return ringBytes_; }

    /** Reserve @p want sendable bytes (waits for acks); returns the
     *  contiguous chunk [ring offset, length] to write next. */
    sim::Task<std::size_t> waitSpace(std::size_t min_bytes);

    /** Write one contiguous chunk into the peer ring at our write
     *  position. Host pointer or simulated address, per protocol. */
    sim::Task<> putChunk(const void *host, VAddr src, std::size_t len,
                         StreamProto proto);

    /** Publish our cumulative write counter to the peer. */
    sim::Task<> publishTail();

    /** Publish our cumulative read counter to the peer. */
    sim::Task<> publishAck();

    vmmc::Endpoint &ep_;
    std::size_t ringBytes_;

    VAddr region_ = 0;  //!< local ring + control page (peer writes)
    VAddr auData_ = 0;  //!< AU staging bound to the peer's ring
    VAddr auCtl_ = 0;   //!< AU staging bound to the peer's control page
    VAddr stage_ = 0;   //!< DU-2copy staging
    int importHandle_ = -1;

    std::uint32_t written_ = 0;   //!< bytes sent (cumulative)
    std::uint32_t readCount_ = 0; //!< bytes consumed locally (cumulative)
    std::uint32_t publishedTail_ = 0; //!< last control word sent
    std::uint32_t publishedAck_ = 0;  //!< last acknowledgement sent
};

} // namespace shrimp::sock

#endif // SHRIMP_SOCK_RING_HH
