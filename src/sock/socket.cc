#include "sock/socket.hh"

#include <cstring>

#include "base/logging.hh"
#include "base/span.hh"
#include "node/ether.hh"

namespace shrimp::sock
{

namespace
{

constexpr std::uint32_t synMagic = 0x53594e31;    // "SYN1"
constexpr std::uint32_t synAckMagic = 0x53594e32; // "SYN2"

/** Measured software overhead of the send/recv paths beyond the raw
 *  transfer: procedure calls, error checks, and socket data-structure
 *  access (the paper reports ~13 us for a small message, split about
 *  evenly between sender and receiver). */
constexpr Tick sendPathOverhead = 5300;
constexpr Tick recvPathOverhead = 5600;

template <typename T>
std::vector<std::uint8_t>
pack(const T &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::uint8_t> out(sizeof(T));
    std::memcpy(out.data(), &v, sizeof(T));
    return out;
}

template <typename T>
T
unpack(const std::vector<std::uint8_t> &data)
{
    T v{};
    if (data.size() != sizeof(T))
        panic("malformed socket handshake frame");
    std::memcpy(&v, data.data(), sizeof(T));
    return v;
}

} // namespace

SocketLib::SocketLib(vmmc::Endpoint &ep, SockOptions opt)
    : ep_(ep), opt_(opt),
      keyBase_(0x534b0000u + (std::uint32_t(ep.nodeId()) << 12) +
               (std::uint32_t(ep.pid()) << 8)),
      stats_("node" + std::to_string(ep.nodeId()) + ".p" +
             std::to_string(ep.pid()) + ".sock"),
      track_(trace::track(stats_.name()))
{
}

SocketLib::Sock &
SocketLib::sock(int fd)
{
    if (fd < 0 || std::size_t(fd) >= fds_.size() || !fds_[fd])
        panic("bad socket descriptor");
    return *fds_[fd];
}

sim::Task<int>
SocketLib::socket()
{
    co_await ep_.proc().compute(ep_.proc().config().libCallCost);
    fds_.push_back(std::make_unique<Sock>());
    co_return int(fds_.size() - 1);
}

sim::Task<int>
SocketLib::listen(int fd, std::uint16_t port)
{
    co_await ep_.proc().compute(ep_.proc().config().libCallCost);
    Sock &s = sock(fd);
    if (s.state != State::Fresh)
        co_return -1;
    s.state = State::Listening;
    s.port = port;
    co_return 0;
}

sim::Task<int>
SocketLib::accept(int fd)
{
    node::Process &proc = ep_.proc();
    co_await proc.compute(proc.config().libCallCost);
    Sock &listener = sock(fd);
    if (listener.state != State::Listening)
        co_return -1;

    // Wait for a SYN on the listening "internet" port.
    node::EtherNet &ether = proc.node().ether();
    node::EtherFrame frame =
        co_await ether.rxQueue(ep_.nodeId(), listener.port).recv();
    Syn syn = unpack<Syn>(frame.data);
    if (syn.magic != synMagic)
        panic("socket accept: bad SYN");

    // Build the connected socket: export our ring, import the client's.
    fds_.push_back(std::make_unique<Sock>());
    int cfd = int(fds_.size() - 1);
    Sock &c = *fds_[cfd];
    c.stream = std::make_unique<ByteStream>(ep_, opt_.ringBytes);
    std::uint32_t my_key = nextKey();
    vmmc::Status st = co_await c.stream->exportLocal(
        my_key, vmmc::Perm::onlyNode(frame.src));
    if (st != vmmc::Status::Ok)
        panic("socket accept: export failed");
    st = co_await c.stream->attachRemote(frame.src, syn.key);
    if (st != vmmc::Status::Ok)
        panic("socket accept: attach failed");

    SynAck ack{synAckMagic, my_key, 1};
    ether.send(ep_.nodeId(), listener.port, frame.src, frame.srcPort,
               pack(ack));
    c.state = State::Connected;
    co_return cfd;
}

sim::Task<int>
SocketLib::connect(int fd, NodeId node, std::uint16_t port)
{
    node::Process &proc = ep_.proc();
    co_await proc.compute(proc.config().libCallCost);
    Sock &s = sock(fd);
    if (s.state != State::Fresh)
        co_return -1;

    node::EtherNet &ether = proc.node().ether();
    s.stream = std::make_unique<ByteStream>(ep_, opt_.ringBytes);
    std::uint32_t my_key = nextKey();
    vmmc::Status st = co_await s.stream->exportLocal(
        my_key, vmmc::Perm::onlyNode(node));
    if (st != vmmc::Status::Ok)
        co_return -1;

    std::uint16_t reply_port = ether.allocPort(ep_.nodeId());
    Syn syn{synMagic, my_key, reply_port, 0};
    ether.send(ep_.nodeId(), reply_port, node, port, pack(syn));

    node::EtherFrame frame =
        co_await ether.rxQueue(ep_.nodeId(), reply_port).recv();
    SynAck ack = unpack<SynAck>(frame.data);
    if (ack.magic != synAckMagic || !ack.ok)
        co_return -1;

    st = co_await s.stream->attachRemote(node, ack.key);
    if (st != vmmc::Status::Ok)
        co_return -1;
    s.state = State::Connected;
    co_return 0;
}

// analyze: lookahead-entry(sock) — socket send: the library call is
// charged before the stream moves a byte.
sim::Task<long>
SocketLib::send(int fd, VAddr buf, std::size_t len)
{
    node::Process &proc = ep_.proc();
    trace::ScopedSpan span(proc.sim(), track_, "send");
    // Message origin: the staged id is claimed by whichever packet the
    // stream's first store (or deliberate transfer) forms.
    span::stage(span::origin(track_, "sock.send", proc.sim().now()));
    stats_.counter("sends") += 1;
    stats_.counter("sentBytes") += len;
    // analyze: lookahead-charge(sock) — socket library call overhead.
    co_await proc.compute(proc.config().libCallCost);
    Sock &s = sock(fd);
    if (s.state != State::Connected)
        co_return -1;
    co_await proc.compute(sendPathOverhead);
    co_await s.stream->send(buf, len, opt_.proto);
    co_return long(len);
}

sim::Task<long>
SocketLib::recv(int fd, VAddr buf, std::size_t maxlen)
{
    node::Process &proc = ep_.proc();
    trace::ScopedSpan span(proc.sim(), track_, "recv");
    stats_.counter("recvs") += 1;
    co_await proc.compute(proc.config().libCallCost);
    Sock &s = sock(fd);
    if (s.state != State::Connected && s.state != State::ShutDown)
        co_return -1;
    std::size_t n = co_await s.stream->recv(buf, maxlen);
    // Checks and socket-structure bookkeeping on the way out.
    co_await proc.compute(recvPathOverhead);
    co_return long(n);
}

sim::Task<long>
SocketLib::recvAll(int fd, VAddr buf, std::size_t len)
{
    std::size_t done = 0;
    while (done < len) {
        long n = co_await recv(fd, buf + VAddr(done), len - done);
        if (n < 0)
            co_return n;
        if (n == 0)
            co_return long(done); // EOF
        done += std::size_t(n);
    }
    co_return long(done);
}

sim::Task<int>
SocketLib::shutdown(int fd)
{
    co_await ep_.proc().compute(ep_.proc().config().libCallCost);
    Sock &s = sock(fd);
    if (s.state != State::Connected)
        co_return -1;
    co_await s.stream->sendFin();
    s.state = State::ShutDown;
    co_return 0;
}

sim::Task<int>
SocketLib::close(int fd)
{
    co_await ep_.proc().compute(ep_.proc().config().libCallCost);
    Sock &s = sock(fd);
    if (s.state == State::Connected)
        co_await s.stream->sendFin();
    if (s.stream && s.stream->attached())
        co_await s.stream->detachRemote();
    s.state = State::Closed;
    co_return 0;
}

bool
SocketLib::readable(int fd) const
{
    const Sock &s = *fds_.at(fd);
    if (!s.stream)
        return false;
    return s.stream->available() > 0 || s.stream->finReceived();
}

std::size_t
SocketLib::numOpen() const
{
    std::size_t n = 0;
    for (const auto &s : fds_) {
        if (s && s->state != State::Closed)
            ++n;
    }
    return n;
}

} // namespace shrimp::sock
