/**
 * @file
 * SocketLib: the SHRIMP stream-sockets compatibility library (paper
 * section 4.3), implemented entirely at user level on VMMC.
 *
 * Connection establishment uses a regular internet-domain socket on the
 * Ethernet to exchange the data needed to set up the two VMMC mappings
 * (one per direction); the Ethernet connection stays open to detect a
 * broken peer. Data then flows through circular buffers (ByteStream),
 * two per connection.
 *
 * Three data protocols are provided, as in the paper: two-copy DU (the
 * sender-side copy dodges alignment restrictions), one-copy DU (direct
 * from user memory when alignment allows), and two-copy AU (the sender
 * copy acts as the send). A zero-copy or one-copy-AU protocol would
 * require exporting user pages to an untrusted peer, which sockets
 * semantics forbid.
 */

#ifndef SHRIMP_SOCK_SOCKET_HH
#define SHRIMP_SOCK_SOCKET_HH

#include <deque>
#include <memory>
#include <vector>

#include "base/ownership.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "sock/ring.hh"

namespace shrimp::sock
{

struct SockOptions
{
    std::size_t ringBytes = 8 * 1024;
    StreamProto proto = StreamProto::AuTwoCopy;
};

class SocketLib
{
    SHRIMP_SHARD_OWNED;

  public:
    explicit SocketLib(vmmc::Endpoint &ep, SockOptions opt = SockOptions{});

    vmmc::Endpoint &endpoint() { return ep_; }
    const SockOptions &options() const { return opt_; }

    /** Create a stream socket. @return descriptor. */
    sim::Task<int> socket();

    /** Bind + listen on @p port (an Ethernet "internet" port). */
    sim::Task<int> listen(int fd, std::uint16_t port);

    /** Accept one connection; blocks. @return connected descriptor. */
    sim::Task<int> accept(int fd);

    /** Connect to (@p node, @p port); blocks. @return 0 or -1. */
    sim::Task<int> connect(int fd, NodeId node, std::uint16_t port);

    /**
     * Stream send: blocks until all @p len bytes are queued toward the
     * peer (sockets may buffer). @return bytes sent or -1.
     */
    sim::Task<long> send(int fd, VAddr buf, std::size_t len);

    /**
     * Stream receive: blocks until at least one byte (or EOF).
     * @return bytes received; 0 at orderly shutdown; -1 on bad fd.
     */
    sim::Task<long> recv(int fd, VAddr buf, std::size_t maxlen);

    /** Receive exactly @p len bytes (convenience; not BSD). */
    sim::Task<long> recvAll(int fd, VAddr buf, std::size_t len);

    /** Half-close: no more sends; peer's recv drains then returns 0. */
    sim::Task<int> shutdown(int fd);

    /** Close the descriptor (sends FIN if still open). */
    sim::Task<int> close(int fd);

    /** select()-style readability test. */
    bool readable(int fd) const;

    /** Per-send protocol override (Figure 7's curves). */
    void setProto(StreamProto p) { opt_.proto = p; }

    std::size_t numOpen() const;

  private:
    enum class State
    {
        Fresh,
        Listening,
        Connected,
        ShutDown,
        Closed,
    };

    struct Sock
    {
        State state = State::Fresh;
        std::uint16_t port = 0; //!< listen port
        std::unique_ptr<ByteStream> stream;
    };

    /** Wire handshake messages (POD over the Ethernet). */
    struct Syn
    {
        std::uint32_t magic;
        std::uint32_t key;       //!< client's exported region key
        std::uint16_t replyPort; //!< client's ephemeral Ethernet port
        std::uint16_t pad;
    };

    struct SynAck
    {
        std::uint32_t magic;
        std::uint32_t key; //!< server's exported region key
        std::uint32_t ok;
    };

    Sock &sock(int fd);
    std::uint32_t nextKey() { return keyBase_ + keyCount_++; }

    vmmc::Endpoint &ep_;
    SockOptions opt_;
    std::vector<std::unique_ptr<Sock>> fds_;
    std::uint32_t keyBase_;
    std::uint32_t keyCount_ = 0;
    stats::Group stats_;
    trace::TrackId track_;
};

} // namespace shrimp::sock

#endif // SHRIMP_SOCK_SOCKET_HH
