/**
 * @file
 * Causal message spans: follow one sampled message across component
 * boundaries.
 *
 * The tracer (base/trace.hh) shows what each component was doing on its
 * own track; spans add the causal thread *between* tracks. At a message
 * origin (vmmc::Endpoint::send, NX post, sock write, srpc call) the
 * library asks for a span id; every Nth origin (--span-sample=N) gets a
 * nonzero id and a FlowStart event. The id rides inside net::Packet
 * next to the race clock, and each stage the packet passes through —
 * packetizer combine/flush, NIC injection, every mesh hop, the incoming
 * DMA, notification/delivery — records a FlowStep/FlowEnd on its own
 * track. In the Chrome trace the chain renders as connected arrows
 * ("ph":"s"/"t"/"f" events sharing an id), so one message's life is one
 * line across the whole machine.
 *
 * Sampling is off by default (setSampleEvery(0)); every call here is a
 * cheap branch in that state and nothing is recorded, so golden trace
 * hashes are untouched. Sampling is a deterministic modulo counter, not
 * a PRNG: two runs of the same workload sample the same messages and
 * produce identical traces.
 *
 * Handoff between layers that cannot thread a parameter (a library
 * stages a span, the packetizer consumes it when it forms the packet)
 * goes through a single staged slot: stage() parks an id, takeStaged()
 * claims and clears it. With concurrent in-flight sampled messages a
 * later stage() can displace an unclaimed id — the displaced message
 * simply loses its chain (attribution is best-effort and sampled) —
 * but the displacement itself is driven by simulated event order, so it
 * is identical run-to-run.
 */

#ifndef SHRIMP_BASE_SPAN_HH
#define SHRIMP_BASE_SPAN_HH

#include <cstdint>

#include "base/trace.hh"
#include "base/types.hh"

namespace shrimp::span
{

/** Identifies one sampled message's flow chain. 0 = not sampled. */
using SpanId = std::uint64_t;

namespace detail
{
extern std::uint64_t gSampleEvery; //!< 0 = spans off
extern std::uint64_t gOriginSeen;  //!< origins since reset (sampled or not)
extern SpanId gNextId;
extern SpanId gStaged;
} // namespace detail

/** Sample every Nth message origin; 0 disables spans entirely. */
void setSampleEvery(std::uint64_t n);
inline std::uint64_t sampleEvery() { return detail::gSampleEvery; }

/** Spans record only when sampling is requested and tracing is on. */
inline bool on() { return detail::gSampleEvery != 0 && trace::on(); }

/**
 * Called where a message is born. Returns a fresh nonzero id for every
 * sampleEvery()-th origin (and records its FlowStart on @p track), 0
 * otherwise.
 */
SpanId origin(trace::TrackId track, const char *name, Tick tick);

/** Record a waypoint of span @p id on @p track. No-op when id == 0. */
void step(SpanId id, trace::TrackId track, const char *name, Tick tick);

/** Record the terminus of span @p id on @p track. No-op when id == 0. */
void finish(SpanId id, trace::TrackId track, const char *name, Tick tick);

/** Park @p id for the next takeStaged() (no-op when id == 0). */
void stage(SpanId id);

/** Claim and clear the staged id (0 if none staged). */
SpanId takeStaged();

/** Back to the boot state: sampling off, counters, staged id and the
 *  id allocator cleared (tests). */
void reset();

} // namespace shrimp::span

#endif // SHRIMP_BASE_SPAN_HH
