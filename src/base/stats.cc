#include "base/stats.hh"

#include <iomanip>

namespace shrimp::stats
{

Counter &
Group::counter(const std::string &stat_name)
{
    return counters_[stat_name];
}

Distribution &
Group::distribution(const std::string &stat_name)
{
    return dists_[stat_name];
}

std::uint64_t
Group::get(const std::string &stat_name) const
{
    auto it = counters_.find(stat_name);
    return it == counters_.end() ? 0 : it->second.value();
}

void
Group::dump(std::ostream &os) const
{
    for (const auto &[k, c] : counters_)
        os << name_ << "." << k << " " << c.value() << "\n";
    for (const auto &[k, d] : dists_) {
        os << name_ << "." << k << " count=" << d.count()
           << " mean=" << d.mean() << " min=" << d.min()
           << " max=" << d.max() << "\n";
    }
}

void
Group::reset()
{
    for (auto &[k, c] : counters_)
        c.reset();
    for (auto &[k, d] : dists_)
        d.reset();
}

} // namespace shrimp::stats
