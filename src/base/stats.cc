#include "base/stats.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>

namespace shrimp::stats
{

// ---- Distribution ------------------------------------------------------

std::size_t
Distribution::bucketOf(double v)
{
    if (!(v >= 1.0))
        return 0;
    // bit_width(uint64(v)) == 1 + floor(log2(v)) for v >= 1 (truncation
    // stays within the same power-of-two bucket), without the libm call
    // — sample() runs once per packet.
    if (v >= 0x1p62)
        return numBuckets - 1;
    std::size_t i = std::size_t(std::bit_width(std::uint64_t(v)));
    return std::min(i, numBuckets - 1);
}

double
Distribution::bucketLo(std::size_t i)
{
    return i == 0 ? 0.0 : std::ldexp(1.0, int(i) - 1);
}

void
Distribution::merge(const Distribution &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0 || other.min_ < min_)
        min_ = other.min_;
    if (count_ == 0 || other.max_ > max_)
        max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
    for (std::size_t i = 0; i < numBuckets; ++i)
        buckets_[i] += other.buckets_[i];
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << " count=" << count() << " mean=" << mean()
       << " min=" << min() << " max=" << max() << "\n";
    for (std::size_t i = 0; i < numBuckets; ++i) {
        if (buckets_[i] == 0)
            continue;
        os << prefix << ".bucket[" << bucketLo(i) << ","
           << bucketLo(i + 1) << ") " << buckets_[i] << "\n";
    }
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
    buckets_.fill(0);
}

// ---- Group -------------------------------------------------------------

Group::Group(std::string name) : name_(std::move(name))
{
    StatRegistry::global().add(*this);
}

Group::~Group()
{
    StatRegistry::global().remove(*this);
}

Counter &
Group::counter(const std::string &stat_name)
{
    return counters_[stat_name];
}

Distribution &
Group::distribution(const std::string &stat_name)
{
    return dists_[stat_name];
}

std::uint64_t
Group::get(const std::string &stat_name) const
{
    auto it = counters_.find(stat_name);
    return it == counters_.end() ? 0 : it->second.value();
}

void
Group::dump(std::ostream &os) const
{
    for (const auto &[k, c] : counters_)
        os << name_ << "." << k << " " << c.value() << "\n";
    for (const auto &[k, d] : dists_)
        d.dump(os, name_ + "." + k);
}

void
Group::reset()
{
    for (auto &[k, c] : counters_)
        c.reset();
    for (auto &[k, d] : dists_)
        d.reset();
}

// ---- StatRegistry ------------------------------------------------------

StatRegistry &
StatRegistry::global()
{
    // analyze: shared(deliberate machine-wide singleton; the sharded
    // simulator gives each shard a registry slice merged at dump time)
    static StatRegistry registry;
    return registry;
}

void
StatRegistry::add(Group &g)
{
    groups_.push_back(&g);
}

void
StatRegistry::remove(Group &g)
{
    groups_.erase(std::remove(groups_.begin(), groups_.end(), &g),
                  groups_.end());
    Retired &r = retired_[g.name()];
    for (const auto &[k, c] : g.counters())
        r.counters[k] += c.value();
    for (const auto &[k, d] : g.distributions())
        r.dists[k].merge(d);
}

Group *
StatRegistry::find(const std::string &name)
{
    for (Group *g : groups_) {
        if (g->name() == name)
            return g;
    }
    return nullptr;
}

void
StatRegistry::dumpAll(std::ostream &os) const
{
    for (const Group *g : groups_)
        g->dump(os);
    for (const auto &[name, r] : retired_) {
        for (const auto &[k, v] : r.counters)
            os << "retired." << name << "." << k << " " << v << "\n";
        for (const auto &[k, d] : r.dists)
            d.dump(os, "retired." + name + "." + k);
    }
}

namespace
{

void
jsonStr(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

void
jsonNum(std::ostream &os, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

void
jsonDist(std::ostream &os, const Distribution &d)
{
    os << "{\"count\":" << d.count() << ",\"sum\":";
    jsonNum(os, d.sum());
    os << ",\"min\":";
    jsonNum(os, d.min());
    os << ",\"max\":";
    jsonNum(os, d.max());
    os << ",\"mean\":";
    jsonNum(os, d.mean());
    os << ",\"buckets\":[";
    for (std::size_t i = 0; i < Distribution::numBuckets; ++i) {
        if (i)
            os << ',';
        os << d.bucketCount(i);
    }
    os << "]}";
}

template <typename Counters, typename Dists>
void
jsonGroupBody(std::ostream &os, const Counters &counters,
              const Dists &dists, auto counterValue)
{
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[k, c] : counters) {
        if (!first)
            os << ',';
        first = false;
        jsonStr(os, k);
        os << ':' << counterValue(c);
    }
    os << "},\"distributions\":{";
    first = true;
    for (const auto &[k, d] : dists) {
        if (!first)
            os << ',';
        first = false;
        jsonStr(os, k);
        os << ':';
        jsonDist(os, d);
    }
    os << "}}";
}

} // namespace

void
StatRegistry::dumpJson(std::ostream &os) const
{
    os << "{\"groups\":{";
    bool first = true;
    for (const Group *g : groups_) {
        if (!first)
            os << ',';
        first = false;
        jsonStr(os, g->name());
        os << ':';
        jsonGroupBody(os, g->counters(), g->distributions(),
                      [](const Counter &c) { return c.value(); });
    }
    os << "},\"retired\":{";
    first = true;
    for (const auto &[name, r] : retired_) {
        if (!first)
            os << ',';
        first = false;
        jsonStr(os, name);
        os << ':';
        jsonGroupBody(os, r.counters, r.dists,
                      [](std::uint64_t v) { return v; });
    }
    os << "}}";
}

void
StatRegistry::resetAll()
{
    for (Group *g : groups_)
        g->reset();
    retired_.clear();
}

} // namespace shrimp::stats
