#include "base/timeseries.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "base/logging.hh"
#include "base/stats.hh"

namespace shrimp::timeseries
{

namespace detail
{
bool gOn = false;
Tick gNextSample = 0;
} // namespace detail

namespace
{

Tick gPeriod = 0;
std::string gPath;
std::vector<Sample> gSamples;

// Substrings selecting which "group.stat" counters a sample records.
// The defaults cover the pressure/occupancy signals the report tool
// plots: bus/link busy time, queue depths, and detector drop counts.
std::vector<std::string> gKeyFilter = {
    "busyNs", "occupied", "queued", "drop", "Dropped",
    "stall",  "pending",  "depth",
};

// Keep runaway configurations (tiny period, long run) bounded; the
// JSONL stays useful and the host heap stays sane.
constexpr std::size_t maxSamples = 200'000;

bool
keyWanted(const std::string &name)
{
    if (gKeyFilter.empty())
        return true;
    for (const std::string &sub : gKeyFilter) {
        if (name.find(sub) != std::string::npos)
            return true;
    }
    return false;
}

void
atExitDump()
{
    if (gPath.empty() || gSamples.empty())
        return;
    if (writeJsonlFile(gPath)) {
        std::fprintf(stderr, "timeseries: wrote %zu samples to %s\n",
                     gSamples.size(), gPath.c_str());
    }
}

void
installAtExit()
{
    // analyze: shared(std::atexit registration latch, per-process by
    // nature)
    static bool installed = false;
    if (!installed) {
        installed = true;
        stats::StatRegistry::global(); // outlive the handler
        std::atexit(atExitDump);
    }
}

} // namespace

namespace detail
{

void
sampleNow(Tick now, std::size_t pending)
{
    gNextSample = now + gPeriod;
    if (gSamples.size() >= maxSamples) {
        // analyze: shared(one-shot warning latch; worst case under
        // shards is one duplicate warning line)
        static bool warned = false;
        if (!warned) {
            warned = true;
            warn("timeseries: sample cap reached; later samples dropped "
                 "(raise --timeseries-period)");
        }
        return;
    }
    Sample s;
    s.tick = now;
    s.pending = pending;
    for (const stats::Group *g : stats::StatRegistry::global().groups()) {
        for (const auto &[stat, ctr] : g->counters()) {
            std::string full = g->name() + "." + stat;
            if (keyWanted(full))
                s.stats.emplace_back(std::move(full), ctr.value());
        }
    }
    gSamples.push_back(std::move(s));
}

} // namespace detail

void
configure(const std::string &path, Tick period)
{
    gPath = path;
    gPeriod = period ? period : Tick(10) * units::us;
    detail::gNextSample = 0;
    detail::gOn = true;
    if (!path.empty())
        installAtExit();
}

void
setKeyFilter(std::vector<std::string> substrings)
{
    gKeyFilter = std::move(substrings);
}

const std::vector<Sample> &
samples()
{
    return gSamples;
}

void
writeJsonl(std::ostream &os)
{
    for (const Sample &s : gSamples) {
        os << "{\"tick\":" << s.tick << ",\"pending\":" << s.pending
           << ",\"stats\":{";
        bool first = true;
        for (const auto &[name, value] : s.stats) {
            if (!first)
                os << ',';
            first = false;
            os << '"' << name << "\":" << value;
        }
        os << "}}\n";
    }
}

bool
writeJsonlFile(const std::string &path)
{
    std::ofstream f(path);
    if (!f) {
        warn(logging::format("cannot open timeseries output file %s",
                             path.c_str()));
        return false;
    }
    writeJsonl(f);
    return bool(f);
}

void
reset()
{
    detail::gOn = false;
    detail::gNextSample = 0;
    gPeriod = 0;
    gSamples.clear();
}

} // namespace shrimp::timeseries
