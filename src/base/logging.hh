/**
 * @file
 * Status/error reporting helpers, in the spirit of gem5's logging.hh.
 *
 * panic()  - an internal invariant of the simulator or a library protocol was
 *            violated; this is a bug in shrimp itself. Throws PanicError so
 *            tests can assert on it.
 * fatal()  - the user asked for something impossible (bad configuration,
 *            invalid arguments). Throws FatalError.
 * warn()   - something is off but execution can continue.
 * inform() - plain status output.
 */

#ifndef SHRIMP_BASE_LOGGING_HH
#define SHRIMP_BASE_LOGGING_HH

#include <cstdio>
#include <stdexcept>
#include <string>

namespace shrimp
{

/** Error thrown by panic(): an internal simulator/protocol bug. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Error thrown by fatal(): an unusable user configuration or argument. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace logging
{
/** Format a printf-style message into a std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Global verbosity: 0 = errors only, 1 = warn, 2 = inform, 3 = debug.
 *  Overridable at runtime with SHRIMP_LOG_LEVEL (see applyEnvOverrides
 *  in base/config.hh). */
extern int verbosity;

/** Print a debug line to stderr (used by SHRIMP_DEBUG). */
void debugPrint(const std::string &msg);
} // namespace logging

/** Report an internal error and throw PanicError. */
[[noreturn]] void panic(const std::string &msg);

/** Report a user error and throw FatalError. */
[[noreturn]] void fatal(const std::string &msg);

/** Print a warning to stderr (when verbosity >= 1). */
void warn(const std::string &msg);

/** Print an informational message to stdout (when verbosity >= 2). */
void inform(const std::string &msg);

/**
 * Debug logging: printf-style, printed only when verbosity >= 3, and
 * compiled out entirely in release (NDEBUG) builds so hot paths carry
 * no cost.
 */
#ifdef NDEBUG
#define SHRIMP_DEBUG(...)                                                    \
    do {                                                                     \
    } while (0)
#else
#define SHRIMP_DEBUG(...)                                                    \
    do {                                                                     \
        if (::shrimp::logging::verbosity >= 3)                               \
            ::shrimp::logging::debugPrint(                                   \
                ::shrimp::logging::format(__VA_ARGS__));                     \
    } while (0)
#endif

/** Panic unless the given condition holds. */
#define SHRIMP_ASSERT(cond, msg)                                             \
    do {                                                                     \
        if (!(cond))                                                         \
            ::shrimp::panic(std::string("assertion failed: ") + #cond +      \
                            " -- " + (msg));                                 \
    } while (0)

} // namespace shrimp

#endif // SHRIMP_BASE_LOGGING_HH
