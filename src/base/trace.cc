#include "base/trace.hh"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "base/config.hh"
#include "base/logging.hh"
#include "base/stats.hh"

namespace shrimp::trace
{

namespace detail
{
bool gEnabled = false;
} // namespace detail

Tracer &
Tracer::instance()
{
    // analyze: shared(one trace stream per process; shards must funnel
    // events through the cross-shard merge order before emitting)
    static Tracer tracer;
    return tracer;
}

void
Tracer::setEnabled(bool enabled)
{
    detail::gEnabled = enabled;
}

TrackId
Tracer::track(const std::string &name)
{
    for (TrackId i = 0; i < TrackId(tracks_.size()); ++i) {
        if (tracks_[i] == name)
            return i;
    }
    tracks_.push_back(name);
    std::uint64_t h = 14695981039346656037ull;
    for (std::size_t i = 0; i <= name.size(); ++i) { // includes the NUL
        h ^= static_cast<unsigned char>(i < name.size() ? name[i] : 0);
        h *= 1099511628211ull;
    }
    trackHashes_.push_back(h);
    return TrackId(tracks_.size() - 1);
}

std::uint64_t
Tracer::hash() const
{
    // FNV-1a, 64-bit.
    std::uint64_t h = 14695981039346656037ull;
    auto mix = [&h](const void *data, std::size_t n) {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= 1099511628211ull;
        }
    };
    for (const Event &e : events_) {
        mix(&e.tick, sizeof(e.tick));
        // The track name's pre-computed digest stands in for the name
        // itself (ids may differ across runs, digests may not).
        const std::uint64_t th = trackHashes_.at(e.track);
        mix(&th, sizeof(th));
        mix(e.name, std::strlen(e.name) + 1);
        mix(&e.phase, sizeof(e.phase));
        // Flow ids participate only for flow events, so the hash of a
        // stream recorded without spans is bit-identical to what this
        // function produced before flow phases existed (the golden
        // hashes in tests/golden_trace_hashes.txt must not move).
        if (e.phase >= Phase::FlowStart)
            mix(&e.id, sizeof(e.id));
    }
    return h;
}

namespace
{

void
writeJsonString(std::ostream &os, const char *s)
{
    os << '"';
    for (; *s; ++s) {
        switch (*s) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          default:
            if (static_cast<unsigned char>(*s) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", *s);
                os << buf;
            } else {
                os << *s;
            }
        }
    }
    os << '"';
}

/** Chrome trace timestamps are microseconds; ticks are nanoseconds.
 *  Integer formatting keeps the output byte-deterministic. */
void
writeTs(std::ostream &os, Tick tick)
{
    os << tick / 1000 << '.';
    char buf[4];
    std::snprintf(buf, sizeof(buf), "%03u", unsigned(tick % 1000));
    os << buf;
}

} // namespace

void
Tracer::writeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,"
          "\"args\":{\"name\":\"shrimp\"}}";

    // Name only the tracks that actually recorded something.
    std::vector<bool> used(tracks_.size(), false);
    for (const Event &e : events_)
        used[e.track] = true;
    for (TrackId t = 0; t < TrackId(tracks_.size()); ++t) {
        if (!used[t])
            continue;
        os << ",\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,"
              "\"tid\":" << t << ",\"args\":{\"name\":";
        writeJsonString(os, tracks_[t].c_str());
        os << "}}";
    }

    for (const Event &e : events_) {
        os << ",\n{\"ph\":\"";
        switch (e.phase) {
          case Phase::Begin:
            os << 'B';
            break;
          case Phase::End:
            os << 'E';
            break;
          case Phase::Instant:
            os << 'i';
            break;
          case Phase::FlowStart:
            os << 's';
            break;
          case Phase::FlowStep:
            os << 't';
            break;
          case Phase::FlowEnd:
            os << 'f';
            break;
        }
        os << "\",\"name\":";
        writeJsonString(os, e.name);
        os << ",\"pid\":0,\"tid\":" << e.track << ",\"ts\":";
        writeTs(os, e.tick);
        if (e.phase == Phase::Instant)
            os << ",\"s\":\"t\"";
        if (e.phase >= Phase::FlowStart) {
            // Flow events carry the chain id; bp:"e" binds each arrow
            // endpoint to the enclosing slice so viewers draw the chain
            // through the actual spans on each track.
            os << ",\"cat\":\"span\",\"id\":" << e.id << ",\"bp\":\"e\"";
        }
        os << '}';
    }
    os << "\n]}\n";
}

bool
Tracer::writeJsonFile(const std::string &path) const
{
    std::ofstream f(path);
    if (!f) {
        warn(logging::format("cannot open trace output file %s",
                             path.c_str()));
        return false;
    }
    writeJson(f);
    return bool(f);
}

// ---- CLI / process-exit glue -------------------------------------------

namespace
{

std::string gOutputPath;
bool gStatsDump = false;

void
atExitDump()
{
    if (!gOutputPath.empty()) {
        if (Tracer::instance().writeJsonFile(gOutputPath)) {
            std::fprintf(stderr, "trace: wrote %zu events to %s\n",
                         Tracer::instance().events().size(),
                         gOutputPath.c_str());
        }
    }
    if (gStatsDump) {
        std::cout << "\n==== stats dump ====\n";
        stats::StatRegistry::global().dumpAll(std::cout);
    }
}

void
installAtExit()
{
    // analyze: shared(std::atexit registration latch, per-process by
    // nature)
    static bool installed = false;
    if (!installed) {
        installed = true;
        // Construct the singletons *before* registering the handler:
        // exit runs destructors and atexit handlers in reverse order,
        // so this keeps them alive while atExitDump reads them.
        Tracer::instance();
        stats::StatRegistry::global();
        std::atexit(atExitDump);
    }
}

} // namespace

const std::string &
outputPath()
{
    return gOutputPath;
}

void
setOutputPath(const std::string &path)
{
    gOutputPath = path;
    if (!path.empty()) {
        Tracer::instance().setEnabled(true);
        installAtExit();
    }
}

bool
statsDumpRequested()
{
    return gStatsDump;
}

void
setStatsDumpRequested(bool v)
{
    gStatsDump = v;
    if (v)
        installAtExit();
}

void
parseCliFlags(int &argc, char **argv)
{
    applyEnvOverrides();
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--trace=", 8) == 0) {
            setOutputPath(arg + 8);
        } else if (std::strcmp(arg, "--stats") == 0) {
            setStatsDumpRequested(true);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;
}

} // namespace shrimp::trace
