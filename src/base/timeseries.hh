/**
 * @file
 * Periodic time-series sampling of the StatRegistry, keyed to simulated
 * time.
 *
 * The stats package reports end-of-run totals; the time-series sampler
 * shows *when* the counts happened. Every period of simulated ticks the
 * event loop (EventQueue::runOne) calls maybeSample(), which snapshots
 * the live stat counters whose "group.stat" name matches a substring
 * filter (link occupancy, queue depths, racecheck.readRecsDropped, ...)
 * plus the event-queue pressure, into an in-memory row. At process exit
 * the rows are written as JSON Lines — one object per sample:
 *
 *   {"tick":12000,"pending":37,"stats":{"nic0.eisa.busyNs":812, ...}}
 *
 * Sampling is passive (reads only) and driven by simulated ticks, so it
 * never perturbs simulated behavior; when disabled (the default) the
 * hook is a single branch per event. The sampler deliberately does NOT
 * schedule its own events: a self-rescheduling sampler would keep the
 * queue non-empty forever and break every run-to-drain simulation.
 */

#ifndef SHRIMP_BASE_TIMESERIES_HH
#define SHRIMP_BASE_TIMESERIES_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "base/types.hh"

namespace shrimp::timeseries
{

namespace detail
{
extern bool gOn;
extern Tick gNextSample;
void sampleNow(Tick now, std::size_t pending);
} // namespace detail

/** One snapshot of the selected counters at one simulated tick. */
struct Sample
{
    Tick tick = 0;
    std::size_t pending = 0; //!< event-queue pressure at the sample
    std::vector<std::pair<std::string, std::uint64_t>> stats;
};

/**
 * Enable sampling every @p period simulated ticks (0 = default 10 us),
 * writing JSONL to @p path at process exit ("" = keep samples in memory
 * only; tests read them back via samples()).
 */
void configure(const std::string &path, Tick period = 0);

/** Restrict sampled counters to names containing any of @p substrings
 *  (the default filter covers occupancy/queue/drop counters). An empty
 *  list samples every live counter. */
void setKeyFilter(std::vector<std::string> substrings);

inline bool on() { return detail::gOn; }

/** Event-loop hook: samples iff enabled and @p now reached the next
 *  sample tick. One branch when disabled. */
inline void
maybeSample(Tick now, std::size_t pending)
{
    if (detail::gOn && now >= detail::gNextSample)
        detail::sampleNow(now, pending);
}

const std::vector<Sample> &samples();

/** Emit all samples as JSON Lines. */
void writeJsonl(std::ostream &os);

/** writeJsonl() to @p path; warns and returns false on I/O failure. */
bool writeJsonlFile(const std::string &path);

/** Disable sampling and drop collected samples (tests). */
void reset();

} // namespace shrimp::timeseries

#endif // SHRIMP_BASE_TIMESERIES_HH
