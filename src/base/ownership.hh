/**
 * @file
 * Shard-ownership annotation vocabulary, consumed by shrimp_analyze's
 * ownership & escape analysis (tools/analyze/ownership.cc) and by
 * human readers deciding what a parallel shard may own.
 *
 * The analyzer classifies every class reachable from node::Node on a
 * small lattice:
 *
 *   NodeOwned      reachable from Node by value (fields, owned
 *                  containers, unique_ptr) — a shard can own it
 *                  exclusively.
 *   SharedRO       reached only through const references/pointers —
 *                  immutable config; any shard may read it.
 *   SharedMutable  reached through mutable references/pointers from
 *                  more than one node's region — must stay on the
 *                  coordinator or grow per-shard slices.
 *   Escapes        NodeOwned state whose address provably leaks across
 *                  a node boundary (into another node's methods, a
 *                  net::Packet field, or a scheduled callable).
 *
 * The macros below are declarative markers placed inside class bodies.
 * They compile to nothing (a vacuous static_assert) and carry no
 * runtime cost; the analyzer reads them as seeds/overrides:
 *
 *   SHRIMP_SHARD_OWNED            assert this class is per-node state
 *                                 even when it is not (yet) reachable
 *                                 from node::Node by value (e.g. a
 *                                 per-process Endpoint created by user
 *                                 code). Also used as an extra BFS
 *                                 seed.
 *   SHRIMP_SHARD_SHARED(reason)   declare this class deliberately
 *                                 machine-wide (Simulator, Mesh,
 *                                 Machine): the analyzer classifies it
 *                                 SharedMutable with the given reason
 *                                 instead of reporting an escape.
 *
 * Site-level tags are comments, mirroring `analyze: allow(...)`:
 *
 *   // analyze: shared(reason)    allowlists one namespace/class-scope
 *                                 mutable static (a deliberate
 *                                 singleton such as StatRegistry) for
 *                                 the shared-mutable-static rule. The
 *                                 site still appears in the
 *                                 --ownership-report escape table,
 *                                 flagged `allowed`.
 */

#ifndef SHRIMP_BASE_OWNERSHIP_HH
#define SHRIMP_BASE_OWNERSHIP_HH

#define SHRIMP_SHARD_OWNED \
    static_assert(true, "shard-ownership: per-node state")
#define SHRIMP_SHARD_SHARED(reason) static_assert(true, "" reason)

#endif // SHRIMP_BASE_OWNERSHIP_HH
