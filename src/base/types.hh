/**
 * @file
 * Fundamental types shared across the simulator: the simulated clock,
 * addresses, node identifiers, and unit helpers.
 */

#ifndef SHRIMP_BASE_TYPES_HH
#define SHRIMP_BASE_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace shrimp
{

/** Simulated time, in nanoseconds. */
using Tick = std::uint64_t;

/** Largest representable tick; used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Virtual address within a process address space. */
using VAddr = std::uint32_t;

/** Physical address within a node's memory. */
using PAddr = std::uint32_t;

/** Node identifier (index into the machine's node array). */
using NodeId = std::uint16_t;

/** An invalid node id. */
constexpr NodeId invalidNode = NodeId(~0);

/** Page number (virtual or physical, depending on context). */
using PageNum = std::uint32_t;

namespace units
{
constexpr Tick ns = 1;
constexpr Tick us = 1000;
constexpr Tick ms = 1000 * 1000;
constexpr Tick sec = Tick(1000) * 1000 * 1000;

constexpr std::size_t KiB = 1024;
constexpr std::size_t MiB = 1024 * 1024;

/** Ticks needed to move @p bytes at @p mbPerSec (10^6 bytes/s, as the
 *  paper quotes bus bandwidths). Rounds up; zero bytes take zero time. */
constexpr Tick
transferTime(std::size_t bytes, double mbPerSec)
{
    if (bytes == 0 || mbPerSec <= 0.0)
        return 0;
    double nsec = double(bytes) * 1000.0 / mbPerSec;
    Tick t = Tick(nsec);
    return (double(t) < nsec) ? t + 1 : t;
}
} // namespace units

} // namespace shrimp

#endif // SHRIMP_BASE_TYPES_HH
