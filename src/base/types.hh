/**
 * @file
 * Fundamental types shared across the simulator: the simulated clock,
 * addresses, node identifiers, and unit helpers.
 */

#ifndef SHRIMP_BASE_TYPES_HH
#define SHRIMP_BASE_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace shrimp
{

/** Simulated time, in nanoseconds. */
using Tick = std::uint64_t;

/** Largest representable tick; used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Virtual address within a process address space. */
using VAddr = std::uint32_t;

/** Physical address within a node's memory. */
using PAddr = std::uint32_t;

/** Node identifier (index into the machine's node array). */
using NodeId = std::uint16_t;

/** An invalid node id. */
constexpr NodeId invalidNode = NodeId(~0);

/** Page number (virtual or physical, depending on context). */
using PageNum = std::uint32_t;

namespace units
{
constexpr Tick ns = 1;
constexpr Tick us = 1000;
constexpr Tick ms = 1000 * 1000;
constexpr Tick sec = Tick(1000) * 1000 * 1000;

constexpr std::size_t KiB = 1024;
constexpr std::size_t MiB = 1024 * 1024;

/** A bandwidth quoted in 10^6 bytes/s (the paper's unit) as a whole
 *  number of bytes per second. Every calibrated rate in MachineConfig
 *  (1.0, 21.0, 24.5, 25.0, 30.0, 175.0) is an exact multiple of
 *  0.000001 MB/s, so the conversion is exact. */
constexpr std::uint64_t
bytesPerSec(double mbPerSec)
{
    return std::uint64_t(mbPerSec * 1e6 + 0.5);
}

/**
 * Ticks needed to move @p bytes at @p bps bytes per second.
 *
 * Rounding rule (the only one in the simulator): a transfer occupies
 * ceil(bytes * 10^9 / bps) integer nanoseconds, computed exactly in
 * 128-bit arithmetic. Rounding up means a transfer never finishes
 * early, and the error is bounded by 1 ns per transaction no matter
 * how transfers are split or batched.
 */
constexpr Tick
transferTime(std::size_t bytes, std::uint64_t bps)
{
    if (bytes == 0 || bps == 0)
        return 0;
    unsigned __int128 num =
        (unsigned __int128)bytes * 1'000'000'000u + (bps - 1);
    return Tick(num / bps);
}

/** Convenience overload for rates held as MB/s config doubles. */
constexpr Tick
transferTime(std::size_t bytes, double mbPerSec)
{
    if (mbPerSec <= 0.0)
        return 0;
    return transferTime(bytes, bytesPerSec(mbPerSec));
}
} // namespace units

} // namespace shrimp

#endif // SHRIMP_BASE_TYPES_HH
