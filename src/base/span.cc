#include "base/span.hh"

namespace shrimp::span
{

namespace detail
{
std::uint64_t gSampleEvery = 0;
std::uint64_t gOriginSeen = 0;
SpanId gNextId = 0;
SpanId gStaged = 0;
} // namespace detail

void
setSampleEvery(std::uint64_t n)
{
    detail::gSampleEvery = n;
}

SpanId
origin(trace::TrackId track, const char *name, Tick tick)
{
    if (!on())
        return 0;
    // Deterministic modulo sampling: the first origin after reset() is
    // always sampled, then every Nth after it, so a fixed workload
    // samples a fixed set of messages.
    if (detail::gOriginSeen++ % detail::gSampleEvery != 0)
        return 0;
    SpanId id = ++detail::gNextId;
    trace::Tracer::instance().flow(track, name, tick,
                                   trace::Tracer::Phase::FlowStart, id);
    return id;
}

void
step(SpanId id, trace::TrackId track, const char *name, Tick tick)
{
    if (id == 0 || !trace::on())
        return;
    trace::Tracer::instance().flow(track, name, tick,
                                   trace::Tracer::Phase::FlowStep, id);
}

void
finish(SpanId id, trace::TrackId track, const char *name, Tick tick)
{
    if (id == 0 || !trace::on())
        return;
    trace::Tracer::instance().flow(track, name, tick,
                                   trace::Tracer::Phase::FlowEnd, id);
}

void
stage(SpanId id)
{
    if (id != 0)
        detail::gStaged = id;
}

SpanId
takeStaged()
{
    SpanId id = detail::gStaged;
    detail::gStaged = 0;
    return id;
}

void
reset()
{
    detail::gSampleEvery = 0;
    detail::gOriginSeen = 0;
    detail::gNextId = 0;
    detail::gStaged = 0;
}

} // namespace shrimp::span
