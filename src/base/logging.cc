#include "base/logging.hh"

#include <cstdarg>
#include <cstdio>

namespace shrimp
{

namespace logging
{

int verbosity = 1;

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    char buf[1024];
    vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return std::string(buf);
}

void
debugPrint(const std::string &msg)
{
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace logging

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    throw PanicError(msg);
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
warn(const std::string &msg)
{
    if (logging::verbosity >= 1)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (logging::verbosity >= 2)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace shrimp
