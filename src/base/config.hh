/**
 * @file
 * MachineConfig: every calibration knob of the simulated SHRIMP prototype
 * in one place. Defaults are calibrated so the microbenchmarks of the
 * paper (Felten et al., ISCA 1996) reproduce: AU one-word latency 4.75 us
 * (write-through) / 3.7 us (uncached), DU one-word latency 7.6 us,
 * DU-0copy peak bandwidth ~23 MB/s, AU-1copy peak ~20-21 MB/s.
 *
 * Bandwidths are in MB/s (10^6 bytes/s, as the paper quotes them);
 * times are in nanoseconds of simulated time.
 */

#ifndef SHRIMP_BASE_CONFIG_HH
#define SHRIMP_BASE_CONFIG_HH

#include <cstddef>

#include "base/types.hh"

namespace shrimp
{

/**
 * Apply SHRIMP_* environment overrides to the process-wide observability
 * knobs. Reads:
 *   SHRIMP_LOG_LEVEL  integer for logging::verbosity (0=errors, 1=warn,
 *                     2=inform, 3=debug)
 *   SHRIMP_TRACE      path for a Chrome trace-event JSON dump at exit
 *                     (enables the tracer)
 *   SHRIMP_STATS      any non-empty value dumps the StatRegistry at exit
 * Idempotent and cheap; called from Machine construction and from
 * trace::parseCliFlags().
 */
void applyEnvOverrides();

/** How a virtual page is cached by the node CPU (section 3.1). */
enum class CacheMode
{
    WriteBack,    //!< normal cacheable data
    WriteThrough, //!< required for automatic-update send regions
    Uncached,     //!< caching disabled
};

struct MachineConfig
{
    // ---- topology ------------------------------------------------------
    /** Mesh dimensions; the prototype is a 4-node 2x2 mesh. */
    int meshWidth = 2;
    int meshHeight = 2;

    /** Physical memory per node (paper: 40 MB; default smaller). */
    std::size_t nodeMemBytes = 8 * units::MiB;

    /** Page size used by MMU, OPT and IPT. */
    std::size_t pageBytes = 4096;

    // ---- CPU cost model (60 MHz Pentium) -------------------------------
    /** Generic small operation: procedure call, flag update, check. */
    Tick cpuOpCost = 50;

    /** One polling iteration: load flag, compare, branch. */
    Tick pollCheckCost = 250;

    /**
     * Sleep flag pollers on just the bytes they poll (wait-on-address)
     * instead of on every write to node memory. Purely a simulation
     * fidelity/throughput trade: with broadcast wakeups a poller
     * re-checks after *any* write, so when unrelated writes land within
     * pollCheckCost of the watched one it can detect the flag up to one
     * poll check earlier than a targeted waiter would. Off by default so
     * the paper-figure benches reproduce the calibrated traces
     * bit-for-bit; large-scale runs (bench/host_perf) turn it on to
     * shed the broadcast wakeup storm.
     */
    bool targetedWakeups = false;

    /** Per-library-API-call software overhead (entry, error checks). */
    Tick libCallCost = 700;

    /** memcpy bandwidth by destination page cache mode. */
    double copyBwWriteBack = 30.0;
    double copyBwWriteThrough = 21.0;
    double copyBwUncached = 25.0;

    /** Fixed overhead per memcpy call (loop setup). */
    Tick copyCallOverhead = 100;

    /**
     * Extra latency charged when a transfer lands in a *cached*
     * (write-through) receive page: the incoming DMA invalidates the
     * receiver's cache lines, so the poll that detects the flag misses;
     * the sender's write-through store also stalls. Calibrated from the
     * paper's 4.75 us (write-through) vs 3.7 us (uncached) AU numbers.
     */
    Tick wtReceivePenalty = 1050;

    // ---- notifications --------------------------------------------------
    /** Cost of delivering a notification via a UNIX signal (current
     *  implementation in the paper). */
    Tick signalDeliveryCost = 60 * units::us;

    /** Cost of the planned active-message-style reimplementation. */
    Tick fastNotifyCost = 5 * units::us;

    /** Use the fast notification path instead of signals. */
    bool fastNotifications = false;

    /** Kernel + daemon work to service a receive-datapath freeze
     *  interrupt (data arrived for a disabled page). */
    Tick interruptHandlerCost = 10 * units::us;

    // ---- EISA expansion bus ---------------------------------------------
    /**
     * Effective DMA bandwidth. EISA bursts at 33 MB/s, but every DMA also
     * crosses the shared Xpress memory bus; the paper observes ~23 MB/s
     * aggregate for DU-0copy, so the model folds the sharing into an
     * effective rate.
     */
    double eisaDmaBw = 24.5;

    /** One programmed-I/O access from the CPU to the NIC (DU initiation
     *  uses a sequence of two of these, section 2.2). */
    Tick eisaPioCost = 1600;

    /** DU engine per-transfer setup before its DMA read of main memory. */
    Tick dmaReadSetup = 800;

    /** Incoming DMA engine per-packet setup before writing main memory. */
    Tick dmaWriteSetup = 1200;

    // ---- SHRIMP network interface ---------------------------------------
    /** Largest packet payload the NIC will form (one page). */
    std::size_t maxPacketBytes = 512;

    /** Largest run of consecutive AU writes combined into one packet
     *  (bounded by the outgoing FIFO). */
    std::size_t auCombineLimit = 512;

    /** Hardware timer: a pending combined AU packet is flushed if no
     *  subsequent consecutive write arrives within this time. */
    Tick auCombineTimeout = 1050;

    /** Snoop-match + packet-header formation time. */
    Tick snoopPacketizeCost = 400;

    /** Arbiter + NIC processor-port forwarding, per packet. */
    Tick nicForwardCost = 200;

    // ---- iMRC mesh backplane --------------------------------------------
    /** Per-hop routing latency of one iMRC. */
    Tick hopLatency = 60;

    /** Per-link bandwidth (never the bottleneck; EISA is). */
    double linkBw = 175.0;

    // ---- commodity Ethernet side channel --------------------------------
    Tick etherLatency = 1 * units::ms;
    double etherBw = 1.0;

    // ---- checkers (SHRIMP_CHECK builds only) ----------------------------
    /** Race-detector per-page read-record cap. Oldest records past the
     *  cap are dropped (counted by racecheck.readRecsDropped); raise it
     *  if a workload ever reports drops. */
    std::size_t raceReadRecCap = 32;

    /** Number of nodes implied by the mesh dimensions. */
    int numNodes() const { return meshWidth * meshHeight; }

    /** Pages per node implied by memory size. */
    std::size_t pagesPerNode() const { return nodeMemBytes / pageBytes; }

    /** memcpy bandwidth for a destination page with the given mode. */
    double copyBw(CacheMode mode) const;

    /** Throw FatalError if the configuration is inconsistent. */
    void validate() const;
};

} // namespace shrimp

#endif // SHRIMP_BASE_CONFIG_HH
