#include "base/config.hh"

#include "base/logging.hh"

namespace shrimp
{

double
MachineConfig::copyBw(CacheMode mode) const
{
    switch (mode) {
      case CacheMode::WriteBack:
        return copyBwWriteBack;
      case CacheMode::WriteThrough:
        return copyBwWriteThrough;
      case CacheMode::Uncached:
        return copyBwUncached;
    }
    return copyBwWriteBack;
}

void
MachineConfig::validate() const
{
    if (meshWidth < 1 || meshHeight < 1)
        fatal("mesh dimensions must be at least 1x1");
    if (pageBytes == 0 || (pageBytes & (pageBytes - 1)) != 0)
        fatal("pageBytes must be a nonzero power of two");
    if (nodeMemBytes % pageBytes != 0)
        fatal("nodeMemBytes must be a multiple of pageBytes");
    if (maxPacketBytes == 0 || maxPacketBytes > pageBytes)
        fatal("maxPacketBytes must be in (0, pageBytes]");
    if (auCombineLimit == 0 || auCombineLimit > maxPacketBytes)
        fatal("auCombineLimit must be in (0, maxPacketBytes]");
    if (eisaDmaBw <= 0 || linkBw <= 0 || etherBw <= 0)
        fatal("bandwidths must be positive");
    if (copyBwWriteBack <= 0 || copyBwWriteThrough <= 0 ||
        copyBwUncached <= 0) {
        fatal("copy bandwidths must be positive");
    }
}

} // namespace shrimp
