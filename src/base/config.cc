#include "base/config.hh"

#include <cstdlib>

#ifdef __GLIBC__
#include <malloc.h>
#endif

#include "base/logging.hh"
#include "base/trace.hh"

namespace shrimp
{

void
applyEnvOverrides()
{
    // Benchmarks build one simulated machine per measured point, each
    // holding tens of MB of node memory. Left to its own heuristics,
    // glibc can serve those buffers with per-machine mmap/munmap, which
    // refaults every page on every measurement (~6x wall clock on the
    // figure benches). Pin the threshold so they stay in the arena.
    // analyze: shared(host-allocator tuning is per-process and applied
    // once, before any shard exists)
    static bool alloc_tuned = false;
    if (!alloc_tuned) {
        alloc_tuned = true;
#ifdef __GLIBC__
        mallopt(M_MMAP_THRESHOLD, 64 << 20);
#endif
    }
    if (const char *lvl = std::getenv("SHRIMP_LOG_LEVEL")) {
        char *end = nullptr;
        long v = std::strtol(lvl, &end, 10);
        if (end != lvl && *end == '\0' && v >= 0 && v <= 3)
            logging::verbosity = int(v);
        else
            warn(logging::format("ignoring bad SHRIMP_LOG_LEVEL=%s", lvl));
    }
    if (const char *path = std::getenv("SHRIMP_TRACE")) {
        if (*path && trace::outputPath().empty())
            trace::setOutputPath(path);
    }
    if (const char *s = std::getenv("SHRIMP_STATS")) {
        if (*s)
            trace::setStatsDumpRequested(true);
    }
}

double
MachineConfig::copyBw(CacheMode mode) const
{
    switch (mode) {
      case CacheMode::WriteBack:
        return copyBwWriteBack;
      case CacheMode::WriteThrough:
        return copyBwWriteThrough;
      case CacheMode::Uncached:
        return copyBwUncached;
    }
    return copyBwWriteBack;
}

void
MachineConfig::validate() const
{
    if (meshWidth < 1 || meshHeight < 1)
        fatal("mesh dimensions must be at least 1x1");
    if (pageBytes == 0 || (pageBytes & (pageBytes - 1)) != 0)
        fatal("pageBytes must be a nonzero power of two");
    if (nodeMemBytes % pageBytes != 0)
        fatal("nodeMemBytes must be a multiple of pageBytes");
    if (maxPacketBytes == 0 || maxPacketBytes > pageBytes)
        fatal("maxPacketBytes must be in (0, pageBytes]");
    if (auCombineLimit == 0 || auCombineLimit > maxPacketBytes)
        fatal("auCombineLimit must be in (0, maxPacketBytes]");
    if (eisaDmaBw <= 0 || linkBw <= 0 || etherBw <= 0)
        fatal("bandwidths must be positive");
    if (copyBwWriteBack <= 0 || copyBwWriteThrough <= 0 ||
        copyBwUncached <= 0) {
        fatal("copy bandwidths must be positive");
    }
    if (raceReadRecCap == 0)
        fatal("raceReadRecCap must be at least 1");
}

} // namespace shrimp
