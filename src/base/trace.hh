/**
 * @file
 * Tick-accurate tracing keyed off the simulated clock.
 *
 * Components register a *track* (one row in the viewer: a CPU, a NIC
 * datapath block, a bus, a daemon, a library instance) and record span
 * begin/end pairs and instant events against it, passing the current
 * simulated tick explicitly. The Tracer buffers events in memory and
 * can emit them as Chrome trace-event JSON, loadable in Perfetto
 * (https://ui.perfetto.dev) or chrome://tracing; each track appears as
 * a named thread.
 *
 * Tracing is off by default: every recording call first checks a single
 * global flag (see on()), so an instrumented simulation pays one
 * predictable branch per event when disabled. Enable at runtime with
 * parseCliFlags() (--trace=<file>), setEnabled(), or the SHRIMP_TRACE
 * environment variable (see applyEnvOverrides() in base/config.hh).
 *
 * Determinism: events are stored in recording order and timestamps are
 * simulated ticks, so two identical runs emit byte-identical JSON (the
 * EventQueue's sequence-number tie-breaking fixes the order of events
 * that share a tick).
 */

#ifndef SHRIMP_BASE_TRACE_HH
#define SHRIMP_BASE_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "base/types.hh"

namespace shrimp::trace
{

using TrackId = std::uint32_t;

namespace detail
{
extern bool gEnabled;
} // namespace detail

/** Fast global check compiled into every recording call site. */
inline bool on() { return detail::gEnabled; }

class Tracer
{
  public:
    /** Event phases, mirroring the Chrome trace-event "ph" field. */
    enum class Phase : std::uint8_t
    {
        Begin,     //!< "B": span start
        End,       //!< "E": span end
        Instant,   //!< "i": point event
        FlowStart, //!< "s": causal flow origin (base/span.hh)
        FlowStep,  //!< "t": causal flow waypoint
        FlowEnd,   //!< "f": causal flow terminus
    };

    struct Event
    {
        Tick tick;
        TrackId track;
        /** Event name. Must outlive the Tracer (string literals). */
        const char *name;
        Phase phase;
        /** Flow id linking FlowStart/Step/End chains; 0 otherwise. */
        std::uint64_t id = 0;
    };

    /** The process-wide tracer all instrumentation records into. */
    static Tracer &instance();

    /** Master switch; mirrored into the on() fast-path flag. */
    void setEnabled(bool enabled);
    bool enabled() const { return detail::gEnabled; }

    /**
     * Register (or look up) the track named @p name. Track names are
     * deduplicated so components recreated across simulations (e.g. one
     * vmmc::System per benchmark point) share a row.
     */
    TrackId track(const std::string &name);

    void
    begin(TrackId t, const char *name, Tick tick)
    {
        events_.push_back(Event{tick, t, name, Phase::Begin});
    }

    void
    end(TrackId t, const char *name, Tick tick)
    {
        events_.push_back(Event{tick, t, name, Phase::End});
    }

    void
    instant(TrackId t, const char *name, Tick tick)
    {
        events_.push_back(Event{tick, t, name, Phase::Instant});
    }

    /** Record one link of a causal flow chain (see base/span.hh). All
     *  events recorded with the same @p id render as one arrow chain. */
    void
    flow(TrackId t, const char *name, Tick tick, Phase phase,
         std::uint64_t id)
    {
        events_.push_back(Event{tick, t, name, phase, id});
    }

    const std::vector<Event> &events() const { return events_; }
    const std::string &trackName(TrackId t) const { return tracks_.at(t); }
    std::size_t numTracks() const { return tracks_.size(); }

    /**
     * FNV-1a fingerprint of the recorded event stream: tick, track
     * *name* (ids may differ across runs with different registration
     * order), event name and phase of every event, in recording order.
     * Two runs of a deterministic simulation produce equal hashes; the
     * determinism verifier (bench --check-determinism) compares them.
     */
    std::uint64_t hash() const;

    /** Drop all recorded events (registered tracks are kept). */
    void clear() { events_.clear(); }

    /** Emit everything recorded so far as Chrome trace-event JSON. */
    void writeJson(std::ostream &os) const;

    /** writeJson() to @p path; warns and returns false on I/O failure. */
    bool writeJsonFile(const std::string &path) const;

  private:
    std::vector<std::string> tracks_;
    //! FNV-1a of each track's name (computed once at registration):
    //! hash() mixes this 8-byte digest instead of re-hashing the name
    //! string for every event on the track.
    std::vector<std::uint64_t> trackHashes_;
    std::vector<Event> events_;
};

/** Record an instant event if tracing is enabled. */
inline void
instant(TrackId t, const char *name, Tick tick)
{
    if (on())
        Tracer::instance().instant(t, name, tick);
}

/** Register a track on the global tracer. */
inline TrackId
track(const std::string &name)
{
    return Tracer::instance().track(name);
}

/**
 * RAII span: begins at construction, ends at destruction, reading the
 * simulated time from @p clock (anything with a now() returning Tick —
 * sim::EventQueue, sim::Simulator). Inside a coroutine the span lives
 * in the frame, so it correctly brackets suspensions.
 */
template <typename Clock>
class ScopedSpan
{
  public:
    ScopedSpan(const Clock &clock, TrackId track, const char *name)
        : clock_(clock), track_(track), name_(name), active_(on())
    {
        if (active_)
            Tracer::instance().begin(track_, name_, clock_.now());
    }

    ~ScopedSpan()
    {
        if (active_)
            Tracer::instance().end(track_, name_, clock_.now());
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const Clock &clock_;
    TrackId track_;
    const char *name_;
    bool active_;
};

/**
 * Observability command-line flags, shared by the benchmarks and the
 * examples:
 *
 *   --trace=<file>   enable tracing; write Chrome trace JSON to <file>
 *                    at process exit
 *   --stats          dump the global StatRegistry (text form) to stdout
 *                    at process exit
 *
 * Recognized flags are removed from argv/argc so downstream parsers
 * (google-benchmark) never see them. Also applies the SHRIMP_*
 * environment overrides (see base/config.hh).
 */
void parseCliFlags(int &argc, char **argv);

/** Where --trace output goes ("" = tracing not requested via CLI/env). */
const std::string &outputPath();
void setOutputPath(const std::string &path);

/** Whether --stats / SHRIMP_STATS requested a stats dump at exit. */
bool statsDumpRequested();
void setStatsDumpRequested(bool v);

} // namespace shrimp::trace

#endif // SHRIMP_BASE_TRACE_HH
