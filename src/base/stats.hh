/**
 * @file
 * A small statistics package (counters and scalar formulas) so that
 * hardware models and libraries can export event counts, in the spirit of
 * gem5's stats. Stats live in named groups; a StatRegistry can dump all
 * groups for inspection in tests and benchmarks.
 */

#ifndef SHRIMP_BASE_STATS_HH
#define SHRIMP_BASE_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace shrimp::stats
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running scalar distribution: count / sum / min / max / mean. */
class Distribution
{
  public:
    void
    sample(double v)
    {
        if (count_ == 0 || v < min_) min_ = v;
        if (count_ == 0 || v > max_) max_ = v;
        sum_ += v;
        ++count_;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
    void reset() { count_ = 0; sum_ = min_ = max_ = 0.0; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A named group of statistics belonging to one component. Components
 * register their counters by name; the group can be printed or queried.
 */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p stat_name. Returns a stable reference. */
    Counter &counter(const std::string &stat_name);

    /** Register a distribution under @p stat_name. */
    Distribution &distribution(const std::string &stat_name);

    /** Value of a registered counter; 0 if absent. */
    std::uint64_t get(const std::string &stat_name) const;

    const std::string &name() const { return name_; }
    void dump(std::ostream &os) const;
    void reset();

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> dists_;
};

} // namespace shrimp::stats

#endif // SHRIMP_BASE_STATS_HH
