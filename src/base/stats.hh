/**
 * @file
 * A small statistics package (counters and distributions) so that
 * hardware models and libraries can export event counts, in the spirit of
 * gem5's stats. Stats live in named groups; every Group registers itself
 * with the global StatRegistry, which can dump all groups (as text or
 * JSON) and reset them for inspection in tests and benchmarks.
 *
 * Components are frequently shorter-lived than the process (benchmarks
 * build one simulated machine per measured point), so when a Group is
 * destroyed the registry folds its final values into per-name *retired*
 * totals; a dump therefore always covers everything the process has
 * simulated.
 */

#ifndef SHRIMP_BASE_STATS_HH
#define SHRIMP_BASE_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace shrimp::stats
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Running scalar distribution: count / sum / min / max / mean plus a
 * log2 histogram (bucket i counts samples in [2^(i-1), 2^i); bucket 0
 * counts samples below 1), so dumps show the shape, not just moments.
 */
class Distribution
{
  public:
    static constexpr std::size_t numBuckets = 40;

    void
    sample(double v)
    {
        if (count_ == 0 || v < min_) min_ = v;
        if (count_ == 0 || v > max_) max_ = v;
        sum_ += v;
        ++count_;
        ++buckets_[bucketOf(v)];
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }

    /** Number of samples in log2 bucket @p i. */
    std::uint64_t bucketCount(std::size_t i) const { return buckets_.at(i); }

    /** Bucket index a sample of value @p v lands in. */
    static std::size_t bucketOf(double v);

    /** Lower edge of bucket @p i (0 for the first bucket). */
    static double bucketLo(std::size_t i);

    /** Fold another distribution into this one. */
    void merge(const Distribution &other);

    /** Print moments plus the nonzero histogram buckets, one per line,
     *  each prefixed with @p prefix. */
    void dump(std::ostream &os, const std::string &prefix) const;

    void reset();

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::array<std::uint64_t, numBuckets> buckets_{};
};

/**
 * A named group of statistics belonging to one component. Components
 * register their counters by name; the group can be printed or queried.
 * Construction registers the group with StatRegistry::global();
 * destruction retires it (its values fold into the registry's per-name
 * totals). Groups are pinned (no copy/move) because the registry holds
 * a pointer.
 */
class Group
{
  public:
    explicit Group(std::string name);
    ~Group();

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    /** Register a counter under @p stat_name. Returns a stable reference. */
    Counter &counter(const std::string &stat_name);

    /** Register a distribution under @p stat_name. */
    Distribution &distribution(const std::string &stat_name);

    /** Value of a registered counter; 0 if absent. */
    std::uint64_t get(const std::string &stat_name) const;

    const std::string &name() const { return name_; }
    void dump(std::ostream &os) const;
    void reset();

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Distribution> &distributions() const
    {
        return dists_;
    }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> dists_;
};

/**
 * Process-wide registry of all live stat Groups plus retired totals.
 * Live groups register in construction order; lookup is by name (the
 * first live match wins). dumpAll()/dumpJson() cover live groups and
 * retired totals; resetAll() zeroes the live groups and drops the
 * retired totals.
 */
class StatRegistry
{
  public:
    static StatRegistry &global();

    /** Called by Group's constructor. */
    void add(Group &g);

    /** Called by Group's destructor; folds final values into the
     *  retired totals for the group's name. */
    void remove(Group &g);

    /** First live group named @p name, or nullptr. */
    Group *find(const std::string &name);

    const std::vector<Group *> &groups() const { return groups_; }

    /** gem5-style "group.stat value" lines for every live group, then
     *  the retired totals under "retired.". */
    void dumpAll(std::ostream &os) const;

    /** The same data as a JSON object:
     *  {"groups": {name: {"counters": {...}, "distributions": {...}}},
     *   "retired": {...}}. */
    void dumpJson(std::ostream &os) const;

    /** Reset all live groups and clear the retired totals. */
    void resetAll();

  private:
    struct Retired
    {
        std::map<std::string, std::uint64_t> counters;
        std::map<std::string, Distribution> dists;
    };

    std::vector<Group *> groups_;
    std::map<std::string, Retired> retired_;
};

} // namespace shrimp::stats

#endif // SHRIMP_BASE_STATS_HH
