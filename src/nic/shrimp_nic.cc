#include "nic/shrimp_nic.hh"

#include "base/logging.hh"
#include "check/check.hh"
#include "sim/profile.hh"

namespace shrimp::nic
{

ShrimpNic::ShrimpNic(sim::Simulator &sim, const MachineConfig &cfg,
                     NodeId self, mem::Memory &memory, sim::Bus &eisa,
                     sim::Channel<net::Packet> &input)
    : sim_(sim), cfg_(cfg), self_(self), mem_(memory),
      outFifo_(sim.queue()), opt_(memory.numPages()),
      ipt_(memory.numPages()), packetizer_(sim, cfg, self, outFifo_),
      duEngine_(cfg, memory, eisa, packetizer_),
      incoming_(sim, cfg, self, memory, eisa, ipt_, input),
      stats_("node" + std::to_string(self) + ".nic"),
      track_(trace::track(stats_.name())),
      statPacketsInjected_(stats_.counter("packetsInjected")),
      statOptLookups_(stats_.counter("optLookups")),
      statOptHits_(stats_.counter("optHits"))
{
}

void
ShrimpNic::setInjector(std::function<void(net::Packet)> inject)
{
    inject_ = std::move(inject);
}

void
ShrimpNic::start()
{
    if (started_)
        panic("ShrimpNic started twice");
    started_ = true;
    // spawnDaemon: these loops run for the life of the machine.
    sim_.spawnDaemon(pumpLoop());
    sim_.spawnDaemon(incoming_.loop());
}

// analyze: lookahead-entry(vmmc-au) — automatic-update egress pump:
// snooped frames pay the forward cost before reaching the fabric.
sim::Task<>
ShrimpNic::pumpLoop()
{
    for (;;) {
        net::Packet pkt = co_await outFifo_.recv();
        sim::profile::retag(sim::profile::Subsys::Nic);
        // Arbiter + NIC processor port + packet-header formation.
        // analyze: lookahead-charge(vmmc-au) — arbiter + header cost.
        co_await sim::Delay{sim_.queue(),
                            cfg_.nicForwardCost + cfg_.snoopPacketizeCost};
        if (!inject_)
            panic("NIC has no mesh injector installed");
        ++injected_;
        // Per-NIC injection sequence (1-based; 0 means unsequenced).
        // The backplane preserves per-source order, so receivers can
        // verify in-order delivery against this.
        pkt.seq = injected_;
        statPacketsInjected_ += 1;
        trace::instant(track_, "pkt.injected", sim_.queue().now());
        span::step(pkt.spanId, track_, "pkt.inject", sim_.queue().now());
        inject_(std::move(pkt));
    }
}

void
ShrimpNic::snoopWrite(PAddr addr, const void *data, std::size_t len)
{
    if (len == 0)
        return;
    PageNum page = mem_.pageOf(addr);
    if (mem_.pageOf(addr + PAddr(len) - 1) != page)
        panic("snooped write crosses a page boundary");
    statOptLookups_ += 1;
    const OptEntry *e = opt_.lookupPage(page);
    if (!e)
        return;
    statOptHits_ += 1;
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onOptUse(
        self_, e->valid, e->destNode, std::size_t(addr % cfg_.pageBytes),
        len, e->len));
    PAddr dest = e->destBase + PAddr(addr % cfg_.pageBytes);
    packetizer_.auWrite(*e, dest, data, len);
}

sim::Task<>
ShrimpNic::deliberateSend(std::uint32_t slot, std::size_t dst_off,
                          PAddr src, std::size_t len, bool notify,
                          span::SpanId span)
{
    const OptEntry *e = opt_.slot(slot);
    if (!e)
        panic("deliberateSend through unknown import slot");
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onOptUse(
        self_, e->valid, e->destNode, dst_off, len, e->len));
    co_await duEngine_.send(*e, dst_off, src, len, notify, span);
}

} // namespace shrimp::nic
