#include "nic/deliberate_update_engine.hh"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "check/check.hh"
#include "check/race.hh"
#include "sim/profile.hh"

namespace shrimp::nic
{

DeliberateUpdateEngine::DeliberateUpdateEngine(const MachineConfig &cfg,
                                               mem::Memory &memory,
                                               sim::Bus &eisa,
                                               Packetizer &packetizer)
    : cfg_(cfg), mem_(memory), eisa_(eisa), packetizer_(packetizer)
{
    SHRIMP_CHECK_HOOK(
        raceActor_ = check::RaceDetector::instance().registerActor(
            "node" + std::to_string(packetizer.self()) + ".du",
            check::ActorKind::Du));
}

sim::Task<>
DeliberateUpdateEngine::send(const OptEntry &dst, std::size_t dst_off,
                             PAddr src, std::size_t len, bool notify,
                             span::SpanId span)
{
    if (!dst.valid)
        panic("DU send through invalid OPT slot");
    if (src % 4 != 0 || (dst.destBase + dst_off) % 4 != 0)
        panic("DU engine handed misaligned addresses (the VMMC layer "
              "must reject these)");

    // The hardware transfers whole words; a non-multiple length sends
    // padding bytes after the message (paper section 4, "Reducing
    // Copying").
    std::size_t wire_len = (len + 3) & ~std::size_t(3);
    if (dst_off + wire_len > dst.len)
        panic("DU transfer exceeds imported window");

    ++transfers_;
    std::size_t page = cfg_.pageBytes;
    std::size_t done = 0;
    while (done < wire_len) {
        PAddr dest_addr = dst.destBase + PAddr(dst_off + done);
        std::size_t to_page_end = page - (dest_addr % page);
        std::size_t chunk = std::min({wire_len - done, cfg_.maxPacketBytes,
                                      to_page_end});

        // DMA-read the source data over the EISA bus.
        // analyze: lookahead-charge(vmmc-du) — DMA read setup per chunk.
        co_await eisa_.transfer(chunk, cfg_.dmaReadSetup);
        sim::profile::retag(sim::profile::Subsys::Du);

        net::Packet pkt;
        pkt.dst = dst.destNode;
        pkt.destAddr = dest_addr;
        pkt.spanId = span;
        pkt.payload.resize(chunk);
        {
            // The DMA read is the engine's access, not the caller's.
            SHRIMP_RACE_SCOPE(raceActor_);
            mem_.read(src + PAddr(done), pkt.payload.data(), chunk);
        }
        pkt.senderInterrupt = notify && (done + chunk == wire_len);
        // Shadow check: an unattributed re-read of the source range must
        // match what the packet carries (catches any payload corruption
        // between the DMA read and packet emission).
        SHRIMP_CHECK_HOOK(
            std::vector<std::uint8_t> shadow(chunk);
            mem_.read(src + PAddr(done), shadow.data(), chunk);
            check::SimChecker::instance().onDuPacket(
                &packetizer_, pkt, shadow.data(), chunk));
        SHRIMP_CHECK_HOOK(pkt.raceClock =
                              check::RaceDetector::instance().snapshot(
                                  raceActor_));
        packetizer_.duPacket(std::move(pkt));

        done += chunk;
        bytesSent_ += chunk;
    }
}

} // namespace shrimp::nic
