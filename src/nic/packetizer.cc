#include "nic/packetizer.hh"

#include <cstring>

#include "base/logging.hh"
#include "base/span.hh"
#include "check/check.hh"
#include "check/race.hh"
#include "sim/profile.hh"

namespace shrimp::nic
{

Packetizer::Packetizer(sim::Simulator &sim, const MachineConfig &cfg,
                       NodeId self, sim::Channel<net::Packet> &out_fifo)
    : sim_(sim), cfg_(cfg), self_(self), outFifo_(out_fifo),
      stats_("node" + std::to_string(self) + ".nic.out"),
      track_(trace::track(stats_.name())),
      statPacketsFormed_(stats_.counter("packetsFormed")),
      statDuPackets_(stats_.counter("duPackets")),
      statBytesFormed_(stats_.counter("bytesFormed")),
      statWritesCombined_(stats_.counter("writesCombined")),
      statTimerFlushes_(stats_.counter("timerFlushes")),
      statPacketBytes_(stats_.distribution("packetBytes"))
{
    SHRIMP_CHECK_HOOK(
        check::SimChecker::instance().onPacketizerCreated(this));
    SHRIMP_CHECK_HOOK(
        raceActor_ = check::RaceDetector::instance().registerActor(
            "node" + std::to_string(self) + ".snoop",
            check::ActorKind::Snoop));
}

void
Packetizer::auWrite(const OptEntry &e, PAddr dest_addr, const void *data,
                    std::size_t len)
{
    if (len == 0)
        return;

    // The snoop logic captures the store off the memory bus in the same
    // cycle the CPU makes it: a hardware handoff, not a race.
    SHRIMP_CHECK_HOOK(check::RaceDetector::instance().handoff(
        check::RaceDetector::instance().currentActor(), raceActor_));

    if (pending_) {
        bool consecutive = pending_->dst == e.destNode &&
                           pending_->destAddr +
                               PAddr(pending_->payload.size()) == dest_addr;
        bool fits = pending_->payload.size() + len <= cfg_.auCombineLimit;
        if (e.combinable && consecutive && fits &&
            pending_->senderInterrupt == e.destInterrupt) {
            SHRIMP_CHECK_HOOK(check::SimChecker::instance().onShadowAppend(
                this, e.destNode, dest_addr, data, len));
            const auto *bytes = static_cast<const std::uint8_t *>(data);
            pending_->payload.insert(pending_->payload.end(), bytes,
                                     bytes + len);
            ++writesCombined_;
            statWritesCombined_ += 1;
            armTimer();
            if (pending_->payload.size() >= cfg_.auCombineLimit)
                flushPending();
            return;
        }
        // Non-consecutive (or non-combinable) update: the pending packet
        // goes out first so data leaves in program order.
        flushPending();
    }

    startPending(e, dest_addr, data, len);

    if (!e.combinable || pending_->payload.size() >= cfg_.auCombineLimit) {
        flushPending();
    } else if (e.timerEnabled) {
        armTimer();
    }
}

void
Packetizer::startPending(const OptEntry &e, PAddr dest_addr,
                         const void *data, std::size_t len)
{
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onShadowStart(
        this, e.destNode, dest_addr, data, len));
    net::Packet pkt;
    pkt.src = self_;
    pkt.dst = e.destNode;
    pkt.destAddr = dest_addr;
    pkt.senderInterrupt = e.destInterrupt;
    // A sampled automatic-update message stages its span before the
    // stores; the packet that the first store opens claims it, and
    // every write combined into the packet joins the same parent span.
    pkt.spanId = span::takeStaged();
    span::step(pkt.spanId, track_, "pkt.start", sim_.queue().now());
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    pkt.payload.assign(bytes, bytes + len);
    pending_ = std::move(pkt);
    pendingTimerEnabled_ = e.timerEnabled;
}

void
Packetizer::armTimer()
{
    if (!pendingTimerEnabled_)
        return;
    std::uint64_t gen = ++timerGen_;
    // The flush timer belongs to the packetizer even though it is armed
    // from inside the CPU's store (Scope, not retag: the rest of the
    // store stays attributed to the CPU).
    sim::profile::Scope prof(sim::profile::Subsys::Packetizer);
    // The flush timer is the packetizer's own event: the shard that
    // owns this node owns its event-queue slice too, so the capture
    // never crosses a shard boundary.
    // analyze: allow(event-capture-escape)
    sim_.queue().scheduleIn(cfg_.auCombineTimeout, [this, gen] {
        if (pending_ && gen == timerGen_) {
            ++timerFlushes_;
            statTimerFlushes_ += 1;
            SHRIMP_DEBUG("node%d packetizer: timer flush at %llu ns",
                         int(self_),
                         (unsigned long long)sim_.queue().now());
            flushPending();
        }
    });
}

void
Packetizer::flushPending()
{
    if (!pending_)
        return;
    SHRIMP_CHECK_HOOK(
        check::SimChecker::instance().onShadowFlush(this, *pending_));
    // Stamp the snoop path's clock: whoever receives this packet is
    // ordered after every store that went into it.
    SHRIMP_CHECK_HOOK(pending_->raceClock =
                          check::RaceDetector::instance().snapshot(
                              raceActor_));
    ++timerGen_; // cancel any armed timer
    ++packetsFormed_;
    statPacketsFormed_ += 1;
    statBytesFormed_ += pending_->payload.size();
    statPacketBytes_.sample(double(pending_->payload.size()));
    trace::instant(track_, "pkt.formed", sim_.queue().now());
    span::step(pending_->spanId, track_, "pkt.flush", sim_.queue().now());
    outFifo_.send(std::move(*pending_));
    pending_.reset();
}

void
Packetizer::duPacket(net::Packet pkt)
{
    // Deliberate-update data must not overtake earlier automatic updates.
    flushPending();
    pkt.src = self_;
    ++packetsFormed_;
    statPacketsFormed_ += 1;
    statDuPackets_ += 1;
    statBytesFormed_ += pkt.payload.size();
    statPacketBytes_.sample(double(pkt.payload.size()));
    trace::instant(track_, "pkt.formed", sim_.queue().now());
    span::step(pkt.spanId, track_, "pkt.flush", sim_.queue().now());
    outFifo_.send(std::move(pkt));
}

} // namespace shrimp::nic
