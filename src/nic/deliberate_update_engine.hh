/**
 * @file
 * DeliberateUpdateEngine: interprets the two-access transfer-initiation
 * sequence (source address, destination, size) and performs DMA through
 * the EISA bus to read the source data from main memory, handing the
 * data to the packetizer (paper sections 2.2 and 3.2).
 *
 * A transfer is split into packets that never cross a destination page
 * boundary (the incoming page table is checked per page) and never
 * exceed the maximum packet payload. The blocking send completes when
 * the last byte of source data has been read out of memory, after which
 * the sender may reuse its source buffer.
 */

#ifndef SHRIMP_NIC_DELIBERATE_UPDATE_ENGINE_HH
#define SHRIMP_NIC_DELIBERATE_UPDATE_ENGINE_HH

#include <cstddef>

#include "base/config.hh"
#include "base/span.hh"
#include "mem/memory.hh"
#include "nic/outgoing_page_table.hh"
#include "nic/packetizer.hh"
#include "sim/bus.hh"
#include "sim/task.hh"

namespace shrimp::nic
{

class DeliberateUpdateEngine
{
  public:
    DeliberateUpdateEngine(const MachineConfig &cfg, mem::Memory &memory,
                           sim::Bus &eisa, Packetizer &packetizer);

    /**
     * Execute one deliberate-update transfer.
     *
     * @param dst OPT import slot describing the destination window
     * @param dst_off byte offset into the destination window
     * @param src source physical address (word aligned)
     * @param len transfer length in bytes (rounded up to whole words on
     *        the wire, as the hardware does)
     * @param notify set the sender-specified interrupt flag on the last
     *        packet of the transfer
     * @param span sampled flow id stamped into every packet of the
     *        transfer (0 = message not sampled)
     *
     * Completes when the source data has been fully read from memory.
     */
    sim::Task<> send(const OptEntry &dst, std::size_t dst_off, PAddr src,
                     std::size_t len, bool notify, span::SpanId span = 0);

    std::uint64_t transfers() const { return transfers_; }
    std::uint64_t bytesSent() const { return bytesSent_; }

    /** Race-detector actor id of this engine's DMA reads (noActor in
     *  non-SHRIMP_CHECK builds). */
    std::uint32_t raceActor() const { return raceActor_; }

  private:
    const MachineConfig &cfg_;
    mem::Memory &mem_;
    sim::Bus &eisa_;
    Packetizer &packetizer_;

    std::uint64_t transfers_ = 0;
    std::uint64_t bytesSent_ = 0;
    std::uint32_t raceActor_ = 0xffffffffu; // check::noActor
};

} // namespace shrimp::nic

#endif // SHRIMP_NIC_DELIBERATE_UPDATE_ENGINE_HH
