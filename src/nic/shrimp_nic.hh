/**
 * @file
 * ShrimpNic: the custom SHRIMP network interface (paper section 3.2),
 * composed of the snoop logic, outgoing page table, packetizer with
 * outgoing FIFO, deliberate-update engine, incoming page table, and
 * incoming DMA engine. Outgoing packets are pumped through the NIC's
 * processor port (a fixed per-packet forwarding cost stands in for the
 * arbiter and NIC chip) and injected into the mesh via a hook installed
 * by the Machine, which also tracks in-flight packets at the receiver
 * for drain (unexport) support.
 */

#ifndef SHRIMP_NIC_SHRIMP_NIC_HH
#define SHRIMP_NIC_SHRIMP_NIC_HH

#include <functional>

#include "base/config.hh"
#include "base/ownership.hh"
#include "base/span.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "mem/memory.hh"
#include "net/packet.hh"
#include "nic/deliberate_update_engine.hh"
#include "nic/incoming_dma_engine.hh"
#include "nic/incoming_page_table.hh"
#include "nic/outgoing_page_table.hh"
#include "nic/packetizer.hh"
#include "sim/bus.hh"
#include "sim/simulator.hh"

namespace shrimp::nic
{

class ShrimpNic
{
    SHRIMP_SHARD_OWNED;

  public:
    /**
     * @param input the router eject queue feeding the incoming engine
     */
    ShrimpNic(sim::Simulator &sim, const MachineConfig &cfg, NodeId self,
              mem::Memory &memory, sim::Bus &eisa,
              sim::Channel<net::Packet> &input);

    /** Install the mesh-injection hook (set by the Machine). */
    void setInjector(std::function<void(net::Packet)> inject);

    /** Spawn the outgoing pump and incoming engine daemons. */
    void start();

    /**
     * Snoop path: the CPU performed a memory-bus write of @p len bytes
     * at physical address @p addr. If the page has an automatic-update
     * binding, the data is packetized toward the bound remote page.
     * A single snooped write never crosses a page boundary.
     */
    void snoopWrite(PAddr addr, const void *data, std::size_t len);

    /**
     * Deliberate-update transfer through import slot @p slot. The CPU's
     * two initiation accesses are charged by the caller; this models
     * the engine work and blocks until the source has been read.
     * @param span sampled flow id carried into the packets (0 = none).
     */
    sim::Task<> deliberateSend(std::uint32_t slot, std::size_t dst_off,
                               PAddr src, std::size_t len, bool notify,
                               span::SpanId span = 0);

    NodeId id() const { return self_; }
    OutgoingPageTable &opt() { return opt_; }
    IncomingPageTable &ipt() { return ipt_; }
    Packetizer &packetizer() { return packetizer_; }
    IncomingDmaEngine &incoming() { return incoming_; }
    DeliberateUpdateEngine &duEngine() { return duEngine_; }

    std::uint64_t packetsInjected() const { return injected_; }

  private:
    sim::Task<> pumpLoop();

    sim::Simulator &sim_;
    const MachineConfig &cfg_;
    NodeId self_;
    mem::Memory &mem_;

    sim::Channel<net::Packet> outFifo_;
    OutgoingPageTable opt_;
    IncomingPageTable ipt_;
    Packetizer packetizer_;
    DeliberateUpdateEngine duEngine_;
    IncomingDmaEngine incoming_;

    std::function<void(net::Packet)> inject_;
    std::uint64_t injected_ = 0;
    bool started_ = false;

    stats::Group stats_;
    trace::TrackId track_;
    // snoopWrite() runs per snooped store; stat lookups are hoisted to
    // construction so the per-store cost is a plain increment.
    stats::Counter &statPacketsInjected_;
    stats::Counter &statOptLookups_;
    stats::Counter &statOptHits_;
};

} // namespace shrimp::nic

#endif // SHRIMP_NIC_SHRIMP_NIC_HH
