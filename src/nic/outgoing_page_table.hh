/**
 * @file
 * OutgoingPageTable (OPT): maintains bindings from local memory to
 * remote destination pages (paper section 3.2).
 *
 * Two kinds of entries exist, matching the two transfer strategies:
 *  - Automatic-update entries are indexed directly by local physical
 *    page number; the snoop logic consults them on every memory-bus
 *    write. Each carries per-page configuration: combining enable,
 *    hardware flush timer enable, and the destination-interrupt flag.
 *  - Import slots describe an imported remote buffer and are referenced
 *    by the deliberate-update initiation sequence to select the
 *    destination.
 */

#ifndef SHRIMP_NIC_OUTGOING_PAGE_TABLE_HH
#define SHRIMP_NIC_OUTGOING_PAGE_TABLE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "base/types.hh"

namespace shrimp::nic
{

struct OptEntry
{
    bool valid = false;

    /** Destination node of the mapped window. */
    NodeId destNode = invalidNode;

    /** Destination physical base address of the mapped window. */
    PAddr destBase = 0;

    /** Length of the mapped window in bytes. */
    std::size_t len = 0;

    /** Combine consecutive automatic-update writes into one packet. */
    bool combinable = true;

    /** Flush a pending combined packet on hardware timeout. */
    bool timerEnabled = true;

    /** Sender-specified interrupt flag: packets from this entry request
     *  a notification at the destination. */
    bool destInterrupt = false;
};

class OutgoingPageTable
{
  public:
    explicit OutgoingPageTable(std::size_t num_local_pages);

    // --- automatic-update bindings (indexed by local physical page) ---

    /** Install an AU binding for @p local_page. */
    void bindPage(PageNum local_page, const OptEntry &entry);

    /** Remove the AU binding for @p local_page. */
    void unbindPage(PageNum local_page);

    /** Snoop-path lookup. @return entry or nullptr if unbound. */
    const OptEntry *lookupPage(PageNum local_page) const;

    /** Number of valid AU bindings. */
    std::size_t numBindings() const { return numBindings_; }

    // --- import slots (deliberate-update destinations) -----------------

    /** Allocate a slot describing an imported buffer. */
    std::uint32_t allocSlot(const OptEntry &entry);

    /** Free an import slot. */
    void freeSlot(std::uint32_t slot);

    /** Look up an import slot; nullptr if free. */
    const OptEntry *slot(std::uint32_t slot) const;

    std::size_t numSlots() const { return slots_.size(); }

  private:
    std::vector<OptEntry> pageEntries_;
    std::size_t numBindings_ = 0;
    std::map<std::uint32_t, OptEntry> slots_;
    std::uint32_t nextSlot_ = 0;
};

} // namespace shrimp::nic

#endif // SHRIMP_NIC_OUTGOING_PAGE_TABLE_HH
