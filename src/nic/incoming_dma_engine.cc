#include "nic/incoming_dma_engine.hh"

#include "base/logging.hh"
#include "base/span.hh"
#include "check/check.hh"
#include "check/race.hh"
#include "sim/profile.hh"

namespace shrimp::nic
{

IncomingDmaEngine::IncomingDmaEngine(sim::Simulator &sim,
                                     const MachineConfig &cfg, NodeId self,
                                     mem::Memory &memory, sim::Bus &eisa,
                                     IncomingPageTable &ipt,
                                     sim::Channel<net::Packet> &input)
    : sim_(sim), cfg_(cfg), self_(self), mem_(memory), eisa_(eisa),
      ipt_(ipt), input_(input), unfreezeCond_(sim.queue()),
      drainCond_(sim.queue()),
      stats_("node" + std::to_string(self) + ".nic.in"),
      track_(trace::track(stats_.name())),
      statFreezes_(stats_.counter("freezes")),
      statPacketsDropped_(stats_.counter("packetsDropped")),
      statPacketsDelivered_(stats_.counter("packetsDelivered")),
      statBytesDelivered_(stats_.counter("bytesDelivered")),
      statNotifications_(stats_.counter("notifications"))
{
    SHRIMP_CHECK_HOOK(
        check::SimChecker::instance().onIncomingEngineCreated(this));
    SHRIMP_CHECK_HOOK(
        raceActor_ = check::RaceDetector::instance().registerActor(
            "node" + std::to_string(self) + ".dma",
            check::ActorKind::Dma));
}

sim::Task<>
IncomingDmaEngine::loop()
{
    for (;;) {
        net::Packet pkt = co_await input_.recv();
        sim::profile::retag(sim::profile::Subsys::Dma);
        std::size_t len = pkt.payload.size();
        PageNum page = mem_.pageOf(pkt.destAddr);

        bool drop = false;
        if (!ipt_.rangeEnabled(pkt.destAddr, len, cfg_.pageBytes)) {
            // Freeze the receive datapath and interrupt the node CPU.
            ++freezes_;
            statFreezes_ += 1;
            trace::instant(track_, "freeze", sim_.queue().now());
            SHRIMP_DEBUG("node%d incoming: freeze on page %u at %llu ns",
                         int(self_), unsigned(page),
                         (unsigned long long)sim_.queue().now());
            frozen_ = true;
            if (!badHandler_) {
                panic(logging::format(
                    "data received for disabled page %u and no daemon "
                    "handler installed", page));
            }
            badHandler_(pkt, page);
            while (frozen_)
                co_await unfreezeCond_.wait();
            if (freezeAction_ == FreezeAction::Drop) {
                drop = true;
            } else if (!ipt_.rangeEnabled(pkt.destAddr, len,
                                          cfg_.pageBytes)) {
                panic("unfreeze(Retry) but destination page still "
                      "disabled");
            }
        }

        if (drop) {
            ++dropped_;
            statPacketsDropped_ += 1;
            noteDone(pkt.destAddr);
            continue;
        }

        SHRIMP_CHECK_HOOK(check::SimChecker::instance().onDelivery(
            this, pkt.src, pkt.seq,
            ipt_.rangeEnabled(pkt.destAddr, len, cfg_.pageBytes)));
        co_await eisa_.transfer(len, cfg_.dmaWriteSetup);
        sim::profile::retag(sim::profile::Subsys::Dma);
        {
            // The delivery write is ordered after the sender's clock at
            // packet formation and after the export-window handshake.
            SHRIMP_RACE_SCOPE(raceActor_);
            SHRIMP_CHECK_HOOK(check::RaceDetector::instance().join(
                raceActor_, pkt.raceClock));
            SHRIMP_CHECK_HOOK(check::RaceDetector::instance().joinWindow(
                &mem_, pkt.destAddr, len, raceActor_));
            mem_.write(pkt.destAddr, pkt.payload.data(), len);
        }
        ++delivered_;
        bytesDelivered_ += len;
        statPacketsDelivered_ += 1;
        statBytesDelivered_ += len;
        trace::instant(track_, "pkt.delivered", sim_.queue().now());
        noteDone(pkt.destAddr);

        const bool willNotify =
            pkt.senderInterrupt && ipt_.interrupt(page);
        // The chain ends where the data becomes visible: at the
        // notification when one fires, else at the delivery DMA.
        if (willNotify) {
            span::step(pkt.spanId, track_, "pkt.deliver",
                       sim_.queue().now());
        } else {
            span::finish(pkt.spanId, track_, "pkt.deliver",
                         sim_.queue().now());
        }

        if (willNotify) {
            ++notifications_;
            statNotifications_ += 1;
            trace::instant(track_, "notify", sim_.queue().now());
            span::finish(pkt.spanId, track_, "notify", sim_.queue().now());
            if (notifyHandler_) {
                // The handler chain runs synchronously up to the handoff
                // to the notified process (any spawned delivery task
                // suspends at its first cost charge).
                SHRIMP_RACE_SCOPE(raceActor_);
                notifyHandler_(pkt);
            }
        }
    }
}

void
IncomingDmaEngine::unfreeze(FreezeAction action)
{
    if (!frozen_)
        panic("unfreeze called but datapath is not frozen");
    freezeAction_ = action;
    frozen_ = false;
    unfreezeCond_.notifyAll();
}

void
IncomingDmaEngine::noteInflight(PAddr addr)
{
    ++inflight_[mem_.pageOf(addr)];
}

void
IncomingDmaEngine::noteDone(PAddr addr)
{
    PageNum page = mem_.pageOf(addr);
    auto it = inflight_.find(page);
    if (it == inflight_.end() || it->second == 0)
        panic("in-flight packet accounting underflow");
    if (--it->second == 0)
        inflight_.erase(it);
    drainCond_.notifyAll();
}

sim::Task<>
IncomingDmaEngine::waitDrain(PageNum first, PageNum last)
{
    auto busy = [this, first, last] {
        auto it = inflight_.lower_bound(first);
        return it != inflight_.end() && it->first <= last;
    };
    while (busy())
        co_await drainCond_.wait();
}

} // namespace shrimp::nic
