#include "nic/incoming_page_table.hh"

#include "base/logging.hh"

namespace shrimp::nic
{

IncomingPageTable::IncomingPageTable(std::size_t num_pages)
    : entries_(num_pages)
{
}

const IncomingPageTable::Entry &
IncomingPageTable::at(PageNum page) const
{
    if (page >= entries_.size())
        panic("IPT access out of range");
    return entries_[page];
}

void
IncomingPageTable::setEnabled(PageNum page, bool enabled)
{
    if (page >= entries_.size())
        panic("IPT setEnabled out of range");
    if (entries_[page].enabled != enabled) {
        entries_[page].enabled = enabled;
        numEnabled_ += enabled ? 1 : -1;
    }
}

void
IncomingPageTable::setInterrupt(PageNum page, bool interrupt)
{
    if (page >= entries_.size())
        panic("IPT setInterrupt out of range");
    entries_[page].interrupt = interrupt;
}

bool
IncomingPageTable::enabled(PageNum page) const
{
    return at(page).enabled;
}

bool
IncomingPageTable::interrupt(PageNum page) const
{
    return at(page).interrupt;
}

bool
IncomingPageTable::rangeEnabled(PAddr addr, std::size_t len,
                                std::size_t page_bytes) const
{
    if (len == 0)
        len = 1;
    PageNum first = addr / page_bytes;
    PageNum last = PageNum((std::uint64_t(addr) + len - 1) / page_bytes);
    for (PageNum p = first; p <= last; ++p) {
        if (!at(p).enabled)
            return false;
    }
    return true;
}

} // namespace shrimp::nic
