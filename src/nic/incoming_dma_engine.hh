/**
 * @file
 * IncomingDmaEngine: drains packets ejected by the node's router,
 * validates the destination page against the incoming page table, and
 * transfers the payload to main memory over the EISA bus (paper section
 * 3.2).
 *
 * If data arrives for a page that is not enabled, the receive datapath
 * freezes and the node CPU is interrupted; the trusted daemon either
 * fixes the IPT and unfreezes, or tells the engine to drop the packet.
 * While frozen, later packets back up in the eject queue.
 *
 * The engine also tracks in-flight packets per destination page so that
 * unexport/unimport can wait for pending messages to drain (paper
 * section 2.1).
 */

#ifndef SHRIMP_NIC_INCOMING_DMA_ENGINE_HH
#define SHRIMP_NIC_INCOMING_DMA_ENGINE_HH

#include <functional>
#include <map>

#include "base/config.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "mem/memory.hh"
#include "net/packet.hh"
#include "nic/incoming_page_table.hh"
#include "sim/bus.hh"
#include "sim/simulator.hh"
#include "sim/sync.hh"

namespace shrimp::nic
{

/** What the daemon decided to do about a frozen packet. */
enum class FreezeAction
{
    Retry, //!< IPT has been fixed; deliver the packet
    Drop,  //!< discard the offending packet
};

class IncomingDmaEngine
{
  public:
    /** Called (once per offending packet) when the datapath freezes. */
    using BadPacketHandler =
        std::function<void(const net::Packet &, PageNum)>;

    /** Called after a packet with the sender-specified interrupt flag
     *  lands in a page whose IPT interrupt flag is set. */
    using NotifyHandler = std::function<void(const net::Packet &)>;

    IncomingDmaEngine(sim::Simulator &sim, const MachineConfig &cfg,
                      NodeId self, mem::Memory &memory, sim::Bus &eisa,
                      IncomingPageTable &ipt,
                      sim::Channel<net::Packet> &input);

    /** The engine's service loop; ShrimpNic spawns it as a daemon. */
    sim::Task<> loop();

    void setBadPacketHandler(BadPacketHandler h) { badHandler_ = std::move(h); }
    void setNotifyHandler(NotifyHandler h) { notifyHandler_ = std::move(h); }

    /** Resume a frozen datapath with the given resolution. */
    void unfreeze(FreezeAction action);

    bool frozen() const { return frozen_; }

    /** Record a packet headed for this node (called at injection time). */
    void noteInflight(PAddr addr);

    /** Wait until no packet is in flight toward pages [first, last].
     *  analyze: free — pure blocking on the drain condition; the
     *  deliveries being waited for charge their own bus time. */
    sim::Task<> waitDrain(PageNum first, PageNum last);

    /** Race-detector actor id of this engine's delivery writes (noActor
     *  in non-SHRIMP_CHECK builds). */
    std::uint32_t raceActor() const { return raceActor_; }

    std::uint64_t packetsDelivered() const { return delivered_; }
    std::uint64_t packetsDropped() const { return dropped_; }
    std::uint64_t bytesDelivered() const { return bytesDelivered_; }
    std::uint64_t notifications() const { return notifications_; }
    std::uint64_t freezes() const { return freezes_; }

  private:
    void noteDone(PAddr addr);

    sim::Simulator &sim_;
    const MachineConfig &cfg_;
    NodeId self_;
    mem::Memory &mem_;
    sim::Bus &eisa_;
    IncomingPageTable &ipt_;
    sim::Channel<net::Packet> &input_;

    BadPacketHandler badHandler_;
    NotifyHandler notifyHandler_;

    bool frozen_ = false;
    FreezeAction freezeAction_ = FreezeAction::Retry;
    sim::Condition unfreezeCond_;

    std::map<PageNum, std::uint32_t> inflight_;
    sim::Condition drainCond_;
    std::uint32_t raceActor_ = 0xffffffffu; // check::noActor

    std::uint64_t delivered_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t bytesDelivered_ = 0;
    std::uint64_t notifications_ = 0;
    std::uint64_t freezes_ = 0;

    stats::Group stats_;
    trace::TrackId track_;
    // Per-packet path; stat lookups hoisted to construction.
    stats::Counter &statFreezes_;
    stats::Counter &statPacketsDropped_;
    stats::Counter &statPacketsDelivered_;
    stats::Counter &statBytesDelivered_;
    stats::Counter &statNotifications_;
};

} // namespace shrimp::nic

#endif // SHRIMP_NIC_INCOMING_DMA_ENGINE_HH
