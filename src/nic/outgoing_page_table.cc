#include "nic/outgoing_page_table.hh"

#include "base/logging.hh"

namespace shrimp::nic
{

OutgoingPageTable::OutgoingPageTable(std::size_t num_local_pages)
    : pageEntries_(num_local_pages)
{
}

void
OutgoingPageTable::bindPage(PageNum local_page, const OptEntry &entry)
{
    if (local_page >= pageEntries_.size())
        panic("OPT bindPage: page out of range");
    if (!entry.valid)
        panic("OPT bindPage: entry must be valid");
    if (!pageEntries_[local_page].valid)
        ++numBindings_;
    pageEntries_[local_page] = entry;
}

void
OutgoingPageTable::unbindPage(PageNum local_page)
{
    if (local_page >= pageEntries_.size())
        panic("OPT unbindPage: page out of range");
    if (pageEntries_[local_page].valid) {
        pageEntries_[local_page].valid = false;
        --numBindings_;
    }
}

const OptEntry *
OutgoingPageTable::lookupPage(PageNum local_page) const
{
    if (local_page >= pageEntries_.size())
        return nullptr;
    const OptEntry &e = pageEntries_[local_page];
    return e.valid ? &e : nullptr;
}

std::uint32_t
OutgoingPageTable::allocSlot(const OptEntry &entry)
{
    if (!entry.valid)
        panic("OPT allocSlot: entry must be valid");
    std::uint32_t id = nextSlot_++;
    slots_[id] = entry;
    return id;
}

void
OutgoingPageTable::freeSlot(std::uint32_t slot)
{
    if (slots_.erase(slot) == 0)
        panic("OPT freeSlot: no such slot");
}

const OptEntry *
OutgoingPageTable::slot(std::uint32_t slot) const
{
    auto it = slots_.find(slot);
    return it == slots_.end() ? nullptr : &it->second;
}

} // namespace shrimp::nic
