/**
 * @file
 * IncomingPageTable (IPT): one entry per page of node memory. The enable
 * flag says whether the network interface may transfer data into that
 * page; data arriving for a disabled page freezes the receive datapath
 * and interrupts the node CPU. The interrupt flag is the
 * receiver-specified half of the notification mechanism: a notification
 * fires only when both the sender-specified packet flag and this flag
 * are set (paper section 3.2).
 */

#ifndef SHRIMP_NIC_INCOMING_PAGE_TABLE_HH
#define SHRIMP_NIC_INCOMING_PAGE_TABLE_HH

#include <cstddef>
#include <vector>

#include "base/types.hh"

namespace shrimp::nic
{

class IncomingPageTable
{
  public:
    explicit IncomingPageTable(std::size_t num_pages);

    void setEnabled(PageNum page, bool enabled);
    void setInterrupt(PageNum page, bool interrupt);

    bool enabled(PageNum page) const;
    bool interrupt(PageNum page) const;

    /** True when every page covering [addr, addr+len) is enabled. */
    bool rangeEnabled(PAddr addr, std::size_t len,
                      std::size_t page_bytes) const;

    std::size_t numPages() const { return entries_.size(); }
    std::size_t numEnabled() const { return numEnabled_; }

  private:
    struct Entry
    {
        bool enabled = false;
        bool interrupt = false;
    };

    const Entry &at(PageNum page) const;

    std::vector<Entry> entries_;
    std::size_t numEnabled_ = 0;
};

} // namespace shrimp::nic

#endif // SHRIMP_NIC_INCOMING_PAGE_TABLE_HH
