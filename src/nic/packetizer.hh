/**
 * @file
 * Packetizer + Outgoing FIFO: forms packets from snooped automatic
 * updates and from deliberate-update engine data (paper section 3.2).
 *
 * For automatic update, if the source page is configured for combining,
 * a write to the address immediately following the pending packet's data
 * is appended instead of starting a new packet. A non-consecutive write
 * (or a write through a different OPT entry) flushes the pending packet
 * first, preserving program order. A hardware timer flushes a pending
 * packet when no subsequent update arrives within the timeout.
 *
 * Deliberate-update packets are never combined; emitting one flushes any
 * pending automatic-update packet first so that all data leaves the node
 * in program order (the backplane then preserves it end to end).
 */

#ifndef SHRIMP_NIC_PACKETIZER_HH
#define SHRIMP_NIC_PACKETIZER_HH

#include <cstddef>
#include <optional>

#include "base/config.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "net/packet.hh"
#include "nic/outgoing_page_table.hh"
#include "sim/simulator.hh"
#include "sim/sync.hh"

namespace shrimp::nic
{

class Packetizer
{
  public:
    Packetizer(sim::Simulator &sim, const MachineConfig &cfg, NodeId self,
               sim::Channel<net::Packet> &out_fifo);

    /**
     * A snooped automatic-update write of @p len bytes that hit OPT
     * entry @p e, destined for physical address @p dest_addr on the
     * remote node. May combine with the pending packet.
     */
    void auWrite(const OptEntry &e, PAddr dest_addr, const void *data,
                 std::size_t len);

    /** Enqueue a fully-formed deliberate-update packet. */
    void duPacket(net::Packet pkt);

    /** Flush the pending combined packet, if any. */
    void flushPending();

    bool hasPending() const { return pending_.has_value(); }

    NodeId self() const { return self_; }

    /** Race-detector actor id of the snoop/combining path (noActor in
     *  non-SHRIMP_CHECK builds). */
    std::uint32_t raceActor() const { return raceActor_; }

    std::uint64_t packetsFormed() const { return packetsFormed_; }
    std::uint64_t writesCombined() const { return writesCombined_; }
    std::uint64_t timerFlushes() const { return timerFlushes_; }

  private:
    void startPending(const OptEntry &e, PAddr dest_addr, const void *data,
                      std::size_t len);
    void armTimer();

    sim::Simulator &sim_;
    const MachineConfig &cfg_;
    NodeId self_;
    sim::Channel<net::Packet> &outFifo_;

    std::optional<net::Packet> pending_;
    std::uint32_t raceActor_ = 0xffffffffu; // check::noActor
    bool pendingTimerEnabled_ = false;
    std::uint64_t timerGen_ = 0;

    std::uint64_t packetsFormed_ = 0;
    std::uint64_t writesCombined_ = 0;
    std::uint64_t timerFlushes_ = 0;

    stats::Group stats_;
    trace::TrackId track_;
    // auWrite() runs per snooped store; stat lookups are hoisted to
    // construction so the per-write cost is a plain increment.
    stats::Counter &statPacketsFormed_;
    stats::Counter &statDuPackets_;
    stats::Counter &statBytesFormed_;
    stats::Counter &statWritesCombined_;
    stats::Counter &statTimerFlushes_;
    stats::Distribution &statPacketBytes_;
};

} // namespace shrimp::nic

#endif // SHRIMP_NIC_PACKETIZER_HH
