#include "check/check.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "check/race.hh"

namespace shrimp::check
{

namespace detail
{
bool gEnabled = true;
} // namespace detail

void
setEnabled(bool enabled)
{
    detail::gEnabled = enabled;
}

SimChecker &
SimChecker::instance()
{
    // analyze: shared(the invariant oracle is deliberately machine-wide:
    // it cross-checks events from every node)
    static SimChecker checker;
    return checker;
}

void
SimChecker::setAbortOnViolation(bool abort_on_violation)
{
    abortOnViolation_ = abort_on_violation;
}

void
SimChecker::reset()
{
    numChecks_ = 0;
    violations_.clear();
    queues_.clear();
    tasks_.clear();
    nextTaskId_ = 1;
    scheduledResumes_.clear();
    buses_.clear();
    shadows_.clear();
    lastDeliverySeq_.clear();
    meshes_.clear();
    routers_.clear();
    RaceDetector::instance().reset();
}

void
SimChecker::violation(const std::string &msg)
{
    violations_.push_back(msg);
    std::fprintf(stderr, "simcheck: %s\n", msg.c_str());
    if (abortOnViolation_)
        throw CheckError("simcheck: " + msg);
}

// ---- event queue ---------------------------------------------------------

void
SimChecker::onQueueCreated(const void *queue)
{
    queues_[queue] = QueueState{};
}

void
SimChecker::onQueueDestroyed(const void *queue)
{
    queues_.erase(queue);
}

void
SimChecker::onEventRun(const void *queue, Tick when, std::uint64_t seq,
                       Tick now)
{
    numChecks_ += 1;
    QueueState &st = queues_[queue];
    if (when < now) {
        violation(logging::format(
            "event queue time went backwards: event at %llu ns popped "
            "while now is %llu ns",
            (unsigned long long)when, (unsigned long long)now));
        return;
    }
    if (st.any && when == st.lastWhen && seq <= st.lastSeq) {
        violation(logging::format(
            "same-tick events ran out of schedule order at %llu ns: "
            "seq %llu after seq %llu (determinism broken)",
            (unsigned long long)when, (unsigned long long)seq,
            (unsigned long long)st.lastSeq));
        return;
    }
    st.any = true;
    st.lastWhen = when;
    st.lastSeq = seq;
}

// ---- spawned tasks -------------------------------------------------------

std::uint64_t
SimChecker::onTaskSpawn(const void *sim, const std::string &name, Tick now)
{
    std::uint64_t id = nextTaskId_++;
    tasks_[id] = TaskRec{sim, name, now};
    return id;
}

void
SimChecker::onTaskExit(std::uint64_t id)
{
    tasks_.erase(id);
}

std::string
SimChecker::describeActiveTasks(const void *sim) const
{
    std::string out;
    std::size_t n = 0;
    for (const auto &[id, rec] : tasks_) {
        if (rec.sim != sim)
            continue;
        if (n++ > 0)
            out += ", ";
        out += logging::format("'%s' (spawned at %llu ns)",
                               rec.name.c_str(),
                               (unsigned long long)rec.spawned);
    }
    if (n == 0)
        return "no tasks registered with the checker";
    return logging::format("%zu suspended task(s): ", n) + out;
}

std::string
SimChecker::describeActiveTasks() const
{
    std::string out;
    std::size_t n = 0;
    for (const auto &[id, rec] : tasks_) {
        if (n++ > 0)
            out += ", ";
        out += logging::format("'%s' (spawned at %llu ns)",
                               rec.name.c_str(),
                               (unsigned long long)rec.spawned);
    }
    if (n == 0)
        return "no tasks registered with the checker";
    return logging::format("%zu live task(s): ", n) + out;
}

void
SimChecker::onSimulatorDestroyed(const void *sim)
{
    for (auto it = tasks_.begin(); it != tasks_.end();) {
        if (it->second.sim == sim)
            it = tasks_.erase(it);
        else
            ++it;
    }
}

// ---- resume scheduling ---------------------------------------------------

void
SimChecker::onResumeScheduled(const void *frame)
{
    numChecks_ += 1;
    if (!scheduledResumes_.insert(frame).second) {
        violation("coroutine scheduled for resume while a resume is "
                  "already pending (double resume would corrupt the "
                  "frame)");
    }
}

void
SimChecker::onResumeFired(const void *frame)
{
    scheduledResumes_.erase(frame);
}

// ---- bus -----------------------------------------------------------------

void
SimChecker::onBusCreated(const void *bus)
{
    buses_[bus] = BusState{};
}

void
SimChecker::onBusTransferStart(const void *bus, std::uint64_t bytes)
{
    numChecks_ += 1;
    BusState &st = buses_[bus];
    if (st.active) {
        violation(logging::format(
            "bus granted to a second transfer (%llu bytes) while one "
            "(%llu bytes) is still in progress",
            (unsigned long long)bytes,
            (unsigned long long)st.grantedBytes));
        return;
    }
    st.active = true;
    st.grantedBytes = bytes;
    st.totalRequested += bytes;
}

void
SimChecker::onBusTransferEnd(const void *bus, std::uint64_t bytes)
{
    numChecks_ += 1;
    BusState &st = buses_[bus];
    if (!st.active) {
        violation("bus transfer completed that was never granted");
        return;
    }
    st.active = false;
    st.totalGranted += bytes;
    if (bytes != st.grantedBytes) {
        violation(logging::format(
            "bus conservation broken: transfer granted %llu bytes but "
            "moved %llu",
            (unsigned long long)st.grantedBytes,
            (unsigned long long)bytes));
        return;
    }
    if (st.totalGranted != st.totalRequested) {
        violation(logging::format(
            "bus conservation broken: %llu bytes requested vs %llu "
            "granted in total",
            (unsigned long long)st.totalRequested,
            (unsigned long long)st.totalGranted));
    }
}

// ---- packetizer shadow ---------------------------------------------------

void
SimChecker::onPacketizerCreated(const void *packetizer)
{
    shadows_[packetizer] = Shadow{};
}

void
SimChecker::onShadowStart(const void *packetizer, NodeId dst, PAddr addr,
                          const void *data, std::size_t len)
{
    numChecks_ += 1;
    Shadow &sh = shadows_[packetizer];
    if (sh.active) {
        violation("packetizer started a new pending packet while the "
                  "shadow still holds an unflushed one");
    }
    sh.active = true;
    sh.dst = dst;
    sh.base = addr;
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    sh.bytes.assign(bytes, bytes + len);
}

void
SimChecker::onShadowAppend(const void *packetizer, NodeId dst, PAddr addr,
                           const void *data, std::size_t len)
{
    numChecks_ += 1;
    Shadow &sh = shadows_[packetizer];
    if (!sh.active) {
        violation("write combined into a packet the shadow never saw "
                  "start");
        return;
    }
    if (dst != sh.dst) {
        violation(logging::format(
            "combining merged writes for different destination nodes "
            "(%u vs %u)", unsigned(sh.dst), unsigned(dst)));
        return;
    }
    PAddr expect = sh.base + PAddr(sh.bytes.size());
    if (addr != expect) {
        violation(logging::format(
            "combining merged a non-consecutive write: expected dest "
            "0x%x, got 0x%x", unsigned(expect), unsigned(addr)));
        return;
    }
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    sh.bytes.insert(sh.bytes.end(), bytes, bytes + len);
}

// onShadowFlush and onDuPacket — the two hooks that look inside a
// net::Packet — are defined in net/check_packet.cc so this layer never
// includes net/ headers.

// ---- NIC -----------------------------------------------------------------

void
SimChecker::onOptUse(NodeId node, bool valid, NodeId dest_node,
                     std::size_t off, std::size_t len, std::size_t window)
{
    numChecks_ += 1;
    if (!valid) {
        violation(logging::format("node %u used an invalid OPT entry",
                                  unsigned(node)));
        return;
    }
    if (dest_node == invalidNode) {
        violation(logging::format(
            "node %u OPT entry has no destination node", unsigned(node)));
        return;
    }
    if (off + len > window) {
        violation(logging::format(
            "node %u OPT access [%zu, %zu) exceeds the mapped window of "
            "%zu bytes", unsigned(node), off, off + len, window));
    }
}

void
SimChecker::onIncomingEngineCreated(const void *engine)
{
    lastDeliverySeq_[engine].clear();
}

void
SimChecker::onDelivery(const void *engine, NodeId src, std::uint64_t seq,
                       bool ipt_enabled)
{
    numChecks_ += 1;
    if (!ipt_enabled) {
        violation(logging::format(
            "packet from node %u delivered into a page the IPT has "
            "disabled (stale IPT entry bypassed the freeze protocol)",
            unsigned(src)));
        return;
    }
    if (seq == 0)
        return; // unsequenced raw packet (tests inject these directly)
    auto &last = lastDeliverySeq_[engine];
    auto it = last.find(src);
    if (it != last.end() && seq <= it->second) {
        violation(logging::format(
            "out-of-order delivery from node %u: packet seq %llu after "
            "seq %llu", unsigned(src), (unsigned long long)seq,
            (unsigned long long)it->second));
        return;
    }
    last[src] = seq;
}

// ---- mesh/routers --------------------------------------------------------

void
SimChecker::onMeshCreated(const void *mesh)
{
    meshes_[mesh] = MeshState{};
}

void
SimChecker::onMeshDestroyed(const void *mesh)
{
    meshes_.erase(mesh);
}

void
SimChecker::onMeshInject(const void *mesh, NodeId src, NodeId dst,
                         int expect_hops, std::uint64_t seq)
{
    numChecks_ += 1;
    MeshState &st = meshes_[mesh];
    if (!st.inflight.emplace(seq, InflightPkt{src, dst, expect_hops, 0})
             .second) {
        violation(logging::format(
            "mesh injected two packets with the same sequence number "
            "%llu (packet conservation broken)",
            (unsigned long long)seq));
        return;
    }
    st.fifo[{src, dst}].push_back(seq);
}

void
SimChecker::onMeshHop(const void *mesh, std::uint64_t seq)
{
    auto mit = meshes_.find(mesh);
    if (mit == meshes_.end())
        return;
    auto it = mit->second.inflight.find(seq);
    if (it != mit->second.inflight.end())
        it->second.hops += 1;
}

void
SimChecker::onMeshEject(const void *mesh, NodeId at, NodeId src, NodeId dst,
                        std::uint64_t seq)
{
    numChecks_ += 1;
    MeshState &st = meshes_[mesh];
    auto it = st.inflight.find(seq);
    if (it == st.inflight.end()) {
        violation(logging::format(
            "mesh ejected packet seq %llu (%u -> %u) that was never "
            "injected (packet conservation broken)",
            (unsigned long long)seq, unsigned(src), unsigned(dst)));
        return;
    }
    const InflightPkt pkt = it->second;
    st.inflight.erase(it);
    if (at != pkt.dst) {
        violation(logging::format(
            "misrouted packet seq %llu: ejected at node %u but destined "
            "for node %u",
            (unsigned long long)seq, unsigned(at), unsigned(pkt.dst)));
        return;
    }
    if (pkt.hops != pkt.expectHops) {
        violation(logging::format(
            "flow-control credit conservation broken for packet seq "
            "%llu (%u -> %u): %d link traversals consumed but the XY "
            "route needs %d",
            (unsigned long long)seq, unsigned(pkt.src), unsigned(pkt.dst),
            pkt.hops, pkt.expectHops));
        return;
    }
    auto &q = st.fifo[{pkt.src, pkt.dst}];
    if (q.empty() || q.front() != seq) {
        violation(logging::format(
            "mesh broke sender-to-receiver order: packet seq %llu "
            "(%u -> %u) ejected before seq %llu injected earlier on the "
            "same pair",
            (unsigned long long)seq, unsigned(pkt.src), unsigned(pkt.dst),
            (unsigned long long)(q.empty() ? 0 : q.front())));
        auto qit = std::find(q.begin(), q.end(), seq);
        if (qit != q.end())
            q.erase(qit);
        return;
    }
    q.pop_front();
}

void
SimChecker::onRouterCreated(const void *router)
{
    routers_[router] = RouterState{};
}

void
SimChecker::onRouterDestroyed(const void *router)
{
    routers_.erase(router);
}

void
SimChecker::onLinkTraverse(const void *router, NodeId router_id, int dir,
                           NodeId src, std::uint64_t seq)
{
    numChecks_ += 1;
    if (seq == 0)
        return; // unsequenced packet (tests drive forward() directly)
    auto &last = routers_[router].lastLinkSeq;
    auto it = last.find({dir, src});
    if (it != last.end() && seq <= it->second) {
        violation(logging::format(
            "per-link in-order delivery broken on router %u link %d: "
            "packet seq %llu from node %u traversed after seq %llu",
            unsigned(router_id), dir, (unsigned long long)seq,
            unsigned(src), (unsigned long long)it->second));
        return;
    }
    last[{dir, src}] = seq;
}

} // namespace shrimp::check
