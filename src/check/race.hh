/**
 * @file
 * RaceDetector: a vector-clock happens-before detector over simulated
 * physical memory, plus per-page ownership-state tracking mirroring the
 * paper's cache modes.
 *
 * The SHRIMP libraries run entirely at user level: the CPU, the
 * packetizer's snoop path, the deliberate-update engine's DMA reads and
 * the incoming DMA engine's writes all touch the same physical pages
 * with no kernel mediation. A missing ordering edge between any two of
 * them silently corrupts data — and therefore the reproduced figures.
 * The detector makes such conflicts loud.
 *
 * Model:
 *
 *  - Every memory-touching component registers an *actor* (deduplicated
 *    by name). An access is attributed to the actor on top of the
 *    current-actor stack (ActorScope / SHRIMP_RACE_SCOPE); accesses made
 *    with no actor in scope are *backdoor* accesses (raw test pokes):
 *    a backdoor write clears the tracked state for its range, a backdoor
 *    read is ignored. Scopes must never span a co_await — they bracket
 *    synchronous regions only.
 *
 *  - Each actor carries a vector clock. Shadow state is kept per
 *    4-byte word (the EISA bus transfer granularity): last writer and
 *    the writer's clock at that write. Reads of more than
 *    atomicReadMax bytes are recorded as per-page range records.
 *
 *  - Reads of at most atomicReadMax (16) bytes are *bus-burst atomic*:
 *    polling a flag, a ring control word or an NX descriptor can never
 *    observe a torn value in the simulator, exactly as a locked bus
 *    burst cannot on hardware. Such reads are exempt from race checks
 *    and instead create an *observation edge*: the reader joins the
 *    current clock of each overlapped word's last writer. This is the
 *    canonical receive-side ordering — a CPU poll that observes the
 *    receive-flag write is thereby ordered after the DMA that made it
 *    (and after everything that DMA did before).
 *
 *  - Explicit edges mirror the real synchronization mechanisms:
 *    handoff() for CPU<->snoop (every snooped store) and CPU<->DU
 *    engine (transfer initiation PIO and blocking bus completion);
 *    packet clocks (snapshot() stamped at packet formation, join()ed by
 *    the incoming engine before the delivery DMA); the IPT
 *    export-window clock (the exporter's clock at registerExport,
 *    joined at every delivery into the window — the import handshake
 *    orders deliveries after the exporter's buffer setup); notification
 *    delivery (handoff DMA->receiving process); and sync-object
 *    release/acquire (objRelease() is hooked into Condition::notifyAll
 *    and Semaphore::release; objAcquire() is available to tests and
 *    future primitives — production poll loops get their edge from the
 *    observation rule above, which is more precise than the any-write
 *    watchpoint wakeup).
 *
 *  - fenceAll() is called when the simulator's event queue drains:
 *    every pending operation has completed, so all actors synchronize.
 *    This legitimizes post-run inspection and between-phase reuse.
 *
 *  - Ownership state per page tracks the cache mode (write-through /
 *    write-back / uncached), whether the page is AU-bound through the
 *    OPT, whether a write-back page holds dirty CPU stores, and the
 *    IPT export-window depth. Transitions the real hardware could not
 *    make safe are violations: a CPU store to an AU-bound write-back
 *    page (the snoop logic cannot see cached stores), AU-binding a
 *    dirty write-back page without a flush edge, overlapping IPT
 *    export windows, and disabling a window that is not open.
 *
 * Violations are reported through SimChecker (same panic/log format,
 * same abort/collect modes). Like SimChecker, the detector is always
 * compiled; call sites cost nothing unless SHRIMP_CHECK is defined.
 */

#ifndef SHRIMP_CHECK_RACE_HH
#define SHRIMP_CHECK_RACE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/config.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "check/check.hh"

namespace shrimp::check
{

using ActorId = std::uint32_t;
inline constexpr ActorId noActor = 0xffffffffu;

/** What kind of hardware agent an actor models (used in reports and in
 *  the ownership checks, which only constrain CPU stores). */
enum class ActorKind : std::uint8_t
{
    Cpu,   //!< a user process running on the node CPU
    Snoop, //!< the packetizer's snoop/combining path
    Du,    //!< the deliberate-update engine's DMA reads
    Dma,   //!< the incoming DMA engine's delivery writes
    Other,
};

/** Immutable vector-clock snapshot (stamped onto packets, stored per
 *  export window and per delivered page). */
struct RaceClock
{
    std::vector<std::uint64_t> vc;
};

using RaceClockRef = std::shared_ptr<const RaceClock>;

/** Reads up to this many bytes are bus-burst atomic: exempt from race
 *  checks and joined to the writer's clock (observation edge). Covers
 *  flag words, ring control words and 16-byte NX descriptors. */
inline constexpr std::size_t atomicReadMax = 16;

class RaceDetector
{
  public:
    static RaceDetector &instance();

    /** Forget all actors, shadow memory, ownership state and clocks.
     *  SimChecker::reset() calls this too. */
    void reset();

    // ---- actors -------------------------------------------------------

    /** Register (or look up) the actor named @p name. Names are
     *  deduplicated so components recreated across simulations share an
     *  id; stale clocks only add ordering, never remove it. */
    ActorId registerActor(const std::string &name, ActorKind kind);

    const std::string &actorName(ActorId a) const;
    ActorKind actorKind(ActorId a) const;

    /** Current-actor stack; accesses attribute to the top. */
    void pushActor(ActorId a);
    void popActor();
    ActorId currentActor() const;

    // ---- memory lifecycle + accesses ----------------------------------

    void onMemoryCreated(const void *mem, const std::string &name,
                         std::size_t page_bytes);
    void onMemoryDestroyed(const void *mem);

    /** An attributed (or backdoor, if no actor is in scope) write of
     *  @p n bytes at @p addr landed at tick @p now. */
    void onWrite(const void *mem, PAddr addr, std::size_t n, Tick now);

    /** A read; atomic (<= atomicReadMax bytes) reads join, larger reads
     *  are checked against unordered writes and recorded. */
    void onRead(const void *mem, PAddr addr, std::size_t n, Tick now);

    // ---- synchronization edges ----------------------------------------

    /** Two-way synchronization between @p a and @p b (PIO initiation,
     *  blocking completion, per-store snoop handoff, notification). */
    void handoff(ActorId a, ActorId b);

    /** Advance @p a's clock and return an immutable copy (stamped onto
     *  a packet at formation). */
    RaceClockRef snapshot(ActorId a);

    /** @p a absorbs @p c (packet clock joined before the delivery DMA). */
    void join(ActorId a, const RaceClockRef &c);

    /** Release edge: merge @p a's clock into @p obj's clock (hooked
     *  into Condition::notifyAll / Semaphore::release). No-op when
     *  @p a is noActor. */
    void objRelease(const void *obj, ActorId a);

    /** Acquire edge: @p a absorbs @p obj's accumulated release clock. */
    void objAcquire(const void *obj, ActorId a);

    /** The event queue drained: every in-flight operation has completed,
     *  so all actors synchronize with each other. */
    void fenceAll();

    // ---- page ownership -----------------------------------------------

    /** The page at physical address @p page_addr changed cache mode.
     *  A mode switch models a flush/invalidate, clearing dirtiness;
     *  switching an AU-bound page to write-back is a violation. */
    void onCacheMode(const void *mem, PAddr page_addr, CacheMode mode,
                     Tick now);

    /** The page was bound for automatic update through the OPT. Binding
     *  a write-back page that holds dirty CPU stores (no flush edge) is
     *  a violation. */
    void onAuBind(const void *mem, PAddr page_addr, Tick now);
    void onAuUnbind(const void *mem, PAddr page_addr);

    /** The IPT opened an export window on the page; @p exporter's clock
     *  is captured as the window-establishment clock. Opening a window
     *  on an already-exported page is a violation (overlapping
     *  import/export windows). */
    void onIptEnable(const void *mem, PAddr page_addr, ActorId exporter,
                     Tick now);

    /** The IPT closed the window (after draining in-flight packets);
     *  @p actor absorbs the page's last-delivery clock — the drain
     *  edge that lets the exporter safely reuse the buffer. Closing a
     *  window that is not open is a violation. */
    void onIptDisable(const void *mem, PAddr page_addr, ActorId actor,
                      Tick now);

    /** The incoming engine (@p engine) is delivering into
     *  [@p addr, +@p n): absorb the establishment clock of every
     *  export window the range overlaps. */
    void joinWindow(const void *mem, PAddr addr, std::size_t n,
                    ActorId engine);

    std::size_t numActors() const { return names_.size(); }

  private:
    RaceDetector() = default;

    struct Cell
    {
        ActorId writer = noActor;
        std::uint64_t clk = 0;
        Tick tick = 0;
        PAddr opBase = 0;     //!< base of the write op that set this cell
        std::uint32_t opLen = 0;
    };

    /** Retained write records per 4-byte word. One record
     *  (last-writer-wins) had a false negative: a write touching only
     *  *part* of a word evicted the record of an earlier write to the
     *  word's other bytes, hiding a later conflict with that earlier
     *  write. A short history keeps the evicted records around; depth 3
     *  covers every byte-disjoint split of a 4-byte word by distinct
     *  ops plus one spare. */
    static constexpr std::size_t writeHistoryDepth = 3;

    /** Per-word shadow state: up to writeHistoryDepth write records,
     *  newest first; unused slots have writer == noActor. */
    struct WordShadow
    {
        std::array<Cell, writeHistoryDepth> hist;
    };

    struct ReadRec
    {
        ActorId reader = noActor;
        std::uint64_t clk = 0;
        Tick tick = 0;
        PAddr lo = 0; //!< byte range [lo, hi)
        PAddr hi = 0;
    };

    struct PageShadow
    {
        std::vector<WordShadow> cells; //!< one per word, lazily sized
        std::vector<ReadRec> reads;
    };

    struct PageOwn
    {
        CacheMode mode = CacheMode::WriteBack;
        bool auBound = false;
        bool dirtyWb = false;     //!< write-back page holds CPU stores
        int exportDepth = 0;      //!< open IPT export windows
        RaceClockRef exportClock; //!< exporter's clock at window open
        RaceClockRef deliveryClock; //!< last DMA delivery into the page
    };

    struct MemState
    {
        std::string name = "mem";
        std::size_t pageBytes = 4096;
        std::unordered_map<PageNum, PageShadow> pages;
        std::unordered_map<PageNum, PageOwn> own;
    };

    MemState &memState(const void *mem);
    PageShadow &page(MemState &ms, PageNum p);
    void pushWrite(WordShadow &w, const Cell &c, PAddr word_lo);
    void noteReadRecDropped(const MemState &ms, PageNum p);
    std::vector<std::uint64_t> &clockOf(ActorId a);
    std::uint64_t entryOf(ActorId a, ActorId other);
    std::uint64_t bump(ActorId a);
    void joinVec(std::vector<std::uint64_t> &dst,
                 const std::vector<std::uint64_t> &src);
    std::string describe(ActorId a) const;
    void report(const std::string &msg);

    std::unordered_map<std::string, ActorId> byName_;
    std::vector<std::string> names_;
    std::vector<ActorKind> kinds_;
    std::vector<std::vector<std::uint64_t>> clocks_;
    std::vector<ActorId> actorStack_;
    std::unordered_map<const void *, MemState> mems_;
    std::unordered_map<const void *, std::vector<std::uint64_t>> objClocks_;

    // Read records past the per-page cap are dropped oldest-first; a
    // drop can only hide a conflict, never invent one. The counter
    // makes that blind spot measurable and the one-time warning makes
    // it loud.
    stats::Group stats_{"racecheck"};
    stats::Counter &statReadRecsDropped_ =
        stats_.counter("readRecsDropped");
    bool warnedReadRecDrop_ = false;
    //! Per-page read-record cap; oldest records are dropped first.
    //! Dropping can only hide a conflict (false-negative-safe), never
    //! invent one. MachineConfig::raceReadRecCap overrides the default.
    std::size_t readRecCap_ = 32;

  public:
    std::uint64_t readRecsDropped() const
    {
        return statReadRecsDropped_.value();
    }

    std::size_t readRecCap() const { return readRecCap_; }

    /** Set the per-page read-record cap (>= 1; applied by the Machine
     *  from MachineConfig::raceReadRecCap). */
    void
    setReadRecCap(std::size_t cap)
    {
        readRecCap_ = cap ? cap : 1;
    }
};

/**
 * RAII attribution scope: accesses between construction and destruction
 * are attributed to @p actor. Never hold one across a co_await — the
 * stack is global, and an interleaved task would inherit the actor.
 */
class ActorScope
{
  public:
    explicit ActorScope(ActorId actor)
        : pushed_(on() && actor != noActor)
    {
        if (pushed_)
            RaceDetector::instance().pushActor(actor);
    }

    ~ActorScope()
    {
        if (pushed_)
            RaceDetector::instance().popActor();
    }

    ActorScope(const ActorScope &) = delete;
    ActorScope &operator=(const ActorScope &) = delete;

  private:
    bool pushed_;
};

} // namespace shrimp::check

/**
 * Attribution scope call-site macro: declares an ActorScope when
 * SHRIMP_CHECK is on, nothing otherwise (the actor expression is not
 * evaluated). Must bracket a synchronous region — no co_await.
 */
#ifdef SHRIMP_CHECK
#define SHRIMP_RACE_SCOPE_CAT2(a, b) a##b
#define SHRIMP_RACE_SCOPE_CAT(a, b) SHRIMP_RACE_SCOPE_CAT2(a, b)
#define SHRIMP_RACE_SCOPE(actor)                                             \
    ::shrimp::check::ActorScope SHRIMP_RACE_SCOPE_CAT(                       \
        shrimp_race_scope_, __COUNTER__)(actor)
#else
#define SHRIMP_RACE_SCOPE(actor)                                             \
    do {                                                                     \
    } while (0)
#endif

#endif // SHRIMP_CHECK_RACE_HH
