#include "check/race.hh"

#include <algorithm>

#include "base/logging.hh"

namespace shrimp::check
{

namespace
{

const char *
kindName(ActorKind k)
{
    switch (k) {
      case ActorKind::Cpu:
        return "cpu";
      case ActorKind::Snoop:
        return "snoop";
      case ActorKind::Du:
        return "du";
      case ActorKind::Dma:
        return "dma";
      case ActorKind::Other:
        return "actor";
    }
    return "actor";
}

bool
overlaps(PAddr lo1, PAddr hi1, PAddr lo2, PAddr hi2)
{
    return lo1 < hi2 && lo2 < hi1;
}

} // namespace

RaceDetector &
RaceDetector::instance()
{
    // analyze: shared(the race detector is deliberately machine-wide:
    // happens-before edges span nodes by design)
    static RaceDetector d;
    return d;
}

void
RaceDetector::reset()
{
    byName_.clear();
    names_.clear();
    kinds_.clear();
    clocks_.clear();
    actorStack_.clear();
    mems_.clear();
    objClocks_.clear();
    warnedReadRecDrop_ = false; // re-arm: warn once per simulation
}

// ---- actors -------------------------------------------------------------

ActorId
RaceDetector::registerActor(const std::string &name, ActorKind kind)
{
    auto it = byName_.find(name);
    if (it != byName_.end())
        return it->second;
    ActorId id = ActorId(names_.size());
    byName_.emplace(name, id);
    names_.push_back(name);
    kinds_.push_back(kind);
    clocks_.emplace_back();
    return id;
}

const std::string &
RaceDetector::actorName(ActorId a) const
{
    return names_.at(a);
}

ActorKind
RaceDetector::actorKind(ActorId a) const
{
    return kinds_.at(a);
}

void
RaceDetector::pushActor(ActorId a)
{
    actorStack_.push_back(a);
}

void
RaceDetector::popActor()
{
    if (actorStack_.empty())
        panic("race-detector actor stack underflow");
    actorStack_.pop_back();
}

ActorId
RaceDetector::currentActor() const
{
    return actorStack_.empty() ? noActor : actorStack_.back();
}

// ---- internals ----------------------------------------------------------

RaceDetector::MemState &
RaceDetector::memState(const void *mem)
{
    return mems_[mem];
}

RaceDetector::PageShadow &
RaceDetector::page(MemState &ms, PageNum p)
{
    return ms.pages[p];
}

void
RaceDetector::pushWrite(WordShadow &w, const Cell &c, PAddr word_lo)
{
    // A record is superseded when the new op covers every byte it
    // described *within this word* and it came from the same writer
    // (the writer's own later store replaces its earlier one; another
    // actor's covered record must stay until the conflict check has a
    // chance to fire against a third party). Replace such a record
    // in place; otherwise shift the history down and evict the oldest.
    const PAddr wordHi = word_lo + 4;
    auto clipLo = [&](const Cell &e) { return std::max(e.opBase, word_lo); };
    auto clipHi = [&](const Cell &e) {
        return std::min(e.opBase + PAddr(e.opLen), wordHi);
    };
    std::size_t slot = writeHistoryDepth - 1;
    for (std::size_t i = 0; i < writeHistoryDepth; ++i) {
        const Cell &e = w.hist[i];
        if (e.writer == noActor ||
            (e.writer == c.writer && clipLo(e) >= clipLo(c) &&
             clipHi(e) <= clipHi(c))) {
            slot = i;
            break;
        }
    }
    for (std::size_t i = slot; i > 0; --i)
        w.hist[i] = w.hist[i - 1];
    w.hist[0] = c;
}

void
RaceDetector::noteReadRecDropped(const MemState &ms, PageNum p)
{
    ++statReadRecsDropped_;
    if (warnedReadRecDrop_)
        return;
    warnedReadRecDrop_ = true;
    warn(logging::format(
        "race detector dropped a read record on %s page %u (per-page cap "
        "of %zu reached): a write-after-read conflict against the "
        "dropped read can no longer be detected; stats group 'racecheck' "
        "counts further drops",
        ms.name.c_str(), unsigned(p), readRecCap_));
}

std::vector<std::uint64_t> &
RaceDetector::clockOf(ActorId a)
{
    return clocks_.at(a);
}

std::uint64_t
RaceDetector::entryOf(ActorId a, ActorId other)
{
    const auto &v = clocks_.at(a);
    return other < v.size() ? v[other] : 0;
}

std::uint64_t
RaceDetector::bump(ActorId a)
{
    auto &v = clocks_.at(a);
    if (v.size() <= a)
        v.resize(std::size_t(a) + 1, 0);
    return ++v[a];
}

void
RaceDetector::joinVec(std::vector<std::uint64_t> &dst,
                      const std::vector<std::uint64_t> &src)
{
    if (dst.size() < src.size())
        dst.resize(src.size(), 0);
    for (std::size_t i = 0; i < src.size(); ++i)
        dst[i] = std::max(dst[i], src[i]);
}

std::string
RaceDetector::describe(ActorId a) const
{
    if (a == noActor || a >= names_.size())
        return "an unattributed access";
    return logging::format("%s '%s'", kindName(kinds_[a]),
                           names_[a].c_str());
}

void
RaceDetector::report(const std::string &msg)
{
    SimChecker::instance().report(msg);
}

// ---- memory lifecycle + accesses ----------------------------------------

void
RaceDetector::onMemoryCreated(const void *mem, const std::string &name,
                              std::size_t page_bytes)
{
    MemState &ms = mems_[mem];
    ms = MemState{};
    ms.name = name;
    ms.pageBytes = page_bytes ? page_bytes : 4096;
}

void
RaceDetector::onMemoryDestroyed(const void *mem)
{
    mems_.erase(mem);
}

void
RaceDetector::onWrite(const void *mem, PAddr addr, std::size_t n, Tick now)
{
    if (n == 0)
        return;
    MemState &ms = memState(mem);
    const std::size_t pb = ms.pageBytes;
    const PAddr opLo = addr;
    const PAddr opHi = addr + PAddr(n);
    const PageNum first = PageNum(opLo / pb);
    const PageNum last = PageNum((opHi - 1) / pb);
    const ActorId me = currentActor();

    if (me == noActor) {
        // Backdoor write (test poke / setup outside any scope): it is
        // not checked, and it wipes what it covers — later conflicts
        // against pre-poke accesses would be stale.
        for (PageNum p = first; p <= last; ++p) {
            auto it = ms.pages.find(p);
            if (it == ms.pages.end())
                continue;
            PageShadow &sh = it->second;
            const PAddr pageLo = PAddr(std::size_t(p) * pb);
            const PAddr lo = std::max(opLo, pageLo);
            const PAddr hi = std::min(opHi, PAddr(pageLo + pb));
            if (!sh.cells.empty()) {
                for (std::size_t ci = (lo - pageLo) / 4;
                     ci <= (hi - 1 - pageLo) / 4 && ci < sh.cells.size();
                     ++ci)
                    sh.cells[ci] = WordShadow{};
            }
            std::erase_if(sh.reads, [&](const ReadRec &r) {
                return overlaps(r.lo, r.hi, lo, hi);
            });
        }
        return;
    }

    SimChecker::instance().noteCheck();
    const ActorKind kind = kinds_.at(me);
    const std::uint64_t myclk = bump(me);
    std::vector<ActorId> reported; // one report per conflicting actor/op

    for (PageNum p = first; p <= last; ++p) {
        const PAddr pageLo = PAddr(std::size_t(p) * pb);
        const PAddr lo = std::max(opLo, pageLo);
        const PAddr hi = std::min(opHi, PAddr(pageLo + pb));

        // Ownership: a CPU store to an AU-bound write-back page would sit
        // in the cache where the snoop logic can never see it.
        PageOwn &own = ms.own[p];
        if (kind == ActorKind::Cpu && own.auBound &&
            own.mode == CacheMode::WriteBack) {
            report(logging::format(
                "race: %s stored [0x%x, +%zu) to %s page %u at %llu ns "
                "while the page is AU-bound with write-back caching (the "
                "snoop logic cannot observe cached stores)",
                describe(me).c_str(), unsigned(addr), n, ms.name.c_str(),
                unsigned(p), (unsigned long long)now));
        }
        if (kind == ActorKind::Cpu && own.mode == CacheMode::WriteBack)
            own.dirtyWb = true;
        if (kind == ActorKind::Dma) {
            auto c = std::make_shared<RaceClock>();
            c->vc = clockOf(me);
            own.deliveryClock = std::move(c);
        }

        PageShadow &sh = page(ms, p);

        // Write-after-read: an unordered reader may still be mid-copy.
        for (auto it = sh.reads.begin(); it != sh.reads.end();) {
            if (!overlaps(it->lo, it->hi, lo, hi)) {
                ++it;
                continue;
            }
            if (it->reader != me && entryOf(me, it->reader) < it->clk &&
                std::find(reported.begin(), reported.end(), it->reader) ==
                    reported.end()) {
                reported.push_back(it->reader);
                report(logging::format(
                    "race: write-read conflict on %s page %u: %s wrote "
                    "[0x%x, +%zu) at %llu ns, unordered with the read "
                    "[0x%x, +%u) by %s at %llu ns (missing ordering edge: "
                    "the writer never synchronized with the reader before "
                    "reusing the buffer)",
                    ms.name.c_str(), unsigned(p), describe(me).c_str(),
                    unsigned(addr), n, (unsigned long long)now,
                    unsigned(it->lo), unsigned(it->hi - it->lo),
                    describe(it->reader).c_str(),
                    (unsigned long long)it->tick));
            }
            it = sh.reads.erase(it); // this write supersedes the read
        }

        // Write-after-write, per 4-byte word, against the whole write
        // history of each word — a partial-word write must not hide the
        // record of an earlier write to the word's other bytes.
        const std::size_t words = (pb + 3) / 4;
        if (sh.cells.size() < words)
            sh.cells.resize(words);
        for (std::size_t ci = (lo - pageLo) / 4;
             ci <= (hi - 1 - pageLo) / 4; ++ci) {
            WordShadow &w = sh.cells[ci];
            // Word cells are a coarse index; the stored op range makes
            // the check byte-precise so ops that merely share a word
            // (false sharing at the boundary) never conflict.
            for (const Cell &c : w.hist) {
                if (c.writer != noActor && c.writer != me &&
                    overlaps(c.opBase, c.opBase + PAddr(c.opLen), opLo,
                             opHi) &&
                    entryOf(me, c.writer) < c.clk &&
                    std::find(reported.begin(), reported.end(),
                              c.writer) == reported.end()) {
                    reported.push_back(c.writer);
                    report(logging::format(
                        "race: write-write conflict on %s page %u: %s "
                        "wrote [0x%x, +%zu) at %llu ns, unordered with "
                        "the write [0x%x, +%u) by %s at %llu ns (no "
                        "happens-before edge between the two accesses)",
                        ms.name.c_str(), unsigned(p), describe(me).c_str(),
                        unsigned(addr), n, (unsigned long long)now,
                        unsigned(c.opBase), c.opLen,
                        describe(c.writer).c_str(),
                        (unsigned long long)c.tick));
                }
            }
            pushWrite(w, Cell{me, myclk, now, addr, std::uint32_t(n)},
                      pageLo + PAddr(ci * 4));
        }
    }
}

void
RaceDetector::onRead(const void *mem, PAddr addr, std::size_t n, Tick now)
{
    if (n == 0)
        return;
    const ActorId me = currentActor();
    if (me == noActor)
        return; // backdoor read: ignored
    MemState &ms = memState(mem);
    const std::size_t pb = ms.pageBytes;
    const PAddr opLo = addr;
    const PAddr opHi = addr + PAddr(n);
    const PageNum first = PageNum(opLo / pb);
    const PageNum last = PageNum((opHi - 1) / pb);

    if (n <= atomicReadMax) {
        // Bus-burst-atomic read: cannot tear, so it is exempt from race
        // checks. Instead it is an observation edge — the reader is now
        // ordered after whatever wrote the observed words (this is how a
        // flag poll orders a CPU after the delivering DMA).
        for (PageNum p = first; p <= last; ++p) {
            auto it = ms.pages.find(p);
            if (it == ms.pages.end())
                continue;
            PageShadow &sh = it->second;
            if (sh.cells.empty())
                continue;
            const PAddr pageLo = PAddr(std::size_t(p) * pb);
            const PAddr lo = std::max(opLo, pageLo);
            const PAddr hi = std::min(opHi, PAddr(pageLo + pb));
            for (std::size_t ci = (lo - pageLo) / 4;
                 ci <= (hi - 1 - pageLo) / 4 && ci < sh.cells.size();
                 ++ci) {
                // The read observes the word's current content, which
                // may hold bytes from several recorded writes: join
                // with every overlapping writer in the history.
                for (const Cell &c : sh.cells[ci].hist) {
                    if (c.writer != noActor && c.writer != me &&
                        overlaps(c.opBase, c.opBase + PAddr(c.opLen),
                                 opLo, opHi))
                        joinVec(clockOf(me), clocks_.at(c.writer));
                }
            }
        }
        return;
    }

    SimChecker::instance().noteCheck();
    const std::uint64_t myclk = bump(me);
    std::vector<ActorId> reported;

    for (PageNum p = first; p <= last; ++p) {
        const PAddr pageLo = PAddr(std::size_t(p) * pb);
        const PAddr lo = std::max(opLo, pageLo);
        const PAddr hi = std::min(opHi, PAddr(pageLo + pb));
        PageShadow &sh = page(ms, p);

        // Read-after-write, per word, against the whole write history.
        if (!sh.cells.empty()) {
            for (std::size_t ci = (lo - pageLo) / 4;
                 ci <= (hi - 1 - pageLo) / 4 && ci < sh.cells.size();
                 ++ci) {
                for (const Cell &c : sh.cells[ci].hist) {
                    if (c.writer != noActor && c.writer != me &&
                        overlaps(c.opBase, c.opBase + PAddr(c.opLen),
                                 opLo, opHi) &&
                        entryOf(me, c.writer) < c.clk &&
                        std::find(reported.begin(), reported.end(),
                                  c.writer) == reported.end()) {
                        reported.push_back(c.writer);
                        report(logging::format(
                            "race: read-write conflict on %s page %u: "
                            "%s read [0x%x, +%zu) at %llu ns, unordered "
                            "with the write [0x%x, +%u) by %s at %llu "
                            "ns (missing ordering edge: no flag-poll "
                            "observation, packet/notification clock or "
                            "bus completion orders the read after the "
                            "write)",
                            ms.name.c_str(), unsigned(p),
                            describe(me).c_str(), unsigned(addr), n,
                            (unsigned long long)now, unsigned(c.opBase),
                            c.opLen, describe(c.writer).c_str(),
                            (unsigned long long)c.tick));
                    }
                }
            }
        }

        // Record so a later unordered write trips write-after-read.
        // Records are deliberately NOT coalesced: merging adjacent reads
        // under one (max) clock would make a properly-acknowledged ring
        // slot look like it was read after the ack.
        if (sh.reads.size() >= readRecCap_) {
            sh.reads.erase(sh.reads.begin());
            noteReadRecDropped(ms, p);
        }
        sh.reads.push_back(ReadRec{me, myclk, now, lo, hi});
    }
}

// ---- synchronization edges ----------------------------------------------

void
RaceDetector::handoff(ActorId a, ActorId b)
{
    if (a == noActor || b == noActor || a == b)
        return;
    joinVec(clockOf(a), clockOf(b));
    clockOf(b) = clockOf(a);
    bump(a);
    bump(b);
}

RaceClockRef
RaceDetector::snapshot(ActorId a)
{
    if (a == noActor)
        return nullptr;
    bump(a);
    auto c = std::make_shared<RaceClock>();
    c->vc = clockOf(a);
    return c;
}

void
RaceDetector::join(ActorId a, const RaceClockRef &c)
{
    if (a == noActor || !c)
        return;
    joinVec(clockOf(a), c->vc);
}

void
RaceDetector::objRelease(const void *obj, ActorId a)
{
    if (a == noActor)
        return;
    joinVec(objClocks_[obj], clockOf(a));
}

void
RaceDetector::objAcquire(const void *obj, ActorId a)
{
    if (a == noActor)
        return;
    auto it = objClocks_.find(obj);
    if (it != objClocks_.end())
        joinVec(clockOf(a), it->second);
}

void
RaceDetector::fenceAll()
{
    std::vector<std::uint64_t> all;
    for (const auto &c : clocks_)
        joinVec(all, c);
    for (auto &c : clocks_)
        c = all;
}

// ---- page ownership ------------------------------------------------------

void
RaceDetector::onCacheMode(const void *mem, PAddr page_addr, CacheMode mode,
                          Tick now)
{
    MemState &ms = memState(mem);
    PageOwn &own = ms.own[PageNum(page_addr / ms.pageBytes)];
    SimChecker::instance().noteCheck();
    if (own.auBound && mode == CacheMode::WriteBack) {
        report(logging::format(
            "race: %s page %u switched to write-back caching at %llu ns "
            "while AU-bound (snooped stores would hide in the cache)",
            ms.name.c_str(), unsigned(page_addr / ms.pageBytes),
            (unsigned long long)now));
    }
    own.mode = mode;
    own.dirtyWb = false; // a mode switch models the flush/invalidate
}

void
RaceDetector::onAuBind(const void *mem, PAddr page_addr, Tick now)
{
    MemState &ms = memState(mem);
    PageOwn &own = ms.own[PageNum(page_addr / ms.pageBytes)];
    SimChecker::instance().noteCheck();
    if (own.mode == CacheMode::WriteBack && own.dirtyWb) {
        report(logging::format(
            "race: %s page %u was AU-bound at %llu ns while write-back "
            "cached with dirty CPU stores (exported through the OPT "
            "without a flush edge)",
            ms.name.c_str(), unsigned(page_addr / ms.pageBytes),
            (unsigned long long)now));
    }
    own.auBound = true;
}

void
RaceDetector::onAuUnbind(const void *mem, PAddr page_addr)
{
    MemState &ms = memState(mem);
    ms.own[PageNum(page_addr / ms.pageBytes)].auBound = false;
}

void
RaceDetector::onIptEnable(const void *mem, PAddr page_addr,
                          ActorId exporter, Tick now)
{
    MemState &ms = memState(mem);
    PageOwn &own = ms.own[PageNum(page_addr / ms.pageBytes)];
    SimChecker::instance().noteCheck();
    if (own.exportDepth > 0) {
        report(logging::format(
            "race: overlapping IPT export windows on %s page %u: a window "
            "opened at %llu ns while one is already open",
            ms.name.c_str(), unsigned(page_addr / ms.pageBytes),
            (unsigned long long)now));
    }
    own.exportDepth += 1;
    own.exportClock = snapshot(exporter);
}

void
RaceDetector::onIptDisable(const void *mem, PAddr page_addr, ActorId actor,
                           Tick now)
{
    MemState &ms = memState(mem);
    PageOwn &own = ms.own[PageNum(page_addr / ms.pageBytes)];
    SimChecker::instance().noteCheck();
    if (own.exportDepth == 0) {
        report(logging::format(
            "race: IPT export window closed on %s page %u at %llu ns but "
            "no window is open",
            ms.name.c_str(), unsigned(page_addr / ms.pageBytes),
            (unsigned long long)now));
        return;
    }
    own.exportDepth -= 1;
    // Drain edge: closing the window waited for in-flight deliveries, so
    // the closer is ordered after the last DMA into the page (the
    // exporter may now safely reuse the buffer).
    if (actor != noActor && own.deliveryClock)
        joinVec(clockOf(actor), own.deliveryClock->vc);
    if (own.exportDepth == 0)
        own.exportClock.reset();
}

void
RaceDetector::joinWindow(const void *mem, PAddr addr, std::size_t n,
                         ActorId engine)
{
    if (engine == noActor || n == 0)
        return;
    MemState &ms = memState(mem);
    const std::size_t pb = ms.pageBytes;
    const PageNum first = PageNum(addr / pb);
    const PageNum last = PageNum((addr + PAddr(n) - 1) / pb);
    for (PageNum p = first; p <= last; ++p) {
        auto it = ms.own.find(p);
        if (it != ms.own.end() && it->second.exportClock)
            joinVec(clockOf(engine), it->second.exportClock->vc);
    }
}

} // namespace shrimp::check
