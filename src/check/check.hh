/**
 * @file
 * SimChecker: runtime invariant checking for the simulator.
 *
 * The paper's results rest on properties the SHRIMP prototype enforced
 * in hardware: deliberate-update packets deliver in order per mapping,
 * combined automatic-update packets carry byte-identical data, OPT
 * entries only ever address their mapped window, and the IPT gates every
 * delivery. Our reproduction additionally depends on the event queue
 * being tick-monotonic and schedule-order deterministic. SimChecker
 * turns violations of any of these into loud failures instead of
 * silently skewed figure numbers.
 *
 * The checker object itself is always compiled (so its logic is unit
 * testable in every build), but the hook call sites sprinkled through
 * sim/, nic/ and net/ are compiled only when the SHRIMP_CHECK CMake
 * option defines the SHRIMP_CHECK macro: a production build pays zero
 * cost, exactly like tracing. When compiled in, hooks are additionally
 * gated by the runtime on() flag so individual tests can pause checking.
 *
 * A violation is recorded and, by default, thrown as CheckError (a
 * PanicError subclass, so existing panic-expecting code sees it).
 * Tests switch to collect mode with setAbortOnViolation(false) and
 * inspect violations().
 */

#ifndef SHRIMP_CHECK_CHECK_HH
#define SHRIMP_CHECK_CHECK_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace shrimp::net
{
// The checker only passes packets through by reference; the two hooks
// that inspect payloads are defined in net/check_packet.cc so this
// header (layer 1) never includes net/ (layer 3).
struct Packet;
} // namespace shrimp::net

namespace shrimp::check
{

namespace detail
{
extern bool gEnabled;
} // namespace detail

/** Fast gate compiled into every hook call site. */
inline bool on() { return detail::gEnabled; }

/** Pause/resume hook evaluation at runtime (hooks must be compiled in
 *  with SHRIMP_CHECK for this to matter). */
void setEnabled(bool enabled);

/** Thrown when an invariant is violated in abort mode. Derives from
 *  PanicError: a violation is an internal simulator bug. */
class CheckError : public PanicError
{
  public:
    explicit CheckError(const std::string &msg) : PanicError(msg) {}
};

class SimChecker
{
  public:
    /** The process-wide checker all hooks report into. */
    static SimChecker &instance();

    /** Abort mode (default): throw CheckError on the first violation.
     *  Collect mode: record violations for later inspection. */
    void setAbortOnViolation(bool abort_on_violation);

    /** Forget all tracked state and recorded violations. */
    void reset();

    const std::vector<std::string> &violations() const
    {
        return violations_;
    }

    /** Number of individual invariant checks evaluated so far. */
    std::uint64_t numChecks() const { return numChecks_; }

    /** Record a violation found by an auxiliary checker (the race
     *  detector): same print format and abort/collect behavior as the
     *  built-in checks. */
    void report(const std::string &msg) { violation(msg); }

    /** Count an invariant evaluation performed by an auxiliary checker. */
    void noteCheck() { numChecks_ += 1; }

    // ---- event queue: monotonicity + schedule-order determinism -------

    /** A queue was constructed/destroyed; clears per-queue state (object
     *  addresses are recycled across simulations). */
    void onQueueCreated(const void *queue);
    void onQueueDestroyed(const void *queue);

    /** An event popped for execution: @p when must be >= @p now, and
     *  events sharing a tick must run in increasing @p seq order. */
    void onEventRun(const void *queue, Tick when, std::uint64_t seq,
                    Tick now);

    // ---- spawned tasks: deadlock attribution --------------------------

    /** A detached task started; @return a registration id. */
    std::uint64_t onTaskSpawn(const void *sim, const std::string &name,
                              Tick now);
    void onTaskExit(std::uint64_t id);

    /** Tasks of @p sim still registered (i.e. suspended) — the deadlock
     *  report appended to Simulator::runAll()'s panic message. */
    std::string describeActiveTasks(const void *sim) const;

    /** All registered tasks of every simulator — the attribution
     *  appended when an event is scheduled in the past (the queue does
     *  not know which simulator the offender belongs to). */
    std::string describeActiveTasks() const;

    /** Forget tasks belonging to a destroyed simulator. */
    void onSimulatorDestroyed(const void *sim);

    // ---- resume scheduling: double-resume detection -------------------

    /** A suspended coroutine was handed to the event queue for resume.
     *  Scheduling the same frame again before it runs is a violation
     *  (the second resume would corrupt the coroutine frame). */
    void onResumeScheduled(const void *frame);
    void onResumeFired(const void *frame);

    // ---- bus: conservation + mutual exclusion -------------------------

    void onBusCreated(const void *bus);

    /** A transfer was granted the bus for @p bytes. At most one transfer
     *  may hold the bus at a time. */
    void onBusTransferStart(const void *bus, std::uint64_t bytes);

    /** The transfer completed having moved @p bytes; must equal the
     *  granted request (bytes granted == bytes requested). */
    void onBusTransferEnd(const void *bus, std::uint64_t bytes);

    // ---- packetizer: combining shadow model ---------------------------

    void onPacketizerCreated(const void *packetizer);

    /** A pending combined packet began with this first write. */
    void onShadowStart(const void *packetizer, NodeId dst, PAddr addr,
                       const void *data, std::size_t len);

    /** A subsequent write was combined into the pending packet; must be
     *  destination-contiguous with what the shadow accumulated. */
    void onShadowAppend(const void *packetizer, NodeId dst, PAddr addr,
                        const void *data, std::size_t len);

    /** The pending packet was flushed: header and payload must be
     *  byte-identical to the uncombined shadow stream. */
    void onShadowFlush(const void *packetizer, const net::Packet &pkt);

    // ---- NIC: OPT window + IPT gating + per-mapping delivery order ----

    /** An OPT entry (AU binding or import slot) was used to address
     *  bytes [off, off+len) of its mapped window. */
    void onOptUse(NodeId node, bool valid, NodeId dest_node,
                  std::size_t off, std::size_t len, std::size_t window);

    void onIncomingEngineCreated(const void *engine);

    /** The incoming engine is about to DMA a packet into memory.
     *  @p ipt_enabled is the IPT gate for the destination range (a
     *  delivery into a disabled page means a stale IPT entry slipped
     *  through the freeze protocol). @p seq 0 means unsequenced (raw
     *  test packets); otherwise packets from one source must arrive in
     *  strictly increasing injection order. */
    void onDelivery(const void *engine, NodeId src, std::uint64_t seq,
                    bool ipt_enabled);

    /** A deliberate-update packet is about to enter the outgoing FIFO:
     *  its payload must be whole words and byte-identical to the
     *  @p len source-memory bytes it claims to carry (@p expected is an
     *  independent re-read of that range). */
    void onDuPacket(const void *packetizer, const net::Packet &pkt,
                    const void *expected, std::size_t len);

    // ---- mesh/routers: conservation + per-link in-order delivery ------

    void onMeshCreated(const void *mesh);
    void onMeshDestroyed(const void *mesh);

    /** Packet @p seq (mesh-wide, nonzero) was injected at @p src toward
     *  @p dst; XY routing must traverse exactly @p expect_hops links. */
    void onMeshInject(const void *mesh, NodeId src, NodeId dst,
                      int expect_hops, std::uint64_t seq);

    /** Packet @p seq completed one link traversal. */
    void onMeshHop(const void *mesh, std::uint64_t seq);

    /** Packet @p seq was ejected at node @p at. Conservation: it must be
     *  in flight; it must eject at its destination; packets of one
     *  (src, dst) pair must eject in injection order; and its link
     *  traversals must equal the route length (each hop consumes and
     *  returns exactly one link credit). */
    void onMeshEject(const void *mesh, NodeId at, NodeId src, NodeId dst,
                     std::uint64_t seq);

    void onRouterCreated(const void *router);
    void onRouterDestroyed(const void *router);

    /** A packet from @p src finished traversing link @p dir of router
     *  @p router_id: per-source seqs on one link must be strictly
     *  increasing (seq 0 = unsequenced test packets, skipped). */
    void onLinkTraverse(const void *router, NodeId router_id, int dir,
                        NodeId src, std::uint64_t seq);

  private:
    SimChecker() = default;

    void violation(const std::string &msg);

    struct QueueState
    {
        bool any = false;
        Tick lastWhen = 0;
        std::uint64_t lastSeq = 0;
    };

    struct TaskRec
    {
        const void *sim;
        std::string name;
        Tick spawned;
    };

    struct BusState
    {
        bool active = false;
        std::uint64_t grantedBytes = 0;
        std::uint64_t totalRequested = 0;
        std::uint64_t totalGranted = 0;
    };

    struct Shadow
    {
        bool active = false;
        NodeId dst = invalidNode;
        PAddr base = 0;
        std::vector<std::uint8_t> bytes;
    };

    struct InflightPkt
    {
        NodeId src = invalidNode;
        NodeId dst = invalidNode;
        int expectHops = 0;
        int hops = 0;
    };

    struct MeshState
    {
        std::unordered_map<std::uint64_t, InflightPkt> inflight;
        std::map<std::pair<NodeId, NodeId>, std::deque<std::uint64_t>>
            fifo;
    };

    struct RouterState
    {
        // (dir, src) -> last seq that finished traversing that link.
        std::map<std::pair<int, NodeId>, std::uint64_t> lastLinkSeq;
    };

    bool abortOnViolation_ = true;
    std::uint64_t numChecks_ = 0;
    std::vector<std::string> violations_;

    std::unordered_map<const void *, QueueState> queues_;
    std::map<std::uint64_t, TaskRec> tasks_;
    std::uint64_t nextTaskId_ = 1;
    std::unordered_set<const void *> scheduledResumes_;
    std::unordered_map<const void *, BusState> buses_;
    std::unordered_map<const void *, Shadow> shadows_;
    std::unordered_map<const void *, std::map<NodeId, std::uint64_t>>
        lastDeliverySeq_;
    std::unordered_map<const void *, MeshState> meshes_;
    std::unordered_map<const void *, RouterState> routers_;
};

} // namespace shrimp::check

/**
 * Hook macro wrapping every checker call site. Compiles to nothing
 * unless the SHRIMP_CHECK CMake option is on, so instrumented hot paths
 * cost zero in normal builds.
 */
#ifdef SHRIMP_CHECK
#define SHRIMP_CHECK_HOOK(...)                                               \
    do {                                                                     \
        if (::shrimp::check::on()) {                                         \
            __VA_ARGS__;                                                     \
        }                                                                    \
    } while (0)
#else
#define SHRIMP_CHECK_HOOK(...)                                               \
    do {                                                                     \
    } while (0)
#endif

#endif // SHRIMP_CHECK_CHECK_HH
