#include "rpc/vrpc_stream.hh"

#include <cstring>

#include "base/logging.hh"

namespace shrimp::rpc
{

std::uint32_t VrpcTransport::keyCounter_ = 0;

VrpcTransport::VrpcTransport(vmmc::Endpoint &ep, std::size_t queue_bytes)
    : ep_(ep), queueBytes_(queue_bytes)
{
}

std::uint32_t
VrpcTransport::nextKey()
{
    // Key namespace "RP": unique per (node, pid, counter).
    return 0x52500000u + (std::uint32_t(ep_.nodeId()) << 14) +
           (std::uint32_t(ep_.pid()) << 10) + (keyCounter_++ & 0x3FF);
}

namespace
{

std::vector<std::uint8_t>
packHello(const VrpcTransport::Hello &h)
{
    std::vector<std::uint8_t> v(sizeof(h));
    std::memcpy(v.data(), &h, sizeof(h));
    return v;
}

VrpcTransport::Hello
unpackHello(const std::vector<std::uint8_t> &data)
{
    VrpcTransport::Hello h{};
    if (data.size() != sizeof(h))
        panic("malformed VRPC handshake frame");
    std::memcpy(&h, data.data(), sizeof(h));
    return h;
}

} // namespace

sim::Task<bool>
VrpcTransport::connect(NodeId server, std::uint16_t port)
{
    node::EtherNet &ether = ep_.proc().node().ether();
    stream_ = std::make_unique<sock::ByteStream>(ep_, queueBytes_);
    std::uint32_t key = nextKey();
    vmmc::Status es =
        co_await stream_->exportLocal(key, vmmc::Perm::onlyNode(server));
    if (es != vmmc::Status::Ok)
        co_return false;

    std::uint16_t reply_port = ether.allocPort(ep_.nodeId());
    Hello hello{helloMagic, key, reply_port, 0};
    ether.send(ep_.nodeId(), reply_port, server, port, packHello(hello));

    node::EtherFrame frame =
        co_await ether.rxQueue(ep_.nodeId(), reply_port).recv();
    Hello ack = unpackHello(frame.data);
    if (ack.magic != helloMagic)
        co_return false;
    vmmc::Status as = co_await stream_->attachRemote(server, ack.key);
    co_return as == vmmc::Status::Ok;
}

sim::Task<bool>
VrpcTransport::acceptFrom(const node::EtherFrame &syn,
                          std::uint16_t listen_port)
{
    node::EtherNet &ether = ep_.proc().node().ether();
    Hello hello = unpackHello(syn.data);
    if (hello.magic != helloMagic)
        co_return false;

    stream_ = std::make_unique<sock::ByteStream>(ep_, queueBytes_);
    std::uint32_t key = nextKey();
    vmmc::Status es =
        co_await stream_->exportLocal(key, vmmc::Perm::onlyNode(syn.src));
    if (es != vmmc::Status::Ok)
        co_return false;
    vmmc::Status as = co_await stream_->attachRemote(syn.src, hello.key);
    if (as != vmmc::Status::Ok)
        co_return false;

    Hello ack{helloMagic, key, 0, 0};
    ether.send(ep_.nodeId(), listen_port, syn.src, hello.replyPort,
               packHello(ack));
    co_return true;
}

sim::Task<>
VrpcTransport::close()
{
    if (stream_) {
        co_await stream_->sendFin();
        if (stream_->attached())
            co_await stream_->detachRemote();
    }
}

} // namespace shrimp::rpc
