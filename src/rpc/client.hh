/**
 * @file
 * VrpcClient: the client half of VRPC — SunRPC's CLNT handle (RPCLIB
 * layer) with the stream layer folded into XDR. clnt_call() becomes
 * call(): encode the RFC 1057 call header and the arguments straight
 * into the outgoing cyclic queue, then decode the reply header and
 * results from the incoming queue.
 */

#ifndef SHRIMP_RPC_CLIENT_HH
#define SHRIMP_RPC_CLIENT_HH

#include <functional>
#include <memory>

#include "base/stats.hh"
#include "base/trace.hh"
#include "rpc/rpc_msg.hh"
#include "rpc/vrpc_stream.hh"

namespace shrimp::rpc
{

struct VrpcOptions
{
    std::size_t queueBytes = 32 * 1024;
    /** Data protocol for the queues (Figure 5's AU/DU curves). */
    sock::StreamProto proto = sock::StreamProto::AuTwoCopy;
};

class VrpcClient
{
  public:
    VrpcClient(vmmc::Endpoint &ep, VrpcOptions opt = VrpcOptions{});

    /** clnt_create: bind to the server's listener. */
    sim::Task<bool> connect(NodeId server, std::uint16_t port,
                            std::uint32_t prog, std::uint32_t vers);

    using EncodeFn = std::function<sim::Task<>(XdrEncoder &)>;
    using DecodeFn = std::function<sim::Task<>(XdrDecoder &)>;

    /**
     * clnt_call: one synchronous RPC. @p encode_args marshals the
     * arguments; @p decode_results unmarshals the results (invoked only
     * on SUCCESS).
     */
    sim::Task<AcceptStat> call(std::uint32_t proc, EncodeFn encode_args,
                               DecodeFn decode_results);

    /** clnt_destroy. */
    sim::Task<> close();

    bool connected() const { return bool(transport_); }
    std::uint64_t callsMade() const { return calls_; }

  private:
    vmmc::Endpoint &ep_;
    VrpcOptions opt_;
    std::unique_ptr<VrpcTransport> transport_;
    std::uint32_t prog_ = 0;
    std::uint32_t vers_ = 0;
    std::uint32_t nextXid_ = 1;
    std::uint64_t calls_ = 0;
    stats::Group stats_;
    trace::TrackId track_;
};

} // namespace shrimp::rpc

#endif // SHRIMP_RPC_CLIENT_HH
