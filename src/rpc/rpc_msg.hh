/**
 * @file
 * The SunRPC message protocol of RFC 1057: call and reply headers with
 * AUTH_NONE credentials. VRPC keeps this wire format bit-for-bit (full
 * compatibility); only the transport underneath changed.
 */

#ifndef SHRIMP_RPC_RPC_MSG_HH
#define SHRIMP_RPC_RPC_MSG_HH

#include <cstdint>

#include "rpc/xdr.hh"

namespace shrimp::rpc
{

constexpr std::uint32_t rpcVersion = 2;

enum class MsgType : std::uint32_t
{
    Call = 0,
    Reply = 1,
};

enum class AcceptStat : std::uint32_t
{
    Success = 0,
    ProgUnavail = 1,
    ProgMismatch = 2,
    ProcUnavail = 3,
    GarbageArgs = 4,
    SystemErr = 5,
};

const char *acceptStatName(AcceptStat s);

struct CallHeader
{
    std::uint32_t xid = 0;
    std::uint32_t prog = 0;
    std::uint32_t vers = 0;
    std::uint32_t proc = 0;

    /** Wire size: xid, mtype, rpcvers, prog, vers, proc, cred(2), verf(2). */
    static constexpr std::size_t wireBytes = 10 * 4;

    sim::Task<> encode(XdrEncoder &enc) const;

    /** Decode; panics on a non-CALL message or wrong RPC version. */
    static sim::Task<CallHeader> decode(XdrDecoder &dec);
};

struct ReplyHeader
{
    std::uint32_t xid = 0;
    AcceptStat stat = AcceptStat::Success;

    /** Wire size: xid, mtype, reply_stat, verf(2), accept_stat. */
    static constexpr std::size_t wireBytes = 6 * 4;

    sim::Task<> encode(XdrEncoder &enc) const;
    static sim::Task<ReplyHeader> decode(XdrDecoder &dec);
};

} // namespace shrimp::rpc

#endif // SHRIMP_RPC_RPC_MSG_HH
