#include "rpc/server.hh"

#include "base/logging.hh"

namespace shrimp::rpc
{

VrpcServer::VrpcServer(vmmc::Endpoint &ep, std::uint16_t port,
                       VrpcOptions opt)
    : ep_(ep), port_(port), opt_(opt)
{
}

void
VrpcServer::registerProc(std::uint32_t prog, std::uint32_t vers,
                         std::uint32_t proc, Handler handler)
{
    procs_[{prog, vers, proc}] = std::move(handler);
    programs_.insert({prog, vers});
}

void
VrpcServer::start()
{
    if (started_)
        panic("VRPC server started twice");
    started_ = true;
    ep_.proc().sim().spawnDaemon(acceptLoop());
}

sim::Task<>
VrpcServer::acceptLoop()
{
    node::EtherNet &ether = ep_.proc().node().ether();
    auto &rx = ether.rxQueue(ep_.nodeId(), port_);
    for (;;) {
        node::EtherFrame syn = co_await rx.recv();
        auto transport =
            std::make_unique<VrpcTransport>(ep_, opt_.queueBytes);
        bool ok = co_await transport->acceptFrom(syn, port_);
        if (!ok) {
            warn("VRPC server rejected a malformed binding");
            continue;
        }
        transports_.push_back(std::move(transport));
        ep_.proc().sim().spawnDaemon(serve(transports_.back().get()));
    }
}

sim::Task<>
VrpcServer::serve(VrpcTransport *transport)
{
    node::Process &p = ep_.proc();
    sock::ByteStream &stream = transport->stream();

    for (;;) {
        // Wait for the next call (or an orderly shutdown).
        while (stream.available() == 0) {
            if (stream.finReceived())
                co_return;
            co_await p.pollSleep();
        }
        // The detecting read of freshly-DMAed data misses in the cache.
        co_await sim::Delay{p.sim().queue(), p.config().wtReceivePenalty};

        StreamSource source(stream, p);
        XdrDecoder dec(source);
        CallHeader hdr = co_await CallHeader::decode(dec);

        // Dispatch. "About 5-6 usecs in processing the header."
        co_await p.compute(2 * p.config().cpuOpCost);
        AcceptStat stat = AcceptStat::Success;
        Handler *handler = nullptr;
        auto it = procs_.find({hdr.prog, hdr.vers, hdr.proc});
        if (it != procs_.end()) {
            handler = &it->second;
        } else if (programs_.count({hdr.prog, hdr.vers})) {
            stat = AcceptStat::ProcUnavail;
        } else {
            stat = AcceptStat::ProgUnavail;
        }

        ServiceResult result;
        if (handler) {
            result = co_await (*handler)(dec);
            stat = result.stat;
        }
        co_await stream.flushAck();
        ++calls_;

        StreamSink sink(stream, p, opt_.proto);
        XdrEncoder enc(sink);
        ReplyHeader rh;
        rh.xid = hdr.xid;
        rh.stat = stat;
        co_await rh.encode(enc);
        if (stat == AcceptStat::Success && result.results)
            co_await result.results(enc);
        co_await sink.drain();
        co_await stream.flushTail();

        if (!handler) {
            // Unknown program/procedure: the argument bytes cannot be
            // skipped without a framing layer; drop the binding.
            co_await transport->close();
            co_return;
        }
    }
}

} // namespace shrimp::rpc
