/**
 * @file
 * VrpcTransport: the transport under VRPC (paper section 4.2) — a pair
 * of VMMC mappings forming a bidirectional stream between client and
 * server, established at binding time over the Ethernet. Each direction
 * is a cyclic shared queue whose control words carry the cumulative
 * length written (the receiver trusts data only up to that word) —
 * the ByteStream building block.
 */

#ifndef SHRIMP_RPC_VRPC_STREAM_HH
#define SHRIMP_RPC_VRPC_STREAM_HH

#include <memory>

#include "node/ether.hh"
#include "sock/ring.hh"

namespace shrimp::rpc
{

class VrpcTransport
{
  public:
    VrpcTransport(vmmc::Endpoint &ep, std::size_t queue_bytes);

    /** Client side: bind to the server's listener on (node, port). */
    sim::Task<bool> connect(NodeId server, std::uint16_t port);

    /** Server side: complete a binding for one received SYN frame;
     *  @p listen_port is where the reply originates. */
    sim::Task<bool> acceptFrom(const node::EtherFrame &syn,
                               std::uint16_t listen_port);

    sock::ByteStream &stream() { return *stream_; }
    vmmc::Endpoint &endpoint() { return ep_; }

    /** Close: raise FIN and drop the import. */
    sim::Task<> close();

    /** The handshake frame (POD over Ethernet). */
    struct Hello
    {
        std::uint32_t magic;
        std::uint32_t key;
        std::uint16_t replyPort;
        std::uint16_t pad;
    };

    static constexpr std::uint32_t helloMagic = 0x56525043; // "VRPC"

  private:
    std::uint32_t nextKey();

    vmmc::Endpoint &ep_;
    std::size_t queueBytes_;
    std::unique_ptr<sock::ByteStream> stream_;
    // analyze: shared(process-wide key namespace; sharding must carve
    // per-shard key ranges out of this counter first)
    static std::uint32_t keyCounter_;
};

} // namespace shrimp::rpc

#endif // SHRIMP_RPC_VRPC_STREAM_HH
