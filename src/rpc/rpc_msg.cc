#include "rpc/rpc_msg.hh"

#include "base/logging.hh"

namespace shrimp::rpc
{

const char *
acceptStatName(AcceptStat s)
{
    switch (s) {
      case AcceptStat::Success:
        return "SUCCESS";
      case AcceptStat::ProgUnavail:
        return "PROG_UNAVAIL";
      case AcceptStat::ProgMismatch:
        return "PROG_MISMATCH";
      case AcceptStat::ProcUnavail:
        return "PROC_UNAVAIL";
      case AcceptStat::GarbageArgs:
        return "GARBAGE_ARGS";
      case AcceptStat::SystemErr:
        return "SYSTEM_ERR";
    }
    return "?";
}

sim::Task<>
CallHeader::encode(XdrEncoder &enc) const
{
    co_await enc.putU32(xid);
    co_await enc.putU32(std::uint32_t(MsgType::Call));
    co_await enc.putU32(rpcVersion);
    co_await enc.putU32(prog);
    co_await enc.putU32(vers);
    co_await enc.putU32(proc);
    // AUTH_NONE credential and verifier.
    co_await enc.putU32(0);
    co_await enc.putU32(0);
    co_await enc.putU32(0);
    co_await enc.putU32(0);
}

sim::Task<CallHeader>
CallHeader::decode(XdrDecoder &dec)
{
    CallHeader h;
    h.xid = co_await dec.getU32();
    std::uint32_t mtype = co_await dec.getU32();
    if (mtype != std::uint32_t(MsgType::Call))
        panic("expected an RPC CALL message");
    std::uint32_t rpcvers = co_await dec.getU32();
    if (rpcvers != rpcVersion)
        panic("unsupported RPC protocol version");
    h.prog = co_await dec.getU32();
    h.vers = co_await dec.getU32();
    h.proc = co_await dec.getU32();
    std::uint32_t cred_flavor = co_await dec.getU32();
    std::uint32_t cred_len = co_await dec.getU32();
    if (cred_flavor != 0 || cred_len != 0)
        panic("only AUTH_NONE credentials are supported");
    std::uint32_t verf_flavor = co_await dec.getU32();
    std::uint32_t verf_len = co_await dec.getU32();
    if (verf_flavor != 0 || verf_len != 0)
        panic("only AUTH_NONE verifiers are supported");
    co_return h;
}

sim::Task<>
ReplyHeader::encode(XdrEncoder &enc) const
{
    co_await enc.putU32(xid);
    co_await enc.putU32(std::uint32_t(MsgType::Reply));
    co_await enc.putU32(0); // MSG_ACCEPTED
    co_await enc.putU32(0); // verf AUTH_NONE
    co_await enc.putU32(0);
    co_await enc.putU32(std::uint32_t(stat));
}

sim::Task<ReplyHeader>
ReplyHeader::decode(XdrDecoder &dec)
{
    ReplyHeader h;
    h.xid = co_await dec.getU32();
    std::uint32_t mtype = co_await dec.getU32();
    if (mtype != std::uint32_t(MsgType::Reply))
        panic("expected an RPC REPLY message");
    std::uint32_t reply_stat = co_await dec.getU32();
    if (reply_stat != 0)
        panic("MSG_DENIED replies are not produced by this server");
    co_await dec.getU32(); // verf flavor
    co_await dec.getU32(); // verf len
    std::uint32_t stat_word = co_await dec.getU32();
    h.stat = AcceptStat(stat_word);
    co_return h;
}

} // namespace shrimp::rpc
