#include "rpc/xdr.hh"

#include <cstring>

#include "base/logging.hh"

namespace shrimp::rpc
{

namespace
{

void
storeBe32(std::uint8_t *out, std::uint32_t v)
{
    out[0] = std::uint8_t(v >> 24);
    out[1] = std::uint8_t(v >> 16);
    out[2] = std::uint8_t(v >> 8);
    out[3] = std::uint8_t(v);
}

std::uint32_t
loadBe32(const std::uint8_t *in)
{
    return (std::uint32_t(in[0]) << 24) | (std::uint32_t(in[1]) << 16) |
           (std::uint32_t(in[2]) << 8) | std::uint32_t(in[3]);
}

} // namespace

// ---- sinks and sources -------------------------------------------------

sim::Task<>
BufferSink::put(const void *data, std::size_t n)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + n);
    co_return;
}

sim::Task<>
BufferSink::chargeOp()
{
    co_return;
}

sim::Task<>
BufferSource::get(void *out, std::size_t n)
{
    if (pos_ + n > buf_.size())
        panic("XDR decode past end of buffer");
    std::memcpy(out, buf_.data() + pos_, n);
    pos_ += n;
    co_return;
}

sim::Task<>
BufferSource::chargeOp()
{
    co_return;
}

sim::Task<>
StreamSink::put(const void *data, std::size_t n)
{
    if (proto_ != sock::StreamProto::AuTwoCopy) {
        // DU configurations marshal the record first; drain() sends it
        // with one deliberate update.
        const auto *p = static_cast<const std::uint8_t *>(data);
        pending_.insert(pending_.end(), p, p + n);
        co_return;
    }
    // Deferred publish: the control word goes out once per transfer.
    co_await stream_.sendHost(data, n, proto_, /*publish=*/false);
}

sim::Task<>
StreamSink::drain()
{
    if (pending_.empty())
        co_return;
    std::vector<std::uint8_t> out;
    out.swap(pending_);
    co_await stream_.sendHost(out.data(), out.size(), proto_,
                              /*publish=*/false);
}

sim::Task<>
StreamSink::chargeOp()
{
    co_await proc_.compute(xdrOpCost);
}

sim::Task<>
StreamSource::get(void *out, std::size_t n)
{
    co_await stream_.recvHost(out, n);
}

sim::Task<>
StreamSource::chargeOp()
{
    co_await proc_.compute(xdrOpCost);
}

// ---- encoder -------------------------------------------------------------

sim::Task<>
XdrEncoder::putU32(std::uint32_t v)
{
    std::uint8_t b[4];
    storeBe32(b, v);
    co_await sink_.chargeOp();
    co_await sink_.put(b, 4);
}

sim::Task<>
XdrEncoder::putI32(std::int32_t v)
{
    co_await putU32(std::uint32_t(v));
}

sim::Task<>
XdrEncoder::putU64(std::uint64_t v)
{
    co_await putU32(std::uint32_t(v >> 32));
    co_await putU32(std::uint32_t(v));
}

sim::Task<>
XdrEncoder::putI64(std::int64_t v)
{
    co_await putU64(std::uint64_t(v));
}

sim::Task<>
XdrEncoder::putBool(bool v)
{
    co_await putU32(v ? 1 : 0);
}

sim::Task<>
XdrEncoder::putFloat(float v)
{
    std::uint32_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    co_await putU32(bits);
}

sim::Task<>
XdrEncoder::putDouble(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    co_await putU64(bits);
}

sim::Task<>
XdrEncoder::putOpaque(const void *data, std::size_t n)
{
    static const std::uint8_t zeros[4] = {0, 0, 0, 0};
    co_await sink_.chargeOp();
    if (n > 0)
        co_await sink_.put(data, n);
    std::size_t pad = (4 - n % 4) % 4;
    if (pad)
        co_await sink_.put(zeros, pad);
}

sim::Task<>
XdrEncoder::putBytes(const void *data, std::size_t n)
{
    co_await putU32(std::uint32_t(n));
    co_await putOpaque(data, n);
}

sim::Task<>
XdrEncoder::putString(const std::string &s)
{
    co_await putBytes(s.data(), s.size());
}

// ---- decoder -------------------------------------------------------------

sim::Task<std::uint32_t>
XdrDecoder::getU32()
{
    std::uint8_t b[4];
    co_await source_.chargeOp();
    co_await source_.get(b, 4);
    co_return loadBe32(b);
}

sim::Task<std::int32_t>
XdrDecoder::getI32()
{
    std::uint32_t v = co_await getU32();
    co_return std::int32_t(v);
}

sim::Task<std::uint64_t>
XdrDecoder::getU64()
{
    std::uint64_t hi = co_await getU32();
    std::uint64_t lo = co_await getU32();
    co_return (hi << 32) | lo;
}

sim::Task<std::int64_t>
XdrDecoder::getI64()
{
    std::uint64_t v = co_await getU64();
    co_return std::int64_t(v);
}

sim::Task<bool>
XdrDecoder::getBool()
{
    std::uint32_t v = co_await getU32();
    co_return v != 0;
}

sim::Task<float>
XdrDecoder::getFloat()
{
    std::uint32_t bits = co_await getU32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    co_return v;
}

sim::Task<double>
XdrDecoder::getDouble()
{
    std::uint64_t bits = co_await getU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    co_return v;
}

sim::Task<>
XdrDecoder::getOpaque(void *out, std::size_t n)
{
    co_await source_.chargeOp();
    if (n > 0)
        co_await source_.get(out, n);
    std::size_t pad = (4 - n % 4) % 4;
    if (pad) {
        std::uint8_t scratch[4];
        co_await source_.get(scratch, pad);
    }
}

sim::Task<std::vector<std::uint8_t>>
XdrDecoder::getBytes(std::size_t max)
{
    std::uint32_t n = co_await getU32();
    if (n > max)
        panic("XDR opaque exceeds bound");
    std::vector<std::uint8_t> v(n);
    co_await getOpaque(v.data(), n);
    co_return v;
}

sim::Task<std::string>
XdrDecoder::getString(std::size_t max)
{
    std::vector<std::uint8_t> v = co_await getBytes(max);
    co_return std::string(v.begin(), v.end());
}

} // namespace shrimp::rpc
