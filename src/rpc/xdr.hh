/**
 * @file
 * XDR: External Data Representation (RFC 1014/4506) runtime used by the
 * VRPC library (paper section 4.2). All quantities are big-endian and
 * padded to 4-byte units, exactly as on the wire.
 *
 * In VRPC the expensive stream layer of standard SunRPC is folded into
 * XDR: the encoder writes fields *directly* into the AU-bound cyclic
 * queue (StreamSink), so there is no sender-side copy. For tests and
 * in-memory marshalling a host-buffer sink/source is also provided.
 */

#ifndef SHRIMP_RPC_XDR_HH
#define SHRIMP_RPC_XDR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/task.hh"
#include "sock/ring.hh"

namespace shrimp::rpc
{

/** Per-XDR-operation CPU cost (field bookkeeping on the 60 MHz
 *  Pentium); calibrated so a null VRPC round trip lands near the
 *  paper's 29 us. */
constexpr Tick xdrOpCost = 300;

/** Abstract, possibly timed, byte sink for the encoder. */
class XdrSink
{
  public:
    virtual ~XdrSink() = default;

    /** Append @p n bytes. */
    virtual sim::Task<> put(const void *data, std::size_t n) = 0;

    /** Charge per-field bookkeeping cost (no-op for host buffers). */
    virtual sim::Task<> chargeOp() = 0;
};

/** Abstract byte source for the decoder. */
class XdrSource
{
  public:
    virtual ~XdrSource() = default;
    virtual sim::Task<> get(void *out, std::size_t n) = 0;
    virtual sim::Task<> chargeOp() = 0;
};

/** Untimed host-buffer sink (tests, golden-byte checks). */
class BufferSink : public XdrSink
{
  public:
    sim::Task<> put(const void *data, std::size_t n) override;
    sim::Task<> chargeOp() override;
    const std::vector<std::uint8_t> &bytes() const { return buf_; }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Untimed host-buffer source. */
class BufferSource : public XdrSource
{
  public:
    explicit BufferSource(std::vector<std::uint8_t> bytes)
        : buf_(std::move(bytes))
    {}

    sim::Task<> get(void *out, std::size_t n) override;
    sim::Task<> chargeOp() override;
    std::size_t remaining() const { return buf_.size() - pos_; }

  private:
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
};

/**
 * Timed sink writing into a VMMC cyclic queue. In the AU configuration
 * every put() goes straight into the bound send area (no sender-side
 * copy: the encode is the transfer). In the DU configurations the
 * fields are marshalled into a host buffer first and a single
 * deliberate update carries the record — call drain() at record end.
 */
class StreamSink : public XdrSink
{
  public:
    StreamSink(sock::ByteStream &stream, node::Process &proc,
               sock::StreamProto proto = sock::StreamProto::AuTwoCopy)
        : stream_(stream), proc_(proc), proto_(proto)
    {}

    sim::Task<> put(const void *data, std::size_t n) override;
    sim::Task<> chargeOp() override;

    /** Flush any DU-mode marshal buffer into the queue. */
    sim::Task<> drain();

  private:
    sock::ByteStream &stream_;
    node::Process &proc_;
    sock::StreamProto proto_;
    std::vector<std::uint8_t> pending_;
};

/** Timed source reading out of a VMMC cyclic queue. */
class StreamSource : public XdrSource
{
  public:
    StreamSource(sock::ByteStream &stream, node::Process &proc)
        : stream_(stream), proc_(proc)
    {}

    sim::Task<> get(void *out, std::size_t n) override;
    sim::Task<> chargeOp() override;

  private:
    sock::ByteStream &stream_;
    node::Process &proc_;
};

/** XDR encoder: the xdr_* ENCODE direction. */
class XdrEncoder
{
  public:
    explicit XdrEncoder(XdrSink &sink) : sink_(sink) {}

    sim::Task<> putU32(std::uint32_t v);
    sim::Task<> putI32(std::int32_t v);
    sim::Task<> putU64(std::uint64_t v);
    sim::Task<> putI64(std::int64_t v);
    sim::Task<> putBool(bool v);
    sim::Task<> putFloat(float v);
    sim::Task<> putDouble(double v);

    /** Fixed-length opaque (padded to 4 bytes on the wire). */
    sim::Task<> putOpaque(const void *data, std::size_t n);

    /** Variable-length opaque: length word + padded bytes. */
    sim::Task<> putBytes(const void *data, std::size_t n);

    /** XDR string: length word + padded bytes. */
    sim::Task<> putString(const std::string &s);

    /** Variable-length array: length + per-element encoder. */
    template <typename T, typename Fn>
    sim::Task<>
    putArray(const std::vector<T> &v, Fn per_element)
    {
        co_await putU32(std::uint32_t(v.size()));
        for (const T &e : v)
            co_await per_element(*this, e);
    }

    XdrSink &sink() { return sink_; }

  private:
    XdrSink &sink_;
};

/** XDR decoder: the xdr_* DECODE direction. */
class XdrDecoder
{
  public:
    explicit XdrDecoder(XdrSource &source) : source_(source) {}

    sim::Task<std::uint32_t> getU32();
    sim::Task<std::int32_t> getI32();
    sim::Task<std::uint64_t> getU64();
    sim::Task<std::int64_t> getI64();
    sim::Task<bool> getBool();
    sim::Task<float> getFloat();
    sim::Task<double> getDouble();

    sim::Task<> getOpaque(void *out, std::size_t n);

    /** @return variable-length opaque, bounded by @p max (throws
     *  PanicError via panic on violation — GARBAGE_ARGS territory). */
    sim::Task<std::vector<std::uint8_t>> getBytes(std::size_t max);

    sim::Task<std::string> getString(std::size_t max);

    template <typename T, typename Fn>
    sim::Task<std::vector<T>>
    getArray(std::size_t max, Fn per_element)
    {
        std::uint32_t n = co_await getU32();
        if (n > max)
            panic("XDR array exceeds bound");
        std::vector<T> v;
        v.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            T elem = co_await per_element(*this);
            v.push_back(std::move(elem));
        }
        co_return v;
    }

    XdrSource &source() { return source_; }

  private:
    XdrSource &source_;
};

} // namespace shrimp::rpc

#endif // SHRIMP_RPC_XDR_HH
