/**
 * @file
 * VrpcServer: the service half of VRPC — svc_register/svc_run. The
 * server listens for bindings on an Ethernet port, serves each
 * connection from its VMMC queue pair, dispatches by (program, version,
 * procedure), and replies with RFC 1057 accept status.
 *
 * Note on framing: the queue is a raw byte stream (VRPC deliberately
 * has no record-marking layer — the XDR decoders consume exactly what
 * the encoders produced). A call naming an unknown program/procedure
 * therefore leaves undecodable argument bytes in the queue; the server
 * replies with the error status and closes that binding, as there is no
 * way to resynchronize.
 */

#ifndef SHRIMP_RPC_SERVER_HH
#define SHRIMP_RPC_SERVER_HH

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "rpc/client.hh"

namespace shrimp::rpc
{

class VrpcServer
{
  public:
    VrpcServer(vmmc::Endpoint &ep, std::uint16_t port,
               VrpcOptions opt = VrpcOptions{});

    /** What a service procedure produced. */
    struct ServiceResult
    {
        AcceptStat stat = AcceptStat::Success;
        /** Encodes the results; invoked after the reply header (only on
         *  SUCCESS). */
        VrpcClient::EncodeFn results;
    };

    /** A service procedure: decodes its own arguments (svc_getargs),
     *  computes, and returns the result encoder (svc_sendreply). */
    using Handler = std::function<sim::Task<ServiceResult>(XdrDecoder &)>;

    /** svc_register. */
    void registerProc(std::uint32_t prog, std::uint32_t vers,
                      std::uint32_t proc, Handler handler);

    /** svc_run: start accepting bindings (runs as a daemon). */
    void start();

    std::uint64_t callsServed() const { return calls_; }
    std::size_t connections() const { return transports_.size(); }

  private:
    sim::Task<> acceptLoop();
    sim::Task<> serve(VrpcTransport *transport);

    vmmc::Endpoint &ep_;
    std::uint16_t port_;
    VrpcOptions opt_;
    std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>,
             Handler>
        procs_;
    std::set<std::pair<std::uint32_t, std::uint32_t>> programs_;
    std::vector<std::unique_ptr<VrpcTransport>> transports_;
    std::uint64_t calls_ = 0;
    bool started_ = false;
};

} // namespace shrimp::rpc

#endif // SHRIMP_RPC_SERVER_HH
