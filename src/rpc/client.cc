#include "rpc/client.hh"

#include "base/logging.hh"

namespace shrimp::rpc
{

VrpcClient::VrpcClient(vmmc::Endpoint &ep, VrpcOptions opt)
    : ep_(ep), opt_(opt),
      stats_("node" + std::to_string(ep.nodeId()) + ".p" +
             std::to_string(ep.pid()) + ".vrpc"),
      track_(trace::track(stats_.name()))
{
}

sim::Task<bool>
VrpcClient::connect(NodeId server, std::uint16_t port, std::uint32_t prog,
                    std::uint32_t vers)
{
    co_await ep_.proc().compute(ep_.proc().config().libCallCost);
    transport_ = std::make_unique<VrpcTransport>(ep_, opt_.queueBytes);
    bool up = co_await transport_->connect(server, port);
    if (!up) {
        transport_.reset();
        co_return false;
    }
    prog_ = prog;
    vers_ = vers;
    co_return true;
}

sim::Task<AcceptStat>
VrpcClient::call(std::uint32_t proc, EncodeFn encode_args,
                 DecodeFn decode_results)
{
    if (!transport_)
        panic("clnt_call on an unconnected client");
    node::Process &p = ep_.proc();
    trace::ScopedSpan span(p.sim(), track_, "call");
    stats_.counter("calls") += 1;

    // "About 7 usecs are spent in preparing the header and making the
    // call": library entry plus the header fields encoded below.
    co_await p.compute(p.config().libCallCost);

    StreamSink sink(transport_->stream(), p, opt_.proto);
    XdrEncoder enc(sink);
    CallHeader hdr;
    hdr.xid = nextXid_++;
    hdr.prog = prog_;
    hdr.vers = vers_;
    hdr.proc = proc;
    co_await hdr.encode(enc);
    if (encode_args)
        co_await encode_args(enc);
    // One control transfer publishes the whole call record.
    co_await sink.drain();
    co_await transport_->stream().flushTail();
    ++calls_;

    // Wait for and decode the reply.
    StreamSource source(transport_->stream(), p);
    XdrDecoder dec(source);
    ReplyHeader rh = co_await ReplyHeader::decode(dec);
    if (rh.xid != hdr.xid)
        panic("RPC reply xid mismatch");
    if (rh.stat == AcceptStat::Success && decode_results)
        co_await decode_results(dec);
    co_await transport_->stream().flushAck();
    // "1-2 usecs in returning from the call."
    co_await p.compute(2 * p.config().cpuOpCost);
    co_return rh.stat;
}

sim::Task<>
VrpcClient::close()
{
    if (transport_) {
        co_await transport_->close();
        transport_.reset();
    }
}

} // namespace shrimp::rpc
