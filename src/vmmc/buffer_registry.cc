#include "vmmc/buffer_registry.hh"

#include "base/logging.hh"

namespace shrimp::vmmc
{

const char *
statusName(Status s)
{
    switch (s) {
      case Status::Ok:
        return "Ok";
      case Status::Misaligned:
        return "Misaligned";
      case Status::NoSuchExport:
        return "NoSuchExport";
      case Status::PermissionDenied:
        return "PermissionDenied";
      case Status::BadRange:
        return "BadRange";
      case Status::BadHandle:
        return "BadHandle";
      case Status::AlreadyExported:
        return "AlreadyExported";
      case Status::AlreadyBound:
        return "AlreadyBound";
      case Status::NotBound:
        return "NotBound";
    }
    return "?";
}

BufferRegistry::BufferRegistry(std::size_t page_bytes)
    : pageBytes_(page_bytes)
{
}

bool
BufferRegistry::add(ExportRecord rec)
{
    if (byKey_.count(rec.key))
        return false;
    PageNum first = rec.paddr / pageBytes_;
    PageNum last = PageNum((std::uint64_t(rec.paddr) + rec.len - 1) /
                           pageBytes_);
    for (PageNum p = first; p <= last; ++p) {
        if (byPage_.count(p))
            return false; // page already part of another export
    }
    for (PageNum p = first; p <= last; ++p)
        byPage_[p] = rec.key;
    byKey_[rec.key] = std::move(rec);
    return true;
}

ExportRecord *
BufferRegistry::find(std::uint32_t key)
{
    auto it = byKey_.find(key);
    return it == byKey_.end() ? nullptr : &it->second;
}

const ExportRecord *
BufferRegistry::find(std::uint32_t key) const
{
    auto it = byKey_.find(key);
    return it == byKey_.end() ? nullptr : &it->second;
}

ExportRecord *
BufferRegistry::findByPAddr(PAddr paddr)
{
    auto it = byPage_.find(paddr / pageBytes_);
    return it == byPage_.end() ? nullptr : find(it->second);
}

void
BufferRegistry::remove(std::uint32_t key)
{
    auto it = byKey_.find(key);
    if (it == byKey_.end())
        panic("BufferRegistry::remove: no such export");
    const ExportRecord &rec = it->second;
    PageNum first = rec.paddr / pageBytes_;
    PageNum last = PageNum((std::uint64_t(rec.paddr) + rec.len - 1) /
                           pageBytes_);
    for (PageNum p = first; p <= last; ++p)
        byPage_.erase(p);
    byKey_.erase(it);
}

} // namespace shrimp::vmmc
