/**
 * @file
 * NotificationQueue: per-process notification state (paper section 2.3).
 * Notifications resemble UNIX signals — they can be blocked and
 * unblocked, and a process can be suspended until one arrives — but
 * unlike signals they are queued while blocked. Delivery charges the
 * configured signal cost (the paper's current implementation uses
 * signals) or the cheaper active-message-style cost when
 * MachineConfig::fastNotifications is set.
 */

#ifndef SHRIMP_VMMC_NOTIFICATION_HH
#define SHRIMP_VMMC_NOTIFICATION_HH

#include <deque>

#include "node/process.hh"
#include "sim/sync.hh"
#include "vmmc/types.hh"

namespace shrimp::vmmc
{

class NotificationQueue
{
  public:
    explicit NotificationQueue(node::Process &proc);

    /**
     * Deliver a notification for @p endpoint: if blocked, queue it;
     * otherwise charge the delivery cost and run @p handler (if any) as
     * a user-level task, then wake waitNotification() sleepers.
     */
    void deliver(Endpoint &endpoint, const Notification &n,
                 const NotifyHandler &handler);

    /** Block delivery; subsequent notifications queue. */
    void block() { blocked_ = true; }

    /** Unblock and deliver everything queued (in arrival order). */
    void unblock(Endpoint &endpoint);

    bool blocked() const { return blocked_; }

    /** Suspend the caller until a notification arrives; returns it. */
    sim::Task<Notification> wait();

    /** Notifications received and not yet consumed by wait(). */
    std::size_t pending() const { return arrived_.size(); }

    std::uint64_t delivered() const { return delivered_; }

  private:
    struct Queued
    {
        Notification n;
        NotifyHandler handler;
    };

    sim::Task<> deliverTask(Endpoint &endpoint, Notification n,
                            NotifyHandler handler);

    node::Process &proc_;
    bool blocked_ = false;
    std::deque<Queued> blockedQueue_;
    std::deque<Notification> arrived_;
    sim::Condition arrivedCond_;
    std::uint64_t delivered_ = 0;
};

} // namespace shrimp::vmmc

#endif // SHRIMP_VMMC_NOTIFICATION_HH
