/**
 * @file
 * Daemon: the trusted SHRIMP daemon, one per node (paper section 3.3).
 * Daemons cooperate over the Ethernet side channel to establish and
 * destroy import-export mappings between user processes. They use
 * memory-mapped I/O to manipulate the network interface directly
 * (incoming page table enable/interrupt bits, outgoing page table import
 * slots) and service the NIC's freeze and notification interrupts.
 *
 * Local processes reach their daemon through direct (syscall-like)
 * entry points; remote daemons are reached with a small request/reply
 * protocol over Ethernet.
 */

#ifndef SHRIMP_VMMC_DAEMON_HH
#define SHRIMP_VMMC_DAEMON_HH

#include <cstdint>
#include <map>
#include <vector>

#include "base/ownership.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "node/ether.hh"
#include "node/node.hh"
#include "vmmc/buffer_registry.hh"
#include "vmmc/types.hh"

namespace shrimp::vmmc
{

/** The daemons' wire message (POD; memcpy-serialized onto Ethernet). */
struct DaemonMsg
{
    enum class Kind : std::uint32_t
    {
        ImportReq,
        ImportReply,
        UnimportReq,
        UnimportAck,
        RevokeReq,
        RevokeAck,
    };

    Kind kind = Kind::ImportReq;
    std::uint32_t reqId = 0;
    std::uint32_t key = 0;
    Status status = Status::Ok;
    PAddr base = 0;
    std::uint32_t len = 0;
    NodeId srcNode = invalidNode;
    std::int32_t srcPid = -1;
    std::uint16_t replyPort = 0;
};

class Daemon
{
    SHRIMP_SHARD_OWNED;

  public:
    Daemon(node::Node &node, node::EtherNet &ether);

    /** Spawn the service loop and hook the NIC interrupts. */
    void start();

    NodeId id() const { return node_.id(); }
    BufferRegistry &registry() { return registry_; }
    node::Node &node() { return node_; }

    /** Policy applied when data arrives for a disabled page. The
     *  default logs a warning and drops the offending packet. */
    using FreezePolicy =
        std::function<nic::FreezeAction(const net::Packet &, PageNum)>;
    void setFreezePolicy(FreezePolicy p) { freezePolicy_ = std::move(p); }

    // ---- local (trusted, syscall-like) entry points --------------------

    /** Register an export; enables the IPT pages. @p paddr/@p len must
     *  be page aligned (the Endpoint rounds). */
    sim::Task<Status> registerExport(ExportRecord rec);

    /** Destroy an export: stop accepting imports, revoke importers,
     *  wait for pending messages to drain, disable the pages. */
    sim::Task<Status> unexport(std::uint32_t key, int pid);

    struct ImportOutcome
    {
        Status status = Status::Ok;
        std::uint32_t slot = 0;
        PAddr base = 0;
        std::size_t len = 0;
    };

    /** Import (@p remote, @p key) on behalf of a local process. */
    sim::Task<ImportOutcome> importRemote(NodeId remote, std::uint32_t key,
                                          int pid, Endpoint *owner);

    /** Destroy an import mapping; waits for pending messages. */
    sim::Task<Status> unimport(NodeId remote, std::uint32_t key,
                               std::uint32_t slot, int pid);

    /** Toggle the receiver-specified interrupt bit of an export's pages
     *  (libraries use this to switch between polling and blocking). */
    Status setExportInterrupts(std::uint32_t key, int pid, bool enabled);

    std::uint64_t freezesHandled() const { return freezesHandled_; }

  private:
    struct ImportEntry
    {
        std::uint32_t slot;
        Endpoint *owner;
    };

    sim::Task<> serviceLoop();
    sim::Task<> handleImportReq(DaemonMsg m);
    sim::Task<> handleUnimportReq(DaemonMsg m);
    sim::Task<> handleRevokeReq(DaemonMsg m);
    sim::Task<DaemonMsg> request(NodeId remote, DaemonMsg m);
    void reply(const DaemonMsg &req, DaemonMsg resp);

    /** Wait until traffic toward [paddr, paddr+len) has drained. */
    sim::Task<> drainPages(PAddr paddr, std::size_t len);

    void onNotification(const net::Packet &pkt);
    void onBadPacket(const net::Packet &pkt, PageNum page);
    sim::Task<> freezeService(net::Packet pkt, PageNum page);

    node::Node &node_;
    node::EtherNet &ether_;
    BufferRegistry registry_;
    FreezePolicy freezePolicy_;

    /** Importer-side bookkeeping: (remote node, key) -> open imports. */
    std::map<std::pair<NodeId, std::uint32_t>, std::vector<ImportEntry>>
        imports_;

    std::uint32_t nextReq_ = 1;
    std::uint64_t freezesHandled_ = 0;
    bool started_ = false;

    stats::Group stats_;
    trace::TrackId track_;
};

/** Serialize/deserialize daemon messages for the Ethernet. */
std::vector<std::uint8_t> packMsg(const DaemonMsg &m);
DaemonMsg unpackMsg(const std::vector<std::uint8_t> &data);

} // namespace shrimp::vmmc

#endif // SHRIMP_VMMC_DAEMON_HH
