/**
 * @file
 * Shared types of the virtual memory-mapped communication (VMMC) API:
 * status codes, import/export permissions, automatic-update binding
 * options, and notification descriptors (paper section 2).
 */

#ifndef SHRIMP_VMMC_TYPES_HH
#define SHRIMP_VMMC_TYPES_HH

#include <cstdint>
#include <functional>

#include "base/types.hh"
#include "sim/task.hh"

namespace shrimp::vmmc
{

class Endpoint;

/** Result of a VMMC call. */
enum class Status : std::uint32_t
{
    Ok = 0,
    Misaligned,       //!< deliberate update requires word alignment
    NoSuchExport,     //!< import of an unknown (node, key)
    PermissionDenied, //!< export permissions exclude this importer
    BadRange,         //!< transfer or binding exceeds the mapped window
    BadHandle,        //!< stale or invalid import handle
    AlreadyExported,  //!< key already in use on this node
    AlreadyBound,     //!< local page already has an AU binding
    NotBound,         //!< unbind of a page with no AU binding
};

const char *statusName(Status s);

/**
 * Access rights attached to an exported receive buffer. A trusted third
 * party (the SHRIMP daemon) checks these at import time.
 */
struct Perm
{
    bool anyNode = true;
    NodeId node = invalidNode;
    bool anyPid = true;
    int pid = -1;

    bool
    allows(NodeId importer_node, int importer_pid) const
    {
        if (!anyNode && importer_node != node)
            return false;
        if (!anyPid && importer_pid != pid)
            return false;
        return true;
    }

    /** Restrict the importer to one node. */
    static Perm
    onlyNode(NodeId n)
    {
        Perm p;
        p.anyNode = false;
        p.node = n;
        return p;
    }
};

/** Per-binding configuration for automatic update. */
struct AuOptions
{
    /** Combine consecutive writes into one packet. */
    bool combinable = true;

    /** Flush a pending combined packet on hardware timeout. */
    bool timerEnabled = true;

    /** Request a notification at the receiver for every packet. */
    bool notify = false;
};

/** A delivered notification: which export, and where the data landed. */
struct Notification
{
    std::uint32_t exportKey = 0;
    std::size_t offset = 0; //!< byte offset of the arrival within the export
};

/**
 * User-level handler invoked (at user level, in the receiving process)
 * when a notification is delivered for an exported buffer.
 */
using NotifyHandler =
    std::function<sim::Task<>(Endpoint &, const Notification &)>;

/** Result of an import call. */
struct ImportResult
{
    Status status = Status::Ok;
    int handle = -1;
};

} // namespace shrimp::vmmc

#endif // SHRIMP_VMMC_TYPES_HH
