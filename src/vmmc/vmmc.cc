#include "vmmc/vmmc.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/span.hh"
#include "check/check.hh"
#include "check/race.hh"

namespace shrimp::vmmc
{

Endpoint::Endpoint(node::Process &proc, Daemon &daemon)
    : proc_(proc), daemon_(daemon), notif_(proc),
      stats_("node" + std::to_string(proc.nodeId()) + ".p" +
             std::to_string(proc.pid()) + ".vmmc"),
      track_(trace::track(stats_.name()))
{
    if (&daemon.node() != &proc.node())
        fatal("endpoint and daemon must live on the same node");
}

// ---- export side ------------------------------------------------------

sim::Task<Status>
Endpoint::exportBuffer(std::uint32_t key, VAddr addr, std::size_t len,
                       Perm perm, NotifyHandler handler)
{
    const MachineConfig &cfg = proc_.config();
    trace::ScopedSpan span(proc_.sim(), track_, "export");
    stats_.counter("exports") += 1;
    co_await proc_.compute(cfg.libCallCost);
    if (len == 0)
        co_return Status::BadRange;
    if (addr % cfg.pageBytes != 0)
        co_return Status::Misaligned;
    std::size_t rounded =
        (len + cfg.pageBytes - 1) / cfg.pageBytes * cfg.pageBytes;
    if (!proc_.as().mapped(addr, rounded))
        co_return Status::BadRange;

    ExportRecord rec;
    rec.key = key;
    rec.pid = pid();
    rec.owner = this;
    rec.vaddr = addr;
    rec.paddr = proc_.as().translateRange(addr, rounded);
    rec.len = rounded;
    rec.perm = perm;
    rec.handler = std::move(handler);
    co_return co_await daemon_.registerExport(std::move(rec));
}

sim::Task<Status>
Endpoint::unexport(std::uint32_t key)
{
    co_await proc_.compute(proc_.config().libCallCost);
    co_return co_await daemon_.unexport(key, pid());
}

sim::Task<VAddr>
Endpoint::allocExport(std::uint32_t key, std::size_t len, Perm perm,
                      NotifyHandler handler)
{
    VAddr addr = proc_.alloc(len);
    Status s = co_await exportBuffer(key, addr, len, perm,
                                     std::move(handler));
    if (s != Status::Ok)
        panic(std::string("allocExport failed: ") + statusName(s));
    co_return addr;
}

// ---- import side ------------------------------------------------------

sim::Task<ImportResult>
Endpoint::import(NodeId remote, std::uint32_t key)
{
    trace::ScopedSpan span(proc_.sim(), track_, "import");
    stats_.counter("imports") += 1;
    co_await proc_.compute(proc_.config().libCallCost);
    Daemon::ImportOutcome out =
        co_await daemon_.importRemote(remote, key, pid(), this);
    if (out.status != Status::Ok)
        co_return ImportResult{out.status, -1};

    ImportRec rec;
    rec.valid = true;
    rec.remote = remote;
    rec.key = key;
    rec.slot = out.slot;
    rec.base = out.base;
    rec.len = out.len;
    imports_.push_back(rec);
    co_return ImportResult{Status::Ok, int(imports_.size() - 1)};
}

const Endpoint::ImportRec *
Endpoint::lookupImport(int handle) const
{
    if (handle < 0 || std::size_t(handle) >= imports_.size())
        return nullptr;
    const ImportRec &rec = imports_[handle];
    return rec.valid ? &rec : nullptr;
}

std::size_t
Endpoint::importLen(int handle) const
{
    const ImportRec *rec = lookupImport(handle);
    return rec ? rec->len : 0;
}

bool
Endpoint::importValid(int handle) const
{
    return lookupImport(handle) != nullptr;
}

sim::Task<Status>
Endpoint::unimport(int handle)
{
    co_await proc_.compute(proc_.config().libCallCost);
    const ImportRec *rec = lookupImport(handle);
    if (!rec)
        co_return Status::BadHandle;

    // Drop any automatic-update bindings made through this import.
    for (auto &b : bindings_) {
        if (b.handle == handle)
            co_await unbindAu(b.local, b.len);
    }

    ImportRec copy = *rec;
    imports_[handle].valid = false;
    co_return co_await daemon_.unimport(copy.remote, copy.key, copy.slot,
                                        pid());
}

// ---- data transfer ----------------------------------------------------

// analyze: lookahead-entry(vmmc-du) — deliberate-update origin: the
// two-PIO initiation is charged before the NIC engine ever runs.
sim::Task<Status>
Endpoint::send(int handle, std::size_t dst_off, VAddr src, std::size_t len,
               bool notify)
{
    const MachineConfig &cfg = proc_.config();
    trace::ScopedSpan span(proc_.sim(), track_, "send");
    // This send is a message origin unless an upper library (NX, SRPC)
    // already staged a span for it; either way the id is claimed here,
    // synchronously, before the first suspension below.
    span::SpanId sp = span::takeStaged();
    if (sp == 0)
        sp = span::origin(track_, "msg.send", proc_.sim().now());
    const ImportRec *rec = lookupImport(handle);
    if (!rec)
        co_return Status::BadHandle;
    if (len == 0)
        co_return Status::Ok;
    if (!proc_.as().mapped(src, len))
        co_return Status::BadRange;

    PAddr src_pa = proc_.as().translateRange(src, len);
    if (src_pa % 4 != 0 || (rec->base + dst_off) % 4 != 0)
        co_return Status::Misaligned;
    std::size_t wire_len = (len + 3) & ~std::size_t(3);
    if (dst_off + wire_len > rec->len)
        co_return Status::BadRange;

    stats_.counter("sends") += 1;
    stats_.counter("sentBytes") += len;
    stats_.distribution("sendBytes").sample(double(len));
    // The two-access transfer-initiation sequence: programmed I/O to
    // addresses decoded by the network interface on the EISA bus.
    // analyze: lookahead-charge(vmmc-du) — two EISA PIO accesses.
    co_await proc_.compute(2 * cfg.eisaPioCost);
    // The PIO initiation orders the engine after the CPU's buffer fill.
    SHRIMP_CHECK_HOOK(check::RaceDetector::instance().handoff(
        proc_.raceActor(), proc_.node().nic().duEngine().raceActor()));
    co_await proc_.node().nic().deliberateSend(rec->slot, dst_off, src_pa,
                                               len, notify, sp);
    // The blocking send completes when the last source byte has been
    // read out: the CPU is ordered after the engine's DMA reads and may
    // reuse the buffer.
    SHRIMP_CHECK_HOOK(check::RaceDetector::instance().handoff(
        proc_.raceActor(), proc_.node().nic().duEngine().raceActor()));
    co_return Status::Ok;
}

sim::Task<Status>
Endpoint::bindAu(VAddr local, std::size_t len, int handle,
                 std::size_t dst_off, AuOptions opts)
{
    const MachineConfig &cfg = proc_.config();
    trace::ScopedSpan span(proc_.sim(), track_, "bindAu");
    co_await proc_.compute(cfg.libCallCost);
    const ImportRec *rec = lookupImport(handle);
    if (!rec)
        co_return Status::BadHandle;
    if (local % cfg.pageBytes != 0 || dst_off % cfg.pageBytes != 0 ||
        len % cfg.pageBytes != 0 || len == 0) {
        co_return Status::Misaligned;
    }
    if (dst_off + len > rec->len)
        co_return Status::BadRange;
    if (!proc_.as().mapped(local, len))
        co_return Status::BadRange;

    auto &opt = proc_.node().nic().opt();
    std::size_t npages = len / cfg.pageBytes;
    // Validate first: no page may already be bound.
    for (std::size_t i = 0; i < npages; ++i) {
        PAddr pa = proc_.as().translate(local + VAddr(i * cfg.pageBytes));
        if (opt.lookupPage(pa / cfg.pageBytes))
            co_return Status::AlreadyBound;
    }
    for (std::size_t i = 0; i < npages; ++i) {
        PAddr pa = proc_.as().translate(local + VAddr(i * cfg.pageBytes));
        nic::OptEntry e;
        e.valid = true;
        e.destNode = rec->remote;
        e.destBase = rec->base + PAddr(dst_off + i * cfg.pageBytes);
        e.len = cfg.pageBytes;
        e.combinable = opts.combinable;
        e.timerEnabled = opts.timerEnabled;
        e.destInterrupt = opts.notify;
        opt.bindPage(pa / cfg.pageBytes, e);
    }
    // The snoop logic must observe every store to the bound pages.
    proc_.as().setCacheMode(local, len, CacheMode::WriteThrough);
    SHRIMP_CHECK_HOOK(
        for (std::size_t i = 0; i < npages; ++i) {
            check::RaceDetector::instance().onAuBind(
                &proc_.node().memory(),
                proc_.as().translate(local + VAddr(i * cfg.pageBytes)),
                proc_.sim().now());
        });
    bindings_.push_back(AuBinding{local, len, handle});
    stats_.counter("auBindings") += 1;
    co_return Status::Ok;
}

sim::Task<Status>
Endpoint::unbindAu(VAddr local, std::size_t len)
{
    const MachineConfig &cfg = proc_.config();
    co_await proc_.compute(cfg.libCallCost);
    auto it = std::find_if(bindings_.begin(), bindings_.end(),
                           [local, len](const AuBinding &b) {
                               return b.local == local && b.len == len;
                           });
    if (it == bindings_.end())
        co_return Status::NotBound;

    // Push out anything still combining, then drop the OPT entries.
    proc_.node().nic().packetizer().flushPending();
    auto &opt = proc_.node().nic().opt();
    for (std::size_t i = 0; i < len / cfg.pageBytes; ++i) {
        PAddr pa = proc_.as().translate(local + VAddr(i * cfg.pageBytes));
        opt.unbindPage(pa / cfg.pageBytes);
        SHRIMP_CHECK_HOOK(check::RaceDetector::instance().onAuUnbind(
            &proc_.node().memory(), pa));
    }
    proc_.as().setCacheMode(local, len, CacheMode::WriteBack);
    bindings_.erase(it);
    co_return Status::Ok;
}

// ---- notifications ----------------------------------------------------

Status
Endpoint::setInterruptsEnabled(std::uint32_t key, bool enabled)
{
    return daemon_.setExportInterrupts(key, pid(), enabled);
}

void
Endpoint::noteImportRevoked(std::uint32_t slot)
{
    for (std::size_t h = 0; h < imports_.size(); ++h) {
        ImportRec &rec = imports_[h];
        if (rec.valid && rec.slot == slot) {
            rec.valid = false;
            // Tear down AU bindings that pointed into the revoked
            // import (their OPT pages are unbound here; the daemon has
            // already freed the import slot itself).
            const MachineConfig &cfg = proc_.config();
            auto &opt = proc_.node().nic().opt();
            for (auto it = bindings_.begin(); it != bindings_.end();) {
                if (it->handle == int(h)) {
                    for (std::size_t i = 0; i < it->len / cfg.pageBytes;
                         ++i) {
                        PAddr pa = proc_.as().translate(
                            it->local + VAddr(i * cfg.pageBytes));
                        opt.unbindPage(pa / cfg.pageBytes);
                        SHRIMP_CHECK_HOOK(
                            check::RaceDetector::instance().onAuUnbind(
                                &proc_.node().memory(), pa));
                    }
                    proc_.as().setCacheMode(it->local, it->len,
                                            CacheMode::WriteBack);
                    it = bindings_.erase(it);
                } else {
                    ++it;
                }
            }
        }
    }
}

void
Endpoint::deliverNotification(const Notification &n,
                              const NotifyHandler &handler)
{
    stats_.counter("notifications") += 1;
    trace::instant(track_, "notification", proc_.sim().now());
    // Notification handoff: the receiving process's handler runs after
    // the delivering DMA (the current actor when this is reached through
    // the incoming engine's notify path).
    SHRIMP_CHECK_HOOK(check::RaceDetector::instance().handoff(
        check::RaceDetector::instance().currentActor(),
        proc_.raceActor()));
    notif_.deliver(*this, n, handler);
}

// ---- System -----------------------------------------------------------

System::System(MachineConfig cfg) : machine_(std::move(cfg))
{
    daemons_.reserve(machine_.numNodes());
    for (NodeId i = 0; i < NodeId(machine_.numNodes()); ++i) {
        daemons_.push_back(
            std::make_unique<Daemon>(machine_.node(i), machine_.ether()));
        daemons_.back()->start();
    }
}

Endpoint &
System::createEndpoint(NodeId node_id)
{
    node::Process &proc = machine_.spawnProcess(node_id);
    endpoints_.push_back(
        std::make_unique<Endpoint>(proc, *daemons_.at(node_id)));
    return *endpoints_.back();
}

} // namespace shrimp::vmmc
