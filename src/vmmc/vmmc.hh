/**
 * @file
 * Endpoint: the user-level VMMC library (the thin layer of paper section
 * 3.3) as seen by one process. It implements the VMMC API of section 2:
 *
 *  - exportBuffer()/unexport(): publish a receive buffer with access
 *    permissions; destruction waits for pending messages.
 *  - import()/unimport(): map a remote receive buffer for sending.
 *  - send(): blocking deliberate-update transfer from arbitrary local
 *    virtual memory into an imported buffer (word alignment required).
 *  - bindAu()/unbindAu(): automatic-update bindings — all local writes
 *    to the bound pages propagate to the remote buffer with optional
 *    combining, flush timer, and notification.
 *  - notifications: per-buffer handlers, block/unblock with queueing,
 *    and waitNotification().
 *
 * System builds the whole stack: a Machine plus one daemon per node, and
 * creates processes with endpoints.
 */

#ifndef SHRIMP_VMMC_VMMC_HH
#define SHRIMP_VMMC_VMMC_HH

#include <memory>
#include <vector>

#include "base/ownership.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "node/machine.hh"
#include "node/process.hh"
#include "vmmc/daemon.hh"
#include "vmmc/notification.hh"
#include "vmmc/types.hh"

namespace shrimp::vmmc
{

class Endpoint
{
    SHRIMP_SHARD_OWNED;

  public:
    Endpoint(node::Process &proc, Daemon &daemon);

    node::Process &proc() { return proc_; }
    NodeId nodeId() const { return proc_.nodeId(); }
    int pid() const { return proc_.pid(); }

    // ---- export side ----------------------------------------------------

    /**
     * Export [addr, addr+len) under @p key. @p addr must be page
     * aligned; protection is page-granular, so @p len is rounded up to
     * whole pages. A non-null @p handler accepts notifications for this
     * buffer and sets the pages' IPT interrupt bits.
     */
    sim::Task<Status> exportBuffer(std::uint32_t key, VAddr addr,
                                   std::size_t len, Perm perm = Perm{},
                                   NotifyHandler handler = nullptr);

    /** Destroy an export; waits for pending messages to be delivered. */
    sim::Task<Status> unexport(std::uint32_t key);

    /** Convenience: alloc + export. Returns the buffer address. */
    sim::Task<VAddr> allocExport(std::uint32_t key, std::size_t len,
                                 Perm perm = Perm{},
                                 NotifyHandler handler = nullptr);

    // ---- import side ----------------------------------------------------

    /** Import the buffer exported as (@p remote, @p key). */
    sim::Task<ImportResult> import(NodeId remote, std::uint32_t key);

    /** Destroy an import; waits for pending messages to be delivered. */
    sim::Task<Status> unimport(int handle);

    /** Length of an imported window; 0 for a bad handle. */
    std::size_t importLen(int handle) const;

    /** True if @p handle refers to a live import. */
    bool importValid(int handle) const;

    // ---- data transfer --------------------------------------------------

    /**
     * Blocking deliberate-update send: transfer @p len bytes from local
     * virtual address @p src into the imported buffer at byte offset
     * @p dst_off. Source and destination must be word aligned (the wire
     * length is rounded up to whole words). Completes when the source
     * data has been read out of local memory; delivery is in order.
     */
    sim::Task<Status> send(int handle, std::size_t dst_off, VAddr src,
                           std::size_t len, bool notify = false);

    /**
     * Create an automatic-update binding: writes to the local pages
     * [local, local+len) propagate to the imported buffer at @p dst_off.
     * Page granularity throughout; the local pages become
     * write-through cached (the snoop logic must see every store).
     */
    sim::Task<Status> bindAu(VAddr local, std::size_t len, int handle,
                             std::size_t dst_off,
                             AuOptions opts = AuOptions{});

    /** Remove an automatic-update binding. */
    sim::Task<Status> unbindAu(VAddr local, std::size_t len);

    // ---- notifications ---------------------------------------------------

    void blockNotifications() { notif_.block(); }
    void unblockNotifications() { notif_.unblock(*this); }
    bool notificationsBlocked() const { return notif_.blocked(); }

    /** Suspend until a notification arrives; returns it. */
    sim::Task<Notification> waitNotification() { return notif_.wait(); }

    std::size_t pendingNotifications() const { return notif_.pending(); }

    stats::Group &stats() { return stats_; }

    /** Toggle hardware interrupt bits for one of our exports (the
     *  polling-vs-blocking switch of paper section 6). */
    Status setInterruptsEnabled(std::uint32_t key, bool enabled);

    // ---- callbacks from the daemon ---------------------------------------

    /** The daemon revoked the import using OPT slot @p slot. */
    void noteImportRevoked(std::uint32_t slot);

    /** The daemon routed a notification to this process. */
    void deliverNotification(const Notification &n,
                             const NotifyHandler &handler);

  private:
    struct ImportRec
    {
        bool valid = false;
        NodeId remote = invalidNode;
        std::uint32_t key = 0;
        std::uint32_t slot = 0;
        PAddr base = 0;
        std::size_t len = 0;
    };

    struct AuBinding
    {
        VAddr local = 0;
        std::size_t len = 0;
        int handle = -1;
    };

    const ImportRec *lookupImport(int handle) const;

    node::Process &proc_;
    Daemon &daemon_;
    std::vector<ImportRec> imports_;
    std::vector<AuBinding> bindings_;
    NotificationQueue notif_;
    stats::Group stats_;
    trace::TrackId track_;
};

/**
 * System: the full software/hardware stack — Machine, one SHRIMP daemon
 * per node, and factory methods for processes with VMMC endpoints.
 */
class System
{
    SHRIMP_SHARD_SHARED(
        "connection broker spanning every node's daemon");

  public:
    explicit System(MachineConfig cfg = MachineConfig{});

    node::Machine &machine() { return machine_; }
    sim::Simulator &sim() { return machine_.sim(); }
    const MachineConfig &config() const { return machine_.config(); }
    int numNodes() const { return machine_.numNodes(); }

    Daemon &daemon(NodeId id) { return *daemons_.at(id); }

    /** Spawn a process on @p node_id with a VMMC endpoint. */
    Endpoint &createEndpoint(NodeId node_id);

    std::size_t numEndpoints() const { return endpoints_.size(); }
    Endpoint &endpoint(std::size_t i) { return *endpoints_.at(i); }

  private:
    node::Machine machine_;
    std::vector<std::unique_ptr<Daemon>> daemons_;
    std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

} // namespace shrimp::vmmc

#endif // SHRIMP_VMMC_VMMC_HH
