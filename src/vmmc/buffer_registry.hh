/**
 * @file
 * BufferRegistry: the per-node table of exported receive buffers, kept
 * by the trusted SHRIMP daemon. Maps export keys to buffer descriptors
 * and supports reverse lookup by physical page (for routing incoming
 * notifications to the owning process).
 */

#ifndef SHRIMP_VMMC_BUFFER_REGISTRY_HH
#define SHRIMP_VMMC_BUFFER_REGISTRY_HH

#include <cstdint>
#include <map>
#include <vector>

#include "base/types.hh"
#include "vmmc/types.hh"

namespace shrimp::vmmc
{

/** One importer of an export (for revocation at unexport time). */
struct ImporterRecord
{
    NodeId node = invalidNode;
    int pid = -1;
    std::uint32_t slot = 0; //!< OPT import slot on the importing node
};

/** One exported receive buffer. */
struct ExportRecord
{
    std::uint32_t key = 0;
    int pid = -1;
    Endpoint *owner = nullptr;
    VAddr vaddr = 0;
    PAddr paddr = 0;
    std::size_t len = 0; //!< page-granular (rounded up by the daemon)
    Perm perm;
    NotifyHandler handler;
    bool accepting = true; //!< false once unexport begins
    std::vector<ImporterRecord> importers;
};

class BufferRegistry
{
  public:
    explicit BufferRegistry(std::size_t page_bytes);

    /** Register an export. @return false if the key is already used. */
    bool add(ExportRecord rec);

    /** Find by key; nullptr if absent. */
    ExportRecord *find(std::uint32_t key);
    const ExportRecord *find(std::uint32_t key) const;

    /** Find the export whose pages contain @p paddr; nullptr if none. */
    ExportRecord *findByPAddr(PAddr paddr);

    /** Remove an export (must exist). */
    void remove(std::uint32_t key);

    std::size_t numExports() const { return byKey_.size(); }

  private:
    std::size_t pageBytes_;
    std::map<std::uint32_t, ExportRecord> byKey_;
    std::map<PageNum, std::uint32_t> byPage_;
};

} // namespace shrimp::vmmc

#endif // SHRIMP_VMMC_BUFFER_REGISTRY_HH
