#include "vmmc/notification.hh"

#include "sim/profile.hh"

namespace shrimp::vmmc
{

NotificationQueue::NotificationQueue(node::Process &proc)
    : proc_(proc), arrivedCond_(proc.sim().queue())
{
}

void
NotificationQueue::deliver(Endpoint &endpoint, const Notification &n,
                           const NotifyHandler &handler)
{
    if (blocked_) {
        blockedQueue_.push_back(Queued{n, handler});
        return;
    }
    proc_.sim().spawn(deliverTask(endpoint, n, handler));
}

sim::Task<>
NotificationQueue::deliverTask(Endpoint &endpoint, Notification n,
                               NotifyHandler handler)
{
    const MachineConfig &cfg = proc_.config();
    sim::profile::retag(sim::profile::Subsys::Notify);
    Tick cost = cfg.fastNotifications ? cfg.fastNotifyCost
                                      : cfg.signalDeliveryCost;
    co_await proc_.compute(cost);
    ++delivered_;
    arrived_.push_back(n);
    arrivedCond_.notifyAll();
    if (handler)
        co_await handler(endpoint, n);
}

void
NotificationQueue::unblock(Endpoint &endpoint)
{
    blocked_ = false;
    while (!blockedQueue_.empty() && !blocked_) {
        Queued q = std::move(blockedQueue_.front());
        blockedQueue_.pop_front();
        proc_.sim().spawn(deliverTask(endpoint, q.n, std::move(q.handler)));
    }
}

sim::Task<Notification>
NotificationQueue::wait()
{
    while (arrived_.empty())
        co_await arrivedCond_.wait();
    Notification n = arrived_.front();
    arrived_.pop_front();
    co_return n;
}

} // namespace shrimp::vmmc
