#include "vmmc/daemon.hh"

#include <cstring>

#include "base/logging.hh"
#include "check/check.hh"
#include "check/race.hh"
#include "vmmc/vmmc.hh"

namespace shrimp::vmmc
{

static_assert(std::is_trivially_copyable_v<DaemonMsg>,
              "DaemonMsg must be memcpy-serializable");

std::vector<std::uint8_t>
packMsg(const DaemonMsg &m)
{
    std::vector<std::uint8_t> v(sizeof(DaemonMsg));
    std::memcpy(v.data(), &m, sizeof(DaemonMsg));
    return v;
}

DaemonMsg
unpackMsg(const std::vector<std::uint8_t> &data)
{
    if (data.size() != sizeof(DaemonMsg))
        panic("malformed daemon message");
    DaemonMsg m;
    std::memcpy(&m, data.data(), sizeof(DaemonMsg));
    return m;
}

Daemon::Daemon(node::Node &node, node::EtherNet &ether)
    : node_(node), ether_(ether), registry_(node.config().pageBytes),
      stats_("node" + std::to_string(node.id()) + ".daemon"),
      track_(trace::track(stats_.name()))
{
}

void
Daemon::start()
{
    if (started_)
        panic("daemon started twice");
    started_ = true;
    node_.sim().spawnDaemon(serviceLoop());
    node_.nic().incoming().setNotifyHandler(
        [this](const net::Packet &pkt) { onNotification(pkt); });
    node_.nic().incoming().setBadPacketHandler(
        [this](const net::Packet &pkt, PageNum page) {
            onBadPacket(pkt, page);
        });
}

sim::Task<>
Daemon::serviceLoop()
{
    auto &rx = ether_.rxQueue(id(), node::EtherNet::daemonPort);
    for (;;) {
        node::EtherFrame frame = co_await rx.recv();
        DaemonMsg m = unpackMsg(frame.data);
        switch (m.kind) {
          case DaemonMsg::Kind::ImportReq:
            node_.sim().spawn(handleImportReq(m));
            break;
          case DaemonMsg::Kind::UnimportReq:
            node_.sim().spawn(handleUnimportReq(m));
            break;
          case DaemonMsg::Kind::RevokeReq:
            node_.sim().spawn(handleRevokeReq(m));
            break;
          default:
            panic("unexpected daemon message kind on service port");
        }
    }
}

sim::Task<DaemonMsg>
Daemon::request(NodeId remote, DaemonMsg m)
{
    std::uint16_t port = ether_.allocPort(id());
    m.reqId = nextReq_++;
    m.replyPort = port;
    ether_.send(id(), port, remote, node::EtherNet::daemonPort, packMsg(m));
    node::EtherFrame frame = co_await ether_.rxQueue(id(), port).recv();
    DaemonMsg r = unpackMsg(frame.data);
    if (r.reqId != m.reqId)
        panic("daemon reply/request id mismatch");
    co_return r;
}

void
Daemon::reply(const DaemonMsg &req, DaemonMsg resp)
{
    resp.reqId = req.reqId;
    resp.srcNode = id();
    ether_.send(id(), node::EtherNet::daemonPort, req.srcNode,
                req.replyPort, packMsg(resp));
}

sim::Task<>
Daemon::drainPages(PAddr paddr, std::size_t len)
{
    const MachineConfig &cfg = node_.config();
    // Give packets that are in an outgoing FIFO somewhere (but not yet
    // injected and tracked) time to enter the mesh.
    co_await sim::Delay{node_.sim().queue(),
                        cfg.auCombineTimeout + 4 * cfg.nicForwardCost +
                            4 * cfg.snoopPacketizeCost};
    PageNum first = paddr / cfg.pageBytes;
    PageNum last = PageNum((std::uint64_t(paddr) + (len ? len : 1) - 1) /
                           cfg.pageBytes);
    co_await node_.nic().incoming().waitDrain(first, last);
}

// ---- local entry points ---------------------------------------------

sim::Task<Status>
Daemon::registerExport(ExportRecord rec)
{
    const MachineConfig &cfg = node_.config();
    trace::ScopedSpan span(node_.sim(), track_, "registerExport");
    stats_.counter("exportsRegistered") += 1;
    co_await node_.cpu().use(cfg.libCallCost);
    if (rec.paddr % cfg.pageBytes != 0 || rec.len % cfg.pageBytes != 0 ||
        rec.len == 0) {
        co_return Status::Misaligned;
    }
    bool has_handler = static_cast<bool>(rec.handler);
    PAddr paddr = rec.paddr;
    std::size_t len = rec.len;
    [[maybe_unused]] Endpoint *owner = rec.owner;
    if (!registry_.add(std::move(rec)))
        co_return Status::AlreadyExported;
    auto &ipt = node_.nic().ipt();
    for (PageNum p = paddr / cfg.pageBytes;
         p <= (paddr + len - 1) / cfg.pageBytes; ++p) {
        ipt.setEnabled(p, true);
        if (has_handler)
            ipt.setInterrupt(p, true);
        // Export-window clock: the exporter finished preparing the
        // buffer before the window opened; deliveries join this.
        SHRIMP_CHECK_HOOK(check::RaceDetector::instance().onIptEnable(
            &node_.memory(), PAddr(p * cfg.pageBytes),
            owner ? owner->proc().raceActor() : check::noActor,
            node_.sim().now()));
    }
    co_return Status::Ok;
}

sim::Task<Status>
Daemon::unexport(std::uint32_t key, int pid)
{
    const MachineConfig &cfg = node_.config();
    trace::ScopedSpan span(node_.sim(), track_, "unexport");
    stats_.counter("unexports") += 1;
    co_await node_.cpu().use(cfg.libCallCost);
    ExportRecord *rec = registry_.find(key);
    if (!rec || rec->pid != pid)
        co_return Status::BadHandle;
    rec->accepting = false;

    // Revoke every importer's mapping (with acknowledgement) so no new
    // data can be sent, then wait for in-flight messages to drain.
    std::vector<ImporterRecord> importers = rec->importers;
    for (const ImporterRecord &imp : importers) {
        DaemonMsg m;
        m.kind = DaemonMsg::Kind::RevokeReq;
        m.key = key;
        m.srcNode = id();
        m.srcPid = pid;
        co_await request(imp.node, m);
    }
    co_await drainPages(rec->paddr, rec->len);

    auto &ipt = node_.nic().ipt();
    for (PageNum p = rec->paddr / cfg.pageBytes;
         p <= (rec->paddr + rec->len - 1) / cfg.pageBytes; ++p) {
        ipt.setEnabled(p, false);
        ipt.setInterrupt(p, false);
        // Drain edge: the window closed only after in-flight packets
        // drained, so the exporter is ordered after the last delivery
        // and may reuse the buffer.
        SHRIMP_CHECK_HOOK(check::RaceDetector::instance().onIptDisable(
            &node_.memory(), PAddr(p * cfg.pageBytes),
            rec->owner ? rec->owner->proc().raceActor() : check::noActor,
            node_.sim().now()));
    }
    registry_.remove(key);
    co_return Status::Ok;
}

sim::Task<Daemon::ImportOutcome>
Daemon::importRemote(NodeId remote, std::uint32_t key, int pid,
                     Endpoint *owner)
{
    const MachineConfig &cfg = node_.config();
    trace::ScopedSpan span(node_.sim(), track_, "importRemote");
    stats_.counter("importsRequested") += 1;
    co_await node_.cpu().use(cfg.libCallCost);
    DaemonMsg m;
    m.kind = DaemonMsg::Kind::ImportReq;
    m.key = key;
    m.srcNode = id();
    m.srcPid = pid;
    DaemonMsg r = co_await request(remote, m);
    if (r.status != Status::Ok)
        co_return ImportOutcome{r.status, 0, 0, 0};

    nic::OptEntry e;
    e.valid = true;
    e.destNode = remote;
    e.destBase = r.base;
    e.len = r.len;
    std::uint32_t slot = node_.nic().opt().allocSlot(e);
    imports_[{remote, key}].push_back(ImportEntry{slot, owner});
    co_return ImportOutcome{Status::Ok, slot, r.base, r.len};
}

sim::Task<Status>
Daemon::unimport(NodeId remote, std::uint32_t key, std::uint32_t slot,
                 int pid)
{
    const MachineConfig &cfg = node_.config();
    trace::ScopedSpan span(node_.sim(), track_, "unimport");
    stats_.counter("unimports") += 1;
    co_await node_.cpu().use(cfg.libCallCost);
    auto it = imports_.find({remote, key});
    if (it == imports_.end())
        co_return Status::BadHandle;
    auto &entries = it->second;
    auto eit = std::find_if(entries.begin(), entries.end(),
                            [slot](const ImportEntry &e) {
                                return e.slot == slot;
                            });
    if (eit == entries.end())
        co_return Status::BadHandle;

    // No new data may enter the mapping: flush anything combined, then
    // drop the OPT slot.
    node_.nic().packetizer().flushPending();
    node_.nic().opt().freeSlot(slot);
    entries.erase(eit);
    if (entries.empty())
        imports_.erase(it);

    // Ask the exporter to wait until pending messages are delivered.
    DaemonMsg m;
    m.kind = DaemonMsg::Kind::UnimportReq;
    m.key = key;
    m.srcNode = id();
    m.srcPid = pid;
    DaemonMsg r = co_await request(remote, m);
    co_return r.status;
}

Status
Daemon::setExportInterrupts(std::uint32_t key, int pid, bool enabled)
{
    ExportRecord *rec = registry_.find(key);
    if (!rec || rec->pid != pid)
        return Status::BadHandle;
    const MachineConfig &cfg = node_.config();
    auto &ipt = node_.nic().ipt();
    for (PageNum p = rec->paddr / cfg.pageBytes;
         p <= (rec->paddr + rec->len - 1) / cfg.pageBytes; ++p) {
        ipt.setInterrupt(p, enabled);
    }
    return Status::Ok;
}

// ---- remote request handlers ----------------------------------------

sim::Task<>
Daemon::handleImportReq(DaemonMsg m)
{
    co_await node_.cpu().use(node_.config().libCallCost);
    DaemonMsg resp;
    resp.kind = DaemonMsg::Kind::ImportReply;
    ExportRecord *rec = registry_.find(m.key);
    if (!rec || !rec->accepting) {
        resp.status = Status::NoSuchExport;
    } else if (!rec->perm.allows(m.srcNode, int(m.srcPid))) {
        resp.status = Status::PermissionDenied;
    } else {
        rec->importers.push_back(
            ImporterRecord{m.srcNode, int(m.srcPid), 0});
        resp.status = Status::Ok;
        resp.base = rec->paddr;
        resp.len = std::uint32_t(rec->len);
    }
    reply(m, resp);
}

sim::Task<>
Daemon::handleUnimportReq(DaemonMsg m)
{
    co_await node_.cpu().use(node_.config().libCallCost);
    DaemonMsg resp;
    resp.kind = DaemonMsg::Kind::UnimportAck;
    ExportRecord *rec = registry_.find(m.key);
    if (rec) {
        // Drop one matching importer record.
        auto &imps = rec->importers;
        auto it = std::find_if(imps.begin(), imps.end(),
                               [&m](const ImporterRecord &ir) {
                                   return ir.node == m.srcNode &&
                                          ir.pid == int(m.srcPid);
                               });
        if (it != imps.end())
            imps.erase(it);
        co_await drainPages(rec->paddr, rec->len);
    }
    resp.status = Status::Ok;
    reply(m, resp);
}

sim::Task<>
Daemon::handleRevokeReq(DaemonMsg m)
{
    co_await node_.cpu().use(node_.config().libCallCost);
    auto it = imports_.find({m.srcNode, m.key});
    if (it != imports_.end()) {
        node_.nic().packetizer().flushPending();
        for (const ImportEntry &e : it->second) {
            if (e.owner)
                e.owner->noteImportRevoked(e.slot);
            node_.nic().opt().freeSlot(e.slot);
        }
        imports_.erase(it);
    }
    DaemonMsg resp;
    resp.kind = DaemonMsg::Kind::RevokeAck;
    resp.status = Status::Ok;
    reply(m, resp);
}

// ---- NIC interrupt service ------------------------------------------

void
Daemon::onNotification(const net::Packet &pkt)
{
    ExportRecord *rec = registry_.findByPAddr(pkt.destAddr);
    if (!rec || !rec->owner) {
        warn("notification for unregistered page dropped");
        return;
    }
    Notification n;
    n.exportKey = rec->key;
    n.offset = std::size_t(pkt.destAddr - rec->paddr);
    rec->owner->deliverNotification(n, rec->handler);
}

void
Daemon::onBadPacket(const net::Packet &pkt, PageNum page)
{
    node_.sim().spawn(freezeService(pkt, page));
}

sim::Task<>
Daemon::freezeService(net::Packet pkt, PageNum page)
{
    ++freezesHandled_;
    stats_.counter("freezesHandled") += 1;
    trace::ScopedSpan span(node_.sim(), track_, "freezeService");
    SHRIMP_DEBUG("node%u daemon: servicing freeze for page %u",
                 unsigned(id()), unsigned(page));
    co_await node_.cpu().use(node_.config().interruptHandlerCost);
    nic::FreezeAction action;
    if (freezePolicy_) {
        action = freezePolicy_(pkt, page);
    } else {
        warn(logging::format("node %u: packet for disabled page %u "
                             "dropped", unsigned(id()), unsigned(page)));
        action = nic::FreezeAction::Drop;
    }
    node_.nic().incoming().unfreeze(action);
}

} // namespace shrimp::vmmc
