#include "sim/profile.hh"

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "base/logging.hh"

namespace shrimp::sim::profile
{

namespace detail
{
std::uint8_t gCurrent = 0;
bool gTiming = false;
} // namespace detail

namespace
{

std::array<Row, numSubsys> gRows{};
std::size_t gMaxPending = 0;
std::uint64_t gPendingSum = 0;
std::uint64_t gDispatches = 0;
std::string gPath;

void
atExitDump()
{
    if (gPath.empty() || gDispatches == 0)
        return;
    if (writeJsonFile(gPath))
        std::fprintf(stderr, "profile: wrote %s\n", gPath.c_str());
}

void
installAtExit()
{
    // analyze: shared(std::atexit registration latch, per-process by
    // nature)
    static bool installed = false;
    if (!installed) {
        installed = true;
        std::atexit(atExitDump);
    }
}

} // namespace

const char *
name(Subsys s)
{
    switch (s) {
      case Subsys::Other:
        return "other";
      case Subsys::Cpu:
        return "cpu";
      case Subsys::Bus:
        return "bus";
      case Subsys::Mesh:
        return "mesh";
      case Subsys::Router:
        return "router";
      case Subsys::Packetizer:
        return "packetizer";
      case Subsys::Nic:
        return "nic";
      case Subsys::Du:
        return "du";
      case Subsys::Dma:
        return "dma";
      case Subsys::Notify:
        return "notify";
      case Subsys::Ether:
        return "ether";
      case Subsys::NumSubsys:
        break;
    }
    return "?";
}

void
setTiming(bool on)
{
    detail::gTiming = on;
}

void
setOutputPath(const std::string &path)
{
    gPath = path;
    if (!path.empty()) {
        setTiming(true);
        installAtExit();
    }
}

const std::string &
outputPath()
{
    return gPath;
}

std::uint64_t
hostNow()
{
    // Host-side profiling clock, opt-in via --profile only; readings
    // are accumulated off to the side and never feed simulated state.
    // analyze: allow(determinism)
    using Clock = std::chrono::steady_clock; // lint: allow-nondeterminism
    return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             Clock::now().time_since_epoch())
                             .count());
}

void
recordDispatch(Subsys s, std::uint64_t host_ns, std::size_t pending)
{
    Row &r = gRows[std::size_t(s) % numSubsys];
    ++r.events;
    r.hostNs += host_ns;
    ++gDispatches;
    gPendingSum += pending;
    if (pending > gMaxPending)
        gMaxPending = pending;
}

const Row &
row(Subsys s)
{
    return gRows[std::size_t(s) % numSubsys];
}

void
writeJson(std::ostream &os)
{
    std::uint64_t total_ns = 0;
    std::uint64_t total_events = 0;
    for (const Row &r : gRows) {
        total_ns += r.hostNs;
        total_events += r.events;
    }

    // Rank by host cost, stable on the enum order for ties.
    std::array<std::size_t, numSubsys> order{};
    for (std::size_t i = 0; i < numSubsys; ++i)
        order[i] = i;
    for (std::size_t i = 1; i < numSubsys; ++i) {
        for (std::size_t j = i;
             j > 0 && gRows[order[j]].hostNs > gRows[order[j - 1]].hostNs;
             --j)
            std::swap(order[j], order[j - 1]);
    }

    const double avg_pending =
        gDispatches ? double(gPendingSum) / double(gDispatches) : 0.0;
    char buf[64];
    os << "{\n  \"events_total\": " << total_events
       << ",\n  \"host_ns_total\": " << total_ns
       << ",\n  \"queue\": {\"max_pending\": " << gMaxPending
       << ", \"avg_pending\": ";
    std::snprintf(buf, sizeof(buf), "%.2f", avg_pending);
    os << buf << "},\n  \"subsystems\": [\n";
    bool first = true;
    for (std::size_t idx : order) {
        const Row &r = gRows[idx];
        if (r.events == 0)
            continue;
        if (!first)
            os << ",\n";
        first = false;
        const double per_event =
            r.events ? double(r.hostNs) / double(r.events) : 0.0;
        std::snprintf(buf, sizeof(buf), "%.1f", per_event);
        os << "    {\"name\": \"" << name(Subsys(idx))
           << "\", \"events\": " << r.events
           << ", \"host_ns\": " << r.hostNs
           << ", \"ns_per_event\": " << buf << "}";
    }
    os << "\n  ]\n}\n";
}

bool
writeJsonFile(const std::string &path)
{
    std::ofstream f(path);
    if (!f) {
        warn(logging::format("cannot open profile output file %s",
                             path.c_str()));
        return false;
    }
    writeJson(f);
    return bool(f);
}

void
reset()
{
    detail::gTiming = false;
    detail::gCurrent = 0;
    gRows = {};
    gMaxPending = 0;
    gPendingSum = 0;
    gDispatches = 0;
}

} // namespace shrimp::sim::profile
