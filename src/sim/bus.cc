#include "sim/bus.hh"

#include "base/logging.hh"
#include "check/check.hh"

namespace shrimp::sim
{

Bus::Bus(EventQueue &queue, double mb_per_sec, std::string name)
    : queue_(queue), bw_(mb_per_sec), bps_(units::bytesPerSec(mb_per_sec)),
      lock_(queue, 1),
      stats_(std::move(name)), track_(trace::track(stats_.name())),
      statTransactions_(stats_.counter("transactions")),
      statBytes_(stats_.counter("bytes")),
      statOccupancyNs_(stats_.counter("occupancyNs")),
      statXferBytes_(stats_.distribution("xferBytes"))
{
    if (bw_ <= 0.0)
        fatal("bus bandwidth must be positive");
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onBusCreated(this));
}

Tick
Bus::occupancy(std::size_t bytes, Tick setup) const
{
    return setup + units::transferTime(bytes, bps_);
}

void
Bus::recordExternalTransfer(std::size_t bytes, Tick occupied)
{
    busyTime_ += occupied;
    bytes_ += bytes;
    ++transactions_;
    statTransactions_ += 1;
    statBytes_ += bytes;
    statOccupancyNs_ += occupied;
    statXferBytes_.sample(double(bytes));
}

Task<>
Bus::transfer(std::size_t bytes, Tick setup)
{
    // The queueing and occupancy events this coroutine schedules are
    // the bus's own cost, whoever initiated the transfer.
    profile::retag(profSubsys_);
    co_await lock_.acquire();
    profile::retag(profSubsys_);
    SHRIMP_CHECK_HOOK(
        check::SimChecker::instance().onBusTransferStart(this, bytes));
    trace::ScopedSpan span(queue_, track_, "xfer");
    Tick t = occupancy(bytes, setup);
    // analyze: allow(suspend-under-exclusion) — this Delay IS the bus
    // occupancy being modeled; the lock is held exactly for its span.
    co_await Delay{queue_, t};
    SHRIMP_CHECK_HOOK(
        check::SimChecker::instance().onBusTransferEnd(this, bytes));
    busyTime_ += t;
    bytes_ += bytes;
    ++transactions_;
    statTransactions_ += 1;
    statBytes_ += bytes;
    statOccupancyNs_ += t;
    statXferBytes_.sample(double(bytes));
    lock_.release();
}

} // namespace shrimp::sim
