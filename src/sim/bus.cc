#include "sim/bus.hh"

#include "base/logging.hh"

namespace shrimp::sim
{

Bus::Bus(EventQueue &queue, double mb_per_sec, std::string name)
    : queue_(queue), bw_(mb_per_sec), lock_(queue, 1),
      stats_(std::move(name))
{
    if (bw_ <= 0.0)
        fatal("bus bandwidth must be positive");
}

Tick
Bus::occupancy(std::size_t bytes, Tick setup) const
{
    return setup + units::transferTime(bytes, bw_);
}

Task<>
Bus::transfer(std::size_t bytes, Tick setup)
{
    co_await lock_.acquire();
    Tick t = occupancy(bytes, setup);
    co_await Delay{queue_, t};
    busyTime_ += t;
    bytes_ += bytes;
    ++transactions_;
    stats_.counter("transactions") += 1;
    stats_.counter("bytes") += bytes;
    lock_.release();
}

} // namespace shrimp::sim
