#include "sim/sync.hh"

#include "check/check.hh"
#include "check/race.hh"

namespace shrimp::sim
{

void
Condition::notifyAll()
{
    // Release edge: whoever notifies publishes its history on this
    // object (tasks resumed later can objAcquire it).
    SHRIMP_CHECK_HOOK(check::RaceDetector::instance().objRelease(
        this, check::RaceDetector::instance().currentActor()));
    // Move the list out first: a woken task may wait() again immediately
    // and must not be re-woken by this notification.
    std::vector<std::coroutine_handle<>> to_wake;
    to_wake.swap(waiters_);
    for (auto h : to_wake) {
        SHRIMP_CHECK_HOOK(
            check::SimChecker::instance().onResumeScheduled(h.address()));
        queue_.scheduleIn(0, [h] {
            SHRIMP_CHECK_HOOK(
                check::SimChecker::instance().onResumeFired(h.address()));
            h.resume();
        });
    }
}

void
Semaphore::release()
{
    SHRIMP_CHECK_HOOK(check::RaceDetector::instance().objRelease(
        this, check::RaceDetector::instance().currentActor()));
    if (!waiters_.empty()) {
        auto h = waiters_.front();
        waiters_.pop_front();
        // Ownership of the unit transfers directly to the waiter; the
        // count is not incremented.
        SHRIMP_CHECK_HOOK(
            check::SimChecker::instance().onResumeScheduled(h.address()));
        queue_.scheduleIn(0, [h] {
            SHRIMP_CHECK_HOOK(
                check::SimChecker::instance().onResumeFired(h.address()));
            h.resume();
        });
    } else {
        ++count_;
    }
}

} // namespace shrimp::sim
