#include "sim/sync.hh"

#include "check/check.hh"
#include "check/race.hh"

namespace shrimp::sim
{

void
Condition::notifyAll()
{
    // Release edge: whoever notifies publishes its history on this
    // object (tasks resumed later can objAcquire it).
    SHRIMP_CHECK_HOOK(check::RaceDetector::instance().objRelease(
        this, check::RaceDetector::instance().currentActor()));
    // Move the list out first: a woken task may wait() again immediately
    // and must not be re-woken by this notification. Swapping with the
    // member scratch buffer (instead of a fresh vector) ping-pongs the
    // two allocations forever instead of reallocating per notify.
    scratch_.clear();
    scratch_.swap(waiters_);
    for (auto h : scratch_) {
        SHRIMP_CHECK_HOOK(
            check::SimChecker::instance().onResumeScheduled(h.address()));
        queue_.scheduleIn(0, [h] {
            SHRIMP_CHECK_HOOK(
                check::SimChecker::instance().onResumeFired(h.address()));
            h.resume();
        });
    }
}

void
AddrCondition::notifyRange(std::uint64_t lo, std::uint64_t hi)
{
    // Same release edge as Condition::notifyAll: the notifier publishes
    // its history on this object for any task resumed by it.
    SHRIMP_CHECK_HOOK(check::RaceDetector::instance().objRelease(
        this, check::RaceDetector::instance().currentActor()));
    // Resumes are deferred through the event queue, so the list cannot
    // be mutated while we scan it; compact non-overlapping waiters in
    // place to keep their relative (FIFO) order.
    std::size_t kept = 0;
    for (const Waiter &w : waiters_) {
        if (w.lo < hi && lo < w.hi) {
            auto h = w.h;
            SHRIMP_CHECK_HOOK(
                check::SimChecker::instance().onResumeScheduled(h.address()));
            queue_.scheduleIn(0, [h] {
                SHRIMP_CHECK_HOOK(
                    check::SimChecker::instance().onResumeFired(h.address()));
                h.resume();
            });
        } else {
            waiters_[kept++] = w;
        }
    }
    waiters_.resize(kept);
}

void
Semaphore::release()
{
    SHRIMP_CHECK_HOOK(check::RaceDetector::instance().objRelease(
        this, check::RaceDetector::instance().currentActor()));
    if (!waiters_.empty()) {
        auto h = waiters_.front();
        waiters_.pop_front();
        // Ownership of the unit transfers directly to the waiter; the
        // count is not incremented.
        SHRIMP_CHECK_HOOK(
            check::SimChecker::instance().onResumeScheduled(h.address()));
        queue_.scheduleIn(0, [h] {
            SHRIMP_CHECK_HOOK(
                check::SimChecker::instance().onResumeFired(h.address()));
            h.resume();
        });
    } else {
        ++count_;
    }
}

} // namespace shrimp::sim
