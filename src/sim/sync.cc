#include "sim/sync.hh"

namespace shrimp::sim
{

void
Condition::notifyAll()
{
    // Move the list out first: a woken task may wait() again immediately
    // and must not be re-woken by this notification.
    std::vector<std::coroutine_handle<>> to_wake;
    to_wake.swap(waiters_);
    for (auto h : to_wake)
        queue_.scheduleIn(0, [h] { h.resume(); });
}

void
Semaphore::release()
{
    if (!waiters_.empty()) {
        auto h = waiters_.front();
        waiters_.pop_front();
        // Ownership of the unit transfers directly to the waiter; the
        // count is not incremented.
        queue_.scheduleIn(0, [h] { h.resume(); });
    } else {
        ++count_;
    }
}

} // namespace shrimp::sim
