#include "sim/event_queue.hh"

#include <utility>

#include "base/logging.hh"
#include "sim/simulator.hh"

namespace shrimp::sim
{

void
EventQueue::schedule(Tick when, std::function<void()> fn)
{
    if (when < now_)
        panic("event scheduled in the past");
    heap_.push(Event{when, nextSeq_++, std::move(fn)});
}

void
EventQueue::scheduleIn(Tick delay, std::function<void()> fn)
{
    schedule(now_ + delay, std::move(fn));
}

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    // Copy out; the callback may schedule more events (reallocating the
    // heap) or even recursively inspect the queue.
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.when;
    ev.fn();
    return true;
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (runOne()) {
        if (++n > max_events)
            panic("event limit exceeded; runaway simulation?");
    }
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick until, std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.top().when <= until) {
        runOne();
        if (++n > max_events)
            panic("event limit exceeded; runaway simulation?");
    }
    if (now_ < until)
        now_ = until;
    return n;
}

void
Simulator::spawn(Task<> task)
{
    runDetached(std::move(task));
}

Simulator::Detached
Simulator::runDetached(Task<> task)
{
    ++active_;
    try {
        co_await std::move(task);
    } catch (...) {
        if (!firstError_)
            firstError_ = std::current_exception();
    }
    --active_;
}

void
Simulator::spawnDaemon(Task<> task)
{
    daemons_.push_back(std::move(task));
    daemons_.back().start();
}

std::uint64_t
Simulator::run(std::uint64_t max_events)
{
    std::uint64_t n = queue_.run(max_events);
    if (firstError_) {
        auto err = std::exchange(firstError_, nullptr);
        std::rethrow_exception(err);
    }
    for (const auto &d : daemons_) {
        if (auto err = d.error())
            std::rethrow_exception(err);
    }
    return n;
}

std::uint64_t
Simulator::runAll(std::uint64_t max_events)
{
    std::uint64_t n = run(max_events);
    if (active_ != 0)
        panic("simulation deadlock: " + std::to_string(active_) +
              " task(s) never completed");
    return n;
}

} // namespace shrimp::sim
