#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"
#include "base/timeseries.hh"
#include "check/check.hh"
#include "check/race.hh"
#include "sim/profile.hh"
#include "sim/simulator.hh"

namespace shrimp::sim
{

EventQueue::EventQueue()
{
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onQueueCreated(this));
}

EventQueue::~EventQueue()
{
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onQueueDestroyed(this));
    // Destroy the callables of events that never ran (a deadlocked or
    // abandoned simulation); the pool blocks free themselves.
    while (EventNode *n = popEarliest()) {
        if (n->destroy)
            n->destroy(*n);
    }
}

EventQueue::EventNode *
EventQueue::allocNode()
{
    if (freeList_) {
        EventNode *n = freeList_;
        freeList_ = n->next;
        return n;
    }
    auto block = std::make_unique<EventNode[]>(nodesPerBlock);
    nodesAllocated_ += nodesPerBlock;
    // Node 0 is returned; the rest seed the free list.
    for (std::size_t i = nodesPerBlock - 1; i >= 1; --i) {
        block[i].next = freeList_;
        freeList_ = &block[i];
    }
    EventNode *n = &block[0];
    blocks_.push_back(std::move(block));
    return n;
}

void
EventQueue::freeNode(EventNode *n)
{
    n->next = freeList_;
    freeList_ = n;
}

EventQueue::EventNode *
EventQueue::prepare(Tick when)
{
    if (when < now_) {
        std::string msg = logging::format(
            "event scheduled in the past: when=%llu ns < now=%llu ns "
            "(would have been seq %llu; %zu event(s) pending)",
            (unsigned long long)when, (unsigned long long)now_,
            (unsigned long long)nextSeq_, size_);
        SHRIMP_CHECK_HOOK(
            msg += "; " +
                   check::SimChecker::instance().describeActiveTasks());
        panic(msg);
    }
    EventNode *n = allocNode();
    n->when = when;
    n->seq = nextSeq_++;
    n->next = nullptr;
    // Tag inheritance: the event belongs to whatever subsystem is
    // scheduling right now (set by the dispatcher below, refined by
    // profile::retag/Scope at component sites). Tags are only consumed
    // while timing, so the off path pays one predictable branch.
    n->subsys =
        profile::detail::gTiming ? profile::detail::gCurrent : 0;
    return n;
}

void
EventQueue::bitSet(std::size_t idx)
{
    bits_[idx >> 6] |= std::uint64_t(1) << (idx & 63);
    summary_ |= std::uint64_t(1) << (idx >> 6);
}

void
EventQueue::bitClear(std::size_t idx)
{
    std::uint64_t &w = bits_[idx >> 6];
    w &= ~(std::uint64_t(1) << (idx & 63));
    if (w == 0)
        summary_ &= ~(std::uint64_t(1) << (idx >> 6));
}

void
EventQueue::enqueue(EventNode *n)
{
    ++size_;
    if (n->when - now_ < wheelTicks) {
        std::size_t idx = std::size_t(n->when) & (numBuckets - 1);
        Bucket &b = wheel_[idx];
        if (!b.head) {
            b.head = b.tail = n;
            bitSet(idx);
        } else {
            b.tail->next = n;
            b.tail = n;
        }
        ++wheelCount_;
        ++wheelScheduled_;
    } else {
        heap_.push_back(n);
        std::push_heap(heap_.begin(), heap_.end(), NodeLater{});
        ++heapScheduled_;
    }
}

Tick
EventQueue::earliestWheelTick() const
{
    if (wheelCount_ == 0)
        return maxTick;
    // All wheel residents live in [now_, now_ + wheelTicks): scan the
    // bucket bitmap from now_'s slot, wrapping once. The summary word
    // (one bit per 64 buckets) keeps the scan to a handful of word ops.
    const std::size_t start = std::size_t(now_) & (numBuckets - 1);
    std::size_t word = start >> 6;
    const unsigned bit = unsigned(start & 63);

    // Partial first word: bits at or after `start`.
    std::uint64_t w = bits_[word] & (~std::uint64_t(0) << bit);
    std::size_t idx;
    if (w) {
        idx = (word << 6) + std::size_t(__builtin_ctzll(w));
        std::size_t d = (idx - start) & (numBuckets - 1);
        return now_ + Tick(d);
    }
    // Remaining words, wrapping, via the summary bitmap.
    for (std::size_t step = 1; step <= bitsWords; ++step) {
        std::size_t g = (word + step) & (bitsWords - 1);
        if (!(summary_ & (std::uint64_t(1) << g)))
            continue;
        std::uint64_t v = bits_[g];
        if (g == word) // wrapped to the first word: bits before `start`
            v &= ~(~std::uint64_t(0) << bit);
        if (!v)
            continue;
        idx = (g << 6) + std::size_t(__builtin_ctzll(v));
        std::size_t d = (idx - start) & (numBuckets - 1);
        return now_ + Tick(d);
    }
    return maxTick; // unreachable while wheelCount_ > 0
}

EventQueue::EventNode *
EventQueue::peekEarliest() const
{
    EventNode *heap_top = heap_.empty() ? nullptr : heap_.front();
    if (wheelCount_ == 0)
        return heap_top;
    Tick wt = earliestWheelTick();
    EventNode *wheel_head = wheel_[std::size_t(wt) & (numBuckets - 1)].head;
    if (!heap_top)
        return wheel_head;
    if (wt != heap_top->when)
        return wt < heap_top->when ? wheel_head : heap_top;
    return wheel_head->seq < heap_top->seq ? wheel_head : heap_top;
}

EventQueue::EventNode *
EventQueue::popEarliest()
{
    EventNode *n = peekEarliest();
    if (!n)
        return nullptr;
    if (!heap_.empty() && heap_.front() == n) {
        std::pop_heap(heap_.begin(), heap_.end(), NodeLater{});
        heap_.pop_back();
    } else {
        std::size_t idx = std::size_t(n->when) & (numBuckets - 1);
        Bucket &b = wheel_[idx];
        b.head = n->next;
        if (!b.head) {
            b.tail = nullptr;
            bitClear(idx);
        }
        --wheelCount_;
    }
    --size_;
    return n;
}

Tick
EventQueue::nextWhen() const
{
    const EventNode *n = peekEarliest();
    return n ? n->when : maxTick;
}

bool
EventQueue::runOne()
{
    EventNode *n = popEarliest();
    if (!n)
        return false;
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onEventRun(
        this, n->when, n->seq, now_));
    now_ = n->when;
    // The callable runs with its node already unlinked, so it may
    // schedule freely (including for the current tick). Destruction and
    // pool release happen even if it throws (checker errors propagate).
    struct Release
    {
        EventQueue &q;
        EventNode *n;
        ~Release()
        {
            if (n->destroy)
                n->destroy(*n);
            q.freeNode(n);
        }
    } release{*this, n};
    if (profile::detail::gTiming) {
        // Events scheduled by this callable inherit its subsystem tag.
        profile::detail::gCurrent = n->subsys;
        const std::uint64_t t0 = profile::hostNow();
        n->invoke(*n);
        // Attribute to the *post*-invoke tag: a coroutine that retags
        // at its resume point claims the whole dispatch.
        profile::recordDispatch(profile::current(),
                                profile::hostNow() - t0, size_);
    } else {
        n->invoke(*n);
    }
    timeseries::maybeSample(now_, size_);
    return true;
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (runOne()) {
        if (++n > max_events)
            panic("event limit exceeded; runaway simulation?");
    }
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick until, std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (size_ != 0 && nextWhen() <= until) {
        runOne();
        if (++n > max_events)
            panic("event limit exceeded; runaway simulation?");
    }
    if (now_ < until)
        now_ = until;
    return n;
}

Simulator::~Simulator()
{
    SHRIMP_CHECK_HOOK(
        check::SimChecker::instance().onSimulatorDestroyed(this));
    // Reclaim wrappers that never completed (deadlocked or abandoned
    // simulations). destroy() unregisters each frame via ~promise_type,
    // so iterate over a copy.
    auto live = liveDetached_;
    // analyze: allow(determinism) — teardown-only sweep after the event
    // loop is done: destruction order can no longer affect simulated
    // state or trace output.
    for (void *frame : live)
        std::coroutine_handle<>::from_address(frame).destroy();
}

void
Simulator::spawn(Task<> task)
{
    runDetached(std::move(task), "task");
}

void
Simulator::spawn(Task<> task, std::string name)
{
    runDetached(std::move(task), std::move(name));
}

Simulator::Detached
Simulator::runDetached(Task<> task, std::string name)
{
    ++active_;
    [[maybe_unused]] std::uint64_t check_id = 0;
    SHRIMP_CHECK_HOOK(check_id = check::SimChecker::instance().onTaskSpawn(
        this, name, queue_.now()));
    try {
        co_await std::move(task);
    } catch (...) {
        // Never swallow silently: report which task failed and when, so
        // checker failures surface even if the first error wins.
        std::exception_ptr err = std::current_exception();
        std::string what = "unknown exception";
        try {
            std::rethrow_exception(err);
        } catch (const std::exception &e) {
            what = e.what();
        } catch (...) {
        }
        if (!firstError_) {
            warn(logging::format(
                "task '%s' failed at %llu ns: %s (rethrown from "
                "Simulator::run)", name.c_str(),
                (unsigned long long)queue_.now(), what.c_str()));
            firstError_ = err;
        } else {
            warn(logging::format(
                "task '%s' also failed at %llu ns: %s (suppressed; the "
                "first error is rethrown)", name.c_str(),
                (unsigned long long)queue_.now(), what.c_str()));
        }
    }
    --active_;
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onTaskExit(check_id));
}

void
Simulator::spawnDaemon(Task<> task)
{
    daemons_.push_back(std::move(task));
    daemons_.back().start();
}

std::uint64_t
Simulator::run(std::uint64_t max_events)
{
    std::uint64_t n = queue_.run(max_events);
    if (firstError_) {
        auto err = std::exchange(firstError_, nullptr);
        std::rethrow_exception(err);
    }
    for (const auto &d : daemons_) {
        if (auto err = d.error())
            std::rethrow_exception(err);
    }
    // The queue drained cleanly: every in-flight DMA, snoop and bus
    // transaction has completed, so all race-detector actors are
    // genuinely ordered with whatever runs next (post-run inspection,
    // next phase of a benchmark).
    if (queue_.empty())
        SHRIMP_CHECK_HOOK(check::RaceDetector::instance().fenceAll());
    return n;
}

std::uint64_t
Simulator::runAll(std::uint64_t max_events)
{
    std::uint64_t n = run(max_events);
    if (active_ != 0) {
        std::string msg = "simulation deadlock: " +
                          std::to_string(active_) +
                          " task(s) never completed";
        SHRIMP_CHECK_HOOK(
            msg += "; " +
                   check::SimChecker::instance().describeActiveTasks(this));
        panic(msg);
    }
    return n;
}

} // namespace shrimp::sim
