#include "sim/event_queue.hh"

#include <utility>

#include "base/logging.hh"
#include "check/check.hh"
#include "check/race.hh"
#include "sim/simulator.hh"

namespace shrimp::sim
{

EventQueue::EventQueue()
{
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onQueueCreated(this));
}

EventQueue::~EventQueue()
{
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onQueueDestroyed(this));
}

void
EventQueue::schedule(Tick when, std::function<void()> fn)
{
    if (when < now_)
        panic("event scheduled in the past");
    heap_.push(Event{when, nextSeq_++, std::move(fn)});
}

void
EventQueue::scheduleIn(Tick delay, std::function<void()> fn)
{
    schedule(now_ + delay, std::move(fn));
}

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    // Copy out; the callback may schedule more events (reallocating the
    // heap) or even recursively inspect the queue.
    Event ev = heap_.top();
    heap_.pop();
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onEventRun(
        this, ev.when, ev.seq, now_));
    now_ = ev.when;
    ev.fn();
    return true;
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (runOne()) {
        if (++n > max_events)
            panic("event limit exceeded; runaway simulation?");
    }
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick until, std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.top().when <= until) {
        runOne();
        if (++n > max_events)
            panic("event limit exceeded; runaway simulation?");
    }
    if (now_ < until)
        now_ = until;
    return n;
}

Simulator::~Simulator()
{
    SHRIMP_CHECK_HOOK(
        check::SimChecker::instance().onSimulatorDestroyed(this));
    // Reclaim wrappers that never completed (deadlocked or abandoned
    // simulations). destroy() unregisters each frame via ~promise_type,
    // so iterate over a copy.
    auto live = liveDetached_;
    for (void *frame : live)
        std::coroutine_handle<>::from_address(frame).destroy();
}

void
Simulator::spawn(Task<> task)
{
    runDetached(std::move(task), "task");
}

void
Simulator::spawn(Task<> task, std::string name)
{
    runDetached(std::move(task), std::move(name));
}

Simulator::Detached
Simulator::runDetached(Task<> task, std::string name)
{
    ++active_;
    [[maybe_unused]] std::uint64_t check_id = 0;
    SHRIMP_CHECK_HOOK(check_id = check::SimChecker::instance().onTaskSpawn(
        this, name, queue_.now()));
    try {
        co_await std::move(task);
    } catch (...) {
        // Never swallow silently: report which task failed and when, so
        // checker failures surface even if the first error wins.
        std::exception_ptr err = std::current_exception();
        std::string what = "unknown exception";
        try {
            std::rethrow_exception(err);
        } catch (const std::exception &e) {
            what = e.what();
        } catch (...) {
        }
        if (!firstError_) {
            warn(logging::format(
                "task '%s' failed at %llu ns: %s (rethrown from "
                "Simulator::run)", name.c_str(),
                (unsigned long long)queue_.now(), what.c_str()));
            firstError_ = err;
        } else {
            warn(logging::format(
                "task '%s' also failed at %llu ns: %s (suppressed; the "
                "first error is rethrown)", name.c_str(),
                (unsigned long long)queue_.now(), what.c_str()));
        }
    }
    --active_;
    SHRIMP_CHECK_HOOK(check::SimChecker::instance().onTaskExit(check_id));
}

void
Simulator::spawnDaemon(Task<> task)
{
    daemons_.push_back(std::move(task));
    daemons_.back().start();
}

std::uint64_t
Simulator::run(std::uint64_t max_events)
{
    std::uint64_t n = queue_.run(max_events);
    if (firstError_) {
        auto err = std::exchange(firstError_, nullptr);
        std::rethrow_exception(err);
    }
    for (const auto &d : daemons_) {
        if (auto err = d.error())
            std::rethrow_exception(err);
    }
    // The queue drained cleanly: every in-flight DMA, snoop and bus
    // transaction has completed, so all race-detector actors are
    // genuinely ordered with whatever runs next (post-run inspection,
    // next phase of a benchmark).
    if (queue_.empty())
        SHRIMP_CHECK_HOOK(check::RaceDetector::instance().fenceAll());
    return n;
}

std::uint64_t
Simulator::runAll(std::uint64_t max_events)
{
    std::uint64_t n = run(max_events);
    if (active_ != 0) {
        std::string msg = "simulation deadlock: " +
                          std::to_string(active_) +
                          " task(s) never completed";
        SHRIMP_CHECK_HOOK(
            msg += "; " +
                   check::SimChecker::instance().describeActiveTasks(this));
        panic(msg);
    }
    return n;
}

} // namespace shrimp::sim
