#include "sim/task.hh"

namespace shrimp::sim::detail
{

namespace
{

/** Free node threaded through recycled frames (the frame's first bytes
 *  are dead storage while it sits on the list). */
struct FreeNode
{
    FreeNode *next;
};

struct ArenaState
{
    FreeNode *lists[FrameArena::maxBytes / FrameArena::granule] = {};
    FrameArena::Stats stats;
};

ArenaState &
state()
{
    // thread_local function-scope: constructed on first use per thread,
    // alive until thread exit, so frames freed during static teardown
    // (leaked-frame sweeps) still find their list.
    thread_local ArenaState s;
    return s;
}

constexpr std::size_t
classOf(std::size_t bytes)
{
    return (bytes + FrameArena::granule - 1) / FrameArena::granule - 1;
}

} // namespace

void *
FrameArena::allocate(std::size_t bytes)
{
    if (bytes == 0)
        bytes = 1;
    if (bytes > maxBytes) {
        ++state().stats.oversize;
        return ::operator new(bytes);
    }
    ArenaState &s = state();
    std::size_t cls = classOf(bytes);
    if (FreeNode *n = s.lists[cls]) {
        s.lists[cls] = n->next;
        ++s.stats.reused;
        return n;
    }
    ++s.stats.carved;
    return ::operator new((cls + 1) * granule);
}

void
FrameArena::deallocate(void *p, std::size_t bytes) noexcept
{
    if (bytes == 0)
        bytes = 1;
    if (bytes > maxBytes) {
        ::operator delete(p);
        return;
    }
    ArenaState &s = state();
    std::size_t cls = classOf(bytes);
    auto *n = static_cast<FreeNode *>(p);
    n->next = s.lists[cls];
    s.lists[cls] = n;
}

FrameArena::Stats
FrameArena::stats()
{
    return state().stats;
}

} // namespace shrimp::sim::detail
