/**
 * @file
 * Host-cost profiler for the event loop: where do the *host*
 * nanoseconds go, per simulated subsystem?
 *
 * Every EventNode carries a one-byte subsystem tag, stamped at schedule
 * time from a process-wide "current subsystem" that the dispatcher sets
 * from the tag of the event being run. Tags therefore flow along
 * causal chains automatically (an event scheduled while a Cpu-tagged
 * event runs is itself Cpu-tagged); components sharpen attribution with
 * retag() at coroutine resume points (top of a datapath loop body) and
 * Scope for synchronous schedule sites (a packetizer arming its flush
 * timer from inside a CPU store should not relabel the store).
 *
 * When profiling is enabled the dispatcher reads the host steady clock
 * around each callback and accumulates {events, host-ns} per subsystem
 * plus queue-pressure gauges, dumped as profile.json at exit. The clock
 * read is the only wall-clock source in the simulator core and it is
 * fenced twice: it never runs unless --profile was given (host_perf and
 * the determinism lanes pay one predictable branch per event), and
 * bench_util refuses to combine --profile with --check-determinism so
 * the attribution can never be mistaken for simulated behavior. The
 * profiler only *observes* dispatch — tags and timings never feed back
 * into simulated state, so enabling it cannot change a trace hash.
 */

#ifndef SHRIMP_SIM_PROFILE_HH
#define SHRIMP_SIM_PROFILE_HH

#include <cstdint>
#include <ostream>
#include <string>

namespace shrimp::sim::profile
{

/** Who owns an event: the subsystem that scheduled it (directly or via
 *  tag inheritance along the causal chain). */
enum class Subsys : std::uint8_t
{
    Other,      //!< untagged: harness, test glue, library bookkeeping
    Cpu,        //!< CPU cost model (compute slices, poll checks)
    Bus,        //!< generic sim::Bus occupancy (EISA, memory paths)
    Mesh,       //!< mesh injection/ejection and route stepping
    Router,     //!< per-hop router forwarding and link occupancy
    Packetizer, //!< AU combining and flush timers
    Nic,        //!< NIC processor port (outgoing pump)
    Du,         //!< deliberate-update (DMA read) engine
    Dma,        //!< incoming DMA engine (receive side)
    Notify,     //!< notification delivery
    Ether,      //!< Ethernet control network
    NumSubsys,
};

constexpr std::size_t numSubsys = std::size_t(Subsys::NumSubsys);

/** Short stable name ("cpu", "mesh", ...) used in profile.json. */
const char *name(Subsys s);

namespace detail
{
extern std::uint8_t gCurrent;
extern bool gTiming;
} // namespace detail

/** Subsystem attributed to work scheduled right now. */
inline Subsys current() { return Subsys(detail::gCurrent); }

/** Set the current subsystem. Use at coroutine resume points (the tag
 *  sticks for the rest of the dispatched event). */
inline void retag(Subsys s) { detail::gCurrent = std::uint8_t(s); }

/** Scoped retag for synchronous schedule sites. */
class Scope
{
  public:
    explicit Scope(Subsys s) : prev_(detail::gCurrent) { retag(s); }
    ~Scope() { detail::gCurrent = prev_; }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    std::uint8_t prev_;
};

/** Is dispatch timing (the host clock read) active? */
inline bool timing() { return detail::gTiming; }

/** Turn dispatch timing on/off. */
void setTiming(bool on);

/** Enable timing and write profile.json to @p path at process exit. */
void setOutputPath(const std::string &path);
const std::string &outputPath();

/** Host steady-clock nanoseconds. Only the dispatcher calls this, and
 *  only when timing() — see the file comment on determinism fencing. */
std::uint64_t hostNow();

/** Dispatcher hook: one event of subsystem @p s took @p host_ns with
 *  @p pending events left in the queue. */
void recordDispatch(Subsys s, std::uint64_t host_ns, std::size_t pending);

/** Accumulated per-subsystem totals. */
struct Row
{
    std::uint64_t events = 0;
    std::uint64_t hostNs = 0;
};

const Row &row(Subsys s);

/** Dump accumulated totals as JSON, subsystems ranked by host-ns. */
void writeJson(std::ostream &os);

/** writeJson() to @p path; warns and returns false on I/O failure. */
bool writeJsonFile(const std::string &path);

/** Zero all accumulators and disable timing (tests). */
void reset();

} // namespace shrimp::sim::profile

#endif // SHRIMP_SIM_PROFILE_HH
