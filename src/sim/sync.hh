/**
 * @file
 * Synchronization primitives for simulated tasks: Condition (broadcast
 * wakeup), AddrCondition (address-range-keyed wakeup), Semaphore (FIFO,
 * counting), and Channel<T> (typed FIFO queue with blocking receive).
 * All wakeups are routed through the EventQueue so execution order stays
 * deterministic.
 */

#ifndef SHRIMP_SIM_SYNC_HH
#define SHRIMP_SIM_SYNC_HH

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

namespace shrimp::sim
{

/**
 * Broadcast condition: tasks wait(); notifyAll() wakes every current
 * waiter at the present tick. There is no predicate tracking, so waiters
 * must loop: while (!ready()) co_await cond.wait();
 */
class Condition
{
  public:
    explicit Condition(EventQueue &queue) : queue_(queue) {}

    struct WaitAwaiter
    {
        Condition &cond;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            cond.waiters_.push_back(h);
        }

        void await_resume() const noexcept {}
    };

    /** Suspend until the next notifyAll(). */
    WaitAwaiter wait() { return WaitAwaiter{*this}; }

    /** Wake all current waiters (they resume at the current tick, in
     *  the order they began waiting). */
    void notifyAll();

    std::size_t numWaiters() const { return waiters_.size(); }

  private:
    EventQueue &queue_;
    std::vector<std::coroutine_handle<>> waiters_;
    std::vector<std::coroutine_handle<>> scratch_; //!< see notifyAll()
};

/**
 * Address-range condition: each waiter names the half-open byte range
 * [lo, hi) it is polling; notifyRange(lo, hi) wakes only the waiters
 * whose range overlaps the notified span, in the order they began
 * waiting. This is the wait-on-address primitive behind Memory's write
 * watchpoints: a store wakes the tasks polling those bytes instead of
 * broadcasting to every poller on the node. Like Condition, there is no
 * predicate tracking — waiters re-check after every wakeup.
 */
class AddrCondition
{
  public:
    explicit AddrCondition(EventQueue &queue) : queue_(queue) {}

    struct WaitAwaiter
    {
        AddrCondition &cond;
        std::uint64_t lo;
        std::uint64_t hi;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            cond.waiters_.push_back({h, lo, hi});
        }

        void await_resume() const noexcept {}
    };

    /** Suspend until a notifyRange() overlapping [lo, hi) arrives. */
    WaitAwaiter
    wait(std::uint64_t lo, std::uint64_t hi)
    {
        return WaitAwaiter{*this, lo, hi};
    }

    /** Wake every waiter whose range overlaps [lo, hi); they resume at
     *  the current tick in the order they began waiting. */
    void notifyRange(std::uint64_t lo, std::uint64_t hi);

    bool hasWaiters() const { return !waiters_.empty(); }
    std::size_t numWaiters() const { return waiters_.size(); }

  private:
    struct Waiter
    {
        std::coroutine_handle<> h;
        std::uint64_t lo;
        std::uint64_t hi;
    };

    EventQueue &queue_;
    std::vector<Waiter> waiters_;
};

/**
 * Counting semaphore with FIFO handoff: release() passes ownership
 * directly to the oldest waiter, preserving arrival order.
 */
class Semaphore
{
  public:
    Semaphore(EventQueue &queue, std::size_t initial)
        : queue_(queue), count_(initial)
    {}

    struct AcquireAwaiter
    {
        Semaphore &sem;

        bool
        await_ready()
        {
            if (sem.count_ > 0) {
                --sem.count_;
                return true;
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            sem.waiters_.push_back(h);
        }

        void await_resume() const noexcept {}
    };

    /** Take one unit, waiting if none is available. */
    AcquireAwaiter acquire() { return AcquireAwaiter{*this}; }

    /** Return one unit, handing it to the oldest waiter if any. */
    void release();

    std::size_t available() const { return count_; }
    std::size_t numWaiters() const { return waiters_.size(); }

  private:
    EventQueue &queue_;
    std::size_t count_;
    std::deque<std::coroutine_handle<>> waiters_;
};

/** Typed FIFO message queue with blocking receive. */
template <typename T>
class Channel
{
  public:
    explicit Channel(EventQueue &queue) : cond_(queue) {}

    /** Enqueue an item and wake any blocked receivers. */
    void
    send(T item)
    {
        items_.push_back(std::move(item));
        cond_.notifyAll();
    }

    /** Dequeue the oldest item, waiting for one if the queue is empty. */
    Task<T>
    recv()
    {
        while (items_.empty())
            co_await cond_.wait();
        T item = std::move(items_.front());
        items_.pop_front();
        co_return item;
    }

    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }

  private:
    std::deque<T> items_;
    Condition cond_;
};

} // namespace shrimp::sim

#endif // SHRIMP_SIM_SYNC_HH
