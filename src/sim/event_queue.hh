/**
 * @file
 * Deterministic discrete-event queue with nanosecond ticks.
 *
 * Events scheduled for the same tick fire in schedule order (a
 * monotonically increasing sequence number breaks ties), so simulations
 * are fully deterministic regardless of heap internals.
 */

#ifndef SHRIMP_SIM_EVENT_QUEUE_HH
#define SHRIMP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "base/types.hh"

namespace shrimp::sim
{

class EventQueue
{
  public:
    // Defined out of line: construction and destruction register the
    // queue with the invariant checker in SHRIMP_CHECK builds.
    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run at absolute time @p when (>= now). */
    void schedule(Tick when, std::function<void()> fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    void scheduleIn(Tick delay, std::function<void()> fn);

    /** Run the earliest pending event. @return false if queue empty. */
    bool runOne();

    /**
     * Run until the queue drains.
     * @param max_events guard against runaway simulations; panics if
     *        exceeded.
     * @return number of events processed.
     */
    std::uint64_t run(std::uint64_t max_events = defaultMaxEvents);

    /** Run events until simulated time would exceed @p until. */
    std::uint64_t runUntil(Tick until,
                           std::uint64_t max_events = defaultMaxEvents);

    bool empty() const { return heap_.empty(); }
    std::size_t pending() const { return heap_.size(); }

    static constexpr std::uint64_t defaultMaxEvents = 500'000'000;

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

} // namespace shrimp::sim

#endif // SHRIMP_SIM_EVENT_QUEUE_HH
