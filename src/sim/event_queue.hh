/**
 * @file
 * Deterministic discrete-event queue with nanosecond ticks.
 *
 * Events scheduled for the same tick fire in schedule order (a
 * monotonically increasing sequence number breaks ties), so simulations
 * are fully deterministic regardless of container internals.
 *
 * The implementation is built for host throughput — this queue is the
 * innermost loop of every simulation:
 *
 *  - Event callables live in pooled, free-listed EventNodes with a
 *    small-buffer-optimized payload: scheduling performs no heap
 *    allocation in steady state (only callables larger than
 *    inlineCallableBytes fall back to the heap, counted by
 *    heapCallables()).
 *  - A timing-wheel front end covers the near future
 *    ([now, now + wheelTicks)): the dense same-epoch scheduling that
 *    semaphore handoffs, condition wakeups and CPU slices generate is
 *    O(1) push/pop. Events beyond the horizon overflow into a binary
 *    heap of node pointers.
 *
 * Both structures pop in bit-exact (when, seq) order, so the swap from
 * the old std::priority_queue<std::function> core is invisible to
 * simulated time (verified by the golden trace hashes in
 * tests/golden_trace_hashes.txt).
 */

#ifndef SHRIMP_SIM_EVENT_QUEUE_HH
#define SHRIMP_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/types.hh"

namespace shrimp::sim
{

class EventQueue
{
  public:
    // Defined out of line: construction and destruction register the
    // queue with the invariant checker in SHRIMP_CHECK builds.
    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run at absolute time @p when (>= now());
     *  panics with tick/task attribution if @p when is in the past. */
    template <typename F>
    void
    schedule(Tick when, F &&fn)
    {
        EventNode *n = prepare(when);
        bind(*n, std::forward<F>(fn));
        enqueue(n);
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    template <typename F>
    void
    scheduleIn(Tick delay, F &&fn)
    {
        schedule(now_ + delay, std::forward<F>(fn));
    }

    /** Run the earliest pending event. @return false if queue empty. */
    bool runOne();

    /**
     * Run until the queue drains.
     * @param max_events guard against runaway simulations; panics if
     *        exceeded.
     * @return number of events processed.
     */
    std::uint64_t run(std::uint64_t max_events = defaultMaxEvents);

    /** Run events until simulated time would exceed @p until. */
    std::uint64_t runUntil(Tick until,
                           std::uint64_t max_events = defaultMaxEvents);

    bool empty() const { return size_ == 0; }
    std::size_t pending() const { return size_; }

    /** Tick of the earliest pending event (maxTick when empty). */
    Tick nextWhen() const;

    // ---- pool/wheel introspection (tests, DESIGN.md §11 numbers) ------
    /** Event nodes ever carved from the host heap (pool growth). Stable
     *  across steady-state scheduling: nodes recycle via the free list. */
    std::uint64_t nodesAllocated() const { return nodesAllocated_; }

    /** Callables too large for a node's inline buffer (heap fallback). */
    std::uint64_t heapCallables() const { return heapCallables_; }

    /** Events that took the timing-wheel front end (vs overflow heap). */
    std::uint64_t wheelScheduled() const { return wheelScheduled_; }
    std::uint64_t heapScheduled() const { return heapScheduled_; }

    static constexpr std::uint64_t defaultMaxEvents = 500'000'000;

    /** Near-future horizon of the timing wheel, in ticks (ns). Spans the
     *  dense delays of the cost model (poll checks, CPU slices, PIO,
     *  packetization); bus occupancies of tens of microseconds overflow
     *  into the heap, which is fine — they are rare by comparison. */
    static constexpr Tick wheelTicks = 4096;

    /** Payload bytes stored inline in an EventNode. Sized for the
     *  common captures (a coroutine handle, a couple of pointers); a
     *  std::function<void()> (32 bytes on the usual ABIs) also fits. */
    static constexpr std::size_t inlineCallableBytes = 48;

  private:
    struct EventNode
    {
        Tick when;
        std::uint64_t seq;
        EventNode *next; //!< bucket FIFO / free-list link
        void (*invoke)(EventNode &);
        void (*destroy)(EventNode &); //!< callable dtor; null if trivial
        //! Owning subsystem (sim/profile.hh), stamped at schedule time.
        //! Lives in padding the max_align_t storage forces anyway, so
        //! the node layout and pool behavior are unchanged.
        std::uint8_t subsys;
        alignas(std::max_align_t)
            unsigned char storage[inlineCallableBytes];
    };

    struct Bucket
    {
        EventNode *head = nullptr;
        EventNode *tail = nullptr;
    };

    /** Heap order: earliest (when, seq) first. */
    struct NodeLater
    {
        bool
        operator()(const EventNode *a, const EventNode *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            return a->seq > b->seq;
        }
    };

    /** Validate @p when, stamp a fresh (pooled) node with it and the
     *  next sequence number. Out of line: keeps panic/alloc machinery
     *  out of the inlined template. */
    EventNode *prepare(Tick when);

    /** Place a bound node into the wheel or the overflow heap. */
    void enqueue(EventNode *n);

    template <typename F>
    void
    bind(EventNode &n, F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= inlineCallableBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(n.storage)) Fn(std::forward<F>(fn));
            n.invoke = [](EventNode &e) {
                (*std::launder(reinterpret_cast<Fn *>(e.storage)))();
            };
            if constexpr (std::is_trivially_destructible_v<Fn>) {
                n.destroy = nullptr;
            } else {
                n.destroy = [](EventNode &e) {
                    std::launder(reinterpret_cast<Fn *>(e.storage))->~Fn();
                };
            }
        } else {
            // Oversized capture: keep correctness, count the fallback so
            // a hot path that regresses here is visible in tests.
            auto *p = new Fn(std::forward<F>(fn));
            ::new (static_cast<void *>(n.storage)) Fn *(p);
            n.invoke = [](EventNode &e) {
                (**std::launder(reinterpret_cast<Fn **>(e.storage)))();
            };
            n.destroy = [](EventNode &e) {
                delete *std::launder(reinterpret_cast<Fn **>(e.storage));
            };
            ++heapCallables_;
        }
    }

    EventNode *allocNode();
    void freeNode(EventNode *n);

    /** Earliest pending node, or nullptr (does not remove). */
    EventNode *peekEarliest() const;

    /** Remove and return the earliest pending node, or nullptr. */
    EventNode *popEarliest();

    /** First non-empty wheel bucket at or after now_;
     *  @return its tick, or maxTick if the wheel is empty. */
    Tick earliestWheelTick() const;

    void bitSet(std::size_t idx);
    void bitClear(std::size_t idx);

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::size_t size_ = 0;

    // Timing wheel: bucket b holds the events of exactly one tick
    // (index = when & (wheelTicks - 1); ticks are unique because all
    // wheel residents satisfy now_ <= when < now_ + wheelTicks). Bucket
    // FIFO order is seq order, so draining front-to-back is the total
    // order. A two-level bitmap finds the next non-empty bucket.
    static constexpr std::size_t numBuckets = std::size_t(wheelTicks);
    static constexpr std::size_t bitsWords = numBuckets / 64;
    std::vector<Bucket> wheel_{numBuckets};
    std::uint64_t bits_[bitsWords] = {};
    std::uint64_t summary_ = 0; //!< bit g set: bits_[g] has a set bit
    std::size_t wheelCount_ = 0;

    // Overflow heap for events at or beyond now_ + wheelTicks.
    std::vector<EventNode *> heap_;

    // Node pool: blocks are carved on demand and recycled through an
    // intrusive free list; steady-state scheduling never calls malloc.
    static constexpr std::size_t nodesPerBlock = 256;
    std::vector<std::unique_ptr<EventNode[]>> blocks_;
    EventNode *freeList_ = nullptr;
    std::uint64_t nodesAllocated_ = 0;
    std::uint64_t heapCallables_ = 0;
    std::uint64_t wheelScheduled_ = 0;
    std::uint64_t heapScheduled_ = 0;
};

} // namespace shrimp::sim

#endif // SHRIMP_SIM_EVENT_QUEUE_HH
