/**
 * @file
 * Simulator: an EventQueue plus detached-task management. Top-level
 * simulated processes are spawned here; run() drives the event loop and
 * rethrows the first exception raised by any spawned task so tests see
 * protocol failures.
 */

#ifndef SHRIMP_SIM_SIMULATOR_HH
#define SHRIMP_SIM_SIMULATOR_HH

#include <coroutine>
#include <cstddef>
#include <exception>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/ownership.hh"
#include "sim/event_queue.hh"
#include "sim/task.hh"

namespace shrimp::sim
{

class Simulator
{
    SHRIMP_SHARD_SHARED(
        "one event queue serializes every node today; the sharded "
        "simulator gives each shard its own Simulator slice");

  public:
    Simulator() = default;

    /** Destroys the frames of detached tasks that never completed
     *  (deadlocked simulations would otherwise leak them). */
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    EventQueue &queue() { return queue_; }
    Tick now() const { return queue_.now(); }

    /**
     * Start @p task as a detached top-level activity. The task begins
     * running immediately (until its first suspension) and is destroyed
     * automatically when it completes. @p name labels the task in
     * deadlock reports and exception logs.
     */
    void spawn(Task<> task);
    void spawn(Task<> task, std::string name);

    /**
     * Drive the event loop until it drains, then rethrow the first
     * exception any spawned task raised.
     * @return number of events processed.
     */
    std::uint64_t run(std::uint64_t max_events = EventQueue::defaultMaxEvents);

    /** Spawned tasks that have not yet completed. After run() returns,
     *  a nonzero value means those tasks are deadlocked. */
    std::size_t activeTasks() const { return active_; }

    /** run(), then panic if any task never completed (deadlock). */
    std::uint64_t runAll(std::uint64_t max_events =
                         EventQueue::defaultMaxEvents);

    /**
     * Start @p task as a daemon: a service loop that typically never
     * completes (NIC pumps, SHRIMP daemons, servers). Daemons are not
     * counted by activeTasks(), so a drained event queue with only
     * blocked daemons is a normal end of simulation, not a deadlock.
     * Exceptions raised by daemons are rethrown from run().
     */
    void spawnDaemon(Task<> task);

  private:
    struct Detached
    {
        // The wrapper's own frame recycles through the arena too — one
        // is created per spawn, which the benches do in their loops.
        struct promise_type : detail::RecycledFrame
        {
            Simulator &sim;

            /** Mirrors runDetached()'s parameter list (the implicit
             *  object parameter first), per the coroutine promise
             *  constructor rules. */
            promise_type(Simulator &s, Task<> &, std::string &) : sim(s) {}

            ~promise_type()
            {
                sim.liveDetached_.erase(
                    std::coroutine_handle<promise_type>::from_promise(
                        *this).address());
            }

            Detached
            get_return_object()
            {
                // Track the live frame so ~Simulator can reclaim it if
                // the task never finishes (see runDetached()).
                sim.liveDetached_.insert(
                    std::coroutine_handle<promise_type>::from_promise(
                        *this).address());
                return {};
            }

            std::suspend_never initial_suspend() const noexcept { return {}; }
            std::suspend_never final_suspend() const noexcept { return {}; }
            void return_void() {}
            /** A Detached wrapper already catches everything; anything
             *  reaching here is unrecoverable. */
            void unhandled_exception() { std::terminate(); }
        };
    };

    Detached runDetached(Task<> task, std::string name);

    EventQueue queue_;
    std::size_t active_ = 0;
    std::exception_ptr firstError_;
    std::vector<Task<>> daemons_;

    /** Frames of detached wrappers still suspended; owned for cleanup
     *  only (frames normally free themselves at completion). */
    std::unordered_set<void *> liveDetached_;
};

/** Awaitable: suspend the current task for @p delay ticks. */
struct Delay
{
    EventQueue &queue;
    Tick delay;

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        queue.scheduleIn(delay, [h] { h.resume(); });
    }

    void await_resume() const noexcept {}
};

} // namespace shrimp::sim

#endif // SHRIMP_SIM_SIMULATOR_HH
