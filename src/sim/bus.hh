/**
 * @file
 * Bus: a shared bandwidth resource. A transfer occupies the bus
 * exclusively for setup + bytes/bandwidth; contending transfers queue in
 * FIFO order. Used for the Xpress memory bus, the EISA expansion bus,
 * mesh links, and the Ethernet side channel.
 */

#ifndef SHRIMP_SIM_BUS_HH
#define SHRIMP_SIM_BUS_HH

#include <cstddef>
#include <string>

#include "base/stats.hh"
#include "base/trace.hh"
#include "base/types.hh"
#include "sim/profile.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace shrimp::sim
{

class Bus
{
  public:
    /**
     * @param queue the event queue driving time
     * @param mb_per_sec bus bandwidth, 10^6 bytes per second
     * @param name stats group name
     */
    Bus(EventQueue &queue, double mb_per_sec, std::string name = "bus");

    /**
     * Occupy the bus for one transaction of @p bytes plus a fixed
     * @p setup time; completes when the transaction is done.
     */
    Task<> transfer(std::size_t bytes, Tick setup = 0);

    /** Time one transaction of @p bytes would occupy the bus. */
    Tick occupancy(std::size_t bytes, Tick setup = 0) const;

    /**
     * Account one transaction of @p bytes that occupied the bus for
     * @p occupied ticks but was serialized externally (the mesh's link
     * ledger charges occupancy without running transfer()'s coroutine).
     * Keeps busyTime()/bytesMoved()/transactions() and the stats group
     * identical to the equivalent transfer() calls.
     */
    void recordExternalTransfer(std::size_t bytes, Tick occupied);

    double bandwidth() const { return bw_; }
    Tick busyTime() const { return busyTime_; }
    std::uint64_t bytesMoved() const { return bytes_; }
    std::uint64_t transactions() const { return transactions_; }
    stats::Group &stats() { return stats_; }

    /** Profiler subsystem this bus's occupancy is attributed to
     *  (default Bus; a router tags its links Router). */
    void setProfileSubsys(profile::Subsys s) { profSubsys_ = s; }

  private:
    EventQueue &queue_;
    double bw_;
    profile::Subsys profSubsys_ = profile::Subsys::Bus;
    std::uint64_t bps_; //!< bw_ in whole bytes/s; see units::transferTime
    Semaphore lock_;
    Tick busyTime_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t transactions_ = 0;
    stats::Group stats_;
    trace::TrackId track_;
    // Hot path: stat lookups are hoisted to construction (the returned
    // references are stable), so transfer() pays plain increments.
    stats::Counter &statTransactions_;
    stats::Counter &statBytes_;
    stats::Counter &statOccupancyNs_;
    stats::Distribution &statXferBytes_;
};

} // namespace shrimp::sim

#endif // SHRIMP_SIM_BUS_HH
