/**
 * @file
 * Task<T>: a lazy coroutine type used for every simulated activity.
 *
 * A Task does not start until it is co_awaited (or spawned on a
 * Simulator). Completion resumes the awaiting coroutine via symmetric
 * transfer; exceptions propagate through co_await. Simulated "processes"
 * are coroutines returning Task<> that suspend on awaitables which
 * re-schedule them through the EventQueue.
 */

#ifndef SHRIMP_SIM_TASK_HH
#define SHRIMP_SIM_TASK_HH

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <new>
#include <utility>

#include "base/logging.hh"

namespace shrimp::sim
{

template <typename T = void>
class Task;

namespace detail
{

/**
 * FrameArena: recycles coroutine frames through size-class free lists.
 *
 * Every simulated activity is a coroutine, so a single message transfer
 * allocates dozens of short-lived frames; routing them through the
 * global allocator dominated the host profile. The arena rounds frame
 * sizes up to a 64-byte granule and keeps one intrusive free list per
 * class: after warm-up, frame allocation is a pointer pop. Frames
 * larger than maxBytes (none today) fall through to operator new.
 *
 * The lists are thread_local rather than per-EventQueue: a frame can
 * outlive the simulator that created it (a Task held by a test, the
 * leaked-frame sweep in ~Simulator), but the simulator is strictly
 * single-threaded, so thread scope is the tightest granularity that is
 * always safe — no lock, and alloc/free always hit the same list.
 */
class FrameArena
{
  public:
    static constexpr std::size_t granule = 64;
    static constexpr std::size_t maxBytes = 2048;

    static void *allocate(std::size_t bytes);
    static void deallocate(void *p, std::size_t bytes) noexcept;

    struct Stats
    {
        std::uint64_t carved = 0;  //!< frames taken from the host heap
        std::uint64_t reused = 0;  //!< frames served from a free list
        std::uint64_t oversize = 0; //!< frames beyond maxBytes
    };
    static Stats stats();

  private:
    static constexpr std::size_t numClasses = maxBytes / granule;
    friend struct FrameArenaState;
};

/** Recyclable-frame base: a coroutine promise deriving from this
 *  allocates its frame from the FrameArena (sized delete returns it). */
struct RecycledFrame
{
    static void *
    operator new(std::size_t bytes)
    {
        return FrameArena::allocate(bytes);
    }

    static void
    operator delete(void *p, std::size_t bytes) noexcept
    {
        FrameArena::deallocate(p, bytes);
    }
};

struct TaskPromiseBase : RecycledFrame
{
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;

    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) noexcept
        {
            auto cont = h.promise().continuation;
            return cont ? cont : std::noop_coroutine();
        }

        void await_resume() const noexcept {}
    };

    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() const noexcept { return {}; }
    void unhandled_exception() { exception = std::current_exception(); }
};

template <typename T>
struct TaskPromise : TaskPromiseBase
{
    T value;

    Task<T> get_return_object();
    void return_value(T v) { value = std::move(v); }

    T
    result()
    {
        if (exception)
            std::rethrow_exception(exception);
        return std::move(value);
    }
};

template <>
struct TaskPromise<void> : TaskPromiseBase
{
    Task<void> get_return_object();
    void return_void() {}

    void
    result()
    {
        if (exception)
            std::rethrow_exception(exception);
    }
};

} // namespace detail

/**
 * Lazy coroutine task. Move-only; the Task object owns the coroutine
 * frame and destroys it when the Task goes out of scope (by which time
 * the coroutine has finished, because co_await only returns after the
 * child's final suspend).
 */
template <typename T>
class [[nodiscard]] Task
{
  public:
    using promise_type = detail::TaskPromise<T>;
    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return handle_ != nullptr; }
    bool done() const { return handle_ && handle_.done(); }

    struct Awaiter
    {
        Handle handle;

        bool await_ready() const noexcept { return !handle || handle.done(); }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> awaiting) noexcept
        {
            handle.promise().continuation = awaiting;
            return handle;
        }

        T await_resume() { return handle.promise().result(); }
    };

    Awaiter operator co_await() const & noexcept { return Awaiter{handle_}; }
    Awaiter operator co_await() && noexcept { return Awaiter{handle_}; }

    /** Release ownership of the coroutine frame (used by spawn). */
    Handle release() { return std::exchange(handle_, nullptr); }

    /**
     * Start the task without awaiting it (daemon-style). The Task object
     * must be kept alive; it still owns the frame. Any exception is
     * stored and can be inspected with error().
     */
    void
    start()
    {
        if (!handle_ || handle_.done())
            panic("start() on an invalid or finished task");
        handle_.resume();
    }

    /** Exception raised by a completed/started task, if any. */
    std::exception_ptr
    error() const
    {
        return handle_ ? handle_.promise().exception : nullptr;
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    Handle handle_ = nullptr;
};

namespace detail
{

template <typename T>
Task<T>
TaskPromise<T>::get_return_object()
{
    return Task<T>(
        std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void>
TaskPromise<void>::get_return_object()
{
    return Task<void>(
        std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

} // namespace detail

} // namespace shrimp::sim

#endif // SHRIMP_SIM_TASK_HH
