/**
 * @file
 * ZeroRegion: a zero-initialized byte region that materializes pages
 * lazily and is recycled process-wide. Node memories are large
 * (megabytes) but workloads touch a few dozen kilobytes; backing them
 * with an eagerly-zeroed vector makes every simulated machine pay the
 * full memset (and, once the host heap fragments, a fresh mmap +
 * page-fault storm) per construction. Mapping anonymous memory keeps
 * the guarantee — never-written bytes read as zero — while the kernel
 * zero-fills only the pages actually touched.
 *
 * Freed regions park in a process-wide pool instead of being unmapped:
 * a recycled mapping keeps its page tables, so a harness constructing
 * machines in a loop (host_perf, the ablation benches, the test suite)
 * faults each page once, not once per machine. Correctness relies on
 * the owner reporting its written extent via noteDirty(): only that
 * prefix is re-zeroed on release; pages beyond it were never written
 * and still read as zero. The pool is not thread-safe (the simulator
 * is single-threaded); it falls back to an eagerly-zeroed heap block
 * where mmap is unavailable.
 */

#ifndef SHRIMP_MEM_ZERO_REGION_HH
#define SHRIMP_MEM_ZERO_REGION_HH

#include <cstddef>
#include <cstdint>

#include "base/ownership.hh"

namespace shrimp::mem
{

class ZeroRegion
{
    SHRIMP_SHARD_OWNED;

  public:
    explicit ZeroRegion(std::size_t bytes);
    ~ZeroRegion();

    ZeroRegion(const ZeroRegion &) = delete;
    ZeroRegion &operator=(const ZeroRegion &) = delete;

    std::uint8_t *data() { return data_; }
    const std::uint8_t *data() const { return data_; }
    std::size_t size() const { return size_; }

    /** Record that bytes of [0, bytes) may have been written. The
     *  destructor re-zeroes exactly this prefix before recycling the
     *  mapping; an owner that skips the call for some write path would
     *  leak its bytes into the region's next life. */
    void
    noteDirty(std::size_t bytes)
    {
        if (bytes > dirty_)
            dirty_ = bytes;
    }

    /** Pooled mappings held for reuse (tests). */
    static std::size_t pooledBytes();

    /** Process-lifetime pool counters (surfaced in Machine stats as
     *  mem.zeropool.reuse / .fresh / .bytesRezeroed): constructions
     *  served from the pool, constructions that allocated fresh
     *  backing, and bytes re-zeroed when parking dirty regions. */
    static std::size_t poolReuseCount();
    static std::size_t poolFreshCount();
    static std::size_t poolBytesRezeroed();

    /** Unmap every pooled region (tests; harmless mid-run). */
    static void drainPool();

  private:
    std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t dirty_ = 0;
    bool mapped_ = false;
};

} // namespace shrimp::mem

#endif // SHRIMP_MEM_ZERO_REGION_HH
