#include "mem/address_space.hh"

#include "base/logging.hh"
#include "check/check.hh"
#include "check/race.hh"

namespace shrimp::mem
{

AddressSpace::AddressSpace(Memory &memory)
    : mem_(memory), nextVAddr_(VAddr(memory.pageBytes()))
{
}

VAddr
AddressSpace::alloc(std::size_t bytes, CacheMode mode)
{
    if (bytes == 0)
        fatal("cannot allocate zero bytes");
    std::size_t page = pageBytes();
    std::size_t npages = (bytes + page - 1) / page;
    PAddr frame = mem_.allocFrames(npages);
    VAddr base = nextVAddr_;
    PageNum first = base / page;
    if (first + npages > pages_.size())
        pages_.resize(first + npages, PageEntry{0, CacheMode::WriteBack,
                                                false});
    for (std::size_t i = 0; i < npages; ++i) {
        pages_[first + i] =
            PageEntry{PAddr(frame + i * page), mode, true};
        SHRIMP_CHECK_HOOK(check::RaceDetector::instance().onCacheMode(
            &mem_, pages_[first + i].frame, mode, mem_.queue().now()));
    }
    nextVAddr_ += VAddr(npages * page);
    return base;
}

void
AddressSpace::faultUnmapped(VAddr addr) const
{
    panic(logging::format("unmapped virtual address 0x%x", addr));
}

bool
AddressSpace::mapped(VAddr addr, std::size_t len) const
{
    if (len == 0)
        len = 1;
    PageNum first = addr / pageBytes();
    PageNum last = PageNum((std::uint64_t(addr) + len - 1) / pageBytes());
    if (last >= pages_.size())
        return false;
    for (PageNum vpn = first; vpn <= last; ++vpn) {
        if (!pages_[vpn].valid)
            return false;
    }
    return true;
}

PAddr
AddressSpace::translateRange(VAddr addr, std::size_t len) const
{
    if (!mapped(addr, len))
        panic(logging::format("unmapped virtual range [0x%x, +%zu)",
                              addr, len));
    PAddr base = translate(addr);
    // Verify physical contiguity across the range (holds by construction
    // for single allocations; catches accidental cross-allocation use).
    PageNum first = addr / pageBytes();
    PageNum last = PageNum((std::uint64_t(addr) + (len ? len : 1) - 1) /
                           pageBytes());
    for (PageNum vpn = first; vpn + 1 <= last; ++vpn) {
        PAddr a = pages_[vpn].frame;
        PAddr b = pages_[vpn + 1].frame;
        if (b != a + PAddr(pageBytes()))
            panic("virtual range is not physically contiguous");
    }
    return base;
}

void
AddressSpace::setCacheMode(VAddr addr, std::size_t len, CacheMode mode)
{
    if (!mapped(addr, len))
        panic("setCacheMode on unmapped range");
    PageNum first = addr / pageBytes();
    PageNum last = PageNum((std::uint64_t(addr) + (len ? len : 1) - 1) /
                           pageBytes());
    for (PageNum vpn = first; vpn <= last; ++vpn) {
        pages_[vpn].mode = mode;
        SHRIMP_CHECK_HOOK(check::RaceDetector::instance().onCacheMode(
            &mem_, pages_[vpn].frame, mode, mem_.queue().now()));
    }
}

} // namespace shrimp::mem
