#include "mem/memory.hh"

#include <cstring>

#include "base/logging.hh"
#include "check/check.hh"
#include "check/race.hh"

namespace shrimp::mem
{

Memory::Memory(sim::EventQueue &queue, std::size_t bytes,
               std::size_t page_bytes, std::string name)
    : queue_(queue), data_(bytes), pageBytes_(page_bytes),
      name_(std::move(name)), writeWaiters_(queue)
{
    if (page_bytes == 0 || bytes % page_bytes != 0)
        fatal("memory size must be a multiple of the page size");
    SHRIMP_CHECK_HOOK(check::RaceDetector::instance().onMemoryCreated(
        this, name_, pageBytes_));
}

Memory::~Memory()
{
    SHRIMP_CHECK_HOOK(check::RaceDetector::instance().onMemoryDestroyed(
        this));
}

void
Memory::checkRange(PAddr addr, std::size_t n) const
{
    if (std::size_t(addr) + n > data_.size())
        panic(logging::format("%s: physical access [0x%x, +%zu) out of "
                              "range (%zu bytes)",
                              name_.c_str(), addr, n, data_.size()));
}

void
Memory::write(PAddr addr, const void *src, std::size_t n)
{
    checkRange(addr, n);
    SHRIMP_CHECK_HOOK(check::RaceDetector::instance().onWrite(
        this, addr, n, queue_.now()));
    if (n > 0)
        std::memcpy(data_.data() + addr, src, n);
    data_.noteDirty(std::size_t(addr) + n);
    ++writeCount_;
    notifyWrite(addr, n);
}

void
Memory::read(PAddr addr, void *dst, std::size_t n) const
{
    checkRange(addr, n);
    SHRIMP_CHECK_HOOK(check::RaceDetector::instance().onRead(
        this, addr, n, queue_.now()));
    if (n > 0)
        std::memcpy(dst, data_.data() + addr, n);
}

#ifdef SHRIMP_CHECK
// Unchecked builds define these inline in the header; here the generic
// paths run so every word access reaches the race detector's hooks.
std::uint32_t
Memory::read32(PAddr addr) const
{
    std::uint32_t v;
    read(addr, &v, sizeof(v));
    return v;
}

void
Memory::write32(PAddr addr, std::uint32_t value)
{
    write(addr, &value, sizeof(value));
}
#endif // SHRIMP_CHECK

PAddr
Memory::allocFrames(std::size_t pages)
{
    std::size_t bytes = pages * pageBytes_;
    if (std::size_t(nextFrame_) + bytes > data_.size())
        fatal(name_ + ": out of physical memory");
    PAddr base = nextFrame_;
    nextFrame_ += PAddr(bytes);
    return base;
}

std::size_t
Memory::freeFrames() const
{
    return (data_.size() - nextFrame_) / pageBytes_;
}

} // namespace shrimp::mem
