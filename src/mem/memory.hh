/**
 * @file
 * Memory: one node's physical memory. Holds real bytes (protocols in the
 * libraries move actual data, which tests verify end-to-end) and supports
 * write watchpoints: a task can sleep until a write lands in the byte
 * range it is polling (or anywhere, for multi-location scans), then
 * re-check the flag. Timing is charged by the components that access
 * memory (CPU, DMA engines), not here.
 */

#ifndef SHRIMP_MEM_MEMORY_HH
#define SHRIMP_MEM_MEMORY_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "base/ownership.hh"
#include "base/types.hh"
#include "mem/zero_region.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace shrimp::mem
{

class Memory
{
    SHRIMP_SHARD_OWNED;

  public:
    Memory(sim::EventQueue &queue, std::size_t bytes, std::size_t page_bytes,
           std::string name = "mem");
    ~Memory();

    Memory(const Memory &) = delete;
    Memory &operator=(const Memory &) = delete;

    const std::string &name() const { return name_; }
    sim::EventQueue &queue() { return queue_; }

    std::size_t size() const { return data_.size(); }
    std::size_t pageBytes() const { return pageBytes_; }
    PageNum pageOf(PAddr addr) const { return addr / pageBytes_; }
    std::size_t numPages() const { return data_.size() / pageBytes_; }

    /** Copy @p n bytes into memory at @p addr and wake write-watchers. */
    void write(PAddr addr, const void *src, std::size_t n);

    /** Copy @p n bytes out of memory at @p addr. */
    void read(PAddr addr, void *dst, std::size_t n) const;

    std::uint32_t read32(PAddr addr) const;
    void write32(PAddr addr, std::uint32_t value);

    /**
     * Suspend until the next write to this memory (any address).
     * Users poll a predicate:  while (!flagSet()) co_await m.waitWrite();
     * Pollers that watch a known location should use the targeted
     * overload instead — it skips the wakeup entirely for unrelated
     * writes.
     */
    sim::AddrCondition::WaitAwaiter
    waitWrite()
    {
        return writeWaiters_.wait(0, data_.size());
    }

    /** Suspend until a write overlapping [addr, addr+n) lands. */
    sim::AddrCondition::WaitAwaiter
    waitWrite(PAddr addr, std::size_t n)
    {
        return writeWaiters_.wait(addr, std::uint64_t(addr) + n);
    }

    /**
     * Allocate @p pages physically-contiguous page frames.
     * The SHRIMP daemons arrange physically-contiguous communication
     * buffers on the real system; the simulator simply never fragments.
     * @return physical address of the first frame.
     */
    PAddr allocFrames(std::size_t pages);

    /** Frames still unallocated. */
    std::size_t freeFrames() const;

    std::uint64_t writeCount() const { return writeCount_; }

  private:
    void checkRange(PAddr addr, std::size_t n) const;

    /** Wake pollers watching bytes of [addr, addr+n); no-op when nobody
     *  is waiting, so un-watched writes pay nothing for the mechanism. */
    void
    notifyWrite(PAddr addr, std::size_t n)
    {
        if (writeWaiters_.hasWaiters())
            writeWaiters_.notifyRange(addr, std::uint64_t(addr) + n);
    }

    sim::EventQueue &queue_;
    ZeroRegion data_;
    std::size_t pageBytes_;
    std::string name_;
    sim::AddrCondition writeWaiters_;
    PAddr nextFrame_ = 0;
    std::uint64_t writeCount_ = 0;
};

#ifndef SHRIMP_CHECK
// Word-access fast path: the flag words the libraries poll and publish
// are all accessed through these, so in unchecked builds they skip the
// generic read()/write() double dispatch (range check + hook + memcpy
// call) for a bounds test and a fixed-size copy. Checked builds keep the
// generic path so the race detector sees every access.

inline std::uint32_t
Memory::read32(PAddr addr) const
{
    if (std::size_t(addr) + sizeof(std::uint32_t) > data_.size())
        [[unlikely]]
        checkRange(addr, sizeof(std::uint32_t));
    std::uint32_t v;
    std::memcpy(&v, data_.data() + addr, sizeof(v));
    return v;
}

inline void
Memory::write32(PAddr addr, std::uint32_t value)
{
    if (std::size_t(addr) + sizeof(value) > data_.size()) [[unlikely]]
        checkRange(addr, sizeof(value));
    std::memcpy(data_.data() + addr, &value, sizeof(value));
    data_.noteDirty(std::size_t(addr) + sizeof(value));
    ++writeCount_;
    notifyWrite(addr, sizeof(value));
}
#endif // !SHRIMP_CHECK

} // namespace shrimp::mem

#endif // SHRIMP_MEM_MEMORY_HH
