/**
 * @file
 * Memory: one node's physical memory. Holds real bytes (protocols in the
 * libraries move actual data, which tests verify end-to-end) and supports
 * write watchpoints: a task can sleep until *any* write lands, then
 * re-check the flag it is polling. Timing is charged by the components
 * that access memory (CPU, DMA engines), not here.
 */

#ifndef SHRIMP_MEM_MEMORY_HH
#define SHRIMP_MEM_MEMORY_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace shrimp::mem
{

class Memory
{
  public:
    Memory(sim::EventQueue &queue, std::size_t bytes, std::size_t page_bytes,
           std::string name = "mem");
    ~Memory();

    Memory(const Memory &) = delete;
    Memory &operator=(const Memory &) = delete;

    const std::string &name() const { return name_; }
    sim::EventQueue &queue() { return queue_; }

    std::size_t size() const { return data_.size(); }
    std::size_t pageBytes() const { return pageBytes_; }
    PageNum pageOf(PAddr addr) const { return addr / pageBytes_; }
    std::size_t numPages() const { return data_.size() / pageBytes_; }

    /** Copy @p n bytes into memory at @p addr and wake write-watchers. */
    void write(PAddr addr, const void *src, std::size_t n);

    /** Copy @p n bytes out of memory at @p addr. */
    void read(PAddr addr, void *dst, std::size_t n) const;

    std::uint32_t read32(PAddr addr) const;
    void write32(PAddr addr, std::uint32_t value);

    /**
     * Suspend until the next write to this memory (any address).
     * Users poll a predicate:  while (!flagSet()) co_await m.waitWrite();
     */
    sim::Condition::WaitAwaiter waitWrite() { return writeCond_.wait(); }

    /**
     * Allocate @p pages physically-contiguous page frames.
     * The SHRIMP daemons arrange physically-contiguous communication
     * buffers on the real system; the simulator simply never fragments.
     * @return physical address of the first frame.
     */
    PAddr allocFrames(std::size_t pages);

    /** Frames still unallocated. */
    std::size_t freeFrames() const;

    std::uint64_t writeCount() const { return writeCount_; }

  private:
    void checkRange(PAddr addr, std::size_t n) const;

    sim::EventQueue &queue_;
    std::vector<std::uint8_t> data_;
    std::size_t pageBytes_;
    std::string name_;
    sim::Condition writeCond_;
    PAddr nextFrame_ = 0;
    std::uint64_t writeCount_ = 0;
};

} // namespace shrimp::mem

#endif // SHRIMP_MEM_MEMORY_HH
