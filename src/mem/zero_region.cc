#include "mem/zero_region.hh"

#include <cstring>
#include <new>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define SHRIMP_ZERO_REGION_MMAP 1
#endif

#include "base/logging.hh"

namespace shrimp::mem
{

namespace
{

/** One parked region: already re-zeroed, ready to hand out. */
struct ParkedRegion
{
    std::uint8_t *ptr;
    std::size_t size;
    bool mapped;
};

// Process-wide recycling pool (single-threaded, like the simulator).
// Bounded so a one-off giant configuration doesn't pin memory forever;
// eviction is FIFO, so steady same-size churn always hits.
constexpr std::size_t poolCapBytes = 256 * 1024 * 1024;
std::vector<ParkedRegion> pool;
std::size_t poolBytes = 0;

// Lifetime counters (never reset; drainPool keeps them so a stats dump
// after teardown still reflects the run).
std::size_t poolReuses = 0;
std::size_t poolFresh = 0;
std::size_t poolRezeroed = 0;

void
releaseBytes(std::uint8_t *ptr, std::size_t size, bool mapped)
{
#ifdef SHRIMP_ZERO_REGION_MMAP
    if (mapped) {
        ::munmap(ptr, size);
        return;
    }
#endif
    (void)mapped;
    delete[] ptr;
}

} // namespace

ZeroRegion::ZeroRegion(std::size_t bytes) : size_(bytes)
{
    if (bytes == 0)
        return;
    // Newest-first search: steady churn reuses the region just parked,
    // whose pages are still warm in the page tables and caches.
    for (std::size_t i = pool.size(); i > 0; --i) {
        ParkedRegion &r = pool[i - 1];
        if (r.size != bytes)
            continue;
        data_ = r.ptr;
        mapped_ = r.mapped;
        poolBytes -= r.size;
        pool.erase(pool.begin() + long(i - 1));
        ++poolReuses;
        return;
    }
    ++poolFresh;
#ifdef SHRIMP_ZERO_REGION_MMAP
    void *p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
        data_ = static_cast<std::uint8_t *>(p);
        mapped_ = true;
        return;
    }
#endif
    data_ = new std::uint8_t[bytes];
    std::memset(data_, 0, bytes);
}

ZeroRegion::~ZeroRegion()
{
    if (!data_)
        return;
    // Park for reuse: re-zero the written prefix (bytes beyond it were
    // never written and are still zero), evict oldest past the cap.
    if (size_ <= poolCapBytes) {
        const std::size_t rezero = dirty_ < size_ ? dirty_ : size_;
        std::memset(data_, 0, rezero);
        poolRezeroed += rezero;
        while (poolBytes + size_ > poolCapBytes && !pool.empty()) {
            ParkedRegion victim = pool.front();
            pool.erase(pool.begin());
            poolBytes -= victim.size;
            releaseBytes(victim.ptr, victim.size, victim.mapped);
        }
        pool.push_back(ParkedRegion{data_, size_, mapped_});
        poolBytes += size_;
        return;
    }
    releaseBytes(data_, size_, mapped_);
}

std::size_t
ZeroRegion::pooledBytes()
{
    return poolBytes;
}

std::size_t
ZeroRegion::poolReuseCount()
{
    return poolReuses;
}

std::size_t
ZeroRegion::poolFreshCount()
{
    return poolFresh;
}

std::size_t
ZeroRegion::poolBytesRezeroed()
{
    return poolRezeroed;
}

void
ZeroRegion::drainPool()
{
    for (const ParkedRegion &r : pool)
        releaseBytes(r.ptr, r.size, r.mapped);
    pool.clear();
    poolBytes = 0;
}

} // namespace shrimp::mem
