/**
 * @file
 * AddressSpace: a user process's page table. Maps virtual pages to
 * physical frames of the node memory and records the per-page cache mode
 * (write-back / write-through / uncached) that process page tables carry
 * on the real system (paper section 3.1).
 *
 * Allocations are page-granular and physically contiguous (the SHRIMP
 * daemons arrange this on the real system so receive buffers have stable
 * physical addresses).
 */

#ifndef SHRIMP_MEM_ADDRESS_SPACE_HH
#define SHRIMP_MEM_ADDRESS_SPACE_HH

#include <cstddef>
#include <vector>

#include "base/config.hh"
#include "base/types.hh"
#include "mem/memory.hh"

namespace shrimp::mem
{

class AddressSpace
{
  public:
    explicit AddressSpace(Memory &memory);

    /**
     * Allocate @p bytes (rounded up to whole pages) of fresh memory.
     * @return the virtual address of the region (page aligned).
     */
    VAddr alloc(std::size_t bytes, CacheMode mode = CacheMode::WriteBack);

    /** True if every byte of [addr, addr+len) is mapped. */
    bool mapped(VAddr addr, std::size_t len) const;

    /** Translate one virtual address; panics when unmapped. */
    PAddr
    translate(VAddr addr) const
    {
        return entry(addr).frame + PAddr(addr % pageBytes());
    }

    /**
     * Translate a range; panics when unmapped. Because allocations are
     * physically contiguous this is valid for any range inside a single
     * allocation.
     */
    PAddr translateRange(VAddr addr, std::size_t len) const;

    /** Cache mode of the page containing @p addr. */
    CacheMode
    cacheMode(VAddr addr) const
    {
        return entry(addr).mode;
    }

    /** Change the cache mode of all pages covering [addr, addr+len). */
    void setCacheMode(VAddr addr, std::size_t len, CacheMode mode);

    Memory &memory() { return mem_; }
    const Memory &memory() const { return mem_; }
    std::size_t pageBytes() const { return mem_.pageBytes(); }

  private:
    struct PageEntry
    {
        PAddr frame;
        CacheMode mode;
        bool valid;
    };

    /**
     * The page table is a dense vector indexed by virtual page number:
     * every translate/cacheMode on the data path is one bounds test and
     * one array load. Allocations grow the virtual space contiguously
     * from page 1, so the vector has no meaningful holes.
     */
    const PageEntry &
    entry(VAddr addr) const
    {
        PageNum vpn = addr / pageBytes();
        if (vpn >= pages_.size() || !pages_[vpn].valid) [[unlikely]]
            faultUnmapped(addr);
        return pages_[vpn];
    }

    [[noreturn]] void faultUnmapped(VAddr addr) const;

    Memory &mem_;
    std::vector<PageEntry> pages_;
    VAddr nextVAddr_;
};

} // namespace shrimp::mem

#endif // SHRIMP_MEM_ADDRESS_SPACE_HH
