/**
 * @file
 * SHRIMP RPC: the specialized (non-compatible) remote procedure call
 * system of paper section 5, designed for the VMMC hardware in the
 * style of Bershad's URPC.
 *
 * Each binding consists of one receive buffer on each side (client and
 * server) with bidirectional import-export mappings and automatic-
 * update bindings between them. The buffer layout is fixed per binding:
 *
 *   [  argument area  ][procId][argFlag][  out area  ][retFlag]
 *
 * Arguments are marshalled consecutively, right-justified against the
 * procedure-id word and the argument flag, so the client-side hardware
 * combines arguments + id + flag into a single packet. The flag is in
 * the same place for every call on the binding.
 *
 * On the server, IN/INOUT parameters are passed to the procedure *by
 * reference* — pointers into the communication buffer. Whatever the
 * procedure writes to its OUT/INOUT parameters propagates back to the
 * client silently through automatic update, overlapped with the
 * computation; finishing a call is just one flag write (which the NIC
 * combines with a just-written adjacent OUT value when it can).
 *
 * The stub generator's role is played by Interface/Signature: the
 * interface definition (parameter directions and sizes) from which both
 * sides derive identical marshalling layouts at compile/setup time.
 */

#ifndef SHRIMP_SRPC_SRPC_HH
#define SHRIMP_SRPC_SRPC_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/ownership.hh"
#include "node/ether.hh"
#include "vmmc/vmmc.hh"

namespace shrimp::srpc
{

enum class Dir
{
    In,
    Out,
    InOut,
};

struct ParamDesc
{
    Dir dir;
    std::size_t size; //!< fixed size in bytes
};

/** One procedure's marshalling plan. */
struct Signature
{
    std::string name;
    std::vector<ParamDesc> params;

    std::size_t argBytes() const;
    std::size_t outBytes() const;
};

/**
 * Interface: the IDL. Both sides construct the same Interface (in a
 * real deployment the stub generator would emit it from a .x-style
 * file), which fixes the buffer layout of every binding.
 */
class Interface
{
  public:
    /** Add a procedure; @return its procedure id. */
    std::uint32_t defineProc(std::string name,
                             std::vector<ParamDesc> params);

    const Signature &signature(std::uint32_t proc) const;
    std::size_t numProcs() const { return sigs_.size(); }

    // layout (valid once all procedures are defined)
    std::size_t argAreaBytes() const;  //!< A: max over procedures
    std::size_t outAreaBytes() const;  //!< O: max over procedures
    std::size_t procIdOff() const { return argAreaBytes(); }
    std::size_t argFlagOff() const { return argAreaBytes() + 4; }
    std::size_t outAreaOff() const { return argAreaBytes() + 8; }
    std::size_t retFlagOff() const { return outAreaOff() + outAreaBytes(); }
    std::size_t bufBytes(std::size_t page_bytes) const;

    /** Offset of parameter @p i of @p proc in the argument area (In and
     *  InOut parameters; panics for Out). */
    std::size_t argOff(std::uint32_t proc, std::size_t i) const;

    /** Offset of parameter @p i in the out area (Out parameters). */
    std::size_t outOff(std::uint32_t proc, std::size_t i) const;

  private:
    std::vector<Signature> sigs_;
};

/** A call parameter: host storage bound to a direction. */
struct Param
{
    Dir dir;
    void *data;
    std::size_t size;
};

inline Param
in(const void *p, std::size_t n)
{
    return Param{Dir::In, const_cast<void *>(p), n};
}

inline Param
out(void *p, std::size_t n)
{
    return Param{Dir::Out, p, n};
}

inline Param
inout(void *p, std::size_t n)
{
    return Param{Dir::InOut, p, n};
}

class SrpcClient
{
    SHRIMP_SHARD_OWNED;

  public:
    SrpcClient(vmmc::Endpoint &ep, const Interface &iface);

    /** Establish a binding to the server listening on (node, port). */
    sim::Task<bool> bind(NodeId server, std::uint16_t port);

    /**
     * Call procedure @p proc. IN/INOUT parameters are marshalled (with
     * the procedure id and flag) into one consecutive write run;
     * OUT/INOUT values are read back after the return flag.
     */
    sim::Task<> call(std::uint32_t proc, std::vector<Param> params);

    std::uint64_t callsMade() const { return seq_; }

  private:
    vmmc::Endpoint &ep_;
    const Interface &iface_;
    VAddr buf_ = 0; //!< local buffer (server's AU writes land here)
    int importHandle_ = -1;
    std::uint32_t seq_ = 0;
    stats::Group stats_;
    trace::TrackId track_;
};

/** Server-side view of one in-progress call: by-reference access to the
 *  parameters in the communication buffer. */
class ServerCall
{
  public:
    ServerCall(vmmc::Endpoint &ep, const Interface &iface,
               std::uint32_t proc, VAddr buf);

    std::uint32_t proc() const { return proc_; }

    /** Read an In/InOut parameter (by reference; small fixed cost). */
    sim::Task<> getArg(std::size_t i, void *out);

    /** Write an InOut parameter in place; propagates via AU. */
    sim::Task<> putArg(std::size_t i, const void *data);

    /** Write an Out parameter; propagates via AU, overlapped with the
     *  rest of the computation. */
    sim::Task<> putOut(std::size_t i, const void *data);

    /** Simulated address of parameter @p i (true by-reference use). */
    VAddr argAddr(std::size_t i) const;

  private:
    vmmc::Endpoint &ep_;
    const Interface &iface_;
    std::uint32_t proc_;
    VAddr buf_;
};

class SrpcServer
{
    SHRIMP_SHARD_OWNED;

  public:
    SrpcServer(vmmc::Endpoint &ep, const Interface &iface,
               std::uint16_t port);

    using ProcFn = std::function<sim::Task<>(ServerCall &)>;

    /** Attach the implementation of procedure @p proc. */
    void registerProc(std::uint32_t proc, ProcFn fn);

    /** Start accepting bindings (daemon). */
    void start();

    std::uint64_t callsServed() const { return calls_; }

  private:
    struct Binding
    {
        VAddr buf = 0;
        int importHandle = -1;
    };

    sim::Task<> acceptLoop();
    sim::Task<> serve(std::shared_ptr<Binding> binding);

    vmmc::Endpoint &ep_;
    const Interface &iface_;
    std::uint16_t port_;
    std::vector<ProcFn> procs_;
    std::uint64_t calls_ = 0;
    bool started_ = false;
};

/** Binding handshake frame. */
struct SrpcHello
{
    std::uint32_t magic;
    std::uint32_t key;
    std::uint16_t replyPort;
    std::uint16_t pad;
};

constexpr std::uint32_t srpcMagic = 0x53525043; // "SRPC"

} // namespace shrimp::srpc

#endif // SHRIMP_SRPC_SRPC_HH
